//! `torchgt` command-line interface.
//!
//! ```text
//! torchgt_cli train --dataset arxiv --method torchgt --epochs 8 [--scale 0.01]
//!                   [--seq-len 512] [--model graphormer|gt] [--hidden 64]
//!                   [--layers 3] [--heads 8] [--lr 2e-3] [--seed 1]
//!                   [--metrics out.json]
//!                   [--checkpoint-dir dir] [--checkpoint-every 1]
//!                   [--resume] [--crash-after 2]
//! torchgt_cli info  --dataset arxiv            # published dataset statistics
//! torchgt_cli maxseq [--gpus 8]                # Fig. 9(a)-style memory limits
//! torchgt_cli datasets                         # list available stand-ins
//! ```
//!
//! `--metrics <path>` attaches an in-memory recorder to the training loop and
//! writes the full observability report (span timings, per-epoch phase
//! breakdowns, per-step traces, simulated all-to-all volume, β_thre
//! transition events) as pretty-printed JSON.
//!
//! `--checkpoint-dir <dir>` snapshots the full training state (parameters,
//! Adam moments and step counter, dropout PRNG cursors, AutoTuner ladder,
//! interleave cursors) every `--checkpoint-every` epochs. `--resume`
//! restores from the latest snapshot and continues bit-exactly.
//! `--crash-after <n>` simulates a crash after `n` completed epochs (exit
//! code 3, snapshots intact) — the crash-resume verification gate drives it.
//!
//! `--elastic` switches `train` to the elastic data-parallel driver over
//! `--world <P>` simulated ranks: the escalation ladder (retry →
//! restore-from-snapshot → shrink-and-continue) survives a permanent rank
//! loss, never shrinking below `--min-ranks`. `--lose-rank <rank>@<epoch>`
//! scripts a permanent loss for drills; `--max-retries <n>` bounds restore
//! attempts per membership generation. The elastic verification gate drives
//! this path end-to-end.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use torchgt::prelude::*;
use torchgt::{ModelKind, TorchGtBuilder};

/// Exit code of a `--crash-after` simulated crash (distinct from usage and
/// failure codes so scripts can assert on it).
const CRASH_EXIT: u8 = 3;

/// Flags accepted by `train`.
const TRAIN_FLAGS: &[&str] = &[
    "dataset", "method", "scale", "epochs", "seed", "model", "seq-len", "hidden", "layers",
    "heads", "lr", "metrics", "checkpoint-dir", "checkpoint-every", "resume", "crash-after",
    "elastic", "world", "min-ranks", "lose-rank", "max-retries", "backend",
];

/// Parse `--key value` / `--switch` pairs, rejecting anything not in
/// `allowed`.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            return Err(format!("unexpected argument `{}`", args[i]));
        };
        if !allowed.contains(&key) {
            let mut hint = format!("unknown flag `--{key}`");
            if allowed.is_empty() {
                hint.push_str(" (this command takes no flags)");
            } else {
                hint.push_str(" (allowed:");
                for f in allowed {
                    hint.push_str(" --");
                    hint.push_str(f);
                }
                hint.push(')');
            }
            return Err(hint);
        }
        let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            i += 1;
            args[i].clone()
        } else {
            "true".to_string()
        };
        map.insert(key.to_string(), value);
        i += 1;
    }
    Ok(map)
}

fn dataset_kind(name: &str) -> Option<DatasetKind> {
    Some(match name {
        "arxiv" | "ogbn-arxiv" => DatasetKind::OgbnArxiv,
        "products" | "ogbn-products" => DatasetKind::OgbnProducts,
        "papers" | "papers100m" | "ogbn-papers100m" => DatasetKind::OgbnPapers100M,
        "amazon" => DatasetKind::Amazon,
        "flickr" => DatasetKind::Flickr,
        "aminer" | "aminer-cs" => DatasetKind::AminerCS,
        "pokec" => DatasetKind::Pokec,
        _ => return None,
    })
}

fn method(name: &str) -> Option<Method> {
    Some(match name {
        "torchgt" => Method::TorchGt,
        "gp-flash" | "flash" => Method::GpFlash,
        "gp-sparse" | "sparse" => Method::GpSparse,
        "gp-raw" | "raw" => Method::GpRaw,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: torchgt_cli <train|info|maxseq|datasets> [--flags]\n\
         run `torchgt_cli train --dataset arxiv --method torchgt --epochs 5` to start"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let allowed: &[&str] = match command.as_str() {
        "train" => TRAIN_FLAGS,
        "info" => &["dataset"],
        "maxseq" => &["gpus"],
        _ => &[],
    };
    let flags = match parse_flags(&args[1..], allowed) {
        Ok(flags) => flags,
        Err(msg) => {
            eprintln!("{msg}");
            return usage();
        }
    };
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    match command.as_str() {
        "datasets" => {
            println!("node-level: arxiv products papers100m amazon flickr aminer pokec");
            println!("graph-level (via examples/benches): zinc molpcba malnet");
            ExitCode::SUCCESS
        }
        "info" => {
            let Some(kind) = dataset_kind(&get("dataset", "arxiv")) else {
                eprintln!("unknown dataset");
                return ExitCode::from(2);
            };
            let spec = kind.spec();
            println!("{}:", spec.name);
            println!("  nodes   {}", spec.nodes);
            println!("  edges   {}", spec.edges);
            println!("  feats   {}", spec.feats);
            println!("  classes {}", spec.classes);
            ExitCode::SUCCESS
        }
        "maxseq" => {
            let gpus: usize = get("gpus", "8").parse().unwrap_or(8);
            let spec = GpuSpec::a100();
            let shape = ModelShape::graphormer_slim();
            println!("A100, GPH_Slim, degree-25 graph:");
            for p in 1..=gpus {
                let tgt = torchgt::perf::max_seq_len(
                    &spec,
                    &shape,
                    LayoutKind::ClusterSparse,
                    25.0,
                    p,
                );
                let raw =
                    torchgt::perf::max_seq_len(&spec, &shape, LayoutKind::Dense, 25.0, p);
                println!("  {p} GPU(s): TorchGT {}K, GP-RAW {}K", tgt >> 10, raw >> 10);
            }
            ExitCode::SUCCESS
        }
        "train" => {
            // Resolve the kernel backend before any tensor work runs: an
            // unknown name or an ISA this CPU lacks must be a usage error
            // here, not a SIGILL (or panic) mid-training.
            if let Some(name) = flags.get("backend") {
                std::env::set_var(torchgt_tensor::backend::ENV_VAR, name);
            }
            let kernel_backend = match torchgt_tensor::backend::from_env() {
                Ok(be) => be,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            println!("kernel backend: {}", kernel_backend.name());
            let Some(kind) = dataset_kind(&get("dataset", "arxiv")) else {
                eprintln!("unknown dataset (try `torchgt_cli datasets`)");
                return ExitCode::from(2);
            };
            let Some(m) = method(&get("method", "torchgt")) else {
                eprintln!("unknown method (torchgt|gp-flash|gp-sparse|gp-raw)");
                return ExitCode::from(2);
            };
            let scale: f64 = get("scale", "").parse().unwrap_or_else(|_| {
                (2000.0 / kind.spec().nodes as f64).min(1.0)
            });
            let epochs: usize = get("epochs", "8").parse().unwrap_or(8);
            let seed: u64 = get("seed", "1").parse().unwrap_or(1);
            let model = match get("model", "graphormer").as_str() {
                "gt" => ModelKind::Gt,
                _ => ModelKind::Graphormer,
            };
            let dataset = kind.generate_node(scale, seed);
            println!(
                "{}-like stand-in: {} nodes, {} edges, {} classes (scale {scale})",
                kind.spec().name,
                dataset.graph.num_nodes(),
                dataset.graph.num_edges(),
                dataset.num_classes
            );
            if flags.contains_key("elastic") {
                return run_elastic(&flags, m, &dataset, epochs, seed);
            }
            let built = TorchGtBuilder::new(m)
                .model(model)
                .seq_len(get("seq-len", "512").parse().unwrap_or(512))
                .epochs(epochs)
                .hidden(get("hidden", "64").parse().unwrap_or(64))
                .layers(get("layers", "3").parse().unwrap_or(3))
                .heads(get("heads", "8").parse().unwrap_or(8))
                .lr(get("lr", "2e-3").parse().unwrap_or(2e-3))
                .seed(seed)
                .build_node(&dataset);
            let mut node_trainer = match built {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("invalid configuration: {e}");
                    return ExitCode::from(2);
                }
            };
            // Dispatch through the unified Trainer abstraction — the loop
            // below works for any trainer kind.
            let trainer: &mut dyn Trainer = &mut node_trainer;
            let recorder = flags.get("metrics").map(|path| {
                let mem = Arc::new(MemoryRecorder::default());
                mem.event(torchgt_obs::Event::backend(kernel_backend.name()));
                trainer.attach_recorder(mem.clone());
                (mem, path.clone())
            });
            println!(
                "{:>5} {:>9} {:>10} {:>10} {:>12}",
                "epoch", "loss", "train_acc", "test_acc", "sim t (s)"
            );
            let print_epoch = |s: &EpochStats| {
                println!(
                    "{:>5} {:>9.4} {:>10.4} {:>10.4} {:>12.6}",
                    s.epoch, s.loss, s.train_acc, s.test_acc, s.sim_seconds
                );
            };
            let mut interrupted = false;
            if let Some(dir) = flags.get("checkpoint-dir") {
                let store = match CheckpointStore::new(dir.clone(), 3) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("cannot open checkpoint dir {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let opts = CheckpointOptions {
                    every: get("checkpoint-every", "1").parse().unwrap_or(1),
                    resume: flags.contains_key("resume"),
                    crash_after: flags.get("crash-after").and_then(|v| v.parse().ok()),
                };
                let noop = torchgt::obs::noop();
                let rec = recorder.as_ref().map(|(mem, _)| mem.clone() as RecorderHandle);
                let outcome = match run_with_checkpoints(
                    trainer,
                    &store,
                    &opts,
                    rec.as_ref().unwrap_or(&noop),
                ) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("checkpointed run failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Some(epoch) = outcome.resumed_from {
                    println!("resumed from snapshot at epoch {epoch}");
                }
                outcome.stats.iter().for_each(print_epoch);
                interrupted = outcome.interrupted;
                if interrupted {
                    println!(
                        "simulated crash after epoch {} (snapshots kept in {dir})",
                        trainer.epoch()
                    );
                }
            } else {
                for _ in 0..epochs {
                    print_epoch(&trainer.train_epoch());
                }
            }
            if let Some((mem, path)) = recorder {
                let report = mem.report();
                if let Err(e) = std::fs::write(&path, report.to_json_string_pretty()) {
                    eprintln!("failed to write metrics to {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("metrics written to {path}");
            }
            if interrupted {
                ExitCode::from(CRASH_EXIT)
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

/// The `train --elastic` path: data-parallel training over simulated ranks
/// that survives permanent rank loss by shrinking the group and resharding.
fn run_elastic(
    flags: &HashMap<String, String>,
    m: Method,
    dataset: &NodeDataset,
    epochs: usize,
    seed: u64,
) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let world: usize = get("world", "4").parse().unwrap_or(4).max(1);
    let lose: Option<RankLoss> = match flags.get("lose-rank") {
        Some(s) => match s.parse() {
            Ok(l) => Some(l),
            Err(e) => {
                eprintln!("bad --lose-rank (want <rank>@<epoch>): {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let mut cfg = TrainConfig::new(m, get("seq-len", "512").parse().unwrap_or(512), epochs);
    cfg.lr = get("lr", "2e-3").parse().unwrap_or(2e-3);
    cfg.seed = seed;
    cfg.recovery.allow_shrink = true;
    cfg.recovery.min_ranks = get("min-ranks", "1").parse().unwrap_or(1);
    cfg.recovery.max_retries = get("max-retries", "1").parse().unwrap_or(1);
    let gt = torchgt::model::GtConfig {
        feat_dim: dataset.feat_dim,
        hidden: get("hidden", "32").parse().unwrap_or(32),
        layers: get("layers", "2").parse().unwrap_or(2),
        heads: get("heads", "4").parse().unwrap_or(4),
        ffn_mult: 4,
        out_dim: dataset.num_classes,
        pe_dim: 8,
        dropout: 0.1,
    };
    if gt.heads == 0 || gt.hidden % gt.heads != 0 {
        eprintln!("invalid configuration: heads must divide hidden");
        return ExitCode::from(2);
    }
    let factory = move || -> Box<dyn SequenceModel> { Box::new(torchgt::model::Gt::new(gt, seed)) };
    let dir = get(
        "checkpoint-dir",
        &std::env::temp_dir()
            .join(format!("torchgt-elastic-{}", std::process::id()))
            .to_string_lossy(),
    );
    let store = match CheckpointStore::new(dir.clone(), 3) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open checkpoint dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mem = Arc::new(MemoryRecorder::default());
    mem.event(torchgt_obs::Event::backend(torchgt_tensor::backend::active().name()));
    let recorder: RecorderHandle = mem.clone();
    println!(
        "elastic run: world {world}, min ranks {}, max retries {} per generation{}",
        cfg.recovery.min_ranks,
        cfg.recovery.max_retries,
        lose.map(|l| format!(", scripted loss of rank {} at epoch {}", l.rank, l.epoch))
            .unwrap_or_default()
    );
    let out = match train_data_parallel_elastic(
        dataset,
        cfg,
        world,
        factory,
        FaultPlan::default(),
        lose,
        &store,
        recorder,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("elastic run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{:>5} {:>9}", "epoch", "loss");
    for (i, l) in out.stats.epoch_losses.iter().enumerate() {
        println!("{:>5} {:>9.4}", i + 1, l);
    }
    println!(
        "finished at world {} (started {}), generation {}, {} restart(s), {} shrink(s), lost ranks {:?}",
        out.final_world,
        out.initial_world,
        out.generation,
        out.restarts,
        out.shrinks,
        out.lost_ranks
    );
    if let Some(path) = flags.get("metrics") {
        mem.gauge_set("final_world", out.final_world as f64);
        mem.gauge_set("initial_world", out.initial_world as f64);
        mem.gauge_set("generation", out.generation as f64);
        mem.gauge_set("restarts", out.restarts as f64);
        mem.gauge_set("shrinks", out.shrinks as f64);
        let report = mem.report();
        if let Err(e) = std::fs::write(path, report.to_json_string_pretty()) {
            eprintln!("failed to write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    ExitCode::SUCCESS
}
