//! `torchgt` command-line interface.
//!
//! ```text
//! torchgt_cli train  --dataset arxiv --method torchgt --epochs 8 [--scale 0.01]
//!                    [--seq-len 512] [--model graphormer|gt] [--hidden 64]
//!                    [--layers 3] [--heads 8] [--lr 2e-3] [--seed 1]
//!                    [--metrics out.json]
//!                    [--checkpoint-dir dir] [--checkpoint-every 1]
//!                    [--resume] [--crash-after 2]
//! torchgt_cli freeze --dataset arxiv --epochs 2 --out model.tgtf
//!                    [--scheme int8|int16] [--max-drop 0.01] [--calib 256]
//! torchgt_cli serve  --model model.tgtf --queries 256 --qps 500
//!                    [--zipf 1.1] [--max-batch 8] [--budget-ms 50]
//!                    [--metrics out.json]
//! torchgt_cli datagen --dataset papers100m --scale 0.002 --seed 7 \
//!                    --out shards/ [--shard-nodes 16384]
//! torchgt_cli info   --dataset arxiv            # published dataset statistics
//! torchgt_cli maxseq [--gpus 8]                 # Fig. 9(a)-style memory limits
//! torchgt_cli datasets                          # list available stand-ins
//! ```
//!
//! Every subcommand's flags live in a shared [`FlagSpec`] table; the parser
//! is one loop over that table, so adding a flag is one row, and an unknown
//! flag or subcommand is always exit code 2 plus usage. The bare legacy
//! invocation (`torchgt_cli --dataset …`) keeps working as an alias for
//! `train`.
//!
//! `--metrics <path>` attaches an in-memory recorder and writes the full
//! observability report as pretty-printed JSON — for `train` that is span
//! timings, per-epoch phase breakdowns, per-step traces, simulated
//! all-to-all volume, β_thre transitions; for `serve` it is the serving
//! gauges (p50/p99 latency, queue depth, throughput, batch occupancy).
//!
//! `train --checkpoint-dir <dir>` snapshots the full training state every
//! `--checkpoint-every` epochs; `--resume` restores bit-exactly;
//! `--crash-after <n>` simulates a crash (exit code 3, snapshots intact).
//! `train --elastic` switches to the elastic data-parallel driver over
//! `--world <P>` simulated ranks (`--lose-rank <rank>@<epoch>` scripts a
//! permanent loss, `--min-ranks`/`--max-retries` bound the recovery ladder).
//! `train --rebalance` runs the closed-loop straggler rebalancer instead
//! (`--slow-rank <r>`/`--slow-delay-ms <ms>` inject a deterministic
//! straggler; `--overlap on|off` toggles async collectives with
//! compute/communication overlap — losses are bit-identical either way).
//!
//! `datagen` writes a sharded on-disk copy of a stand-in dataset (`TGDS`
//! shards plus a `TGDM` manifest); `train --data-dir <dir>` then streams it
//! shard-by-shard through a prefetching loader instead of materialising the
//! whole graph in memory — the epoch losses are bit-identical to the
//! in-memory path, and the run self-reports its peak RSS so scripts can
//! assert the out-of-core claim. Checkpoints taken from a streaming run
//! embed the dataset's manifest hash; `--resume` against a *different*
//! dataset is refused unless `--allow-dataset-mismatch` is passed.
//!
//! `freeze` trains a model, then runs the post-training quantization pass:
//! calibrate on held-out nodes, quantize per-row, and **gate** — the freeze
//! is refused (exit 1) if quantized top-1 accuracy drops more than
//! `--max-drop` below the f32 reference. The artifact lands at `--out` in
//! the CRC-guarded `TGTF` format with dataset provenance embedded, so
//! `serve` can regenerate the identical graph by seed.

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use torchgt::prelude::*;
use torchgt::serve::{DatasetRef, Query, ServeReply, Zipf};
use torchgt::{ModelKind, TorchGtBuilder};
use torchgt_compat::sync::channel::{bounded, unbounded};

/// Exit code of a `--crash-after` simulated crash (distinct from usage and
/// failure codes so scripts can assert on it).
const CRASH_EXIT: u8 = 3;

/// One row of a subcommand's flag table.
struct FlagSpec {
    name: &'static str,
    /// `true`: `--name <value>` (the next argument is consumed).
    /// `false`: a bare switch.
    takes_value: bool,
    help: &'static str,
}

impl FlagSpec {
    const fn value(name: &'static str, help: &'static str) -> Self {
        Self { name, takes_value: true, help }
    }
    const fn switch(name: &'static str, help: &'static str) -> Self {
        Self { name, takes_value: false, help }
    }
}

/// One subcommand: its name, a one-line summary for usage, and its flags.
struct SubSpec {
    name: &'static str,
    summary: &'static str,
    flags: &'static [FlagSpec],
}

const TRAIN_FLAGS: &[FlagSpec] = &[
    FlagSpec::value("dataset", "stand-in dataset (try `torchgt_cli datasets`)"),
    FlagSpec::value("method", "attention method: torchgt|gp-flash|gp-sparse|gp-raw"),
    FlagSpec::value("scale", "dataset scale factor (default sizes to ~2k nodes)"),
    FlagSpec::value("epochs", "training epochs (default 8)"),
    FlagSpec::value("seed", "PRNG seed (default 1)"),
    FlagSpec::value("model", "architecture: graphormer|gt (default graphormer)"),
    FlagSpec::value("seq-len", "sequence length (default 512)"),
    FlagSpec::value("hidden", "hidden width (default 64)"),
    FlagSpec::value("layers", "encoder layers (default 3)"),
    FlagSpec::value("heads", "attention heads (default 8)"),
    FlagSpec::value("lr", "learning rate (default 2e-3)"),
    FlagSpec::value("backend", "kernel backend: scalar|avx2|avx512 (default auto)"),
    FlagSpec::value("metrics", "write the observability report as JSON here"),
    FlagSpec::value("data-dir", "stream a `datagen` shard directory instead of generating in-memory"),
    FlagSpec::switch("shuffle-shards", "out-of-core: seeded per-epoch shard order shuffle"),
    FlagSpec::switch("allow-dataset-mismatch", "resume even if the snapshot's dataset hash differs"),
    FlagSpec::value("checkpoint-dir", "snapshot training state into this directory"),
    FlagSpec::value("checkpoint-every", "snapshot period in epochs (default 1)"),
    FlagSpec::switch("resume", "restore from the latest snapshot and continue"),
    FlagSpec::value("crash-after", "simulate a crash after N completed epochs"),
    FlagSpec::switch("elastic", "elastic data-parallel driver over simulated ranks"),
    FlagSpec::value("world", "elastic/rebalance: initial rank count (default 4)"),
    FlagSpec::value("min-ranks", "elastic: never shrink below this (default 1)"),
    FlagSpec::value("lose-rank", "elastic: scripted permanent loss <rank>@<epoch>"),
    FlagSpec::value("max-retries", "elastic: restore attempts per generation (default 1)"),
    FlagSpec::value("overlap", "async collectives with compute overlap: on|off (default on)"),
    FlagSpec::switch("rebalance", "closed-loop straggler rebalancing over --world simulated ranks"),
    FlagSpec::value("slow-rank", "inject a straggler: global rank slowed on every send"),
    FlagSpec::value("slow-delay-ms", "per-send delay of the --slow-rank straggler (default 1)"),
    FlagSpec::value("faults", "seeded fault plan, e.g. seed=7,disk.read_err=0.2,comm.delay=0.1@1ms"),
];

const FREEZE_FLAGS: &[FlagSpec] = &[
    FlagSpec::value("dataset", "stand-in dataset to train and calibrate on"),
    FlagSpec::value("method", "attention method: torchgt|gp-flash|gp-sparse|gp-raw"),
    FlagSpec::value("scale", "dataset scale factor (default sizes to ~2k nodes)"),
    FlagSpec::value("epochs", "training epochs before the freeze (default 2)"),
    FlagSpec::value("seed", "PRNG seed (default 1)"),
    FlagSpec::value("model", "architecture: graphormer|gt (default graphormer)"),
    FlagSpec::value("seq-len", "sequence length (default 512)"),
    FlagSpec::value("hidden", "hidden width (default 64)"),
    FlagSpec::value("layers", "encoder layers (default 3)"),
    FlagSpec::value("heads", "attention heads (default 8)"),
    FlagSpec::value("lr", "learning rate (default 2e-3)"),
    FlagSpec::value("backend", "kernel backend: scalar|avx2|avx512 (default auto)"),
    FlagSpec::value("data-dir", "train on a `datagen` shard directory (embeds its manifest hash)"),
    FlagSpec::value("out", "where to write the TGTF artifact (default model.tgtf)"),
    FlagSpec::value("calib", "calibration queries from the held-out split (default 256)"),
    FlagSpec::value("scheme", "quantization width: int8|int16 (default int8)"),
    FlagSpec::value("max-drop", "max tolerated top-1 accuracy drop (default 0.01)"),
    FlagSpec::value("faults", "seeded fault plan, e.g. seed=7,disk.read_err=0.2"),
];

const SERVE_FLAGS: &[FlagSpec] = &[
    FlagSpec::value("model", "TGTF artifact to serve (default model.tgtf)"),
    FlagSpec::value("queries", "total load-generator queries (default 256)"),
    FlagSpec::value("qps", "aggregate offered load, queries/sec (default 500)"),
    FlagSpec::value("zipf", "load skew exponent, 0 = uniform (default 1.1)"),
    FlagSpec::value("clients", "concurrent load-generator threads (default 2)"),
    FlagSpec::value("queue", "bounded request-queue capacity (default 64)"),
    FlagSpec::value("max-batch", "micro-batch flush size (default 8)"),
    FlagSpec::value("budget-ms", "micro-batch latency budget in ms (default 50)"),
    FlagSpec::value("ctx", "ego-subgraph context nodes per query (default 32)"),
    FlagSpec::value("backend", "kernel backend: scalar|avx2|avx512 (default auto)"),
    FlagSpec::value("metrics", "write serving gauges as JSON here"),
    FlagSpec::value("dataset", "override the artifact's dataset provenance"),
    FlagSpec::value("scale", "override the artifact's dataset scale"),
    FlagSpec::value("data-seed", "override the artifact's dataset seed"),
    FlagSpec::value("shed-watermark", "shed when the backlog behind a query exceeds this depth"),
    FlagSpec::value("deadline-ms", "shed queries older than this at dequeue"),
    FlagSpec::value("faults", "seeded fault plan, e.g. seed=7,serve.slow=0.1@5ms,serve.burst=0.2@8"),
];

const DATAGEN_FLAGS: &[FlagSpec] = &[
    FlagSpec::value("dataset", "stand-in dataset to shard (try `torchgt_cli datasets`)"),
    FlagSpec::value("scale", "dataset scale factor (default sizes to ~2k nodes)"),
    FlagSpec::value("seed", "generator seed — fully determines dataset content (default 1)"),
    FlagSpec::value("out", "directory for the TGDS shards + TGDM manifest (default data)"),
    FlagSpec::value("shard-nodes", "nodes per shard (default 16384)"),
    FlagSpec::value("faults", "seeded fault plan, e.g. seed=7,disk.read_err=0.2"),
];

const SUBCOMMANDS: &[SubSpec] = &[
    SubSpec {
        name: "train",
        summary: "train a graph transformer on a generated stand-in dataset",
        flags: TRAIN_FLAGS,
    },
    SubSpec {
        name: "freeze",
        summary: "train, then quantize into a TGTF artifact (accuracy-gated)",
        flags: FREEZE_FLAGS,
    },
    SubSpec {
        name: "serve",
        summary: "answer Zipf query traffic from a frozen model, micro-batched",
        flags: SERVE_FLAGS,
    },
    SubSpec {
        name: "datagen",
        summary: "write a stand-in dataset as on-disk TGDS shards for --data-dir",
        flags: DATAGEN_FLAGS,
    },
    SubSpec {
        name: "info",
        summary: "published statistics of a dataset stand-in",
        flags: &[FlagSpec::value("dataset", "dataset to describe")],
    },
    SubSpec {
        name: "maxseq",
        summary: "Fig. 9(a)-style max sequence length per GPU count",
        flags: &[FlagSpec::value("gpus", "GPU counts to sweep (default 8)")],
    },
    SubSpec { name: "datasets", summary: "list available stand-ins", flags: &[] },
];

/// Parse `--key value` / `--switch` arguments against a subcommand's flag
/// table.
fn parse_flags(args: &[String], sub: &SubSpec) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            return Err(format!("unexpected argument `{}`", args[i]));
        };
        let Some(spec) = sub.flags.iter().find(|f| f.name == key) else {
            let mut hint = format!("unknown flag `--{key}`");
            if sub.flags.is_empty() {
                hint.push_str(" (this command takes no flags)");
            } else {
                hint.push_str(" (allowed:");
                for f in sub.flags {
                    hint.push_str(" --");
                    hint.push_str(f.name);
                }
                hint.push(')');
            }
            return Err(hint);
        };
        let value = if spec.takes_value {
            i += 1;
            match args.get(i) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => return Err(format!("flag `--{key}` needs a value ({})", spec.help)),
            }
        } else {
            "true".to_string()
        };
        map.insert(key.to_string(), value);
        i += 1;
    }
    Ok(map)
}

fn dataset_kind(name: &str) -> Option<DatasetKind> {
    Some(match name {
        "arxiv" | "ogbn-arxiv" => DatasetKind::OgbnArxiv,
        "products" | "ogbn-products" => DatasetKind::OgbnProducts,
        "papers" | "papers100m" | "ogbn-papers100m" => DatasetKind::OgbnPapers100M,
        "amazon" => DatasetKind::Amazon,
        "flickr" => DatasetKind::Flickr,
        "aminer" | "aminer-cs" => DatasetKind::AminerCS,
        "pokec" => DatasetKind::Pokec,
        _ => return None,
    })
}

fn method(name: &str) -> Option<Method> {
    Some(match name {
        "torchgt" => Method::TorchGt,
        "gp-flash" | "flash" => Method::GpFlash,
        "gp-sparse" | "sparse" => Method::GpSparse,
        "gp-raw" | "raw" => Method::GpRaw,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!("usage: torchgt_cli <subcommand> [--flags]\n\nsubcommands:");
    for sub in SUBCOMMANDS {
        eprintln!("  {:<9} {}", sub.name, sub.summary);
    }
    eprintln!(
        "\nrun `torchgt_cli train --dataset arxiv --method torchgt --epochs 5` to start,\n\
         then `torchgt_cli freeze --out model.tgtf` and `torchgt_cli serve` to deploy"
    );
    ExitCode::from(2)
}

/// Resolve the kernel backend before any tensor work runs: an unknown name
/// or an ISA this CPU lacks must be a usage error here, not a SIGILL (or
/// panic) mid-run. Returns the resolved backend name.
fn resolve_backend(flags: &HashMap<String, String>) -> Result<String, ExitCode> {
    if let Some(name) = flags.get("backend") {
        std::env::set_var(torchgt_tensor::backend::ENV_VAR, name);
    }
    match torchgt_tensor::backend::from_env() {
        Ok(be) => Ok(be.name().to_string()),
        Err(e) => {
            eprintln!("{e}");
            Err(ExitCode::from(2))
        }
    }
}

/// Install the seeded fault plan before any I/O or serving runs: `--faults`
/// takes the same spec grammar as the `TORCHGT_FAULTS` environment variable
/// (the flag wins when both are set), and a malformed spec must be a usage
/// error here, not a mid-run surprise. Returns whether a plan is active.
fn resolve_faults(flags: &HashMap<String, String>) -> Result<bool, ExitCode> {
    if let Some(spec) = flags.get("faults") {
        std::env::set_var(torchgt::faults::ENV_VAR, spec);
    }
    match torchgt::faults::install_from_env() {
        Ok(active) => {
            if active {
                if let Some(spec) = torchgt::faults::installed() {
                    println!("fault injection active (seed {})", spec.seed);
                }
            }
            Ok(active)
        }
        Err(e) => {
            eprintln!("bad fault spec: {e}");
            Err(ExitCode::from(2))
        }
    }
}

/// Generate the node dataset a subcommand runs on, announcing what came out.
/// Returns `(kind, dataset, flag-name, scale, seed)` so freeze can embed the
/// provenance in the artifact.
fn generate_dataset(
    flags: &HashMap<String, String>,
) -> Result<(DatasetKind, NodeDataset, String, f64, u64), ExitCode> {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let name = get("dataset", "arxiv");
    let Some(kind) = dataset_kind(&name) else {
        eprintln!("unknown dataset (try `torchgt_cli datasets`)");
        return Err(ExitCode::from(2));
    };
    let scale: f64 = get("scale", "")
        .parse()
        .unwrap_or_else(|_| (2000.0 / kind.spec().nodes as f64).min(1.0));
    let seed: u64 = get("seed", "1").parse().unwrap_or(1);
    let dataset = kind.generate_node(scale, seed);
    println!(
        "{}-like stand-in: {} nodes, {} edges, {} classes (scale {scale})",
        kind.spec().name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );
    Ok((kind, dataset, name, scale, seed))
}

/// Build a node trainer from the shared train/freeze hyper-parameter flags.
fn build_trainer(
    flags: &HashMap<String, String>,
    dataset: &NodeDataset,
    m: Method,
    epochs: usize,
    seed: u64,
) -> Result<NodeTrainer, ExitCode> {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let model = match get("model", "graphormer").as_str() {
        "gt" => ModelKind::Gt,
        _ => ModelKind::Graphormer,
    };
    TorchGtBuilder::new(m)
        .model(model)
        .seq_len(get("seq-len", "512").parse().unwrap_or(512))
        .epochs(epochs)
        .hidden(get("hidden", "64").parse().unwrap_or(64))
        .layers(get("layers", "3").parse().unwrap_or(3))
        .heads(get("heads", "8").parse().unwrap_or(8))
        .lr(get("lr", "2e-3").parse().unwrap_or(2e-3))
        .seed(seed)
        .build_node(dataset)
        .map_err(|e| {
            eprintln!("invalid configuration: {e}");
            ExitCode::from(2)
        })
}

fn print_epoch_header() {
    println!(
        "{:>5} {:>9} {:>10} {:>10} {:>12}",
        "epoch", "loss", "train_acc", "test_acc", "sim t (s)"
    );
}

fn print_epoch(s: &EpochStats) {
    println!(
        "{:>5} {:>9.4} {:>10.4} {:>10.4} {:>12.6}",
        s.epoch, s.loss, s.train_acc, s.test_acc, s.sim_seconds
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first() else {
        return usage();
    };
    // Legacy alias: a bare `torchgt_cli --dataset …` invocation is `train`.
    let (command, rest): (&str, &[String]) = if first.starts_with("--") {
        ("train", &args[..])
    } else {
        (first.as_str(), &args[1..])
    };
    let Some(sub) = SUBCOMMANDS.iter().find(|s| s.name == command) else {
        eprintln!("unknown subcommand `{command}`");
        return usage();
    };
    let flags = match parse_flags(rest, sub) {
        Ok(flags) => flags,
        Err(msg) => {
            eprintln!("{msg}");
            return usage();
        }
    };
    match sub.name {
        "datasets" => run_datasets(),
        "info" => run_info(&flags),
        "maxseq" => run_maxseq(&flags),
        "datagen" => run_datagen(&flags),
        "train" => run_train(&flags),
        "freeze" => run_freeze(&flags),
        "serve" => run_serve(&flags),
        _ => usage(),
    }
}

/// Every node-level stand-in with its canonical CLI alias (the inverse of
/// [`dataset_kind`]).
const NODE_KINDS: &[(&str, DatasetKind)] = &[
    ("arxiv", DatasetKind::OgbnArxiv),
    ("products", DatasetKind::OgbnProducts),
    ("papers100m", DatasetKind::OgbnPapers100M),
    ("amazon", DatasetKind::Amazon),
    ("flickr", DatasetKind::Flickr),
    ("aminer", DatasetKind::AminerCS),
    ("pokec", DatasetKind::Pokec),
];

/// Canonical CLI alias for a node-level dataset kind.
fn kind_alias(kind: DatasetKind) -> &'static str {
    NODE_KINDS.iter().find(|(_, k)| *k == kind).map(|(a, _)| *a).unwrap_or("arxiv")
}

/// `datasets`: list the stand-ins with the *effective* (clamped) generation
/// values at each dataset's default scale, so what `train`/`datagen` will
/// actually produce is visible up front rather than the published sizes.
fn run_datasets() -> ExitCode {
    println!("node-level stand-ins (effective generated sizes at the default scale):");
    println!(
        "  {:<11} {:<17} {:>8} {:>6} {:>8} {:>11}",
        "alias", "stand-in for", "nodes", "feats", "classes", "avg degree"
    );
    for &(alias, kind) in NODE_KINDS {
        let spec = kind.spec();
        let scale = (2000.0 / spec.nodes as f64).min(1.0);
        let eff = kind.effective(scale);
        println!(
            "  {:<11} {:<17} {:>8} {:>6} {:>8} {:>11.1}",
            alias, spec.name, eff.nodes, eff.feat_dim, eff.classes, eff.avg_degree
        );
    }
    println!("graph-level (via examples/benches): zinc molpcba malnet");
    ExitCode::SUCCESS
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `None` on platforms without procfs.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// `datagen`: stream a stand-in dataset to disk as TGDS shards + a TGDM
/// manifest, announcing the effective (clamped) spec and the manifest hash.
fn run_datagen(flags: &HashMap<String, String>) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    if let Err(code) = resolve_faults(flags) {
        return code;
    }
    let Some(kind) = dataset_kind(&get("dataset", "arxiv")) else {
        eprintln!("unknown dataset (try `torchgt_cli datasets`)");
        return ExitCode::from(2);
    };
    let scale: f64 = get("scale", "")
        .parse()
        .unwrap_or_else(|_| (2000.0 / kind.spec().nodes as f64).min(1.0));
    let seed: u64 = get("seed", "1").parse().unwrap_or(1);
    let out = get("out", "data");
    let shard_nodes: usize = get("shard-nodes", "16384").parse().unwrap_or(16384).max(1);
    let report = match generate_to_dir(kind, scale, seed, Path::new(&out), shard_nodes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("datagen failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let eff = &report.effective;
    println!(
        "{}-like stand-in at scale {scale}, seed {seed} (effective: {} nodes, {} feats, {} classes, avg degree {:.1})",
        kind.spec().name,
        eff.nodes,
        eff.feat_dim,
        eff.classes,
        eff.avg_degree
    );
    println!(
        "wrote {} shard(s) / {} arcs / {} bytes to {out}",
        report.manifest.shards.len(),
        report.manifest.total_arcs,
        report.total_bytes
    );
    println!("manifest hash: {}", report.hash);
    ExitCode::SUCCESS
}

fn run_info(flags: &HashMap<String, String>) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let Some(kind) = dataset_kind(&get("dataset", "arxiv")) else {
        eprintln!("unknown dataset");
        return ExitCode::from(2);
    };
    let spec = kind.spec();
    println!("{}:", spec.name);
    println!("  nodes   {}", spec.nodes);
    println!("  edges   {}", spec.edges);
    println!("  feats   {}", spec.feats);
    println!("  classes {}", spec.classes);
    ExitCode::SUCCESS
}

fn run_maxseq(flags: &HashMap<String, String>) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let gpus: usize = get("gpus", "8").parse().unwrap_or(8);
    let spec = GpuSpec::a100();
    let shape = ModelShape::graphormer_slim();
    println!("A100, GPH_Slim, degree-25 graph:");
    for p in 1..=gpus {
        let tgt = torchgt::perf::max_seq_len(&spec, &shape, LayoutKind::ClusterSparse, 25.0, p);
        let raw = torchgt::perf::max_seq_len(&spec, &shape, LayoutKind::Dense, 25.0, p);
        println!("  {p} GPU(s): TorchGT {}K, GP-RAW {}K", tgt >> 10, raw >> 10);
    }
    ExitCode::SUCCESS
}

fn run_train(flags: &HashMap<String, String>) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let kernel_backend = match resolve_backend(flags) {
        Ok(name) => name,
        Err(code) => return code,
    };
    println!("kernel backend: {kernel_backend}");
    if let Err(code) = resolve_faults(flags) {
        return code;
    }
    let Some(m) = method(&get("method", "torchgt")) else {
        eprintln!("unknown method (torchgt|gp-flash|gp-sparse|gp-raw)");
        return ExitCode::from(2);
    };
    let epochs: usize = get("epochs", "8").parse().unwrap_or(8);
    if let Some(v) = flags.get("overlap") {
        match v.as_str() {
            "on" | "off" => std::env::set_var("TORCHGT_OVERLAP", v),
            _ => {
                eprintln!("--overlap wants on|off");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(dir) = flags.get("data-dir").cloned() {
        return run_train_streaming(flags, m, epochs, &dir, &kernel_backend);
    }
    let (_, dataset, _, _, seed) = match generate_dataset(flags) {
        Ok(d) => d,
        Err(code) => return code,
    };
    if flags.contains_key("rebalance") {
        if flags.contains_key("elastic") {
            eprintln!("--rebalance and --elastic cannot be combined");
            return ExitCode::from(2);
        }
        return run_rebalance(flags, m, &dataset, epochs, seed);
    }
    if flags.contains_key("elastic") {
        return run_elastic(flags, m, &dataset, epochs, seed);
    }
    let mut node_trainer = match build_trainer(flags, &dataset, m, epochs, seed) {
        Ok(t) => t,
        Err(code) => return code,
    };
    drive_trainer(flags, &mut node_trainer, epochs, &kernel_backend, false)
}

/// The `train --data-dir` path: open the sharded dataset, build a
/// [`StreamingTrainer`] over its prefetching loader, and drive it through
/// the same checkpoint/metrics loop as the in-memory path. Self-reports
/// peak RSS so scripts can assert the out-of-core memory claim.
fn run_train_streaming(
    flags: &HashMap<String, String>,
    m: Method,
    epochs: usize,
    dir: &str,
    kernel_backend: &str,
) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    if flags.contains_key("elastic") {
        eprintln!("--elastic and --data-dir cannot be combined");
        return ExitCode::from(2);
    }
    if flags.contains_key("rebalance") {
        eprintln!("--rebalance and --data-dir cannot be combined");
        return ExitCode::from(2);
    }
    let seed: u64 = get("seed", "1").parse().unwrap_or(1);
    let loader = match ShardLoader::open(Path::new(dir)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot open sharded dataset {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let loader = if flags.contains_key("shuffle-shards") { loader.with_shuffle(seed) } else { loader };
    let man = loader.manifest();
    println!(
        "streaming {}-like stand-in from {dir}: {} shard(s), {} nodes, {} arcs, {} classes ({})",
        man.kind.spec().name,
        loader.num_shards(),
        man.total_nodes,
        man.total_arcs,
        man.num_classes,
        loader.hash()
    );
    let model = match get("model", "graphormer").as_str() {
        "gt" => ModelKind::Gt,
        _ => ModelKind::Graphormer,
    };
    let built = TorchGtBuilder::new(m)
        .model(model)
        .seq_len(get("seq-len", "512").parse().unwrap_or(512))
        .epochs(epochs)
        .hidden(get("hidden", "64").parse().unwrap_or(64))
        .layers(get("layers", "3").parse().unwrap_or(3))
        .heads(get("heads", "8").parse().unwrap_or(8))
        .lr(get("lr", "2e-3").parse().unwrap_or(2e-3))
        .seed(seed)
        .build_streaming(loader);
    let mut trainer = match built {
        Ok(t) => t,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            return ExitCode::from(2);
        }
    };
    if flags.contains_key("allow-dataset-mismatch") {
        trainer.set_allow_dataset_mismatch(true);
    }
    drive_trainer(flags, &mut trainer, epochs, kernel_backend, true)
}

/// Shared train-loop driver for any [`Trainer`]: recorder attachment,
/// checkpointed or plain epochs, the metrics dump, and (for out-of-core
/// runs) the peak-RSS self-report.
fn drive_trainer(
    flags: &HashMap<String, String>,
    trainer: &mut dyn Trainer,
    epochs: usize,
    kernel_backend: &str,
    report_rss: bool,
) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let recorder = flags.get("metrics").map(|path| {
        let mem = Arc::new(MemoryRecorder::default());
        mem.event(torchgt_obs::Event::backend(&kernel_backend));
        trainer.attach_recorder(mem.clone());
        (mem, path.clone())
    });
    print_epoch_header();
    let mut interrupted = false;
    if let Some(dir) = flags.get("checkpoint-dir") {
        let store = match CheckpointStore::new(dir.clone(), 3) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open checkpoint dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let opts = CheckpointOptions {
            every: get("checkpoint-every", "1").parse().unwrap_or(1),
            resume: flags.contains_key("resume"),
            crash_after: flags.get("crash-after").and_then(|v| v.parse().ok()),
        };
        let noop = torchgt::obs::noop();
        let rec = recorder.as_ref().map(|(mem, _)| mem.clone() as RecorderHandle);
        let outcome =
            match run_with_checkpoints(trainer, &store, &opts, rec.as_ref().unwrap_or(&noop)) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("checkpointed run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
        if let Some(epoch) = outcome.resumed_from {
            println!("resumed from snapshot at epoch {epoch}");
        }
        outcome.stats.iter().for_each(print_epoch);
        interrupted = outcome.interrupted;
        if interrupted {
            println!(
                "simulated crash after epoch {} (snapshots kept in {dir})",
                trainer.epoch()
            );
        }
    } else {
        for _ in 0..epochs {
            print_epoch(&trainer.train_epoch());
        }
    }
    if report_rss {
        if let Some(bytes) = peak_rss_bytes() {
            println!("peak rss: {bytes} bytes");
            if let Some((mem, _)) = &recorder {
                mem.gauge_set("peak_rss_bytes", bytes as f64);
            }
        }
    }
    if let Some((mem, path)) = recorder {
        let report = mem.report();
        if let Err(e) = std::fs::write(&path, report.to_json_string_pretty()) {
            eprintln!("failed to write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    if interrupted {
        ExitCode::from(CRASH_EXIT)
    } else {
        ExitCode::SUCCESS
    }
}

/// `freeze`: train, calibrate, quantize, gate, write the TGTF artifact.
fn run_freeze(flags: &HashMap<String, String>) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let kernel_backend = match resolve_backend(flags) {
        Ok(name) => name,
        Err(code) => return code,
    };
    println!("kernel backend: {kernel_backend}");
    if let Err(code) = resolve_faults(flags) {
        return code;
    }
    let Some(m) = method(&get("method", "torchgt")) else {
        eprintln!("unknown method (torchgt|gp-flash|gp-sparse|gp-raw)");
        return ExitCode::from(2);
    };
    let scheme = match get("scheme", "int8").as_str() {
        "int8" => QuantScheme::Int8,
        "int16" => QuantScheme::Int16,
        other => {
            eprintln!("unknown scheme `{other}` (int8|int16)");
            return ExitCode::from(2);
        }
    };
    let epochs: usize = get("epochs", "2").parse().unwrap_or(2);
    // `--data-dir` trains on the sharded on-disk dataset and embeds its
    // manifest hash in the artifact; otherwise generate in memory as before.
    let (dataset, prov, manifest_hash, seed) = if let Some(dir) = flags.get("data-dir") {
        let man = match Manifest::load_dir(Path::new(dir)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot read dataset manifest in {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let dataset = match load_node_dataset(Path::new(dir)) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot load sharded dataset {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "loaded {}-like stand-in from {dir}: {} nodes, {} classes ({})",
            man.kind.spec().name,
            man.total_nodes,
            man.num_classes,
            man.hash()
        );
        let prov = DatasetRef { kind: kind_alias(man.kind).to_string(), scale: man.scale, seed: man.seed };
        let hash = man.hash();
        let seed: u64 = get("seed", "1").parse().unwrap_or(1);
        (dataset, prov, Some(hash), seed)
    } else {
        let (_, dataset, ds_name, scale, seed) = match generate_dataset(flags) {
            Ok(d) => d,
            Err(code) => return code,
        };
        (dataset, DatasetRef { kind: ds_name, scale, seed }, None, seed)
    };
    let mut trainer = match build_trainer(flags, &dataset, m, epochs, seed) {
        Ok(t) => t,
        Err(code) => return code,
    };
    print_epoch_header();
    for _ in 0..epochs {
        print_epoch(&trainer.train_epoch());
    }
    let calib = CalibSet::from_dataset(&dataset, get("calib", "256").parse().unwrap_or(256), seed);
    let opts =
        FreezeOptions { scheme, max_acc_drop: get("max-drop", "0.01").parse().unwrap_or(0.01) };
    let frozen = match trainer.freeze_with(&calib, opts) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("freeze rejected: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut frozen = torchgt::serve::freeze::with_dataset(frozen, prov);
    if let Some(hash) = manifest_hash {
        frozen = torchgt::serve::freeze::with_dataset_hash(frozen, hash);
    }
    let out = get("out", "model.tgtf");
    if let Err(e) = frozen.save(Path::new(&out)) {
        eprintln!("cannot write frozen model to {out}: {e}");
        return ExitCode::FAILURE;
    }
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "frozen: {out} ({bytes} bytes, {:?}, f32 acc {:.4} -> quantized acc {:.4})",
        frozen.scheme, frozen.f32_acc, frozen.frozen_acc
    );
    ExitCode::SUCCESS
}

/// `serve`: load a TGTF artifact, rebuild its graph, and answer Zipf query
/// traffic from concurrent load-generator threads through the micro-batching
/// serve loop.
fn run_serve(flags: &HashMap<String, String>) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let kernel_backend = match resolve_backend(flags) {
        Ok(name) => name,
        Err(code) => return code,
    };
    println!("kernel backend: {kernel_backend}");
    if let Err(code) = resolve_faults(flags) {
        return code;
    }
    let model_path = get("model", "model.tgtf");
    let frozen = match FrozenModel::load(Path::new(&model_path)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot load frozen model {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "loaded {model_path}: {} {:?} tensors, calibrated f32 acc {:.4} -> quantized acc {:.4}",
        frozen.tensors.len(),
        frozen.scheme,
        frozen.f32_acc,
        frozen.frozen_acc
    );

    // Dataset: explicit flags override the artifact's embedded provenance.
    let prov = frozen.dataset.clone();
    let ds_name =
        match flags.get("dataset").cloned().or_else(|| prov.as_ref().map(|d| d.kind.clone())) {
            Some(n) => n,
            None => {
                eprintln!(
                    "frozen model carries no dataset provenance; pass --dataset/--scale/--data-seed"
                );
                return ExitCode::from(2);
            }
        };
    let Some(kind) = dataset_kind(&ds_name) else {
        eprintln!("unknown dataset `{ds_name}` (try `torchgt_cli datasets`)");
        return ExitCode::from(2);
    };
    let scale: f64 = flags
        .get("scale")
        .and_then(|v| v.parse().ok())
        .or(prov.as_ref().map(|d| d.scale))
        .unwrap_or_else(|| (2000.0 / kind.spec().nodes as f64).min(1.0));
    let data_seed: u64 = flags
        .get("data-seed")
        .and_then(|v| v.parse().ok())
        .or(prov.as_ref().map(|d| d.seed))
        .unwrap_or(1);
    let dataset = kind.generate_node(scale, data_seed);
    println!(
        "serving {}-like stand-in: {} nodes, {} edges (scale {scale}, seed {data_seed})",
        kind.spec().name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges()
    );

    let cfg = ServeConfig {
        max_batch: get("max-batch", "8").parse().unwrap_or(8),
        latency_budget: Duration::from_millis(get("budget-ms", "50").parse().unwrap_or(50)),
        ctx_nodes: get("ctx", "32").parse().unwrap_or(32),
        shed_watermark: flags.get("shed-watermark").and_then(|v| v.parse().ok()),
        deadline: flags
            .get("deadline-ms")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis),
    };
    let mem = Arc::new(MemoryRecorder::default());
    mem.event(torchgt_obs::Event::backend(&kernel_backend));
    let mut serve_loop = match ServeLoop::new(
        &frozen,
        dataset.graph.clone(),
        dataset.features.clone(),
        cfg,
        mem.clone() as RecorderHandle,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start serve loop: {e}");
            return ExitCode::FAILURE;
        }
    };

    let queries: usize = get("queries", "256").parse().unwrap_or(256);
    let qps: f64 = get("qps", "500").parse().unwrap_or(500.0);
    let zipf_s: f64 = get("zipf", "1.1").parse().unwrap_or(1.1);
    let clients: usize = get("clients", "2").parse().unwrap_or(2).max(1);
    let queue: usize = get("queue", "64").parse().unwrap_or(64).max(1);
    println!(
        "offered load: {queries} queries at {qps} qps (Zipf s={zipf_s}) from {clients} client(s), queue cap {queue}"
    );

    let (tx, rx) = bounded::<Query>(queue);
    let (reply_tx, reply_rx) = unbounded::<ServeReply>();
    let server = std::thread::spawn(move || serve_loop.run(rx));
    let num_nodes = dataset.graph.num_nodes();
    // An installed serve-domain fault plan injects arrival bursts: when a
    // burst starts, the client fires `burst_len` queries back-to-back
    // without pacing, driving the queue into the shed watermark.
    let serve_faults = torchgt::faults::serve_plan();
    let mut senders = Vec::with_capacity(clients);
    for c in 0..clients {
        let tx = tx.clone();
        let reply_tx = reply_tx.clone();
        // Split the query count and pace each client so the aggregate
        // offered load is `qps`.
        let n = queries / clients + usize::from(c < queries % clients);
        let pace = Duration::from_secs_f64(clients as f64 / qps.max(1.0));
        let mut zipf = Zipf::new(num_nodes, zipf_s, data_seed ^ (c as u64 + 1));
        senders.push(std::thread::spawn(move || {
            let mut burst_remaining = 0usize;
            for i in 0..n {
                let node = zipf.sample() as u32;
                if tx.send(Query::new(node, reply_tx.clone())).is_err() {
                    break;
                }
                if burst_remaining > 0 {
                    burst_remaining -= 1;
                    continue;
                }
                if let Some((seed, plan)) = serve_faults {
                    if plan.burst_starts(seed, c as u64, i as u64) {
                        burst_remaining = plan.burst_len.saturating_sub(1);
                        continue;
                    }
                }
                std::thread::sleep(pace);
            }
        }));
    }
    drop(tx);
    drop(reply_tx);
    for h in senders {
        let _ = h.join();
    }
    let stats = match server.join() {
        Ok(s) => s,
        Err(_) => {
            eprintln!("serve loop panicked");
            return ExitCode::FAILURE;
        }
    };
    let mut answered = 0u64;
    let mut shed = 0u64;
    while let Ok(reply) = reply_rx.recv() {
        if reply.is_shed() {
            shed += 1;
        } else {
            answered += 1;
        }
    }

    println!(
        "served {} queries in {} batches ({answered} answered, {shed} shed replies delivered)",
        stats.served, stats.batches
    );
    println!(
        "latency: p50 {:.3} ms, p99 {:.3} ms, mean {:.3} ms, max {:.3} ms (accepted queries)",
        stats.p50_latency_ms, stats.p99_latency_ms, stats.mean_latency_ms, stats.max_latency_ms
    );
    println!(
        "throughput {:.1} qps, max queue depth {}, avg batch {:.2}",
        stats.throughput_qps, stats.max_queue_depth, stats.avg_batch_size
    );
    if stats.shed > 0 {
        println!(
            "shed {} ({} queue-full, {} expired, {} draining), handling mean {:.3} ms / max {:.3} ms",
            stats.shed,
            stats.shed_queue_full,
            stats.shed_expired,
            stats.shed_draining,
            stats.shed_handling_ms_mean,
            stats.shed_handling_ms_max
        );
    }
    if let Some(path) = flags.get("metrics") {
        let report = mem.report();
        if let Err(e) = std::fs::write(path, report.to_json_string_pretty()) {
            eprintln!("failed to write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    ExitCode::SUCCESS
}

/// The `train --rebalance` path: data-parallel training with the
/// closed-loop straggler rebalancer. `--slow-rank`/`--slow-delay-ms`
/// inject a deterministic straggler for the loop to measure and shed;
/// `--overlap` picks blocking vs handle-based async collectives — the
/// epoch losses are bit-identical either way.
fn run_rebalance(
    flags: &HashMap<String, String>,
    m: Method,
    dataset: &NodeDataset,
    epochs: usize,
    seed: u64,
) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let world: usize = get("world", "4").parse().unwrap_or(4).max(1);
    let slow_delay_ms: f64 = get("slow-delay-ms", "1").parse().unwrap_or(1.0);
    let plan = match flags.get("slow-rank").map(|s| s.parse::<usize>()) {
        Some(Ok(r)) if r < world => FaultPlan::slow(r, slow_delay_ms / 1e3),
        Some(_) => {
            eprintln!("--slow-rank wants a rank below --world {world}");
            return ExitCode::from(2);
        }
        // No explicit straggler: an installed fault plan's comm domain
        // (--faults comm.*) drives the fabric instead.
        None => match torchgt::faults::comm_spec() {
            Some((seed, spec)) => FaultPlan::from_spec(seed, &spec),
            None => FaultPlan::default(),
        },
    };
    let mut cfg = TrainConfig::new(m, get("seq-len", "512").parse().unwrap_or(512), epochs);
    cfg.lr = get("lr", "2e-3").parse().unwrap_or(2e-3);
    cfg.seed = seed;
    let gt = torchgt::model::GtConfig {
        feat_dim: dataset.feat_dim,
        hidden: get("hidden", "32").parse().unwrap_or(32),
        layers: get("layers", "2").parse().unwrap_or(2),
        heads: get("heads", "4").parse().unwrap_or(4),
        ffn_mult: 4,
        out_dim: dataset.num_classes,
        pe_dim: 8,
        // Dropout draws from a per-model RNG stream, so a rank's masks
        // would depend on how many tokens it owns — rebalancing would then
        // change the numerics. Zero keeps losses a pure function of the
        // data, bit-identical across assignments and overlap modes.
        dropout: 0.0,
    };
    if gt.heads == 0 || gt.hidden % gt.heads != 0 {
        eprintln!("invalid configuration: heads must divide hidden");
        return ExitCode::from(2);
    }
    let factory = move || -> Box<dyn SequenceModel> { Box::new(torchgt::model::Gt::new(gt, seed)) };
    let mem = Arc::new(MemoryRecorder::default());
    mem.event(torchgt_obs::Event::backend(torchgt_tensor::backend::active().name()));
    let recorder: RecorderHandle = mem.clone();
    println!(
        "rebalance run: world {world}, overlap {}{}",
        if torchgt::runtime::overlap_enabled() { "on" } else { "off" },
        plan.slow_rank
            .map(|r| format!(", rank {r} slowed {slow_delay_ms} ms/send"))
            .unwrap_or_default()
    );
    let out = torchgt::runtime::train_data_parallel_rebalance(
        dataset,
        cfg,
        world,
        factory,
        plan,
        Some(torchgt::runtime::RebalancePolicy::default()),
        recorder,
    );
    println!("{:>5} {:>9} {:>11} {:>10}", "epoch", "loss", "imbalance", "wall s");
    for (i, l) in out.stats.epoch_losses.iter().enumerate() {
        mem.epoch(torchgt_obs::EpochTrace {
            epoch: i,
            loss: *l as f64,
            sim_s: out.epoch_seconds[i],
            ..Default::default()
        });
        println!(
            "{:>5} {:>9.4} {:>11.3} {:>10.4}",
            i + 1,
            l,
            out.imbalance_history[i],
            out.epoch_seconds[i]
        );
    }
    println!(
        "{} rebalance(s), {} token(s) moved, final per-rank tokens {:?}",
        out.rebalances, out.moved_tokens, out.final_counts
    );
    if let Some(path) = flags.get("metrics") {
        mem.gauge_set("rebalances", out.rebalances as f64);
        mem.gauge_set("moved_tokens", out.moved_tokens as f64);
        mem.gauge_set("world", out.stats.world as f64);
        mem.gauge_set(
            "final_imbalance",
            out.imbalance_history.last().copied().unwrap_or(1.0),
        );
        let report = mem.report();
        if let Err(e) = std::fs::write(path, report.to_json_string_pretty()) {
            eprintln!("failed to write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    ExitCode::SUCCESS
}

/// The `train --elastic` path: data-parallel training over simulated ranks
/// that survives permanent rank loss by shrinking the group and resharding.
fn run_elastic(
    flags: &HashMap<String, String>,
    m: Method,
    dataset: &NodeDataset,
    epochs: usize,
    seed: u64,
) -> ExitCode {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let world: usize = get("world", "4").parse().unwrap_or(4).max(1);
    let lose: Option<RankLoss> = match flags.get("lose-rank") {
        Some(s) => match s.parse() {
            Ok(l) => Some(l),
            Err(e) => {
                eprintln!("bad --lose-rank (want <rank>@<epoch>): {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let mut cfg = TrainConfig::new(m, get("seq-len", "512").parse().unwrap_or(512), epochs);
    cfg.lr = get("lr", "2e-3").parse().unwrap_or(2e-3);
    cfg.seed = seed;
    cfg.recovery.allow_shrink = true;
    cfg.recovery.min_ranks = get("min-ranks", "1").parse().unwrap_or(1);
    cfg.recovery.max_retries = get("max-retries", "1").parse().unwrap_or(1);
    let gt = torchgt::model::GtConfig {
        feat_dim: dataset.feat_dim,
        hidden: get("hidden", "32").parse().unwrap_or(32),
        layers: get("layers", "2").parse().unwrap_or(2),
        heads: get("heads", "4").parse().unwrap_or(4),
        ffn_mult: 4,
        out_dim: dataset.num_classes,
        pe_dim: 8,
        dropout: 0.1,
    };
    if gt.heads == 0 || gt.hidden % gt.heads != 0 {
        eprintln!("invalid configuration: heads must divide hidden");
        return ExitCode::from(2);
    }
    let factory = move || -> Box<dyn SequenceModel> { Box::new(torchgt::model::Gt::new(gt, seed)) };
    let dir = get(
        "checkpoint-dir",
        &std::env::temp_dir()
            .join(format!("torchgt-elastic-{}", std::process::id()))
            .to_string_lossy(),
    );
    let store = match CheckpointStore::new(dir.clone(), 3) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open checkpoint dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mem = Arc::new(MemoryRecorder::default());
    mem.event(torchgt_obs::Event::backend(torchgt_tensor::backend::active().name()));
    let recorder: RecorderHandle = mem.clone();
    println!(
        "elastic run: world {world}, min ranks {}, max retries {} per generation{}",
        cfg.recovery.min_ranks,
        cfg.recovery.max_retries,
        lose.map(|l| format!(", scripted loss of rank {} at epoch {}", l.rank, l.epoch))
            .unwrap_or_default()
    );
    // The comm domain of an installed fault plan (--faults comm.*) drives
    // the elastic fabric; otherwise the fabric is fault-free.
    let plan = match torchgt::faults::comm_spec() {
        Some((fseed, spec)) => FaultPlan::from_spec(fseed, &spec),
        None => FaultPlan::default(),
    };
    let out = match train_data_parallel_elastic(
        dataset,
        cfg,
        world,
        factory,
        plan,
        lose,
        &store,
        recorder,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("elastic run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{:>5} {:>9}", "epoch", "loss");
    for (i, l) in out.stats.epoch_losses.iter().enumerate() {
        println!("{:>5} {:>9.4}", i + 1, l);
    }
    println!(
        "finished at world {} (started {}), generation {}, {} restart(s), {} shrink(s), lost ranks {:?}",
        out.final_world,
        out.initial_world,
        out.generation,
        out.restarts,
        out.shrinks,
        out.lost_ranks
    );
    if let Some(path) = flags.get("metrics") {
        mem.gauge_set("final_world", out.final_world as f64);
        mem.gauge_set("initial_world", out.initial_world as f64);
        mem.gauge_set("generation", out.generation as f64);
        mem.gauge_set("restarts", out.restarts as f64);
        mem.gauge_set("shrinks", out.shrinks as f64);
        let report = mem.report();
        if let Err(e) = std::fs::write(path, report.to_json_string_pretty()) {
            eprintln!("failed to write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    ExitCode::SUCCESS
}
