//! Workspace-root companion crate: hosts the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/`.
//! The library surface simply re-exports the `torchgt` facade.

pub use torchgt::prelude;
pub use torchgt::{ModelKind, TorchGtBuilder};
