#!/usr/bin/env bash
# Hermetic verification gate: the whole workspace must build, test, and
# compile its benches/examples with no network access. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build (offline) =="
cargo build --release --offline

echo "== test suite (offline, detected-best kernel backend, async collectives) =="
TORCHGT_OVERLAP=on cargo test -q --offline --workspace

echo "== test suite (offline, forced scalar kernel backend, blocking collectives) =="
# The whole suite must also pass with SIMD dispatch pinned off and the
# compute/communication overlap disabled: any kernel whose SIMD path
# diverges beyond the documented tolerances, or any training path whose
# numerics depend on the collective issue mode, fails here.
TORCHGT_BACKEND=scalar TORCHGT_OVERLAP=off cargo test -q --offline --workspace

echo "== benches + examples compile (offline) =="
cargo check --benches --examples --offline

echo "== release examples + bins build (offline) =="
cargo build --release --offline --examples --bins

echo "== metrics export smoke test =="
metrics="$(mktemp /tmp/torchgt_metrics.XXXXXX.json)"
scratch="$(mktemp -d /tmp/torchgt_verify.XXXXXX)"
trap 'rm -f "$metrics"; rm -rf "$scratch"' EXIT
./target/release/torchgt_cli train --dataset arxiv --method torchgt \
    --epochs 2 --scale 0.002 --metrics "$metrics" >/dev/null
grep -q '"all_to_all"' "$metrics"
grep -q '"train_epoch/forward"' "$metrics"
echo "metrics smoke: OK"

echo "== allocation-free steady state =="
# The alloc_bytes gauge holds the LAST training step's fresh arena
# allocations. Once the workspace pools are warm every shape is recycled, so
# a steady-state step must stay under a small fixed budget (64 KiB absorbs a
# β_thre reformation changing per-edge buffer lengths mid-run; the common
# case is exactly 0).
alloc_budget=65536
alloc_bytes="$(grep -A1 '"name": "alloc_bytes"' "$metrics" \
    | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*' | head -1)"
[ -n "$alloc_bytes" ] || { echo "alloc_bytes gauge missing from metrics"; exit 1; }
awk -v a="$alloc_bytes" -v b="$alloc_budget" 'BEGIN { exit !(a <= b) }' \
    || { echo "steady-state step allocated $alloc_bytes bytes (> $alloc_budget)"; exit 1; }
grep -q '"arena_reuse_hits"' "$metrics" \
    || { echo "arena_reuse_hits gauge missing from metrics"; exit 1; }
echo "allocation-free steady state: OK (alloc_bytes=$alloc_bytes)"

echo "== crash-resume smoke test =="
# Crash after 2 of 4 epochs (exit code 3), resume from the snapshot, and
# require the stitched per-epoch losses to equal an uninterrupted run's
# exactly. Only `EpochTrace` records carry a "loss" key, so grepping the
# pretty-printed metrics yields the per-epoch losses in order.
train_flags=(--dataset arxiv --method torchgt --epochs 4 --scale 0.002
             --seq-len 128 --hidden 16 --layers 2 --heads 2 --seed 7)
set +e
./target/release/torchgt_cli train "${train_flags[@]}" \
    --checkpoint-dir "$scratch/ckpts" --checkpoint-every 1 --crash-after 2 \
    --metrics "$scratch/crashed.json" >/dev/null
code=$?
set -e
[ "$code" -eq 3 ] || { echo "expected crash exit code 3, got $code"; exit 1; }
./target/release/torchgt_cli train "${train_flags[@]}" \
    --checkpoint-dir "$scratch/ckpts" --resume \
    --metrics "$scratch/resumed.json" >/dev/null
./target/release/torchgt_cli train "${train_flags[@]}" \
    --metrics "$scratch/clean.json" >/dev/null
losses() { grep -o '"loss": [^,]*' "$1"; }
stitched="$(losses "$scratch/crashed.json"; losses "$scratch/resumed.json")"
clean="$(losses "$scratch/clean.json")"
[ "$(echo "$clean" | wc -l)" -eq 4 ] || { echo "expected 4 epochs"; exit 1; }
if [ "$stitched" != "$clean" ]; then
    echo "crash-resume losses diverged from the uninterrupted run:"
    diff <(echo "$stitched") <(echo "$clean") || true
    exit 1
fi
echo "crash-resume smoke: OK"

echo "== elastic degraded-mode smoke test =="
# Lose global rank 1 for good at epoch 1 of a 4-rank elastic run: the
# escalation ladder must shrink the group and finish at P-1 with exit 0,
# the metrics JSON must record the membership transition, and the
# final_world gauge must equal 3.
./target/release/torchgt_cli train --dataset arxiv --method gp-sparse \
    --elastic --world 4 --min-ranks 2 --lose-rank 1@1 \
    --epochs 3 --scale 0.002 --seq-len 128 --seed 7 \
    --checkpoint-dir "$scratch/elastic-ckpts" \
    --metrics "$scratch/elastic.json" >/dev/null \
    || { echo "elastic run failed (exit $?)"; exit 1; }
grep -q '"group_shrunk"' "$scratch/elastic.json" \
    || { echo "group_shrunk event missing from metrics"; exit 1; }
grep -q '"reshard"' "$scratch/elastic.json" \
    || { echo "reshard event missing from metrics"; exit 1; }
final_world="$(grep -A1 '"name": "final_world"' "$scratch/elastic.json" \
    | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*' | head -1)"
[ -n "$final_world" ] || { echo "final_world gauge missing from metrics"; exit 1; }
awk -v w="$final_world" 'BEGIN { exit !(w == 3) }' \
    || { echo "expected final world 3 after losing one of 4 ranks, got $final_world"; exit 1; }
echo "elastic smoke: OK (final_world=$final_world)"

echo "== overlap & rebalance gate =="
# The async-collective toggle must be a pure wall-clock optimisation: the
# same closed-loop rebalance run under a skewed rank (2 ms per send, ~3x
# a token's compute at this scale) must produce bit-identical loss
# histories with --overlap off and on, fire at least one REBALANCE event,
# and predict a post-reshard imbalance below the measured pre-reshard one.
rebal_flags=(--dataset arxiv --method gp-sparse --epochs 5 --scale 0.01
             --seq-len 64 --hidden 32 --layers 2 --heads 4 --seed 7
             --rebalance --world 3 --slow-rank 1 --slow-delay-ms 2)
./target/release/torchgt_cli train "${rebal_flags[@]}" --overlap off \
    --metrics "$scratch/rebal-off.json" >/dev/null \
    || { echo "rebalance run (overlap off) failed (exit $?)"; exit 1; }
./target/release/torchgt_cli train "${rebal_flags[@]}" --overlap on \
    --metrics "$scratch/rebal-on.json" >/dev/null \
    || { echo "rebalance run (overlap on) failed (exit $?)"; exit 1; }
if [ "$(losses "$scratch/rebal-off.json")" != "$(losses "$scratch/rebal-on.json")" ]; then
    echo "loss histories diverged between --overlap off and on:"
    diff <(losses "$scratch/rebal-off.json") <(losses "$scratch/rebal-on.json") || true
    exit 1
fi
grep -q '"kind": "rebalance"' "$scratch/rebal-on.json" \
    || { echo "no rebalance event fired under a skewed rank"; exit 1; }
awk -F'[:,]' '
    /"imbalance_before":/ { pre = $2 + 0 }
    /"imbalance_after":/ { rows += 1; if ($2 + 0 >= pre) bad = 1 }
    END { exit !(rows >= 1 && !bad) }' "$scratch/rebal-on.json" \
    || { echo "rebalance did not reduce the predicted imbalance"; exit 1; }
echo "overlap & rebalance gate: OK (bit-identical losses, imbalance reduced)"

echo "== kernel backend parity gate =="
# Train the same configuration under the scalar backend and the detected
# best one; the per-epoch loss histories must agree within 2% relative
# (SIMD reduction reorder perturbs trajectories by ULPs, not semantics).
parity_flags=(--dataset arxiv --method torchgt --epochs 3 --scale 0.002
              --seq-len 128 --hidden 16 --layers 2 --heads 2 --seed 7)
./target/release/torchgt_cli train "${parity_flags[@]}" --backend scalar \
    --metrics "$scratch/scalar.json" > "$scratch/scalar.out"
grep -q "kernel backend: scalar" "$scratch/scalar.out" \
    || { echo "CLI did not announce the scalar backend"; exit 1; }
./target/release/torchgt_cli train "${parity_flags[@]}" \
    --metrics "$scratch/best.json" > "$scratch/best.out"
best="$(grep -o 'kernel backend: .*' "$scratch/best.out" | cut -d' ' -f3)"
[ -n "$best" ] || { echo "CLI did not announce the detected backend"; exit 1; }
grep -q '"backend"' "$scratch/best.json" \
    || { echo "backend event missing from metrics"; exit 1; }
paste <(losses "$scratch/scalar.json" | grep -o '[0-9.e-]*$') \
      <(losses "$scratch/best.json"   | grep -o '[0-9.e-]*$') \
    | awk '{ d = $1 - $2; if (d < 0) d = -d; tol = 0.02 * ($1 < 0 ? -$1 : $1);
             if (tol < 0.002) tol = 0.002;
             if (d > tol) { printf "epoch %d: scalar loss %s vs simd loss %s\n", NR, $1, $2; exit 1 } }' \
    || { echo "loss histories diverged between scalar and $best backends"; exit 1; }
echo "backend parity gate: OK (scalar vs $best, 3 epochs)"

echo "== SIMD speedup bench =="
cargo bench -q --offline -p torchgt-bench --bench simd_speedup >/dev/null
bench_json="target/experiments/BENCH_simd.json"
[ -f "$bench_json" ] || { echo "$bench_json missing"; exit 1; }
if [ "$best" != "scalar" ]; then
    # At least one matmul or softmax kernel must clear 2x under some SIMD
    # backend on SIMD-capable hardware. The JSON is pretty-printed, so each
    # row's "kernel" line precedes its "speedup" line.
    awk -F'"' '/"kernel":/ { kernel = $4 }
        /"speedup":/ && (kernel ~ /matmul/ || kernel ~ /softmax/) {
            split($0, f, ":"); if (f[2] + 0 >= 2.0) found = 1 }
        END { exit !found }' "$bench_json" \
        || { echo "no >=2x matmul/softmax speedup recorded in $bench_json"; exit 1; }
    echo "SIMD speedup bench: OK (>=2x on a matmul/softmax kernel)"
else
    echo "SIMD speedup bench: OK (scalar-only CPU, speedup gate skipped)"
fi

echo "== quantized serving gate =="
# Freeze a short CLI-trained model into a TGTF artifact (the freeze itself
# enforces the <=1% quantized-accuracy gate), then serve Zipf traffic from
# it and require the serving gauges plus a p99 within the SLO.
serve_budget_ms=25
serve_slo_ms=50
./target/release/torchgt_cli freeze --dataset arxiv --method torchgt \
    --epochs 2 --scale 0.002 --seq-len 128 --hidden 16 --layers 2 --heads 2 \
    --seed 7 --out "$scratch/model.tgtf" >/dev/null \
    || { echo "freeze failed (exit $?)"; exit 1; }
[ -f "$scratch/model.tgtf" ] || { echo "TGTF artifact missing"; exit 1; }
./target/release/torchgt_cli serve --model "$scratch/model.tgtf" \
    --queries 128 --qps 500 --budget-ms "$serve_budget_ms" \
    --metrics "$scratch/serve.json" > "$scratch/serve.out" \
    || { echo "serve failed (exit $?)"; exit 1; }
grep -q "served 128 queries" "$scratch/serve.out" \
    || { echo "serve did not answer every query"; exit 1; }
for gauge in p99_latency_ms queue_depth throughput_qps; do
    grep -q "\"name\": \"$gauge\"" "$scratch/serve.json" \
        || { echo "$gauge gauge missing from serve metrics"; exit 1; }
done
p99="$(grep -A1 '"name": "p99_latency_ms"' "$scratch/serve.json" \
    | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*$' | head -1)"
[ -n "$p99" ] || { echo "p99_latency_ms gauge empty"; exit 1; }
awk -v p="$p99" -v slo="$serve_slo_ms" 'BEGIN { exit !(p <= slo) }' \
    || { echo "serve p99 ${p99} ms exceeds the ${serve_slo_ms} ms SLO"; exit 1; }
echo "quantized serving gate: OK (p99=${p99} ms at 500 qps)"

echo "== serve load bench (SLO assert) =="
# The bench itself asserts p99 <= SLO at the stated QPS; the JSON row must
# also record slo_met=true for every offered rate at or below it.
cargo bench -q --offline -p torchgt-bench --bench serve_load >/dev/null
serve_json="target/experiments/BENCH_serve.json"
[ -f "$serve_json" ] || { echo "$serve_json missing"; exit 1; }
awk -F'[:,]' '
    /"offered_qps":/ { qps = $2 + 0 }
    /"slo_met":/ { if (qps <= 500 && $2 !~ /true/) bad = 1; rows += 1 }
    END { exit !(rows >= 3 && !bad) }' "$serve_json" \
    || { echo "SLO missed at or below the stated QPS in $serve_json"; exit 1; }
echo "serve load bench: OK (slo_met at <=500 qps)"

echo "== out-of-core streaming gate =="
# Shard a papers100M-scale stand-in to disk, stream-train it, and require:
# (1) a genuinely sharded dataset, (2) peak RSS strictly below the on-disk
# dataset size (the out-of-core claim), (3) epoch losses bit-identical to
# the same configuration trained fully in memory, (4) the loader's prefetch
# gauges present and nonzero in the metrics.
data_flags=(--method gp-sparse --epochs 2 --seq-len 128 --hidden 16
            --layers 2 --heads 2 --seed 7)
./target/release/torchgt_cli datagen --dataset papers100m --scale 0.002 \
    --seed 7 --out "$scratch/shards" --shard-nodes 16384 > "$scratch/datagen.out" \
    || { echo "datagen failed (exit $?)"; exit 1; }
grep -q 'manifest hash: tgds-' "$scratch/datagen.out" \
    || { echo "datagen did not announce a manifest hash"; exit 1; }
shard_count="$(ls "$scratch/shards"/shard-*.tgds | wc -l)"
[ "$shard_count" -ge 2 ] || { echo "expected >=2 shards, got $shard_count"; exit 1; }
dataset_bytes="$(du -sb "$scratch/shards" | cut -f1)"
./target/release/torchgt_cli train "${data_flags[@]}" \
    --data-dir "$scratch/shards" \
    --metrics "$scratch/stream.json" > "$scratch/stream.out" \
    || { echo "out-of-core train failed (exit $?)"; exit 1; }
peak_rss="$(grep -o 'peak rss: [0-9]*' "$scratch/stream.out" | grep -o '[0-9]*')"
[ -n "$peak_rss" ] || { echo "streaming train did not self-report peak RSS"; exit 1; }
awk -v r="$peak_rss" -v d="$dataset_bytes" 'BEGIN { exit !(r < d) }' \
    || { echo "peak RSS $peak_rss >= dataset size $dataset_bytes: not out-of-core"; exit 1; }
./target/release/torchgt_cli train "${data_flags[@]}" \
    --dataset papers100m --scale 0.002 \
    --metrics "$scratch/inmem.json" >/dev/null \
    || { echo "in-memory parity train failed (exit $?)"; exit 1; }
if [ "$(losses "$scratch/stream.json")" != "$(losses "$scratch/inmem.json")" ]; then
    echo "streaming losses diverged from the in-memory run:"
    diff <(losses "$scratch/stream.json") <(losses "$scratch/inmem.json") || true
    exit 1
fi
for gauge in prefetch_stall_ms shard_bytes_read prefetch_buffer_depth peak_rss_bytes; do
    grep -q "\"name\": \"$gauge\"" "$scratch/stream.json" \
        || { echo "$gauge gauge missing from streaming metrics"; exit 1; }
done
stall_ms="$(grep -A1 '"name": "prefetch_stall_ms"' "$scratch/stream.json" \
    | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*$' | head -1)"
awk -v s="$stall_ms" 'BEGIN { exit !(s > 0) }' \
    || { echo "prefetch_stall_ms gauge is zero — loader gauges not wired"; exit 1; }
bytes_read="$(grep -A1 '"name": "shard_bytes_read"' "$scratch/stream.json" \
    | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*$' | head -1)"
awk -v b="$bytes_read" 'BEGIN { exit !(b > 0) }' \
    || { echo "shard_bytes_read gauge is zero"; exit 1; }
echo "out-of-core gate: OK ($shard_count shards, peak RSS $peak_rss < $dataset_bytes bytes, losses bit-identical)"

echo "== dataset identity gate =="
# A checkpoint taken against one sharded dataset must refuse to resume
# against a different one — and the --allow-dataset-mismatch escape hatch
# must work.
id_flags=(--method gp-sparse --epochs 2 --seq-len 128 --hidden 16
          --layers 2 --heads 2 --seed 7)
./target/release/torchgt_cli datagen --dataset arxiv --scale 0.004 --seed 7 \
    --out "$scratch/ds-a" --shard-nodes 300 >/dev/null
./target/release/torchgt_cli datagen --dataset arxiv --scale 0.004 --seed 8 \
    --out "$scratch/ds-b" --shard-nodes 300 >/dev/null
set +e
./target/release/torchgt_cli train "${id_flags[@]}" --data-dir "$scratch/ds-a" \
    --checkpoint-dir "$scratch/id-ckpts" --checkpoint-every 1 --crash-after 1 >/dev/null
code=$?
set -e
[ "$code" -eq 3 ] || { echo "expected crash exit code 3, got $code"; exit 1; }
set +e
./target/release/torchgt_cli train "${id_flags[@]}" --data-dir "$scratch/ds-b" \
    --checkpoint-dir "$scratch/id-ckpts" --resume > /dev/null 2> "$scratch/id.err"
code=$?
set -e
[ "$code" -ne 0 ] || { echo "resume against a different dataset must fail"; exit 1; }
grep -q 'allow-dataset-mismatch' "$scratch/id.err" \
    || { echo "mismatch error does not name the override flag"; exit 1; }
./target/release/torchgt_cli train "${id_flags[@]}" --data-dir "$scratch/ds-b" \
    --checkpoint-dir "$scratch/id-ckpts" --resume --allow-dataset-mismatch >/dev/null \
    || { echo "--allow-dataset-mismatch resume failed (exit $?)"; exit 1; }
echo "dataset identity gate: OK (refused mismatched resume, override works)"

echo "== overlap/rebalance bench =="
# The bench asserts internally: bit-identical losses across all four
# toggle combinations, overlap-on faster than overlap-off under skew, and
# the closed loop faster than the static assignment on tail epochs. The
# gate additionally requires the recorded speedups in the JSON.
cargo bench -q --offline -p torchgt-bench --bench overlap_rebalance >/dev/null
overlap_json="target/experiments/BENCH_overlap.json"
[ -f "$overlap_json" ] || { echo "$overlap_json missing"; exit 1; }
awk -F'[:,]' '
    /"overlap_speedup":/ { if ($2 + 0 > 1.0) o = 1 }
    /"rebalance_tail_speedup":/ { if ($2 + 0 > 1.0) r = 1 }
    END { exit !(o && r) }' "$overlap_json" \
    || { echo "no overlap/rebalance speedup recorded in $overlap_json"; exit 1; }
echo "overlap/rebalance bench: OK"

echo "== data loader bench =="
# The bench asserts exact per-epoch byte accounting internally; the gate
# requires the JSON rows with a sane stall fraction.
cargo bench -q --offline -p torchgt-bench --bench data_loader >/dev/null
data_json="target/experiments/BENCH_data.json"
[ -f "$data_json" ] || { echo "$data_json missing"; exit 1; }
awk -F'[:,]' '
    /"stall_fraction":/ { rows += 1; if ($2 + 0 < 0 || $2 + 0 > 1) bad = 1 }
    END { exit !(rows >= 2 && !bad) }' "$data_json" \
    || { echo "bad or missing stall_fraction rows in $data_json"; exit 1; }
echo "data loader bench: OK"

echo "== chaos gate: pipeline under a seeded multi-domain fault plan =="
# Self-healing must make injected faults invisible to the numbers: the same
# pipeline under a seeded disk-fault plan must exit 0, produce bit-identical
# losses to the fault-free run, and surface every recovery action in the
# metrics. The chaos scratch dir is a FIXED path on purpose — disk fault
# decisions are keyed by (seed, path, per-path op counter), so a stable
# path pins the decision stream run-to-run.
chaos="/tmp/torchgt-chaos-gate"
rm -rf "$chaos"; mkdir -p "$chaos"
chaos_plan="seed=7,disk.read_err=0.3,disk.torn=0.02,disk.flip=0.02,disk.delay=0.1@0.2ms"
chaos_flags=(--method gp-sparse --epochs 4 --seq-len 128 --hidden 16
             --layers 2 --heads 2 --seed 7)
./target/release/torchgt_cli datagen --dataset arxiv --scale 0.004 --seed 7 \
    --out "$chaos/shards" --shard-nodes 250 --faults "$chaos_plan" >/dev/null \
    || { echo "datagen under faults failed (exit $?)"; exit 1; }
./target/release/torchgt_cli train "${chaos_flags[@]}" --data-dir "$chaos/shards" \
    --metrics "$chaos/clean.json" >/dev/null \
    || { echo "fault-free baseline failed (exit $?)"; exit 1; }
./target/release/torchgt_cli train "${chaos_flags[@]}" --data-dir "$chaos/shards" \
    --checkpoint-dir "$chaos/ckpts" --checkpoint-every 1 \
    --faults "$chaos_plan" --metrics "$chaos/faulted.json" >/dev/null \
    || { echo "faulted train failed (exit $?)"; exit 1; }
if [ "$(losses "$chaos/faulted.json")" != "$(losses "$chaos/clean.json")" ]; then
    echo "healed losses diverged from the fault-free run:"
    diff <(losses "$chaos/faulted.json") <(losses "$chaos/clean.json") || true
    exit 1
fi
grep -q '"kind": "io_retry"' "$chaos/faulted.json" \
    || { echo "no io_retry event recorded under the fault plan"; exit 1; }
# Corrupt the newest snapshot with a byte flip; resume must quarantine it,
# fall back one epoch, and retrain to the same final loss.
newest="$(ls "$chaos/ckpts"/snapshot-*.tgtck | sort | tail -1)"
printf '\x5a' | dd of="$newest" bs=1 seek=100 conv=notrunc status=none
./target/release/torchgt_cli train "${chaos_flags[@]}" --data-dir "$chaos/shards" \
    --checkpoint-dir "$chaos/ckpts" --resume \
    --metrics "$chaos/resumed.json" >/dev/null \
    || { echo "resume from a corrupt newest snapshot failed (exit $?)"; exit 1; }
grep -q '"kind": "snapshot_fallback"' "$chaos/resumed.json" \
    || { echo "no snapshot_fallback event recorded on corrupt resume"; exit 1; }
ls "$chaos/ckpts"/*.quarantined >/dev/null 2>&1 \
    || { echo "corrupt snapshot was not quarantined"; exit 1; }
[ "$(losses "$chaos/resumed.json" | tail -1)" = "$(losses "$chaos/clean.json" | tail -1)" ] \
    || { echo "resumed final-epoch loss diverged from the fault-free run"; exit 1; }
echo "chaos gate: OK (losses bit-identical under faults, fallback + quarantine fired)"

echo "== serve shed gate: SLO holds with load shedding active =="
# Freeze under the disk plan (artifact write + verify read heal), then serve
# a burst-injected overload with a low shed watermark: the run must shed,
# every shed must surface as a load_shed event plus the queries_shed
# counter, and the accepted-query p99 must still meet the SLO.
serve_chaos="seed=7,disk.read_err=0.25,disk.torn=0.1,disk.flip=0.1,serve.slow=0.6@2ms,serve.burst=0.3@8"
./target/release/torchgt_cli freeze --dataset arxiv --method torchgt \
    --epochs 2 --scale 0.002 --seq-len 128 --hidden 16 --layers 2 --heads 2 \
    --seed 7 --out "$chaos/model.tgtf" --faults "$chaos_plan" >/dev/null \
    || { echo "freeze under faults failed (exit $?)"; exit 1; }
./target/release/torchgt_cli serve --model "$chaos/model.tgtf" \
    --queries 256 --qps 4000 --budget-ms 5 --shed-watermark 2 \
    --faults "$serve_chaos" --metrics "$chaos/serve.json" > "$chaos/serve.out" \
    || { echo "serve under overload failed (exit $?)"; exit 1; }
grep -q '"kind": "load_shed"' "$chaos/serve.json" \
    || { echo "no load_shed event recorded under overload"; exit 1; }
shed_n="$(grep -A1 '"name": "queries_shed"' "$chaos/serve.json" \
    | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*$' | head -1)"
[ -n "$shed_n" ] || { echo "queries_shed counter missing from serve metrics"; exit 1; }
awk -v s="$shed_n" 'BEGIN { exit !(s >= 1) }' \
    || { echo "expected >=1 shed query under overload, got $shed_n"; exit 1; }
shed_p99="$(grep -A1 '"name": "p99_latency_ms"' "$chaos/serve.json" \
    | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*$' | head -1)"
awk -v p="$shed_p99" -v slo="$serve_slo_ms" 'BEGIN { exit !(p <= slo) }' \
    || { echo "accepted p99 ${shed_p99} ms exceeds the ${serve_slo_ms} ms SLO while shedding"; exit 1; }
rm -rf "$chaos"
echo "serve shed gate: OK (shed=$shed_n, accepted p99=${shed_p99} ms)"

echo "== serve overload bench =="
# The bench asserts internally: goodput at 2x the saturated load within 10%
# of the plateau, and shed replies issued in under a millisecond. The gate
# re-checks the recorded JSON.
cargo bench -q --offline -p torchgt-bench --bench serve_overload >/dev/null
overload_json="target/experiments/BENCH_overload.json"
[ -f "$overload_json" ] || { echo "$overload_json missing"; exit 1; }
awk -F'[:,]' '
    /"plateau_goodput_qps":/ { plateau = $2 + 0 }
    /"overload_goodput_qps":/ { over = $2 + 0 }
    /"goodput_floor":/ { floor = $2 + 0 }
    /"shed":/ { shed += $2 + 0 }
    END { exit !(plateau > 0 && over >= floor * plateau && shed >= 1) }' "$overload_json" \
    || { echo "overload goodput or shed accounting failed in $overload_json"; exit 1; }
echo "serve overload bench: OK"

echo "verify: OK"
