#!/usr/bin/env bash
# Hermetic verification gate: the whole workspace must build, test, and
# compile its benches/examples with no network access. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build (offline) =="
cargo build --release --offline

echo "== test suite (offline) =="
cargo test -q --offline --workspace

echo "== benches + examples compile (offline) =="
cargo check --benches --examples --offline

echo "== release examples + bins build (offline) =="
cargo build --release --offline --examples --bins

echo "== metrics export smoke test =="
metrics="$(mktemp /tmp/torchgt_metrics.XXXXXX.json)"
scratch="$(mktemp -d /tmp/torchgt_verify.XXXXXX)"
trap 'rm -f "$metrics"; rm -rf "$scratch"' EXIT
./target/release/torchgt_cli train --dataset arxiv --method torchgt \
    --epochs 2 --scale 0.002 --metrics "$metrics" >/dev/null
grep -q '"all_to_all"' "$metrics"
grep -q '"train_epoch/forward"' "$metrics"
echo "metrics smoke: OK"

echo "== allocation-free steady state =="
# The alloc_bytes gauge holds the LAST training step's fresh arena
# allocations. Once the workspace pools are warm every shape is recycled, so
# a steady-state step must stay under a small fixed budget (64 KiB absorbs a
# β_thre reformation changing per-edge buffer lengths mid-run; the common
# case is exactly 0).
alloc_budget=65536
alloc_bytes="$(grep -A1 '"name": "alloc_bytes"' "$metrics" \
    | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*' | head -1)"
[ -n "$alloc_bytes" ] || { echo "alloc_bytes gauge missing from metrics"; exit 1; }
awk -v a="$alloc_bytes" -v b="$alloc_budget" 'BEGIN { exit !(a <= b) }' \
    || { echo "steady-state step allocated $alloc_bytes bytes (> $alloc_budget)"; exit 1; }
grep -q '"arena_reuse_hits"' "$metrics" \
    || { echo "arena_reuse_hits gauge missing from metrics"; exit 1; }
echo "allocation-free steady state: OK (alloc_bytes=$alloc_bytes)"

echo "== crash-resume smoke test =="
# Crash after 2 of 4 epochs (exit code 3), resume from the snapshot, and
# require the stitched per-epoch losses to equal an uninterrupted run's
# exactly. Only `EpochTrace` records carry a "loss" key, so grepping the
# pretty-printed metrics yields the per-epoch losses in order.
train_flags=(--dataset arxiv --method torchgt --epochs 4 --scale 0.002
             --seq-len 128 --hidden 16 --layers 2 --heads 2 --seed 7)
set +e
./target/release/torchgt_cli train "${train_flags[@]}" \
    --checkpoint-dir "$scratch/ckpts" --checkpoint-every 1 --crash-after 2 \
    --metrics "$scratch/crashed.json" >/dev/null
code=$?
set -e
[ "$code" -eq 3 ] || { echo "expected crash exit code 3, got $code"; exit 1; }
./target/release/torchgt_cli train "${train_flags[@]}" \
    --checkpoint-dir "$scratch/ckpts" --resume \
    --metrics "$scratch/resumed.json" >/dev/null
./target/release/torchgt_cli train "${train_flags[@]}" \
    --metrics "$scratch/clean.json" >/dev/null
losses() { grep -o '"loss": [^,]*' "$1"; }
stitched="$(losses "$scratch/crashed.json"; losses "$scratch/resumed.json")"
clean="$(losses "$scratch/clean.json")"
[ "$(echo "$clean" | wc -l)" -eq 4 ] || { echo "expected 4 epochs"; exit 1; }
if [ "$stitched" != "$clean" ]; then
    echo "crash-resume losses diverged from the uninterrupted run:"
    diff <(echo "$stitched") <(echo "$clean") || true
    exit 1
fi
echo "crash-resume smoke: OK"

echo "== elastic degraded-mode smoke test =="
# Lose global rank 1 for good at epoch 1 of a 4-rank elastic run: the
# escalation ladder must shrink the group and finish at P-1 with exit 0,
# the metrics JSON must record the membership transition, and the
# final_world gauge must equal 3.
./target/release/torchgt_cli train --dataset arxiv --method gp-sparse \
    --elastic --world 4 --min-ranks 2 --lose-rank 1@1 \
    --epochs 3 --scale 0.002 --seq-len 128 --seed 7 \
    --checkpoint-dir "$scratch/elastic-ckpts" \
    --metrics "$scratch/elastic.json" >/dev/null \
    || { echo "elastic run failed (exit $?)"; exit 1; }
grep -q '"group_shrunk"' "$scratch/elastic.json" \
    || { echo "group_shrunk event missing from metrics"; exit 1; }
grep -q '"reshard"' "$scratch/elastic.json" \
    || { echo "reshard event missing from metrics"; exit 1; }
final_world="$(grep -A1 '"name": "final_world"' "$scratch/elastic.json" \
    | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*' | head -1)"
[ -n "$final_world" ] || { echo "final_world gauge missing from metrics"; exit 1; }
awk -v w="$final_world" 'BEGIN { exit !(w == 3) }' \
    || { echo "expected final world 3 after losing one of 4 ranks, got $final_world"; exit 1; }
echo "elastic smoke: OK (final_world=$final_world)"

echo "verify: OK"
