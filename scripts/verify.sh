#!/usr/bin/env bash
# Hermetic verification gate: the whole workspace must build, test, and
# compile its benches/examples with no network access. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build (offline) =="
cargo build --release --offline

echo "== test suite (offline) =="
cargo test -q --offline --workspace

echo "== benches + examples compile (offline) =="
cargo check --benches --examples --offline

echo "== release examples + bins build (offline) =="
cargo build --release --offline --examples --bins

echo "== metrics export smoke test =="
metrics="$(mktemp /tmp/torchgt_metrics.XXXXXX.json)"
trap 'rm -f "$metrics"' EXIT
./target/release/torchgt_cli train --dataset arxiv --method torchgt \
    --epochs 2 --scale 0.002 --metrics "$metrics" >/dev/null
grep -q '"all_to_all"' "$metrics"
grep -q '"train_epoch/forward"' "$metrics"
echo "metrics smoke: OK"

echo "verify: OK"
