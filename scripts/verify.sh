#!/usr/bin/env bash
# Hermetic verification gate: the whole workspace must build, test, and
# compile its benches/examples with no network access. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build (offline) =="
cargo build --release --offline

echo "== test suite (offline) =="
cargo test -q --offline --workspace

echo "== benches + examples compile (offline) =="
cargo check --benches --examples --offline

echo "verify: OK"
