//! Execution-engine invariants: output-parameter kernels must be
//! bit-identical to their allocating wrappers even into recycled (dirty)
//! buffers, zero-copy column views must read exactly what a copying slice
//! reads, and a trainer sharing one warm workspace across every step must
//! reproduce the allocating code path's loss history bit-for-bit.

use torchgt::graph::spd::spd_matrix;
use torchgt::model::{loss, Gt, GtConfig, Pattern, SequenceBatch, SequenceModel};
use torchgt::runtime::{GraphTrainer, Method, TrainConfig};
use torchgt::sparse::topology_mask;
use torchgt::tensor::{init, ops, MatRef, Tensor, Workspace};
use torchgt_compat::proptest::prelude::*;

fn arb_tensor(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> impl Strategy<Value = Tensor> {
    (rows, cols, 0u64..10_000)
        .prop_map(|(r, c, seed)| init::normal(r, c, 0.0, 1.0, seed.wrapping_add(1)))
}

/// A deliberately dirty output buffer: recycled arena tensors are NOT
/// zeroed by the kernels' contract — each `_into` kernel must fully define
/// its output regardless of what the buffer held before.
fn dirty(rows: usize, cols: usize) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    for (i, v) in t.data_mut().iter_mut().enumerate() {
        *v = f32::from_bits(0x7fc0_0000 ^ (i as u32).wrapping_mul(2654435761)); // NaN-ish garbage
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `matmul_into` into a dirty buffer equals the allocating `matmul`.
    #[test]
    fn matmul_into_matches_wrapper(a in arb_tensor(1..7, 1..7), seed in 0u64..1000) {
        let b = init::normal(a.cols(), 5, 0.0, 1.0, seed.wrapping_add(7));
        let mut out = dirty(a.rows(), b.cols());
        ops::matmul_into(&a, &b, &mut out);
        let want = ops::matmul(&a, &b);
        prop_assert_eq!(out.data(), want.data());
    }

    /// `matmul_bt_into` (A·Bᵀ) into a dirty buffer equals `matmul_bt`.
    #[test]
    fn matmul_bt_into_matches_wrapper(a in arb_tensor(1..7, 1..7), seed in 0u64..1000) {
        let b = init::normal(4, a.cols(), 0.0, 1.0, seed.wrapping_add(9));
        let mut out = dirty(a.rows(), b.rows());
        ops::matmul_bt_into(&a, &b, &mut out);
        let want = ops::matmul_bt(&a, &b);
        prop_assert_eq!(out.data(), want.data());
    }

    /// `matmul_at_into` (Aᵀ·B) into a dirty buffer equals `matmul_at`.
    #[test]
    fn matmul_at_into_matches_wrapper(a in arb_tensor(1..7, 1..7), seed in 0u64..1000) {
        let b = init::normal(a.rows(), 3, 0.0, 1.0, seed.wrapping_add(13));
        let mut out = dirty(a.cols(), b.cols());
        ops::matmul_at_into(&a, &b, &mut out);
        let want = ops::matmul_at(&a, &b);
        prop_assert_eq!(out.data(), want.data());
    }

    /// `row_softmax_into` into a dirty buffer equals `row_softmax`.
    #[test]
    fn row_softmax_into_matches_wrapper(a in arb_tensor(1..9, 1..9)) {
        let mut out = dirty(a.rows(), a.cols());
        ops::row_softmax_into(&a, &mut out);
        let want = ops::row_softmax(&a);
        prop_assert_eq!(out.data(), want.data());
    }

    /// `gelu_into` fully defines its output: writing into a dirty recycled
    /// buffer produces the same bytes as writing into a fresh zeroed one.
    #[test]
    fn gelu_into_fully_defines_dirty_buffers(x in arb_tensor(1..8, 1..9)) {
        let mut into_dirty = dirty(x.rows(), x.cols());
        ops::gelu_into(&x, &mut into_dirty);
        let mut into_clean = Tensor::zeros(x.rows(), x.cols());
        ops::gelu_into(&x, &mut into_clean);
        prop_assert_eq!(into_dirty.data(), into_clean.data());
    }

    /// `gelu_backward_into` fully defines its output regardless of what the
    /// recycled buffer held.
    #[test]
    fn gelu_backward_into_fully_defines_dirty_buffers(x in arb_tensor(1..8, 1..9), seed in 0u64..1000) {
        let dy = init::normal(x.rows(), x.cols(), 0.0, 1.0, seed.wrapping_add(17));
        let mut into_dirty = dirty(x.rows(), x.cols());
        ops::gelu_backward_into(&x, &dy, &mut into_dirty);
        let mut into_clean = Tensor::zeros(x.rows(), x.cols());
        ops::gelu_backward_into(&x, &dy, &mut into_clean);
        prop_assert_eq!(into_dirty.data(), into_clean.data());
    }

    /// `layer_norm_into` fully defines its output: dirty and zeroed
    /// destination buffers receive identical bytes.
    #[test]
    fn layer_norm_into_fully_defines_dirty_buffers(x in arb_tensor(1..8, 2..9), seed in 0u64..1000) {
        let gamma = init::normal(1, x.cols(), 1.0, 0.1, seed.wrapping_add(19));
        let beta = init::normal(1, x.cols(), 0.0, 0.1, seed.wrapping_add(23));
        let mut into_dirty = dirty(x.rows(), x.cols());
        ops::layer_norm_into(&x, &gamma, &beta, 1e-5, &mut into_dirty);
        let mut into_clean = Tensor::zeros(x.rows(), x.cols());
        ops::layer_norm_into(&x, &gamma, &beta, 1e-5, &mut into_clean);
        prop_assert_eq!(into_dirty.data(), into_clean.data());
    }

    /// Zero-copy head views (`view_cols`) read exactly the bytes a copying
    /// column slice produces, row by row and through a matmul consumer.
    #[test]
    fn head_views_match_copying_slices(t in arb_tensor(1..8, 2..12), seed in 0u64..1000) {
        // Split the columns into 1..=cols "heads" of equal width.
        let cols = t.cols();
        let width = 1 + (seed as usize % cols);
        let heads = cols / width;
        for h in 0..heads {
            let (start, end) = (h * width, (h + 1) * width);
            let view = t.view_cols(start, end);
            let copy = t.slice_cols(start, end);
            prop_assert_eq!(view.shape(), copy.shape());
            for r in 0..t.rows() {
                prop_assert_eq!(view.row(r), copy.row(r), "head {h} row {r}");
            }
            // Consumers generic over MatRef see identical values: a matmul
            // fed the view must equal one fed the copy, bit for bit.
            let w = init::normal(width, 3, 0.0, 1.0, seed.wrapping_add(h as u64));
            let via_view = ops::matmul(&view, &w);
            let via_copy = ops::matmul(&copy, &w);
            prop_assert_eq!(via_view.data(), via_copy.data());
        }
    }

    /// Loss `_ws` variants through a pre-dirtied arena match the allocating
    /// originals bit-for-bit.
    #[test]
    fn loss_ws_matches_allocating(logits in arb_tensor(2..8, 2..5), seed in 0u64..1000) {
        let n = logits.rows();
        let c = logits.cols();
        let labels: Vec<u32> = (0..n).map(|i| ((seed as usize + i) % c) as u32).collect();
        let mut ws = Workspace::new();
        // Dirty the pools for the exact shape the loss will check out.
        ws.give(dirty(n, c));
        ws.give(dirty(n, c));
        let (l0, g0) = loss::softmax_cross_entropy(&logits, &labels);
        let (l1, g1) = loss::softmax_cross_entropy_ws(&logits, &labels, &mut ws);
        prop_assert_eq!(l0, l1);
        prop_assert_eq!(g0.data(), g1.data());
        let idx: Vec<u32> = (0..n as u32).step_by(2).collect();
        ws.give(g1);
        let (m0, mg0) = loss::masked_softmax_cross_entropy(&logits, &labels, &idx);
        let (m1, mg1) = loss::masked_softmax_cross_entropy_ws(&logits, &labels, &idx, &mut ws);
        prop_assert_eq!(m0, m1);
        prop_assert_eq!(mg0.data(), mg1.data());
    }
}

/// A `GraphTrainer` epoch driven through its shared, warm workspace must
/// reproduce — bit for bit — the loss history of the pre-refactor code
/// path: plain allocating `forward`/`backward`/loss calls in the same step
/// order. Three epochs ensure the arena pools are reused, not just filled.
#[test]
fn graph_trainer_with_shared_workspace_matches_allocating_loop() {
    use torchgt::comm::ClusterTopology;
    use torchgt::graph::{DatasetKind, GraphLabel};
    use torchgt::perf::{GpuSpec, ModelShape};
    use torchgt::tensor::{Adam, Optimizer};

    let data = DatasetKind::MalNet.generate_graphs(10, 0.002, 3);
    let classes = 5;
    let epochs = 3;
    let mut cfg = TrainConfig::new(Method::GpSparse, 64, epochs);
    cfg.lr = 2e-3;
    let model = Box::new(Gt::new(GtConfig::tiny(data.feat_dim, classes), 9));
    let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
    let mut trainer = GraphTrainer::new(
        cfg.clone(),
        &data,
        model,
        shape,
        GpuSpec::rtx3090(),
        ClusterTopology::rtx3090(1),
    );
    let trainer_losses: Vec<f32> = (0..epochs).map(|_| trainer.train_epoch().loss).collect();

    // Replica of the pre-refactor step loop: identical model/optimizer
    // seeds, identical step order, but every tensor freshly allocated.
    let mut model = Gt::new(GtConfig::tiny(data.feat_dim, classes), 9);
    model.set_training(true);
    let mut opt = Adam::with_lr(cfg.lr);
    let split = data.len() * 8 / 10;
    let prepared: Vec<_> = data.samples[..split]
        .iter()
        .map(|s| {
            let n = s.graph.num_nodes();
            let features = Tensor::from_vec(n, s.feat_dim, s.features.clone());
            let mask = topology_mask(&s.graph, true);
            let spd = (n <= 512).then(|| spd_matrix(&s.graph, 8));
            (features, s.graph.clone(), mask, spd, s.label)
        })
        .collect();
    let mut replica_losses = Vec::new();
    for _ in 0..epochs {
        let mut total = 0.0f32;
        for (features, graph, mask, spd, label) in &prepared {
            let batch = SequenceBatch { features, graph, spd: spd.as_deref() };
            let pattern = Pattern::Sparse(mask);
            let token_logits = model.forward(&batch, pattern);
            let glogits = ops::mean_rows(&token_logits);
            let (l, dl) = match *label {
                GraphLabel::Class(c) => loss::softmax_cross_entropy(&glogits, &[c]),
                GraphLabel::Value(v) => loss::mae_loss(&glogits, &[v]),
            };
            total += l;
            let n = features.rows();
            let mut dtokens = Tensor::zeros(n, dl.cols());
            let inv = 1.0 / n as f32;
            for r in 0..n {
                for c in 0..dl.cols() {
                    dtokens.set(r, c, dl.get(0, c) * inv);
                }
            }
            model.backward(&batch, pattern, &dtokens);
            opt.step(&mut model.params_mut());
        }
        replica_losses.push(total / prepared.len().max(1) as f32);
    }
    assert_eq!(
        trainer_losses, replica_losses,
        "workspace-threaded trainer diverged from the allocating code path"
    );
}
