//! The out-of-core data pipeline through the public facade: sharded
//! generation round-trips, streaming training reproduces the in-memory loss
//! history bit-for-bit, checkpoints refuse to restore against a different
//! dataset, and the prefetching loader publishes its gauges.

use std::path::PathBuf;
use std::sync::Arc;
use torchgt::prelude::*;
use torchgt::TorchGtBuilder;

const KIND: DatasetKind = DatasetKind::OgbnArxiv;
const SCALE: f64 = 0.004;
const SEED: u64 = 11;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tgt-data-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Write the standard test dataset to disk in ~250-node shards.
fn sharded(name: &str, seed: u64) -> (PathBuf, DatagenReport) {
    let dir = scratch_dir(name);
    let report = generate_to_dir(KIND, SCALE, seed, &dir, 250).expect("datagen");
    assert!(report.manifest.shards.len() >= 2, "test dataset must actually be sharded");
    (dir, report)
}

fn builder() -> TorchGtBuilder {
    TorchGtBuilder::new(Method::GpSparse)
        .seq_len(128)
        .epochs(3)
        .hidden(16)
        .layers(2)
        .heads(2)
        .seed(5)
}

/// The shard writer and `load_node_dataset` are exact inverses of the
/// in-memory generator: same graph, features, labels, and split.
#[test]
fn sharded_dataset_round_trips_to_the_in_memory_one() {
    let (dir, report) = sharded("roundtrip", SEED);
    let from_disk = load_node_dataset(&dir).expect("load sharded dataset");
    let in_mem = KIND.generate_node(SCALE, SEED);
    assert_eq!(from_disk.graph, in_mem.graph);
    assert_eq!(from_disk.features, in_mem.features);
    assert_eq!(from_disk.labels, in_mem.labels);
    assert_eq!(from_disk.feat_dim, in_mem.feat_dim);
    assert_eq!(from_disk.num_classes, in_mem.num_classes);
    assert_eq!(from_disk.split.train, in_mem.split.train);
    assert_eq!(from_disk.split.test, in_mem.split.test);
    // And the manifest's identity is stable across a reload.
    assert_eq!(Manifest::load_dir(&dir).unwrap().hash(), report.hash);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Streaming shards from disk reproduces the in-memory trainer's epoch
/// losses bit-for-bit — the tentpole's correctness claim, at facade level.
#[test]
fn streaming_training_matches_in_memory_bit_for_bit() {
    let (dir, _) = sharded("parity", SEED);
    let in_mem = KIND.generate_node(SCALE, SEED);
    let mut mem_trainer = builder().build_node(&in_mem).expect("valid configuration");
    let loader = ShardLoader::open(&dir).expect("loader opens");
    let mut disk_trainer = builder().build_streaming(loader).expect("valid configuration");
    for epoch in 0..3 {
        let a = mem_trainer.train_epoch();
        let b = disk_trainer.train_epoch();
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "epoch {epoch} loss diverged");
        assert_eq!(a.train_acc, b.train_acc);
        assert_eq!(a.test_acc, b.test_acc);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint taken against one sharded dataset refuses to restore into a
/// trainer streaming a *different* dataset — unless explicitly overridden.
#[test]
fn resume_refuses_a_mismatched_dataset_through_the_checkpoint_driver() {
    let (dir_a, report_a) = sharded("identity-a", SEED);
    let (dir_b, report_b) = sharded("identity-b", SEED + 1);
    assert_ne!(report_a.hash, report_b.hash);
    let ckpt = scratch_dir("identity-ckpt");
    let store = CheckpointStore::new(&ckpt, 3).unwrap();
    let noop = torchgt::obs::noop();

    let mut first = builder()
        .build_streaming(ShardLoader::open(&dir_a).unwrap())
        .expect("valid configuration");
    let out = run_with_checkpoints(
        &mut first,
        &store,
        &CheckpointOptions { every: 1, resume: false, crash_after: Some(1) },
        &noop,
    )
    .unwrap();
    assert!(out.interrupted);

    // Resuming against dataset B must fail loudly and point at the escape
    // hatch.
    let mut wrong = builder()
        .build_streaming(ShardLoader::open(&dir_b).unwrap())
        .expect("valid configuration");
    let err = run_with_checkpoints(
        &mut wrong,
        &store,
        &CheckpointOptions { every: 1, resume: true, crash_after: None },
        &noop,
    )
    .err()
    .expect("mismatched dataset must refuse to restore");
    let msg = err.to_string();
    assert!(msg.contains(&report_a.hash), "error names the snapshot's dataset: {msg}");
    assert!(msg.contains("allow-dataset-mismatch"), "error names the override: {msg}");

    // The matching dataset restores without ceremony. (Checked before the
    // override run below, which legitimately re-stamps later snapshots with
    // dataset B's hash.)
    let mut right = builder()
        .build_streaming(ShardLoader::open(&dir_a).unwrap())
        .expect("valid configuration");
    let out = run_with_checkpoints(
        &mut right,
        &store,
        &CheckpointOptions { every: 1, resume: true, crash_after: Some(2) },
        &noop,
    )
    .expect("matching dataset restores cleanly");
    assert_eq!(out.resumed_from, Some(1));

    // And the escape hatch lets the mismatched trainer restore anyway.
    wrong.set_allow_dataset_mismatch(true);
    run_with_checkpoints(
        &mut wrong,
        &store,
        &CheckpointOptions { every: 1, resume: true, crash_after: None },
        &noop,
    )
    .expect("override must permit the restore");
    for d in [dir_a, dir_b, ckpt] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// A streaming trainer's recorder sees the loader's prefetch gauges.
#[test]
fn streaming_trainer_publishes_loader_gauges() {
    let (dir, report) = sharded("gauges", SEED);
    let mut trainer = builder()
        .build_streaming(ShardLoader::open(&dir).unwrap())
        .expect("valid configuration");
    let mem = Arc::new(MemoryRecorder::default());
    trainer.attach_recorder(mem.clone());
    trainer.train_epoch();
    let rep = mem.report();
    let gauge = |name: &str| {
        rep.gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
            .value
    };
    assert!(gauge("prefetch_stall_ms") > 0.0, "first-shard wait must register");
    // train_epoch streams once for training and once for evaluation.
    assert_eq!(gauge("shard_bytes_read") as u64, 2 * report.total_bytes);
    let _ = gauge("prefetch_buffer_depth");
    let _ = std::fs::remove_dir_all(&dir);
}
