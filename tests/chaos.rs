//! Chaos harness: seeded multi-domain fault plans driven through the full
//! pipeline — datagen → streaming training with checkpoints → freeze →
//! serve — asserting that every run completes, that healed runs reproduce
//! the fault-free loss history bit-for-bit, and that every recovery action
//! the fault plane forced is visible in the exported metrics
//! (`IO_RETRY`, `SNAPSHOT_FALLBACK`, `LOAD_SHED`).
//!
//! The installed fault plan is process-global, so every test that arms one
//! holds [`fault_gate`] for its whole body and clears the plan on exit
//! (panic included) via [`ArmedPlan`].

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use torchgt::prelude::*;
use torchgt::serve::{Query, ServeReply, ShedReason};
use torchgt::TorchGtBuilder;
use torchgt_compat::sync::channel::{bounded, unbounded};
use torchgt_obs::Event;

const KIND: DatasetKind = DatasetKind::OgbnArxiv;
const SCALE: f64 = 0.004;
const EPOCHS: usize = 3;

/// Serializes every test that installs a process-global fault plan.
fn fault_gate() -> &'static Mutex<()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
}

/// Clears the installed plan when dropped, so a panicking assertion cannot
/// leak injection into the next test.
struct ArmedPlan;

impl ArmedPlan {
    fn install(spec: &str) -> Self {
        torchgt::faults::install(spec.parse::<FaultSpec>().expect("valid fault spec"));
        ArmedPlan
    }
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        torchgt::faults::clear();
    }
}

/// Stable scratch paths, deliberately *without* the usual pid suffix:
/// disk-fault decisions are keyed by the hash of the path being read, so a
/// per-run path would re-roll every injection and make the healing
/// assertions flaky. A fixed path pins the decision stream.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tgt-chaos-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn builder(seed: u64) -> TorchGtBuilder {
    TorchGtBuilder::new(Method::GpSparse)
        .seq_len(128)
        .epochs(EPOCHS)
        .hidden(16)
        .layers(2)
        .heads(2)
        .seed(seed)
}

/// A full checkpointed streaming run over the sharded dataset at `dir`;
/// returns the per-epoch losses.
fn checkpointed_run(
    dir: &PathBuf,
    store: &CheckpointStore,
    seed: u64,
    opts: &CheckpointOptions,
    recorder: Option<&Arc<MemoryRecorder>>,
) -> ResumeOutcome {
    let loader = ShardLoader::open(dir).expect("loader opens");
    let mut trainer = builder(seed).build_streaming(loader).expect("valid configuration");
    let handle: RecorderHandle = match recorder {
        Some(mem) => {
            // Both halves see the same recorder: the trainer feeds the
            // loader's IO_RETRY stream, the checkpoint driver feeds the
            // store's SNAPSHOT_FALLBACK stream.
            trainer.attach_recorder(mem.clone());
            mem.clone()
        }
        None => torchgt::obs::noop(),
    };
    run_with_checkpoints(&mut trainer, store, opts, &handle).expect("run completes")
}

fn losses(outcome: &ResumeOutcome) -> Vec<u32> {
    outcome.stats.iter().map(|s| s.loss.to_bits()).collect()
}

/// The tentpole claim, end to end and across three seeds: a pipeline run
/// under an armed disk-fault plan completes, heals every injected fault
/// (losses bit-identical to the fault-free run), surfaces the retries in
/// its metrics, and — after the newest snapshot is corrupted on disk —
/// resumes from the previous epoch with a recorded `SNAPSHOT_FALLBACK`
/// and a bit-exactly stitched loss history.
#[test]
fn faulted_pipeline_heals_bit_exactly_across_seeds() {
    let _gate = fault_gate().lock().unwrap_or_else(|p| p.into_inner());
    for seed in [5u64, 6, 7] {
        let data_dir = scratch_dir(&format!("pipe-data-{seed}"));
        generate_to_dir(KIND, SCALE, seed, &data_dir, 250).expect("datagen");

        // Fault-free baseline.
        let clean_ckpt = scratch_dir(&format!("pipe-clean-{seed}"));
        let clean_store = CheckpointStore::new(&clean_ckpt, 3).unwrap();
        let baseline =
            checkpointed_run(&data_dir, &clean_store, seed, &CheckpointOptions::default(), None);
        assert_eq!(baseline.stats.len(), EPOCHS);

        // The same run under an armed disk-fault plan: transient read
        // errors, torn reads, bit flips, and injected latency. Injection
        // corrupts only in-memory bytes, so the healing ladder (retry with
        // seeded backoff, one CRC re-read) always recovers.
        let plan = ArmedPlan::install(&format!(
            "seed={seed},disk.read_err=0.3,disk.torn=0.03,disk.flip=0.03,disk.delay=0.1@0.2ms"
        ));
        let faulted_ckpt = scratch_dir(&format!("pipe-faulted-{seed}"));
        let faulted_store = CheckpointStore::new(&faulted_ckpt, 3).unwrap();
        let mem = Arc::new(MemoryRecorder::default());
        let faulted = checkpointed_run(
            &data_dir,
            &faulted_store,
            seed,
            &CheckpointOptions::default(),
            Some(&mem),
        );
        assert_eq!(
            losses(&baseline),
            losses(&faulted),
            "seed {seed}: healed run diverged from the fault-free history"
        );
        let report = mem.report();
        let retries = report
            .counters
            .iter()
            .find(|c| c.name == "io_retries")
            .map_or(0, |c| c.value);
        assert!(retries >= 1, "seed {seed}: no injected fault forced a retry");
        assert!(
            !report.events_of(Event::IO_RETRY).is_empty(),
            "seed {seed}: retries must surface as IO_RETRY events"
        );

        // Corrupt the newest snapshot on disk: the resume ladder must fall
        // back to the previous epoch, quarantine the bad file, record the
        // fallback, and stitch the final epoch bit-exactly.
        let epochs = faulted_store.epochs().expect("store has snapshots");
        let newest = *epochs.last().expect("snapshots written");
        assert_eq!(newest, EPOCHS);
        let newest_path = faulted_store.path_for(newest);
        let mut bytes = std::fs::read(&newest_path).expect("read snapshot");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest_path, &bytes).expect("corrupt snapshot");

        let mem2 = Arc::new(MemoryRecorder::default());
        let resumed = checkpointed_run(
            &data_dir,
            &faulted_store,
            seed,
            &CheckpointOptions { resume: true, ..CheckpointOptions::default() },
            Some(&mem2),
        );
        assert_eq!(resumed.resumed_from, Some(EPOCHS - 1), "seed {seed}");
        assert_eq!(resumed.stats.len(), 1);
        assert_eq!(
            resumed.stats[0].loss.to_bits(),
            baseline.stats[EPOCHS - 1].loss.to_bits(),
            "seed {seed}: stitched epoch diverged"
        );
        let report2 = mem2.report();
        let fallbacks = report2.events_of(Event::SNAPSHOT_FALLBACK);
        assert_eq!(fallbacks.len(), 1, "seed {seed}: fallback not recorded");
        assert_eq!(fallbacks[0].num("from_epoch"), Some(EPOCHS as f64));
        assert_eq!(fallbacks[0].num("to_epoch"), Some((EPOCHS - 1) as f64));
        // The bad file was renamed aside for post-mortems; the resumed run
        // then legitimately re-published a fresh epoch-3 snapshot.
        let quarantined = {
            let mut p = newest_path.clone().into_os_string();
            p.push(".quarantined");
            PathBuf::from(p)
        };
        assert!(quarantined.exists(), "corrupt snapshot must be renamed aside");

        drop(plan);
        for d in [data_dir, clean_ckpt, faulted_ckpt] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }
}

/// Train briefly and freeze through the gate (no faults involved).
fn frozen_fixture(seed: u64) -> (NodeDataset, FrozenModel) {
    let dataset = KIND.generate_node(0.002, seed);
    let mut trainer = TorchGtBuilder::new(Method::TorchGt)
        .seq_len(128)
        .epochs(2)
        .hidden(16)
        .layers(2)
        .heads(2)
        .seed(seed)
        .build_node(&dataset)
        .expect("valid configuration");
    for _ in 0..2 {
        trainer.train_epoch();
    }
    let calib = CalibSet::from_dataset(&dataset, 128, seed);
    let frozen = trainer.freeze(&calib).expect("freeze passes the accuracy gate");
    (dataset, frozen)
}

/// `TGTF` loads get the same healing ladder as shard reads: an injected
/// transient error or corruption on the artifact read heals (the file on
/// disk is intact) and the loaded model is bit-identical, across seeds.
#[test]
fn frozen_artifact_load_heals_injected_corruption() {
    let _gate = fault_gate().lock().unwrap_or_else(|p| p.into_inner());
    for seed in [5u64, 6, 7] {
        let (_, frozen) = frozen_fixture(seed);
        let dir = scratch_dir(&format!("tgtf-{seed}"));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.tgtf");
        frozen.save(&path).expect("save");

        let _plan = ArmedPlan::install(&format!(
            "seed={seed},disk.read_err=0.25,disk.torn=0.1,disk.flip=0.1"
        ));
        // Several loads so the per-path op counter walks through both
        // transient and corruption decisions.
        for round in 0..4 {
            let loaded = FrozenModel::load(&path)
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: load failed to heal: {e}"));
            assert_eq!(loaded, frozen, "seed {seed} round {round}: healed load diverged");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Deterministic admission control: a pre-filled queue deeper than the shed
/// watermark sheds exactly the excess as typed `QueueFull` rejections, the
/// sheds are recorded as `LOAD_SHED` events, and every accepted query is
/// still answered — with an armed serve-domain plan stalling the executor.
#[test]
fn serve_sheds_excess_load_with_typed_replies() {
    let _gate = fault_gate().lock().unwrap_or_else(|p| p.into_inner());
    let (dataset, frozen) = frozen_fixture(3);
    let _plan = ArmedPlan::install("seed=3,serve.slow=0.5@1ms,serve.burst=0.2@4");
    let cfg = ServeConfig {
        max_batch: 1,
        latency_budget: Duration::from_millis(1),
        ctx_nodes: 16,
        shed_watermark: Some(2),
        ..Default::default()
    };
    let mem = Arc::new(MemoryRecorder::default());
    let mut serve_loop = ServeLoop::new(
        &frozen,
        dataset.graph.clone(),
        dataset.features.clone(),
        cfg,
        mem.clone() as RecorderHandle,
    )
    .expect("serve loop builds");

    const QUERIES: usize = 10;
    let (tx, rx) = bounded::<Query>(QUERIES);
    let (reply_tx, reply_rx) = unbounded::<ServeReply>();
    for node in 0..QUERIES as u32 {
        tx.send(Query::new(node, reply_tx.clone())).expect("send");
    }
    drop(tx);
    drop(reply_tx);
    let stats = serve_loop.run(rx);

    // Depth at dequeue counts the backlog *behind* the query: 10 queued →
    // depths 9..0, shed while depth > 2 → exactly 7 shed, 3 answered.
    assert_eq!(stats.shed, 7, "watermark 2 over 10 queries sheds the excess");
    assert_eq!(stats.shed_queue_full, 7);
    assert_eq!(stats.served, 3);
    let mut answered = 0;
    let mut shed = 0;
    while let Ok(reply) = reply_rx.recv() {
        match reply {
            ServeReply::Answered(p) => {
                assert!((p.node as usize) < dataset.graph.num_nodes());
                answered += 1;
            }
            ServeReply::Overloaded(o) => {
                assert_eq!(o.reason, ShedReason::QueueFull);
                assert!(o.depth > 2, "shed decision must report the observed depth");
                shed += 1;
            }
        }
    }
    assert_eq!((answered, shed), (3, 7), "every query gets a typed reply");
    let report = mem.report();
    assert_eq!(report.events_of(Event::LOAD_SHED).len(), 7);
    let shed_rate = report
        .gauges
        .iter()
        .find(|g| g.name == "shed_rate")
        .expect("shed_rate gauge")
        .value;
    assert!((shed_rate - 0.7).abs() < 1e-9, "shed_rate {shed_rate}");
}

/// Deadline shedding: queries older than the configured deadline at dequeue
/// are rejected as `Expired`, fresh queries behind them are still answered.
#[test]
fn serve_sheds_expired_queries_and_answers_fresh_ones() {
    let (dataset, frozen) = frozen_fixture(3);
    let cfg = ServeConfig {
        max_batch: 4,
        latency_budget: Duration::from_millis(1),
        ctx_nodes: 16,
        deadline: Some(Duration::from_millis(100)),
        ..Default::default()
    };
    let mut serve_loop = ServeLoop::new(
        &frozen,
        dataset.graph.clone(),
        dataset.features.clone(),
        cfg,
        torchgt::obs::noop(),
    )
    .expect("serve loop builds");

    let (tx, rx) = bounded::<Query>(8);
    let (reply_tx, reply_rx) = unbounded::<ServeReply>();
    // Stale queries: enqueued, then left to age past the deadline.
    for node in 0..3u32 {
        tx.send(Query::new(node, reply_tx.clone())).expect("send");
    }
    std::thread::sleep(Duration::from_millis(250));
    for node in 3..6u32 {
        tx.send(Query::new(node, reply_tx.clone())).expect("send");
    }
    drop(tx);
    drop(reply_tx);
    let stats = serve_loop.run(rx);
    assert_eq!(stats.shed_expired, 3, "aged queries must expire at dequeue");
    assert_eq!(stats.served, 3, "fresh queries must still be answered");
    let mut expired = 0;
    while let Ok(reply) = reply_rx.recv() {
        if let ServeReply::Overloaded(o) = reply {
            assert_eq!(o.reason, ShedReason::Expired);
            expired += 1;
        }
    }
    assert_eq!(expired, 3);
}

/// Graceful drain: once shutdown is requested, everything already enqueued
/// is answered (counted as `drained`), arrivals stamped after the drain
/// began are rejected as `Draining`.
#[test]
fn shutdown_drains_backlog_and_rejects_late_arrivals() {
    let (dataset, frozen) = frozen_fixture(3);
    let cfg = ServeConfig {
        max_batch: 4,
        latency_budget: Duration::from_millis(1),
        ctx_nodes: 16,
        ..Default::default()
    };
    let mut serve_loop = ServeLoop::new(
        &frozen,
        dataset.graph.clone(),
        dataset.features.clone(),
        cfg,
        torchgt::obs::noop(),
    )
    .expect("serve loop builds");
    let handle = serve_loop.shutdown_handle();
    assert!(!handle.is_shutdown());

    let (tx, rx) = bounded::<Query>(8);
    let (reply_tx, reply_rx) = unbounded::<ServeReply>();
    // In-flight queries, enqueued before the drain begins.
    for node in 0..5u32 {
        tx.send(Query::new(node, reply_tx.clone())).expect("send");
    }
    // "Late" arrivals: enqueue timestamps forced after any drain start the
    // loop can possibly stamp, making the race-free assertion exact.
    for node in 5..7u32 {
        let q = Query {
            node,
            enqueued: Instant::now() + Duration::from_secs(3600),
            reply: reply_tx.clone(),
        };
        tx.send(q).expect("send");
    }
    drop(tx);
    drop(reply_tx);
    handle.shutdown();
    assert!(handle.is_shutdown());
    let stats = serve_loop.run(rx);

    assert_eq!(stats.drained, 5, "the backlog must be answered on drain");
    assert_eq!(stats.served, 5);
    assert_eq!(stats.shed_draining, 2, "late arrivals must be rejected");
    let mut answered = 0;
    let mut draining = 0;
    while let Ok(reply) = reply_rx.recv() {
        match reply {
            ServeReply::Answered(_) => answered += 1,
            ServeReply::Overloaded(o) => {
                assert_eq!(o.reason, ShedReason::Draining);
                draining += 1;
            }
        }
    }
    assert_eq!((answered, draining), (5, 2));
}

/// Determinism of the quarantine path itself: a plan whose corruption
/// probability is 1 defeats the single re-read, so the shard is quarantined
/// with a typed error naming its path — and the stream error carries it.
#[test]
fn certain_corruption_quarantines_the_shard_deterministically() {
    let _gate = fault_gate().lock().unwrap_or_else(|p| p.into_inner());
    let dir = scratch_dir("quarantine");
    generate_to_dir(KIND, SCALE, 9, &dir, 250).expect("datagen");
    let _plan = ArmedPlan::install("seed=9,disk.flip=1.0");
    let loader = ShardLoader::open(&dir).expect("manifest read is unfaulted");
    let mut stream = loader.stream_epoch(0);
    let err = loop {
        match stream.next() {
            Ok(Some(_)) => panic!("every read is corrupted twice; no shard can heal"),
            Ok(None) => panic!("stream ended without surfacing the quarantine"),
            Err(e) => break e,
        }
    };
    let msg = err.to_string();
    assert!(msg.contains("quarantined"), "typed quarantine error expected: {msg}");
    assert!(msg.contains(".tgds"), "error must name the shard path: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}
