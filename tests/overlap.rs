//! Integration tests of the handle-based async collectives: `*_begin()` +
//! `wait()` must be bit-identical to the blocking calls — with or without
//! injected faults (delays, drops, crashes) — charge the same wire bytes,
//! and a `PendingCollective` dropped without `wait()` must fail loudly.

use torchgt::comm::DeviceGroup;
use torchgt::prelude::*;
use torchgt_compat::proptest::prelude::*;

fn rank_data(tag: usize, len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| ((tag * 31 + i) as f32 * 0.37 + salt as f32 * 0.011).sin())
        .collect()
}

/// Run the full collective suite on one rank, either through async handles
/// (issued back-to-back, waited in order — the overlapped shape the runtime
/// uses) or through the blocking wrappers, and return the concatenated
/// payload bytes.
fn collective_suite(comm: &torchgt::comm::Communicator, len: usize, asynchronous: bool) -> Vec<u32> {
    let r = comm.rank();
    let p = comm.world_size();
    let chunks = |salt: u64| -> Vec<Vec<f32>> {
        (0..p).map(|peer| rank_data(r * 17 + peer, len, salt)).collect()
    };
    let bcast_payload = if r == 0 { Some(rank_data(99, len, 4)) } else { None };
    let mut out: Vec<f32> = Vec::new();
    if asynchronous {
        // Two in-flight handles at a time, waited in issue order.
        let a = comm.all_reduce_begin(rank_data(r, len, 1));
        let b = comm.all_gather_begin(rank_data(r, len, 2));
        out.extend(a.wait());
        b.wait().into_iter().for_each(|v| out.extend(v));
        let c = comm.all_to_all_begin(chunks(3));
        let d = comm.broadcast_begin(0, bcast_payload);
        c.wait().into_iter().for_each(|v| out.extend(v));
        out.extend(d.wait());
        let e = comm.reduce_scatter_begin(chunks(5));
        out.extend(e.wait());
    } else {
        out.extend(comm.all_reduce_sum(rank_data(r, len, 1)));
        comm.all_gather(rank_data(r, len, 2)).into_iter().for_each(|v| out.extend(v));
        comm.all_to_all(chunks(3)).into_iter().for_each(|v| out.extend(v));
        out.extend(comm.broadcast(0, bcast_payload));
        out.extend(comm.reduce_scatter_sum(chunks(5)));
    }
    out.into_iter().map(f32::to_bits).collect()
}

fn run_suite(
    world: usize,
    len: usize,
    plan: Option<FaultPlan>,
    asynchronous: bool,
) -> (Vec<Result<Vec<u32>, bool>>, u64) {
    let mut group = DeviceGroup::new(world);
    group.set_fault_plan(plan);
    let results = group
        .try_run(|comm| collective_suite(&comm, len, asynchronous))
        .into_iter()
        .map(|r| r.map_err(|f| matches!(f, RankFailure::Crash(_))))
        .collect();
    (results, group.stats().bytes_sent())
}

fn assert_parity(world: usize, len: usize, plan: Option<FaultPlan>) {
    let (sync, sync_bytes) = run_suite(world, len, plan.clone(), false);
    let (asyn, asyn_bytes) = run_suite(world, len, plan, true);
    assert_eq!(sync, asyn, "async payload bits diverge from blocking path");
    assert_eq!(sync_bytes, asyn_bytes, "wire accounting diverges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any world size and payload length, every collective's
    /// `begin().wait()` matches the blocking call bit-for-bit and byte-for-
    /// byte on the wire — including with handles overlapped two at a time.
    #[test]
    fn async_handles_bit_identical_to_blocking(world in 2usize..5, len in 1usize..9, seed in 0u64..200) {
        // Exercise both the fault-free path and a deterministic delay plan.
        assert_parity(world, len, None);
        assert_parity(world, len, Some(FaultPlan::delays(seed, 0.4, 0.0002)));
    }
}

#[test]
fn async_parity_under_injected_drops() {
    assert_parity(3, 6, Some(FaultPlan::drops(7, 0.3, 4)));
    assert_parity(4, 3, Some(FaultPlan::drops(23, 0.5, 6)));
}

#[test]
fn async_parity_under_slow_rank() {
    assert_parity(3, 5, Some(FaultPlan::slow(1, 0.001)));
}

#[test]
fn async_parity_under_injected_crash() {
    // The crash fires at the same collective-op index on both paths, so the
    // per-rank Ok/Err pattern and every surviving payload must match.
    // The suite issues 5 collectives per rank, so ops 1/2/4 all land.
    for op in [1u64, 2, 4] {
        let plan = FaultPlan::crash_at(11, 1, op);
        let (sync, _) = run_suite(3, 4, Some(plan.clone()), false);
        let (asyn, _) = run_suite(3, 4, Some(plan), true);
        assert_eq!(sync, asyn, "crash at op {op}: paths diverge");
        assert_eq!(sync[1], Err(true), "rank 1 must report the injected crash");
    }
}

/// Regression: forgetting to `wait()` a handle is a programming error that
/// must fail loudly, not silently drop a collective half-issued.
#[test]
fn dropping_a_pending_collective_without_wait_panics() {
    let group = DeviceGroup::new(2);
    let results = group.try_run(|comm| {
        let pending = comm.all_reduce_begin(vec![comm.rank() as f32; 4]);
        drop(pending);
    });
    for (rank, res) in results.iter().enumerate() {
        match res {
            Err(RankFailure::Panic(msg)) => assert!(
                msg.contains("dropped without wait()"),
                "rank {rank}: unexpected panic message {msg:?}"
            ),
            other => panic!("rank {rank}: expected loud panic, got {other:?}"),
        }
    }
}
