//! Degenerate-input hardening: the stack must behave sensibly on tiny,
//! empty and extreme inputs — the cases that crash production systems.

use torchgt::graph::generators::{complete_graph, path_graph};
use torchgt::graph::CsrGraph;
use torchgt::prelude::*;
use torchgt::sparse::{access_profile, topology_mask, BlockCsr};
use torchgt::TorchGtBuilder;

#[test]
fn sequence_length_larger_than_graph() {
    let d = DatasetKind::OgbnArxiv.generate_node(0.002, 3);
    let n = d.num_nodes();
    let mut t = TorchGtBuilder::new(Method::TorchGt)
        .seq_len(n * 10) // clamps to one whole-graph sequence
        .epochs(1)
        .hidden(16)
        .layers(2)
        .heads(2)
        .build_node(&d)
        .expect("valid configuration");
    let stats = t.train_epoch();
    assert!(stats.loss.is_finite());
    assert_eq!(t.num_sequences(), 1);
}

#[test]
fn sequence_length_one_node_chunks() {
    // Pathological chunking: one node per sequence — every mask is a single
    // self-loop; nothing crashes and the loss stays finite.
    let d = DatasetKind::Flickr.generate_node(0.003, 5);
    let mut cfg_builder = TorchGtBuilder::new(Method::GpSparse)
        .seq_len(1)
        .epochs(1)
        .hidden(16)
        .layers(2)
        .heads(2);
    cfg_builder = cfg_builder.lr(1e-3);
    let mut t = cfg_builder.build_node(&d)
        .expect("valid configuration");
    let stats = t.train_epoch();
    assert!(stats.loss.is_finite());
    assert_eq!(t.num_sequences(), d.num_nodes());
}

#[test]
fn zero_epoch_run_returns_empty() {
    let d = DatasetKind::OgbnArxiv.generate_node(0.002, 7);
    let mut t = TorchGtBuilder::new(Method::GpFlash)
        .seq_len(200)
        .epochs(0)
        .hidden(16)
        .layers(2)
        .heads(2)
        .build_node(&d)
        .expect("valid configuration");
    assert!(t.run().is_empty());
}

#[test]
fn partition_with_more_parts_than_nodes() {
    let g = path_graph(3);
    let assign = torchgt::graph::partition(&g, 8, 1);
    assert_eq!(assign.len(), 3);
    assert!(assign.iter().all(|&c| c < 8));
}

#[test]
fn masks_of_trivial_graphs() {
    let single = CsrGraph::from_edges(1, &[]);
    let m = topology_mask(&single, true);
    assert!(m.has_edge(0, 0));
    let p = access_profile(&m);
    assert_eq!(p.nnz, 1);
    let empty = CsrGraph::from_edges(0, &[]);
    let m = topology_mask(&empty, true);
    assert_eq!(m.num_nodes(), 0);
    assert_eq!(access_profile(&m).nnz, 0);
}

#[test]
fn block_csr_of_empty_and_tiny() {
    let empty = CsrGraph::from_edges(0, &[]);
    let b = BlockCsr::from_mask(&empty, 8);
    assert_eq!(b.nnz(), 0);
    assert_eq!(b.num_blocks(), 0);
    let tiny = complete_graph(2).with_self_loops();
    let b = BlockCsr::from_mask(&tiny, 8);
    assert_eq!(b.nnz(), 4);
    assert!(b.contains(0, 1) && b.contains(1, 1));
}

#[test]
fn attention_on_single_token() {
    use torchgt::model::attention;
    use torchgt::tensor::init;
    let q = init::normal(1, 4, 0.0, 1.0, 1);
    let k = init::normal(1, 4, 0.0, 1.0, 2);
    let v = init::normal(1, 4, 0.0, 1.0, 3);
    // A single token attends only to itself: output = V.
    let dense = attention::dense(&q, &k, &v, 2, None).out;
    assert_eq!(dense.data(), v.data());
    let flash = attention::flash(&q, &k, &v, 2).out;
    for (a, b) in flash.data().iter().zip(v.data()) {
        assert!((a - b).abs() < 1e-5);
    }
    let mask = CsrGraph::from_edges(1, &[(0, 0)]);
    let sparse = attention::sparse(&q, &k, &v, 2, &mask, None).out;
    assert_eq!(sparse.data(), v.data());
}

#[test]
fn empty_tensor_operations() {
    let t = Tensor::zeros(0, 4);
    assert_eq!(t.sum(), 0.0);
    assert_eq!(t.mean(), 0.0);
    assert!(!t.has_non_finite());
    let s = torchgt::tensor::ops::col_sum(&t);
    assert_eq!(s.data(), &[0.0; 4]);
}

#[test]
fn graph_dataset_with_one_sample() {
    let data = DatasetKind::Zinc.generate_graphs(1, 1.0, 3);
    let mut t = TorchGtBuilder::new(Method::GpSparse)
        .model(torchgt::ModelKind::Gt)
        .epochs(1)
        .hidden(16)
        .layers(2)
        .heads(2)
        .build_graph(&data, 1)
        .expect("valid configuration");
    // 1 sample → 0 train / 1 test under the 80/20 split; must not panic.
    let stats = t.train_epoch();
    assert!(stats.loss.is_finite() || stats.loss == 0.0);
}
