//! Integration tests for the extension surface: Performer baseline, virtual
//! node, batched graph training, distributed data parallelism and
//! checkpointing — all through the public API.

use torchgt::graph::pack::pack_graphs;
use torchgt::model::vnode::VirtualNode;
use torchgt::model::{loss, Gt, GtConfig, Pattern, SequenceBatch, SequenceModel};
use torchgt::prelude::*;
use torchgt::runtime::batched::BatchedGraphTrainer;
use torchgt::runtime::distributed::train_data_parallel;
use torchgt::tensor::checkpoint::{load_params_from, save_params_to};
use torchgt::tensor::init;

#[test]
fn performer_trains_through_public_api() {
    let d = DatasetKind::OgbnArxiv.generate_node(0.002, 61);
    let features = Tensor::from_vec(d.num_nodes(), d.feat_dim, d.features.clone());
    let mut model = Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 3);
    model.set_training(true);
    let mut opt = torchgt::tensor::Adam::with_lr(2e-3);
    use torchgt::tensor::optim::Optimizer;
    let batch = SequenceBatch { features: &features, graph: &d.graph, spd: None };
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..10 {
        let logits = model.forward(&batch, Pattern::Performer(32));
        let (l, dl) = loss::softmax_cross_entropy(&logits, &d.labels);
        model.backward(&batch, Pattern::Performer(32), &dl);
        opt.step(&mut model.params_mut());
        first.get_or_insert(l);
        last = l;
    }
    assert!(last < *first.as_ref().unwrap(), "{first:?} → {last}");
}

#[test]
fn virtual_node_graph_readout_trains() {
    let data = DatasetKind::OgbgMolpcba.generate_graphs(12, 1.0, 5);
    let mut model = VirtualNode::new(Gt::new(GtConfig::tiny(data.feat_dim, 6), 7), data.feat_dim, 9);
    model.set_training(true);
    use torchgt::tensor::optim::Optimizer;
    let mut opt = torchgt::tensor::Adam::with_lr(3e-3);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..8 {
        let mut epoch_loss = 0.0;
        for s in &data.samples {
            let feats = Tensor::from_vec(s.graph.num_nodes(), s.feat_dim, s.features.clone());
            let batch = SequenceBatch { features: &feats, graph: &s.graph, spd: None };
            let full = model.forward(&batch, Pattern::Flash);
            let graph_logits = full.slice_rows(0, 1);
            let label = match s.label {
                torchgt::graph::GraphLabel::Class(c) => c,
                _ => unreachable!(),
            };
            let (l, dg) = loss::softmax_cross_entropy(&graph_logits, &[label]);
            let mut dfull = Tensor::zeros(full.rows(), full.cols());
            for c in 0..full.cols() {
                dfull.set(0, c, dg.get(0, c));
            }
            model.backward(&batch, Pattern::Flash, &dfull);
            opt.step(&mut model.params_mut());
            epoch_loss += l;
        }
        first.get_or_insert(epoch_loss);
        last = epoch_loss;
    }
    assert!(last < *first.as_ref().unwrap());
}

#[test]
fn batched_trainer_through_public_api() {
    let data = DatasetKind::Zinc.generate_graphs(20, 1.0, 9);
    let mut cfg = TrainConfig::new(Method::TorchGt, 64, 3);
    cfg.lr = 3e-3;
    let model = Box::new(Gt::new(GtConfig::tiny(data.feat_dim, 1), 3));
    let mut t = BatchedGraphTrainer::new(cfg, &data, model, 4);
    let stats = t.run();
    assert_eq!(stats.len(), 3);
    assert!(stats.iter().all(|s| s.loss.is_finite()));
}

#[test]
fn distributed_training_beats_chance() {
    let d = DatasetKind::Flickr.generate_node(0.004, 3);
    let mut cfg = TrainConfig::new(Method::GpSparse, 128, 3);
    cfg.lr = 2e-3;
    let stats = train_data_parallel(&d, cfg, 2, || {
        Box::new(Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 13))
    });
    assert_eq!(stats.world, 2);
    assert!(stats.epoch_losses.last().unwrap() < stats.epoch_losses.first().unwrap());
    assert!(stats.grad_bytes > 0);
}

#[test]
fn checkpoint_roundtrip_preserves_model_outputs() {
    let g = torchgt::graph::generators::cycle_graph(10);
    let x = init::normal(10, 4, 0.0, 1.0, 3);
    let batch = SequenceBatch { features: &x, graph: &g, spd: None };
    let mut original = Gt::new(GtConfig::tiny(4, 3), 21);
    original.set_training(false);
    let y_before = original.forward(&batch, Pattern::Flash);
    // Save, then load into a same-seeded model whose parameters were wiped
    // (the LapPE is seed-derived and not a parameter, so the seed must
    // match; the checkpoint covers parameters only).
    let mut buf = Vec::new();
    {
        let params = original.params_mut();
        let refs: Vec<&torchgt::tensor::Param> = params.iter().map(|p| &**p).collect();
        save_params_to(&refs, &mut buf).unwrap();
    }
    let mut restored = Gt::new(GtConfig::tiny(4, 3), 21);
    for p in restored.params_mut() {
        p.value.fill_zero();
    }
    restored.set_training(false);
    let y_other = restored.forward(&batch, Pattern::Flash);
    assert_ne!(y_before.data(), y_other.data(), "wiped params must differ");
    {
        let mut params = restored.params_mut();
        load_params_from(&mut params, buf.as_slice()).unwrap();
    }
    let y_after = restored.forward(&batch, Pattern::Flash);
    assert_eq!(y_before.data(), y_after.data(), "checkpoint must restore outputs");
}

#[test]
fn packed_block_diagonal_isolation_via_attention() {
    // Attention over a packed mask must not leak across member graphs:
    // changing graph B's features leaves graph A's outputs untouched.
    let a = torchgt::graph::generators::cycle_graph(6);
    let b = torchgt::graph::generators::star_graph(5);
    let packed = pack_graphs(&[&a, &b]);
    let mask = torchgt::sparse::topology_mask(&packed.graph, false);
    let q = init::normal(11, 8, 0.0, 1.0, 1);
    let k = init::normal(11, 8, 0.0, 1.0, 2);
    let mut v = init::normal(11, 8, 0.0, 1.0, 3);
    let out1 = torchgt::model::attention::sparse(&q, &k, &v, 2, &mask, None).out;
    // Perturb graph B's V rows (tokens 6..11).
    for r in 6..11 {
        for c in 0..8 {
            v.set(r, c, v.get(r, c) + 5.0);
        }
    }
    let out2 = torchgt::model::attention::sparse(&q, &k, &v, 2, &mask, None).out;
    for r in 0..6 {
        assert_eq!(out1.row(r), out2.row(r), "leak into graph A at row {r}");
    }
    assert_ne!(out1.row(7), out2.row(7), "graph B must change");
}
