//! Integration tests of the observability subsystem (`torchgt-obs`): the
//! unified `Trainer` trait, the `Result`-based builders, and the CLI's
//! `--metrics` export end-to-end through the real binary.

use std::process::Command;
use std::sync::Arc;
use torchgt::obs::Event;
use torchgt::prelude::*;
use torchgt::{ModelKind, TorchGtBuilder};

fn arxiv_builder() -> TorchGtBuilder {
    TorchGtBuilder::new(Method::TorchGt)
        .seq_len(256)
        .epochs(3)
        .hidden(32)
        .layers(2)
        .heads(4)
        .lr(2e-3)
        .seed(7)
}

/// Dispatching through `&mut dyn Trainer` must be observationally identical
/// to calling the inherent methods — same losses, same accuracies, same
/// recorded metrics structure.
#[test]
fn dyn_trainer_parity_with_inherent_calls() {
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.003, 7);

    let mut direct = arxiv_builder().build_node(&dataset).expect("valid configuration");
    let direct_stats: Vec<EpochStats> = (0..3).map(|_| direct.train_epoch()).collect();

    let mut boxed: Box<dyn Trainer> =
        Box::new(arxiv_builder().build_node(&dataset).expect("valid configuration"));
    let dyn_stats = boxed.run();

    assert_eq!(direct_stats.len(), dyn_stats.len());
    for (a, b) in direct_stats.iter().zip(&dyn_stats) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.loss, b.loss, "loss diverged at epoch {}", a.epoch);
        assert_eq!(a.train_acc, b.train_acc);
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.sim_seconds, b.sim_seconds);
    }
}

/// Graph-level trainers expose the same trait surface.
#[test]
fn graph_trainer_is_a_trainer_too() {
    let graphs = DatasetKind::Zinc.generate_graphs(12, 1.0, 3);
    let mut t = TorchGtBuilder::new(Method::TorchGt)
        .model(ModelKind::Gt)
        .epochs(2)
        .hidden(16)
        .layers(2)
        .heads(4)
        .build_graph(&graphs, 1)
        .expect("valid configuration");
    let trainer: &mut dyn Trainer = &mut t;
    let mem = Arc::new(MemoryRecorder::default());
    trainer.attach_recorder(mem.clone());
    let stats = trainer.run();
    assert_eq!(stats.len(), 2);
    let report = mem.report();
    assert_eq!(report.epochs.len(), 2);
    assert!(report.span("train_epoch").is_some());
    assert!(!report.steps.is_empty());
}

/// Misconfigured builders report `BuildError` instead of panicking, and the
/// deprecated shims preserve the old panicking contract.
#[test]
fn build_errors_are_values_not_panics() {
    let dataset = DatasetKind::Flickr.generate_node(0.005, 1);
    let err = TorchGtBuilder::new(Method::TorchGt)
        .hidden(30)
        .heads(4)
        .build_node(&dataset)
        .err()
        .expect("misconfiguration must be rejected");
    assert_eq!(err, BuildError::HeadsDontDivideHidden { hidden: 30, heads: 4 });
    assert!(err.to_string().contains("30"));

    match TorchGtBuilder::new(Method::TorchGt).seq_len(0).build_node(&dataset) {
        Err(e) => assert_eq!(e, BuildError::ZeroSeqLen),
        Ok(_) => panic!("zero seq_len accepted"),
    }

    let empty = GraphDataset { samples: Vec::new(), ..DatasetKind::Zinc.generate_graphs(4, 1.0, 2) };
    match TorchGtBuilder::new(Method::TorchGt).build_graph(&empty, 1) {
        Err(e) => assert_eq!(e, BuildError::EmptyDataset),
        Ok(_) => panic!("empty dataset accepted"),
    }
}

#[test]
fn zero_layers_is_a_typed_error() {
    let dataset = DatasetKind::Flickr.generate_node(0.005, 1);
    let err = TorchGtBuilder::new(Method::TorchGt).layers(0).build_node(&dataset).err();
    assert_eq!(err, Some(BuildError::ZeroLayers));
}

/// A recorder-collected report serializes and parses back identically —
/// the `--metrics` file is a faithful snapshot of what was recorded.
#[test]
fn recorded_report_round_trips_through_json() {
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.003, 11);
    let mut t = arxiv_builder().build_node(&dataset).expect("valid configuration");
    let mem = Arc::new(MemoryRecorder::default());
    t.attach_recorder(mem.clone());
    for _ in 0..3 {
        t.train_epoch();
    }
    let report = mem.report();
    assert!(!report.spans.is_empty() && !report.epochs.is_empty() && !report.steps.is_empty());
    let text = report.to_json_string_pretty();
    let back = MetricsReport::from_json_str(&text).expect("metrics JSON parses back");
    assert_eq!(back, report);
}

/// Full CLI smoke test: `train --metrics` writes a report with per-epoch
/// phase spans, nonzero simulated all-to-all wire volume, per-step traces,
/// and β_thre transition events consistent with the per-epoch β sequence.
#[test]
fn cli_train_writes_metrics_json() {
    let out = std::env::temp_dir().join("torchgt_obs_cli_metrics.json");
    let _ = std::fs::remove_file(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_torchgt_cli"))
        .args([
            "train", "--dataset", "arxiv", "--method", "torchgt", "--epochs", "4", "--scale",
            "0.002", "--metrics",
        ])
        .arg(&out)
        .status()
        .expect("CLI binary runs");
    assert!(status.success(), "CLI exited with {status}");

    let text = std::fs::read_to_string(&out).expect("metrics file written");
    let report = MetricsReport::from_json_str(&text).expect("metrics file parses");

    // Per-epoch phase spans (paper Fig. 2 categories).
    for path in ["preprocess", "train_epoch/forward", "train_epoch/backward", "train_epoch/optim"]
    {
        let span = report.span(path).unwrap_or_else(|| panic!("missing span {path}"));
        assert!(span.total_s >= 0.0);
    }
    assert_eq!(report.epochs.len(), 4);
    assert!(report.epochs[0].preprocess_s > 0.0, "initial preprocess charged to epoch 0");
    assert!(!report.steps.is_empty());

    // Simulated all-to-all volume on the default multi-GPU topology.
    let a2a = report.collective("all_to_all").expect("all-to-all entry present");
    assert!(a2a.ops > 0);
    assert!(a2a.wire_bytes > 0, "default topology is multi-GPU, wire bytes must be nonzero");
    assert!(a2a.payload_bytes >= a2a.wire_bytes);

    // Every epoch-to-epoch β_thre change must have a matching transition
    // event, and every event must correspond to an actual change.
    let transitions = report.events_of(Event::BETA_TRANSITION);
    let mut changes = 0;
    for pair in report.epochs.windows(2) {
        if pair[0].beta_thre != pair[1].beta_thre {
            let e = transitions
                .iter()
                .find(|e| e.num("epoch") == Some(pair[0].epoch as f64))
                .unwrap_or_else(|| panic!("no transition event after epoch {}", pair[0].epoch));
            assert_eq!(e.num("from"), Some(pair[0].beta_thre));
            assert_eq!(e.num("to"), Some(pair[1].beta_thre));
            changes += 1;
        }
    }
    assert_eq!(transitions.len(), changes, "spurious transition events");

    let _ = std::fs::remove_file(&out);
}

/// Unknown flags are rejected with exit code 2 and a usage hint.
#[test]
fn cli_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_torchgt_cli"))
        .args(["train", "--bogus", "1"])
        .output()
        .expect("CLI binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag `--bogus`"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}
