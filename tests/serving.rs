//! Integration tests of the serving layer (`torchgt-serve`): quantization
//! error bounds, the `TGTF` artifact's corruption guarantees, the
//! freeze-time accuracy gate end-to-end from a trained model, the
//! micro-batching serve loop under concurrent senders, and the subcommand
//! CLI (legacy alias, usage errors, freeze→serve through the real binary).

use std::process::Command;
use std::time::Duration;
use torchgt::prelude::*;
use torchgt::serve::{DatasetRef, Query, QuantTensor, ServeReply, Zipf};
use torchgt_compat::rng::{Rng, RngCore, SeedableRng, SmallRng};
use torchgt_compat::sync::channel::{bounded, unbounded};

fn tiny_dataset(seed: u64) -> NodeDataset {
    DatasetKind::OgbnArxiv.generate_node(0.002, seed)
}

fn tiny_trainer(dataset: &NodeDataset, seed: u64) -> NodeTrainer {
    TorchGtBuilder::new(Method::TorchGt)
        .seq_len(128)
        .epochs(2)
        .hidden(16)
        .layers(2)
        .heads(2)
        .seed(seed)
        .build_node(dataset)
        .expect("valid configuration")
}

/// Train briefly and freeze through the gate; the artifact this returns has
/// passed the ≤1% accuracy-drop check by construction.
fn frozen_fixture(seed: u64) -> (NodeDataset, CalibSet, FrozenModel) {
    let dataset = tiny_dataset(seed);
    let mut trainer = tiny_trainer(&dataset, seed);
    for _ in 0..2 {
        trainer.train_epoch();
    }
    let calib = CalibSet::from_dataset(&dataset, 128, seed);
    let frozen = trainer.freeze(&calib).expect("freeze passes the accuracy gate");
    (dataset, calib, frozen)
}

/// Randomized quantize→dequantize sweep: every element of every row must
/// land within the published half-step error bound, for both widths and
/// across shapes, magnitudes, and seeds.
#[test]
fn quantization_round_trip_respects_error_bounds() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for trial in 0..50 {
        let rows = 1 + (rng.next_u64() % 12) as usize;
        let cols = 1 + (rng.next_u64() % 48) as usize;
        let mag = 10.0f32.powi((rng.next_u64() % 5) as i32 - 2);
        let src: Vec<f32> = (0..rows * cols)
            .map(|_| (rng.gen::<f64>() as f32 - 0.5) * 2.0 * mag)
            .collect();
        for scheme in [QuantScheme::Int8, QuantScheme::Int16] {
            let q = QuantTensor::quantize(&src, rows, cols, scheme);
            let mut back = vec![0.0f32; rows * cols];
            q.dequantize_into(&mut back);
            for r in 0..rows {
                let row_max = src[r * cols..(r + 1) * cols]
                    .iter()
                    .fold(0.0f32, |m, &x| m.max(x.abs()));
                // Half a quantization step, plus f32 rounding slack in the
                // quantize/dequantize multiplies (proportional to the row's
                // magnitude — it dominates the int16 step at large values).
                let bound = q.row_error_bound(r) + 8.0 * f32::EPSILON * row_max.max(1.0);
                for c in 0..cols {
                    let err = (src[r * cols + c] - back[r * cols + c]).abs();
                    assert!(
                        err <= bound,
                        "trial {trial} {scheme:?} row {r}: err {err} > bound {bound} (mag {mag})"
                    );
                }
            }
        }
    }
}

/// The on-disk artifact round-trips bit-exactly, and representative
/// corruptions — header, manifest, payload, truncation, trailing bytes —
/// are all rejected by the CRC/length/EOF checks.
#[test]
fn tgtf_file_round_trip_and_corruption() {
    let (_, _, frozen) = frozen_fixture(5);
    let dir = std::env::temp_dir().join(format!("tgtf_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.tgtf");
    frozen.save(&path).expect("save");
    let back = FrozenModel::load(&path).expect("load");
    assert_eq!(back, frozen, "disk round trip must be bit-exact");

    let bytes = std::fs::read(&path).expect("read artifact");
    let corrupt = |mutate: &dyn Fn(&mut Vec<u8>)| {
        let mut b = bytes.clone();
        mutate(&mut b);
        let p = dir.join("corrupt.tgtf");
        std::fs::write(&p, &b).expect("write corrupt");
        FrozenModel::load(&p)
    };
    // Magic, version, manifest body, payload middle, payload last byte.
    for &offset in &[0usize, 4, 24, bytes.len() / 2, bytes.len() - 1] {
        let r = corrupt(&|b: &mut Vec<u8>| b[offset] ^= 0xFF);
        assert!(r.is_err(), "flipped byte at {offset} must be rejected");
    }
    assert!(corrupt(&|b: &mut Vec<u8>| {
        b.truncate(bytes.len() - 7);
    })
    .is_err());
    assert!(corrupt(&|b: &mut Vec<u8>| b.extend_from_slice(b"junk")).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end accuracy contract: a gated freeze measures a quantized
/// accuracy within 1% of the f32 reference, and the executor rebuilt from
/// the *saved* artifact reproduces the calibration predictions exactly.
#[test]
fn frozen_accuracy_stays_within_gate_and_survives_disk() {
    let (_, calib, frozen) = frozen_fixture(7);
    assert!(
        frozen.f32_acc - frozen.frozen_acc <= 0.01 + 1e-12,
        "gate let through a {:.4} -> {:.4} drop",
        frozen.f32_acc,
        frozen.frozen_acc
    );

    let dir = std::env::temp_dir().join(format!("tgtf_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.tgtf");
    frozen.save(&path).expect("save");
    let loaded = FrozenModel::load(&path).expect("load");

    let mut direct = FrozenExecutor::new(&frozen).expect("executor from live freeze");
    let mut from_disk = FrozenExecutor::new(&loaded).expect("executor from disk");
    let batch = calib.batch();
    let a = direct.forward_argmax(&batch, calib.pattern());
    let b = from_disk.forward_argmax(&batch, calib.pattern());
    assert_eq!(a, b, "disk round trip changed predictions");
    assert!((loaded.frozen_acc - calib.accuracy_of(&b)).abs() < 1e-12);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Int16 is the conservative fallback: its freeze must also pass the gate
/// and its round-trip error must be strictly tighter than int8's.
#[test]
fn int16_fallback_freezes_and_is_tighter() {
    let dataset = tiny_dataset(11);
    let mut trainer = tiny_trainer(&dataset, 11);
    trainer.train_epoch();
    let calib = CalibSet::from_dataset(&dataset, 64, 11);
    let opts = FreezeOptions { scheme: QuantScheme::Int16, max_acc_drop: 0.01 };
    let frozen = trainer.freeze_with(&calib, opts).expect("int16 freeze");
    assert_eq!(frozen.scheme, QuantScheme::Int16);
    assert!(frozen.f32_acc - frozen.frozen_acc <= 0.01 + 1e-12);
}

/// The serve loop under genuinely concurrent traffic: several sender
/// threads share one bounded queue (small enough to exercise send-side
/// blocking), and every query must be answered with a valid label.
#[test]
fn serve_loop_answers_every_concurrent_query() {
    let (dataset, _, frozen) = frozen_fixture(3);
    let out_dim = frozen.spec.out_dim as u32;
    let cfg = ServeConfig {
        max_batch: 4,
        latency_budget: Duration::from_millis(5),
        ctx_nodes: 16,
        ..Default::default()
    };
    let mut serve_loop = ServeLoop::new(
        &frozen,
        dataset.graph.clone(),
        dataset.features.clone(),
        cfg,
        torchgt::obs::noop(),
    )
    .expect("serve loop builds");

    const SENDERS: usize = 4;
    const PER_SENDER: usize = 16;
    let (tx, rx) = bounded::<Query>(8);
    let (reply_tx, reply_rx) = unbounded::<ServeReply>();
    let server = std::thread::spawn(move || serve_loop.run(rx));
    let num_nodes = dataset.graph.num_nodes();
    let senders: Vec<_> = (0..SENDERS)
        .map(|s| {
            let tx = tx.clone();
            let reply_tx = reply_tx.clone();
            let mut zipf = Zipf::new(num_nodes, 1.1, 40 + s as u64);
            std::thread::spawn(move || {
                for _ in 0..PER_SENDER {
                    let node = zipf.sample() as u32;
                    tx.send(Query::new(node, reply_tx.clone())).expect("queue alive");
                }
            })
        })
        .collect();
    drop(tx);
    drop(reply_tx);
    for s in senders {
        s.join().expect("sender thread");
    }
    let stats = server.join().expect("serve loop");

    let mut replies = Vec::new();
    while let Ok(r) = reply_rx.recv() {
        replies.push(r.prediction().expect("no admission control configured"));
    }
    assert_eq!(stats.served as usize, SENDERS * PER_SENDER, "queries dropped");
    assert_eq!(replies.len(), SENDERS * PER_SENDER, "replies dropped");
    for p in &replies {
        assert!(p.label < out_dim, "label {} out of range", p.label);
        assert!((p.node as usize) < num_nodes);
    }
    assert!(stats.batches >= 1 && stats.avg_batch_size <= 4.0 + 1e-9);
    assert!(stats.p99_latency_ms >= stats.p50_latency_ms);
}

/// A query against the packed micro-batch must answer with the same label
/// a single-query batch produces — block-diagonal packing cannot leak
/// attention across segments.
#[test]
fn packed_batch_matches_single_query_answers() {
    let (dataset, _, frozen) = frozen_fixture(9);
    let cfg = ServeConfig {
        max_batch: 8,
        latency_budget: Duration::from_millis(20),
        ctx_nodes: 16,
        ..Default::default()
    };
    let run_with_batch = |max_batch: usize, nodes: &[u32]| -> Vec<(u32, u32)> {
        let mut serve_loop = ServeLoop::new(
            &frozen,
            dataset.graph.clone(),
            dataset.features.clone(),
            ServeConfig { max_batch, ..cfg },
            torchgt::obs::noop(),
        )
        .expect("serve loop builds");
        let (tx, rx) = bounded::<Query>(nodes.len());
        let (reply_tx, reply_rx) = unbounded::<ServeReply>();
        for &n in nodes {
            tx.send(Query::new(n, reply_tx.clone())).expect("send");
        }
        drop(tx);
        drop(reply_tx);
        let server = std::thread::spawn(move || serve_loop.run(rx));
        server.join().expect("serve loop");
        let mut out = Vec::new();
        while let Ok(r) = reply_rx.recv() {
            let p = r.prediction().expect("no admission control configured");
            out.push((p.node, p.label));
        }
        out.sort_unstable();
        out
    };
    let nodes: Vec<u32> = (0..8).map(|i| i * 7 % dataset.graph.num_nodes() as u32).collect();
    let packed = run_with_batch(8, &nodes);
    let singles = run_with_batch(1, &nodes);
    assert_eq!(packed, singles, "packing changed answers");
}

// ---------------------------------------------------------------------------
// CLI compatibility: the subcommand redesign must keep old invocations
// working and reject everything unknown with exit 2.
// ---------------------------------------------------------------------------

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_torchgt_cli"))
}

/// The bare legacy invocation (flags, no subcommand) still trains.
#[test]
fn cli_legacy_bare_invocation_aliases_to_train() {
    let out = cli()
        .args([
            "--dataset", "arxiv", "--epochs", "1", "--scale", "0.002", "--seq-len", "64",
            "--hidden", "16", "--layers", "1", "--heads", "2",
        ])
        .output()
        .expect("CLI binary runs");
    assert!(out.status.success(), "legacy invocation failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kernel backend:"), "stdout: {stdout}");
    assert!(stdout.contains("epoch"), "stdout: {stdout}");
}

#[test]
fn cli_rejects_unknown_subcommand_with_usage() {
    let out = cli().args(["deploy"]).output().expect("CLI binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand `deploy`"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
    assert!(stderr.contains("serve"), "usage must list the subcommands: {stderr}");
}

#[test]
fn cli_rejects_unknown_flag_per_subcommand() {
    for sub in ["train", "freeze", "serve"] {
        let out = cli().args([sub, "--bogus", "1"]).output().expect("CLI binary runs");
        assert_eq!(out.status.code(), Some(2), "{sub} accepted --bogus");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown flag `--bogus`"), "{sub} stderr: {stderr}");
        assert!(stderr.contains("usage:"), "{sub} stderr: {stderr}");
    }
}

#[test]
fn cli_value_flag_without_value_is_usage_error() {
    let out = cli().args(["train", "--epochs"]).output().expect("CLI binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("needs a value"), "stderr: {stderr}");
}

/// Full deployment path through the real binary: `freeze` writes a TGTF
/// artifact, `serve` loads it, regenerates the dataset from the embedded
/// provenance, answers Zipf traffic, and exports the serving gauges.
#[test]
fn cli_freeze_then_serve_smoke() {
    let dir = std::env::temp_dir().join(format!("cli_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let artifact = dir.join("model.tgtf");
    let metrics = dir.join("serve_metrics.json");

    let out = cli()
        .args([
            "freeze", "--dataset", "arxiv", "--epochs", "1", "--scale", "0.002", "--seq-len",
            "64", "--hidden", "16", "--layers", "1", "--heads", "2", "--seed", "7", "--out",
        ])
        .arg(&artifact)
        .output()
        .expect("CLI binary runs");
    assert!(
        out.status.success(),
        "freeze failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(artifact.exists(), "artifact not written");

    let out = cli()
        .args(["serve", "--queries", "24", "--qps", "400", "--budget-ms", "20", "--model"])
        .arg(&artifact)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("CLI binary runs");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("served 24 queries"), "stdout: {stdout}");

    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    let report = MetricsReport::from_json_str(&text).expect("metrics parse");
    for gauge in ["p50_latency_ms", "p99_latency_ms", "queue_depth", "throughput_qps"] {
        assert!(
            report.gauges.iter().any(|g| g.name == gauge),
            "missing serving gauge {gauge}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Dataset provenance embedded at freeze time drives `serve` — and an
/// artifact for a *different* seed produces a different graph, which the
/// explicit override flags can reproduce.
#[test]
fn frozen_artifact_carries_dataset_provenance() {
    let (_, _, frozen) = frozen_fixture(13);
    let stamped = torchgt::serve::freeze::with_dataset(
        frozen,
        DatasetRef { kind: "arxiv".to_string(), scale: 0.002, seed: 13 },
    );
    let dir = std::env::temp_dir().join(format!("tgtf_prov_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.tgtf");
    stamped.save(&path).expect("save");
    let loaded = FrozenModel::load(&path).expect("load");
    let prov = loaded.dataset.expect("provenance survives the round trip");
    assert_eq!(prov.kind, "arxiv");
    assert_eq!(prov.seed, 13);
    assert!((prov.scale - 0.002).abs() < 1e-12);
    let _ = std::fs::remove_dir_all(&dir);
}
