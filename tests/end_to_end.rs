//! Cross-crate integration tests: the full TorchGT pipeline from synthetic
//! dataset generation through distributed training, checking the paper's
//! qualitative claims end-to-end.

use torchgt::graph::generators::{clustered_power_law, ClusteredConfig};
use torchgt::model::attention;
use torchgt::prelude::*;
use torchgt::runtime::parallel::run_distributed_attention;
use torchgt::sparse::{access_profile, topology_mask};
use torchgt::tensor::init;
use torchgt::{ModelKind, TorchGtBuilder};

/// TorchGT's interleaved attention converges on a node task while pure
/// sparse attention converges more slowly or worse (paper Figs. 10–11).
#[test]
fn interleaved_beats_pure_sparse_convergence() {
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.004, 17);
    let run = |method: Method, period: usize| {
        let mut t = TorchGtBuilder::new(method)
            .seq_len(300)
            .epochs(6)
            .hidden(32)
            .layers(2)
            .heads(4)
            .lr(2e-3)
            .interleave_period(period)
            .seed(5)
            .build_node(&dataset)
        .expect("valid configuration");
        let stats = t.run();
        stats.last().unwrap().test_acc
    };
    let torchgt = run(Method::TorchGt, 4);
    let sparse = run(Method::GpSparse, 0);
    // Interleaving must not be worse by a meaningful margin (the paper shows
    // it strictly better at convergence; at our tiny scale we allow a tie).
    assert!(
        torchgt >= sparse - 0.05,
        "interleaved {torchgt} vs sparse {sparse}"
    );
}

/// FP32 TorchGT reaches at-least-as-good accuracy as BF16 training at equal
/// budget (Table VII's mechanism).
#[test]
fn fp32_at_least_matches_bf16() {
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.004, 23);
    let run = |precision: Precision| {
        let mut t = TorchGtBuilder::new(Method::TorchGt)
            .seq_len(300)
            .epochs(6)
            .hidden(32)
            .layers(2)
            .heads(4)
            .lr(2e-3)
            .precision(precision)
            .seed(9)
            .build_node(&dataset)
        .expect("valid configuration");
        t.run().last().unwrap().test_acc
    };
    let fp32 = run(Precision::Fp32);
    let bf16 = run(Precision::Bf16);
    assert!(fp32 >= bf16 - 0.03, "fp32 {fp32} vs bf16 {bf16}");
}

/// Distributed attention (cluster-aware graph parallelism) equals the
/// single-device computation for every world size.
#[test]
fn distributed_equals_single_device_end_to_end() {
    let s = 128;
    let d = 32;
    let (g, _) = clustered_power_law(
        ClusteredConfig { n: s, communities: 4, avg_degree: 8.0, intra_fraction: 0.85 },
        3,
    );
    let mask = topology_mask(&g, true);
    let q = init::normal(s, d, 0.0, 1.0, 1);
    let k = init::normal(s, d, 0.0, 1.0, 2);
    let v = init::normal(s, d, 0.0, 1.0, 3);
    let single = attention::sparse(&q, &k, &v, 4, &mask, None).out;
    for p in [2usize, 4] {
        let dist = run_distributed_attention(p, &q, &k, &v, 4, &mask);
        let max = single
            .data()
            .iter()
            .zip(dist.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max < 1e-4, "P={p}: max diff {max}");
    }
}

/// The whole preprocessing → reformation pipeline improves memory locality
/// (longer runs) without dropping below the functional floor.
#[test]
fn pipeline_improves_locality() {
    let dataset = DatasetKind::OgbnProducts.generate_node(0.0005, 31);
    let n = dataset.num_nodes();
    let raw = topology_mask(&dataset.graph, false);
    let raw_profile = access_profile(&raw);
    // Through the trainer (TorchGT path does partition+reorder+reform).
    let trainer = TorchGtBuilder::new(Method::TorchGt)
        .seq_len(n)
        .epochs(1)
        .hidden(32)
        .layers(2)
        .heads(4)
        .build_node(&dataset)
        .expect("valid configuration");
    let _ = trainer; // construction alone runs the pipeline
    // Direct measurement of the clustered+reformed layout:
    use torchgt::graph::partition::{cluster_order, partition};
    use torchgt::sparse::{reform, ReformConfig};
    let assign = partition(&dataset.graph, 8, 1);
    let order = cluster_order(&assign, 8);
    let pg = dataset.graph.permute(&order.perm);
    let reformed = reform(&pg, &order, ReformConfig { db: 16, beta_thre: pg.sparsity() * 5.0 });
    let p = reformed.profile();
    assert!(
        p.avg_run_len > raw_profile.avg_run_len * 1.5,
        "reformed run {} vs raw {}",
        p.avg_run_len,
        raw_profile.avg_run_len
    );
}

/// Graph-level and node-level tasks both train through the same facade —
/// the paper's "task-agnostic" design goal.
#[test]
fn task_agnostic_facade() {
    let node = DatasetKind::Flickr.generate_node(0.004, 3);
    let mut nt = TorchGtBuilder::new(Method::TorchGt)
        .seq_len(200)
        .epochs(2)
        .hidden(16)
        .layers(2)
        .heads(2)
        .build_node(&node)
        .expect("valid configuration");
    let ns = nt.run();
    assert_eq!(ns.len(), 2);

    let graphs = DatasetKind::OgbgMolpcba.generate_graphs(16, 1.0, 3);
    let mut gt = TorchGtBuilder::new(Method::TorchGt)
        .model(ModelKind::Gt)
        .epochs(2)
        .hidden(16)
        .layers(2)
        .heads(2)
        .build_graph(&graphs, 8)
        .expect("valid configuration");
    let gs = gt.run();
    assert_eq!(gs.len(), 2);
    assert!(gs[1].loss.is_finite());
}

/// Deterministic end-to-end: same seed ⇒ identical training trajectory.
#[test]
fn training_is_deterministic() {
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.002, 77);
    let run = || {
        let mut t = TorchGtBuilder::new(Method::TorchGt)
            .seq_len(200)
            .epochs(2)
            .hidden(16)
            .layers(2)
            .heads(2)
            .seed(13)
            .build_node(&dataset)
        .expect("valid configuration");
        t.run().iter().map(|s| s.loss).collect::<Vec<f32>>()
    };
    assert_eq!(run(), run());
}
