//! Integration tests of elastic graph parallelism: token-conserving
//! resharding at shrunken world sizes, world-size-independent snapshots
//! (a `P = 4` snapshot restoring at `P = 3`), the full escalation ladder
//! surviving a permanent mid-run rank loss, and the numerical-health guard
//! restoring a poisoned (NaN-loss) run from its last good snapshot.

use std::path::PathBuf;
use std::sync::Arc;
use torchgt::ckpt::TrainerState;
use torchgt::comm::DeviceGroup;
use torchgt::model::{Gt, GtConfig};
use torchgt::obs::Event;
use torchgt::prelude::*;
use torchgt::runtime::{cluster_token_assignment, reshard_exchange, tokens_conserved};
use torchgt_compat::proptest::prelude::*;

fn dataset() -> NodeDataset {
    DatasetKind::OgbnArxiv.generate_node(0.002, 19)
}

fn cfg(epochs: usize) -> TrainConfig {
    let mut c = TrainConfig::new(Method::GpSparse, 128, epochs);
    c.lr = 2e-3;
    c.seed = 7;
    c.recovery.max_retries = 1;
    c.recovery.allow_shrink = true;
    c.recovery.min_ranks = 2;
    c.recovery.backoff_base_s = 0.0;
    c
}

fn factory(d: &NodeDataset) -> impl Fn() -> Box<dyn SequenceModel> + Sync {
    let (feat, classes) = (d.feat_dim, d.num_classes);
    move || Box::new(Gt::new(GtConfig::tiny(feat, classes), 11)) as Box<dyn SequenceModel>
}

fn scratch_store(name: &str) -> CheckpointStore {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::new(dir, 5).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Resharding conserves every token — none lost, none duplicated — when
    /// the group shrinks to P−1 and then P−2, for arbitrary cluster layouts
    /// and arbitrary victim choices, and every surviving rank ends up
    /// holding exactly the tokens the new assignment gives it.
    #[test]
    fn reshard_conserves_every_token_at_shrunk_worlds(
        clusters in prop::collection::vec(0u32..8, 6..48),
        world in 3usize..6,
        kills in prop::collection::vec(0usize..8, 2..3),
    ) {
        let n = clusters.len();
        let mut group = DeviceGroup::new(world);
        let mut old = cluster_token_assignment(&clusters, group.membership().live_ranks());
        for k in kills {
            let victim = group.membership().live_ranks()[k % group.live_world()];
            group.remove_rank(victim).unwrap();
            let new = cluster_token_assignment(&clusters, group.membership().live_ranks());
            let out = reshard_exchange(&group, &old, &new);
            prop_assert!(tokens_conserved(n, &out.held), "tokens lost or duplicated");
            // The victim's shard is exactly the re-materialised set.
            let stranded = old.iter().filter(|&&o| o as usize == victim).count();
            prop_assert_eq!(out.reloaded, stranded);
            // Each survivor holds precisely its new shard.
            for (dense, held) in out.held.iter().enumerate() {
                let g = group.membership().global_of(dense) as u32;
                for &t in held {
                    prop_assert_eq!(new[t as usize], g, "token {} on wrong rank", t);
                }
            }
            old = new;
        }
    }
}

/// A snapshot written at `P = 4` restores at `P = 3`: the canonical
/// (unsharded) state is untouched on disk, the loss ledger comes back
/// bit-for-bit, the restore pre-pass reshards the recorded layout onto the
/// smaller world, and the continued run trains to completion at `P = 3`.
#[test]
fn snapshot_written_at_four_ranks_restores_at_three() {
    let d = dataset();
    let store = scratch_store("tgt-elastic-crossworld");
    // Short sequences → more tokens than ranks, so the 4-rank and 3-rank
    // assignments genuinely differ and the restore pre-pass must reshard.
    let cfg = |epochs| {
        let mut c = cfg(epochs);
        c.seq_len = 64;
        c
    };

    // Phase 1: clean elastic run at P = 4 for 2 epochs.
    let four = train_data_parallel_elastic(
        &d,
        cfg(2),
        4,
        factory(&d),
        FaultPlan::default(),
        None,
        &store,
        torchgt::obs::noop(),
    )
    .unwrap();
    assert_eq!(four.final_world, 4);
    assert_eq!(four.restarts, 0);
    let snap = store.load_latest().unwrap().expect("rank 0 snapshotted");
    let layout = snap.layout.as_ref().expect("elastic snapshots carry the layout");
    assert_eq!(layout.world, 4);
    let snap_path = store.path_for(snap.state.epoch);
    let canonical_bytes = std::fs::read(&snap_path).unwrap();

    // Phase 2: restore-only at P = 3 (nothing left to train). The ledger
    // must come back bit-for-bit and the pre-pass must reshard the
    // recorded 4-rank layout onto the 3 live ranks.
    let mem = Arc::new(MemoryRecorder::default());
    let three = train_data_parallel_elastic(
        &d,
        cfg(2),
        3,
        factory(&d),
        FaultPlan::default(),
        None,
        &store,
        mem.clone(),
    )
    .unwrap();
    assert_eq!(three.final_world, 3);
    assert_eq!(three.stats.epoch_losses.len(), 2);
    for (a, b) in three.stats.epoch_losses.iter().zip(&four.stats.epoch_losses) {
        assert_eq!(a.to_bits(), b.to_bits(), "restored ledger must be bit-exact");
    }
    let report = mem.report();
    let reshards = report.events_of(Event::RESHARD);
    assert_eq!(reshards.len(), 1, "cross-world restore reshards exactly once");
    assert_eq!(reshards[0].num("world"), Some(3.0));
    // The canonical snapshot is world-size-independent: restoring at a
    // different world leaves its bytes untouched.
    assert_eq!(std::fs::read(&snap_path).unwrap(), canonical_bytes);

    // Phase 3: continue at P = 3 for 2 more epochs. The stitched curve
    // keeps the 4-rank epochs bit-for-bit and finishes under a 3-rank
    // layout.
    let cont = train_data_parallel_elastic(
        &d,
        cfg(4),
        3,
        factory(&d),
        FaultPlan::default(),
        None,
        &store,
        torchgt::obs::noop(),
    )
    .unwrap();
    assert_eq!(cont.stats.epoch_losses.len(), 4);
    for (a, b) in cont.stats.epoch_losses[..2].iter().zip(&four.stats.epoch_losses) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let last = store.load_latest().unwrap().unwrap();
    assert_eq!(last.state.epoch, 4);
    assert_eq!(last.layout.as_ref().unwrap().world, 3);
}

/// The full escalation ladder end-to-end: global rank 1 dies for good at
/// the start of epoch 2 of a 4-rank run. The driver retries, restores,
/// then shrinks to 3 ranks and finishes every epoch. Pre-loss epochs match
/// the clean run bit-for-bit, the stitched curve covers every epoch
/// exactly once, and the degraded run's final loss stays comparable.
#[test]
fn permanent_rank_loss_shrinks_and_finishes() {
    let d = dataset();
    let epochs = 4;

    let clean_store = scratch_store("tgt-elastic-e2e-clean");
    let clean = train_data_parallel_elastic(
        &d,
        cfg(epochs),
        4,
        factory(&d),
        FaultPlan::default(),
        None,
        &clean_store,
        torchgt::obs::noop(),
    )
    .unwrap();
    assert_eq!(clean.final_world, 4);

    let store = scratch_store("tgt-elastic-e2e-lost");
    let mem = Arc::new(MemoryRecorder::default());
    let lost = train_data_parallel_elastic(
        &d,
        cfg(epochs),
        4,
        factory(&d),
        FaultPlan::default(),
        Some("1@2".parse().unwrap()),
        &store,
        mem.clone(),
    )
    .unwrap();

    // Degraded-mode completion: shrank once, lost exactly rank 1, finished
    // at P = 3 under a fresh generation.
    assert_eq!(lost.initial_world, 4);
    assert_eq!(lost.final_world, 3);
    assert_eq!(lost.shrinks, 1);
    assert_eq!(lost.lost_ranks, vec![1]);
    assert_eq!(lost.generation, 1);
    assert!(lost.restarts >= 2, "retry then escalate: {} restarts", lost.restarts);

    // The stitched loss curve covers every epoch exactly once, and the
    // epochs trained before the loss match the clean run bit-for-bit.
    assert_eq!(lost.stats.epoch_losses.len(), epochs);
    for (a, b) in lost.stats.epoch_losses[..2].iter().zip(&clean.stats.epoch_losses) {
        assert_eq!(a.to_bits(), b.to_bits(), "pre-loss epochs must be unperturbed");
    }
    // Degraded epochs still train: the curve keeps descending and lands in
    // the same neighbourhood as the full-strength run.
    let final_lost = *lost.stats.epoch_losses.last().unwrap();
    let final_clean = *clean.stats.epoch_losses.last().unwrap();
    assert!(final_lost < lost.stats.epoch_losses[0], "loss must keep decreasing");
    assert!(
        (final_lost - final_clean).abs() < 0.3 * final_clean.max(1.0),
        "degraded-mode accuracy out of tolerance: {final_lost} vs {final_clean}"
    );

    // Membership transitions surfaced as events.
    let report = mem.report();
    assert_eq!(report.events_of(Event::RANK_LOST).len(), 1);
    let shrunk = report.events_of(Event::GROUP_SHRUNK);
    assert_eq!(shrunk.len(), 1);
    assert_eq!(shrunk[0].num("from_world"), Some(4.0));
    assert_eq!(shrunk[0].num("to_world"), Some(3.0));
    assert_eq!(shrunk[0].num("lost_rank"), Some(1.0));
    assert_eq!(report.events_of(Event::RESHARD).len(), 1);
    // One rollup per closed generation plus the final one.
    assert!(report.events_of(Event::GENERATION_ROLLUP).len() >= 2);
}

/// Shrinking stops at the policy floor: losing a rank of a 2-rank group
/// with `min_ranks = 2` must fail rather than limp on below quorum.
#[test]
fn shrink_respects_the_min_ranks_floor() {
    let d = dataset();
    let store = scratch_store("tgt-elastic-floor");
    let err = train_data_parallel_elastic(
        &d,
        cfg(3),
        2,
        factory(&d),
        FaultPlan::default(),
        Some(RankLoss { rank: 0, epoch: 1 }),
        &store,
        torchgt::obs::noop(),
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("min_ranks"),
        "expected the floor to block the shrink: {err}"
    );
}

/// A scripted trainer for the numerical-health guard: produces a NaN epoch
/// loss on demand, with enough snapshot plumbing for restore to roll the
/// epoch cursor back.
struct PoisonTrainer {
    cfg: TrainConfig,
    epoch: usize,
    /// Epochs that produce a NaN loss. `sticky` keeps poisoning on retry.
    poison_at: Option<usize>,
    sticky: bool,
}

impl PoisonTrainer {
    fn new(epochs: usize, poison_at: Option<usize>, sticky: bool) -> Self {
        Self { cfg: cfg(epochs), epoch: 0, poison_at, sticky }
    }
}

impl Trainer for PoisonTrainer {
    fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    fn attach_recorder(&mut self, _recorder: RecorderHandle) {}

    fn train_epoch(&mut self) -> EpochStats {
        let poisoned = self.poison_at == Some(self.epoch);
        if poisoned && !self.sticky {
            self.poison_at = None;
        }
        let loss = if poisoned { f32::NAN } else { 1.0 / (self.epoch + 1) as f32 };
        let stats = EpochStats {
            epoch: self.epoch,
            loss,
            train_acc: 0.0,
            test_acc: 0.0,
            wall_seconds: 0.0,
            sim_seconds: 0.0,
            sparse_iters: 0,
            full_iters: 0,
            beta_thre: 0.0,
        };
        self.epoch += 1;
        stats
    }

    fn evaluate(&mut self) -> (f64, f64) {
        (0.0, 0.0)
    }

    fn epoch(&self) -> usize {
        self.epoch
    }

    fn snapshot(&mut self) -> Snapshot {
        Snapshot {
            state: TrainerState::basic(self.epoch, self.epoch as u64),
            params: Vec::new(),
            layout: None,
            dataset_id: None,
        }
    }

    fn restore(&mut self, snapshot: &Snapshot) -> std::io::Result<()> {
        self.epoch = snapshot.state.epoch;
        Ok(())
    }
}

/// A transient NaN epoch is healed by one restore from the last good
/// snapshot: the run completes with every recorded epoch finite, and the
/// poisoned epoch surfaces as a LOSS_NONFINITE event.
#[test]
fn nonfinite_loss_restores_once_and_completes() {
    let store = scratch_store("tgt-elastic-nanheal");
    let mem = Arc::new(MemoryRecorder::default());
    let rec: RecorderHandle = mem.clone();
    let mut t = PoisonTrainer::new(4, Some(2), false);
    let out = run_with_checkpoints(
        &mut t,
        &store,
        &CheckpointOptions { every: 1, resume: false, crash_after: None },
        &rec,
    )
    .unwrap();
    assert_eq!(out.stats.len(), 4, "every epoch recorded exactly once");
    assert!(out.stats.iter().all(|s| s.loss.is_finite()));
    let report = mem.report();
    assert_eq!(report.events_of(Event::LOSS_NONFINITE).len(), 1);
    assert_eq!(report.events_of(Event::RESTORE).len(), 1);
}

/// A recurring NaN (the run itself is diverging) fails after the single
/// restore instead of looping forever; a NaN before any snapshot exists
/// fails immediately.
#[test]
fn recurring_or_cold_nonfinite_loss_fails() {
    let store = scratch_store("tgt-elastic-nanfail");
    let noop = torchgt::obs::noop();
    let mut sticky = PoisonTrainer::new(4, Some(2), true);
    let err = run_with_checkpoints(
        &mut sticky,
        &store,
        &CheckpointOptions { every: 1, resume: false, crash_after: None },
        &noop,
    )
    .unwrap_err();
    assert!(err.to_string().contains("non-finite"), "{err}");

    let cold_store = scratch_store("tgt-elastic-nancold");
    let mut cold = PoisonTrainer::new(4, Some(0), false);
    let err = run_with_checkpoints(
        &mut cold,
        &cold_store,
        &CheckpointOptions { every: 1, resume: false, crash_after: None },
        &noop,
    )
    .unwrap_err();
    assert!(err.to_string().contains("non-finite"), "{err}");
}

/// The CLI elastic path end-to-end through the real binary: a scripted
/// permanent rank loss must exit 0, shrink to `P − 1`, and surface the
/// membership transitions in the metrics JSON.
#[test]
fn cli_elastic_survives_scripted_rank_loss() {
    let ckpt: PathBuf = std::env::temp_dir().join("tgt-elastic-cli-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt);
    let metrics = std::env::temp_dir().join("tgt-elastic-cli.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_torchgt_cli"))
        .args([
            "train", "--dataset", "arxiv", "--method", "gp-sparse", "--elastic",
            "--world", "4", "--min-ranks", "2", "--lose-rank", "1@1",
            "--epochs", "2", "--scale", "0.002", "--seq-len", "128", "--seed", "7",
        ])
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("CLI runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("finished at world 3"), "stdout: {stdout}");
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"group_shrunk\""), "metrics missing group_shrunk event");
    assert!(json.contains("\"reshard\""), "metrics missing reshard event");
    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_file(&metrics);
}
