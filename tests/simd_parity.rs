//! Backend-differential parity harness.
//!
//! Every compiled kernel backend (scalar, AVX2, AVX-512 — whichever this CPU
//! supports) is fed identical inputs, including NaN/Inf/denormal/negative-zero
//! edge cases and non-contiguous `view_cols` strides, and compared against the
//! scalar reference. Two parity classes, per kernel:
//!
//! | kernel                         | class       | bound                               |
//! |--------------------------------|-------------|-------------------------------------|
//! | `matmul_into` / `matmul_at_into` | bit-exact | broadcast-axpy, mul+add per element |
//! | `add/sub/mul/scale_into`       | bit-exact   | one IEEE op per element             |
//! | axpy / scale_assign / div      | bit-exact   | same two roundings per element      |
//! | `matmul_bt_into` (dot)         | ULP-bounded | `2k·ε·Σ|aᵢbᵢ|`, ε = 6e-8 (FMA + 4 accumulators) |
//! | `row_softmax_into`             | ULP-bounded | rel 1e-5 (vector exp); ±Inf/NaN rows bit-identical |
//! | `gelu_into`                    | ULP-bounded | rel 1e-5 or abs 1e-6 (vector tanh)  |
//! | `gelu_backward_into`           | ULP-bounded | rel 1e-5 or abs 2e-5 (tanh error amplified by the sech² product term) |
//! | `layer_norm_into` / backward   | ULP-bounded | rel 1e-4 or abs 1e-4 (sum/dot reductions) |
//! | `sub_block_attention`          | ULP-bounded | rel 1e-5 (dot + exp per edge)       |
//!
//! "Bit-exact" means every output bit matches the scalar backend (NaNs
//! compare equal regardless of payload; signed zeros must match exactly).
//! The file also carries the dispatch-override CLI matrix and the
//! full-trainer gate: 3-epoch `GraphTrainer` loss histories re-executed
//! under each backend must agree within tolerance.

use std::process::Command;
use torchgt::tensor::backend::{self, Backend};
use torchgt::tensor::{init, ops, MatRef, Tensor, Workspace};
use torchgt_compat::proptest::prelude::*;

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

/// Bit-exact comparison: identical bits, except any-NaN matches any-NaN.
fn assert_bits_eq(kernel: &str, be: Backend, reference: &[f32], got: &[f32]) -> Result<(), TestCaseError> {
    prop_assert_eq!(reference.len(), got.len());
    for (i, (&r, &g)) in reference.iter().zip(got).enumerate() {
        let same = (r.is_nan() && g.is_nan()) || r.to_bits() == g.to_bits();
        prop_assert!(
            same,
            "{kernel} [{}] idx {i}: scalar {r:e} ({:#010x}) vs {g:e} ({:#010x})",
            be.name(),
            r.to_bits(),
            g.to_bits()
        );
    }
    Ok(())
}

/// Tolerance comparison: same non-finite class, else `|Δ| ≤ max(abs, rel·|r|)`.
fn assert_close(
    kernel: &str,
    be: Backend,
    reference: &[f32],
    got: &[f32],
    rel: f32,
    abs: f32,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(reference.len(), got.len());
    for (i, (&r, &g)) in reference.iter().zip(got).enumerate() {
        if r.is_nan() || g.is_nan() {
            prop_assert!(
                r.is_nan() && g.is_nan(),
                "{kernel} [{}] idx {i}: NaN class mismatch: scalar {r} vs {g}",
                be.name()
            );
            continue;
        }
        if r.is_infinite() || g.is_infinite() {
            prop_assert!(
                r == g,
                "{kernel} [{}] idx {i}: infinity mismatch: scalar {r} vs {g}",
                be.name()
            );
            continue;
        }
        let tol = abs.max(rel * r.abs());
        prop_assert!(
            (r - g).abs() <= tol,
            "{kernel} [{}] idx {i}: scalar {r:e} vs {g:e} (|Δ| {:e} > tol {tol:e})",
            be.name(),
            (r - g).abs()
        );
    }
    Ok(())
}

/// Error bound for a `k`-term f32 dot product allowed to reassociate and use
/// FMA: `2·k·ε·Σ|aᵢbᵢ|` with the magnitude sum taken in f64.
fn dot_bound(a: &[f32], b: &[f32]) -> f32 {
    let mag: f64 = a.iter().zip(b).map(|(&x, &y)| (x as f64 * y as f64).abs()).sum();
    (2.0 * a.len() as f64 * 6e-8 * mag).max(1e-30) as f32
}

/// Finite values including denormals, signed zeros, exp-range edges.
fn arb_edge_f32() -> impl Strategy<Value = f32> {
    (0usize..12, -4.0f32..4.0).prop_map(|(pick, x)| match pick {
        0 => 0.0,
        1 => -0.0,
        2 => 1.0e-40,       // positive denormal
        3 => -3.0e-42,      // negative denormal
        4 => f32::MIN_POSITIVE,
        5 => 88.5,          // just above exp overflow threshold
        6 => -88.5,         // just below exp underflow threshold
        7 => 12.5,          // beyond the tanh saturation clamp
        8 => -12.5,
        _ => x,
    })
}

/// Like [`arb_edge_f32`] but also NaN and ±Inf.
fn arb_special_f32() -> impl Strategy<Value = f32> {
    (0usize..15, -4.0f32..4.0).prop_map(|(pick, x)| match pick {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => 1.0e-40,
        6 => -3.0e-42,
        7 => 88.5,
        8 => -88.5,
        _ => x,
    })
}

fn tensor_of(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
    let mut data = Vec::with_capacity(rows * cols);
    for i in 0..rows * cols {
        data.push(vals[i % vals.len()]);
    }
    Tensor::from_vec(rows, cols, data)
}

fn arb_tensor(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> impl Strategy<Value = Tensor> {
    (rows, cols, 0u64..100_000)
        .prop_map(|(r, c, seed)| init::normal(r, c, 0.0, 1.0, seed.wrapping_add(1)))
}

/// A tensor whose entries mix normal draws with edge-case finite values.
fn arb_edge_tensor(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> impl Strategy<Value = Tensor> {
    (rows, cols, 0u64..100_000, collection::vec(arb_edge_f32(), 4..32)).prop_map(
        |(r, c, seed, edges)| {
            let mut t = init::normal(r, c, 0.0, 1.0, seed.wrapping_add(1));
            for (i, v) in t.data_mut().iter_mut().enumerate() {
                if i % 3 == 0 {
                    *v = edges[i % edges.len()];
                }
            }
            t
        },
    )
}

fn non_scalar_backends() -> Vec<Backend> {
    backend::supported().into_iter().filter(|b| *b != Backend::Scalar).collect()
}

// ---------------------------------------------------------------------------
// Property-based cross-backend parity
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Broadcast-axpy matmuls are bit-exact across backends, including on
    /// edge-case inputs (denormals, signed zeros, exp-range magnitudes).
    #[test]
    fn matmul_kernels_are_bit_exact(a in arb_edge_tensor(1..9, 1..40), seed in 0u64..1000) {
        let b = init::normal(a.cols(), 5, 0.0, 1.0, seed.wrapping_add(7));
        let bt = init::normal(a.rows(), 6, 0.0, 1.0, seed.wrapping_add(11));
        let mut want = Tensor::zeros(a.rows(), b.cols());
        ops::matmul_into_with(Backend::Scalar, &a, &b, &mut want);
        let mut want_at = Tensor::zeros(a.cols(), bt.cols());
        ops::matmul_at_into_with(Backend::Scalar, &a, &bt, &mut want_at);
        for be in non_scalar_backends() {
            let mut got = Tensor::zeros(a.rows(), b.cols());
            ops::matmul_into_with(be, &a, &b, &mut got);
            assert_bits_eq("matmul_into", be, want.data(), got.data())?;
            let mut got_at = Tensor::zeros(a.cols(), bt.cols());
            ops::matmul_at_into_with(be, &a, &bt, &mut got_at);
            assert_bits_eq("matmul_at_into", be, want_at.data(), got_at.data())?;
        }
    }

    /// Elementwise add/sub/mul/scale are bit-exact across backends even on
    /// NaN/Inf/denormal/negative-zero inputs.
    #[test]
    fn elementwise_kernels_are_bit_exact(
        av in collection::vec(arb_special_f32(), 1..70),
        bv in collection::vec(arb_special_f32(), 1..70),
        s in arb_special_f32(),
    ) {
        let n = av.len().min(bv.len());
        let a = tensor_of(2, n, &av);
        let b = tensor_of(2, n, &bv);
        for (name, f) in [
            ("add_into", ops::add_into_with as fn(Backend, &Tensor, &Tensor, &mut Tensor)),
            ("sub_into", ops::sub_into_with),
            ("mul_into", ops::mul_into_with),
        ] {
            let mut want = Tensor::zeros(2, n);
            f(Backend::Scalar, &a, &b, &mut want);
            for be in non_scalar_backends() {
                let mut got = Tensor::zeros(2, n);
                f(be, &a, &b, &mut got);
                assert_bits_eq(name, be, want.data(), got.data())?;
            }
        }
        let mut want = Tensor::zeros(2, n);
        ops::scale_into_with(Backend::Scalar, &a, s, &mut want);
        for be in non_scalar_backends() {
            let mut got = Tensor::zeros(2, n);
            ops::scale_into_with(be, &a, s, &mut got);
            assert_bits_eq("scale_into", be, want.data(), got.data())?;
        }
    }

    /// `matmul_bt_into` cells are dot products: ULP-bounded by the
    /// reassociation + FMA envelope `2k·ε·Σ|aᵢbᵢ|` per cell.
    #[test]
    fn matmul_bt_is_within_dot_bound(a in arb_tensor(1..8, 1..70), seed in 0u64..1000) {
        let b = init::normal(5, a.cols(), 0.0, 1.0, seed.wrapping_add(3));
        let mut want = Tensor::zeros(a.rows(), b.rows());
        ops::matmul_bt_into_with(Backend::Scalar, &a, &b, &mut want);
        for be in non_scalar_backends() {
            let mut got = Tensor::zeros(a.rows(), b.rows());
            ops::matmul_bt_into_with(be, &a, &b, &mut got);
            for r in 0..a.rows() {
                for c in 0..b.rows() {
                    let bound = dot_bound(a.row(r), b.row(c));
                    let (w, g) = (want.get(r, c), got.get(r, c));
                    prop_assert!(
                        (w - g).abs() <= bound,
                        "matmul_bt [{}] ({r},{c}): {w:e} vs {g:e} (bound {bound:e})",
                        be.name()
                    );
                }
            }
        }
    }

    /// Softmax rows agree within relative 1e-5 on finite rows and are
    /// bit-identical on poisoned rows (NaN → all-NaN, ±Inf handled).
    #[test]
    fn row_softmax_parity(x in arb_tensor(1..8, 1..40), specials in collection::vec(arb_special_f32(), 1..12)) {
        let mut poisoned = x.clone();
        for (i, v) in poisoned.data_mut().iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = specials[i % specials.len()];
            }
        }
        for input in [&x, &poisoned] {
            let mut want = Tensor::zeros(input.rows(), input.cols());
            ops::row_softmax_into_with(Backend::Scalar, input, &mut want);
            for be in non_scalar_backends() {
                let mut got = Tensor::zeros(input.rows(), input.cols());
                ops::row_softmax_into_with(be, input, &mut got);
                assert_close("row_softmax", be, want.data(), got.data(), 1e-5, 1e-7)?;
            }
        }
    }

    /// GELU forward/backward within rel 1e-5 / abs 1e-6 (vector tanh); NaN
    /// and ±Inf classifications match the scalar reference exactly.
    #[test]
    fn gelu_parity(x in arb_edge_tensor(1..8, 1..40), seed in 0u64..1000) {
        let dy = init::normal(x.rows(), x.cols(), 0.0, 1.0, seed.wrapping_add(29));
        let mut want = Tensor::zeros(x.rows(), x.cols());
        ops::gelu_into_with(Backend::Scalar, &x, &mut want);
        let mut want_g = Tensor::zeros(x.rows(), x.cols());
        ops::gelu_backward_into_with(Backend::Scalar, &x, &dy, &mut want_g);
        for be in non_scalar_backends() {
            let mut got = Tensor::zeros(x.rows(), x.cols());
            ops::gelu_into_with(be, &x, &mut got);
            assert_close("gelu", be, want.data(), got.data(), 1e-5, 1e-6)?;
            let mut got_g = Tensor::zeros(x.rows(), x.cols());
            ops::gelu_backward_into_with(be, &x, &dy, &mut got_g);
            assert_close("gelu_backward", be, want_g.data(), got_g.data(), 1e-5, 2e-5)?;
        }
    }

    /// LayerNorm forward + backward within rel/abs 1e-4 (sum, dot and dot3
    /// reductions reassociate on SIMD backends).
    #[test]
    fn layer_norm_parity(x in arb_tensor(1..8, 2..40), seed in 0u64..1000) {
        let cols = x.cols();
        let gamma = init::normal(1, cols, 1.0, 0.2, seed.wrapping_add(31));
        let beta = init::normal(1, cols, 0.0, 0.2, seed.wrapping_add(37));
        let dy = init::normal(x.rows(), cols, 0.0, 1.0, seed.wrapping_add(41));
        let run = |be: Backend| {
            let mut out = Tensor::zeros(x.rows(), cols);
            let mut xhat = Tensor::zeros(x.rows(), cols);
            let mut inv_std = Vec::new();
            ops::layer_norm_stats_into_with(be, &x, &gamma, &beta, 1e-5, &mut out, &mut xhat, &mut inv_std);
            let mut plain = Tensor::zeros(x.rows(), cols);
            ops::layer_norm_into_with(be, &x, &gamma, &beta, 1e-5, &mut plain);
            let mut dx = Tensor::zeros(x.rows(), cols);
            let mut dgamma = Tensor::zeros(1, cols);
            let mut dbeta = Tensor::zeros(1, cols);
            ops::layer_norm_backward_into_with(be, &xhat, &inv_std, &gamma, &dy, &mut dx, &mut dgamma, &mut dbeta);
            (out, plain, dx, dgamma, dbeta)
        };
        let (w_out, w_plain, w_dx, w_dg, w_db) = run(Backend::Scalar);
        // The stats-recording forward and the plain one share every rounding.
        prop_assert_eq!(w_out.data(), w_plain.data());
        for be in non_scalar_backends() {
            let (g_out, g_plain, g_dx, g_dg, g_db) = run(be);
            prop_assert_eq!(g_out.data(), g_plain.data());
            assert_close("layer_norm", be, w_out.data(), g_out.data(), 1e-4, 1e-4)?;
            assert_close("layer_norm dx", be, w_dx.data(), g_dx.data(), 1e-4, 1e-4)?;
            assert_close("layer_norm dgamma", be, w_dg.data(), g_dg.data(), 1e-4, 1e-4)?;
            assert_close("layer_norm dbeta", be, w_db.data(), g_db.data(), 1e-4, 1e-4)?;
        }
    }

    /// Kernels fed non-contiguous `view_cols` column blocks see exactly the
    /// strided rows: bit-exact for axpy matmuls, dot-bounded for `bt`.
    #[test]
    fn strided_views_keep_parity(t in arb_edge_tensor(1..8, 4..24), seed in 0u64..1000) {
        let cols = t.cols();
        let width = 2 + (seed as usize % (cols / 2));
        let start = (seed as usize / 7) % (cols - width);
        let view = t.view_cols(start, start + width);
        let b = init::normal(width, 3, 0.0, 1.0, seed.wrapping_add(43));
        let bt = init::normal(4, width, 0.0, 1.0, seed.wrapping_add(47));
        let mut want = Tensor::zeros(t.rows(), 3);
        ops::matmul_into_with(Backend::Scalar, &view, &b, &mut want);
        let mut want_bt = Tensor::zeros(t.rows(), 4);
        ops::matmul_bt_into_with(Backend::Scalar, &view, &bt, &mut want_bt);
        let mut want_sm = Tensor::zeros(t.rows(), width);
        ops::row_softmax_into_with(Backend::Scalar, &view, &mut want_sm);
        for be in non_scalar_backends() {
            let mut got = Tensor::zeros(t.rows(), 3);
            ops::matmul_into_with(be, &view, &b, &mut got);
            assert_bits_eq("matmul_into(view)", be, want.data(), got.data())?;
            let mut got_bt = Tensor::zeros(t.rows(), 4);
            ops::matmul_bt_into_with(be, &view, &bt, &mut got_bt);
            for r in 0..t.rows() {
                for c in 0..4 {
                    let bound = dot_bound(view.row(r), bt.row(c));
                    let (w, g) = (want_bt.get(r, c), got_bt.get(r, c));
                    prop_assert!(
                        (w - g).abs() <= bound || (w.is_nan() && g.is_nan()),
                        "matmul_bt(view) [{}] ({r},{c}): {w:e} vs {g:e} (bound {bound:e})",
                        be.name()
                    );
                }
            }
            let mut got_sm = Tensor::zeros(t.rows(), width);
            ops::row_softmax_into_with(be, &view, &mut got_sm);
            assert_close("row_softmax(view)", be, want_sm.data(), got_sm.data(), 1e-5, 1e-7)?;
        }
    }

    /// The cluster-sparse sub-block attention kernel agrees across backends
    /// and is bit-identical to `attention::sparse` under the active backend
    /// (the two kernels visit columns in the same ascending order).
    #[test]
    fn sub_block_attention_parity(s in 6usize..20, d_head in 2usize..6, seed in 0u64..1000) {
        use torchgt::graph::generators::cycle_graph;
        use torchgt::sparse::{sub_block_attention_with, BlockCsr};
        let heads = 2;
        let d = heads * d_head;
        let q = init::normal(s, d, 0.0, 1.0, seed.wrapping_add(51));
        let k = init::normal(s, d, 0.0, 1.0, seed.wrapping_add(53));
        let v = init::normal(s, d, 0.0, 1.0, seed.wrapping_add(57));
        let mask = cycle_graph(s).with_self_loops();
        let blocks = BlockCsr::from_mask(&mask, 4);
        let mut ws = Workspace::new();
        let want = sub_block_attention_with(Backend::Scalar, &q, &k, &v, heads, &blocks, &mut ws);
        for be in non_scalar_backends() {
            let got = sub_block_attention_with(be, &q, &k, &v, heads, &blocks, &mut ws);
            assert_close("sub_block_attention", be, want.data(), got.data(), 1e-5, 1e-6)?;
            ws.give(got);
        }
        // Cross-kernel: same mask through the CSR sparse kernel, same
        // (active) backend on both sides → bit-identical output.
        let csr = torchgt::model::attention::sparse(&q, &k, &v, heads, &mask, None);
        let active = torchgt::sparse::sub_block_attention(&q, &k, &v, heads, &blocks);
        prop_assert_eq!(csr.out.data(), active.data());
    }
}

// ---------------------------------------------------------------------------
// Dot-product special-value classification
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dot products over NaN/±Inf/denormal inputs land in the same IEEE
    /// class on every backend (reassociation cannot change whether a NaN or
    /// an infinity contaminates the sum for these inputs).
    #[test]
    fn dot_special_value_classes_match(
        av in collection::vec(arb_special_f32(), 1..70),
        bv in collection::vec(arb_special_f32(), 1..70),
    ) {
        let n = av.len().min(bv.len());
        let (a, b) = (&av[..n], &bv[..n]);
        // Mixed-sign infinite products make the class order-dependent only
        // through NaN, which both orders produce; verify that claim holds.
        let want = Backend::Scalar.dot(a, b);
        for be in non_scalar_backends() {
            let got = be.dot(a, b);
            if want.is_nan() {
                prop_assert!(got.is_nan(), "[{}] scalar NaN vs {got}", be.name());
            } else if want.is_infinite() {
                prop_assert!(got == want, "[{}] scalar {want} vs {got}", be.name());
            } else {
                let bound = dot_bound(a, b);
                prop_assert!(
                    (want - got).abs() <= bound,
                    "[{}] scalar {want:e} vs {got:e} (bound {bound:e})",
                    be.name()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Full-trainer gate: 3-epoch GraphTrainer loss histories across backends
// ---------------------------------------------------------------------------

fn graph_trainer_losses(epochs: usize) -> Vec<f32> {
    use torchgt::comm::ClusterTopology;
    use torchgt::graph::DatasetKind;
    use torchgt::model::{Gt, GtConfig};
    use torchgt::perf::{GpuSpec, ModelShape};
    use torchgt::runtime::{GraphTrainer, Method, TrainConfig};

    let data = DatasetKind::MalNet.generate_graphs(8, 0.002, 5);
    let mut cfg = TrainConfig::new(Method::GpSparse, 64, epochs);
    cfg.lr = 2e-3;
    let model = Box::new(Gt::new(GtConfig::tiny(data.feat_dim, 5), 9));
    let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
    let mut trainer = GraphTrainer::new(
        cfg,
        &data,
        model,
        shape,
        GpuSpec::rtx3090(),
        ClusterTopology::rtx3090(1),
    );
    (0..epochs).map(|_| trainer.train_epoch().loss).collect()
}

/// Child-process hook for the cross-backend trainer gate: when
/// `TORCHGT_PARITY_OUT` is set, runs 3 trainer epochs under whatever
/// `TORCHGT_BACKEND` the parent chose and writes the loss history there.
/// Without the env var it is a plain (cheap) smoke test of the trainer.
#[test]
fn trainer_loss_probe() {
    let losses = graph_trainer_losses(3);
    assert_eq!(losses.len(), 3);
    assert!(losses.iter().all(|l| l.is_finite()), "non-finite loss: {losses:?}");
    if let Ok(path) = std::env::var("TORCHGT_PARITY_OUT") {
        let body: String = losses.iter().map(|l| format!("{l:e}\n")).collect();
        std::fs::write(&path, body).expect("write parity losses");
    }
}

/// The dispatch backend must not change what the model learns: re-execute
/// the 3-epoch probe under every supported backend and require the loss
/// histories to agree within 2% relative tolerance (reassociated dots and
/// polynomial exp/tanh perturb trajectories by ULPs, not by semantics).
#[test]
fn graph_trainer_loss_history_agrees_across_backends() {
    let exe = std::env::current_exe().expect("test binary path");
    let mut scalar_losses: Option<Vec<f32>> = None;
    for be in backend::supported() {
        let out = std::env::temp_dir().join(format!(
            "torchgt_parity_{}_{}.txt",
            std::process::id(),
            be.name()
        ));
        let status = Command::new(&exe)
            .args(["--exact", "trainer_loss_probe", "--test-threads", "1"])
            .env(backend::ENV_VAR, be.name())
            .env("TORCHGT_PARITY_OUT", &out)
            .status()
            .expect("spawn trainer probe");
        assert!(status.success(), "probe under {} failed: {status}", be.name());
        let body = std::fs::read_to_string(&out).expect("read parity losses");
        let _ = std::fs::remove_file(&out);
        let losses: Vec<f32> = body.lines().map(|l| l.parse().expect("loss f32")).collect();
        assert_eq!(losses.len(), 3, "{}: {body:?}", be.name());
        match &scalar_losses {
            None => {
                assert_eq!(be, Backend::Scalar, "supported() must list scalar first");
                scalar_losses = Some(losses);
            }
            Some(reference) => {
                for (epoch, (&r, &g)) in reference.iter().zip(&losses).enumerate() {
                    assert!(
                        (r - g).abs() <= 0.02 * r.abs().max(0.1),
                        "{}: epoch {epoch} loss {g} diverged from scalar {r}",
                        be.name()
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CLI dispatch-override matrix
// ---------------------------------------------------------------------------

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_torchgt_cli"))
}

fn train_args(metrics: &std::path::Path) -> Vec<String> {
    [
        "train", "--dataset", "arxiv", "--method", "torchgt", "--epochs", "1", "--scale",
        "0.002", "--seq-len", "64", "--hidden", "16", "--layers", "2", "--heads", "2",
        "--seed", "7", "--metrics",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([metrics.to_string_lossy().into_owned()])
    .collect()
}

/// `--backend scalar` and the detected best backend both drive the CLI end
/// to end, and `--metrics` reports which backend ran.
#[test]
fn cli_backend_override_matrix() {
    for be in [Backend::Scalar, backend::detect_best()] {
        let metrics = std::env::temp_dir().join(format!(
            "torchgt_cli_backend_{}_{}.json",
            std::process::id(),
            be.name()
        ));
        let output = cli()
            .args(train_args(&metrics))
            .args(["--backend", be.name()])
            .env_remove(backend::ENV_VAR)
            .output()
            .expect("run torchgt_cli");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "cli --backend {} failed: {stdout}\n{}",
            be.name(),
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            stdout.contains(&format!("kernel backend: {}", be.name())),
            "stdout must announce the backend: {stdout}"
        );
        let report = std::fs::read_to_string(&metrics).expect("metrics written");
        let _ = std::fs::remove_file(&metrics);
        assert!(report.contains("\"backend\""), "metrics missing backend event");
        assert!(
            report.contains(&format!("\"{}\"", be.name())),
            "metrics must name the backend that ran"
        );
    }
}

/// Requesting an unknown or unsupported backend is a clear usage error
/// (exit 2 with a diagnostic), never a SIGILL or a panic.
#[test]
fn cli_rejects_bad_backends_cleanly() {
    for (flag_value, expect) in [
        ("avx999", "unknown kernel backend"),
        ("neon", "unknown kernel backend"),
    ] {
        let metrics = std::env::temp_dir().join(format!(
            "torchgt_cli_badbackend_{}.json",
            std::process::id()
        ));
        let output = cli()
            .args(train_args(&metrics))
            .args(["--backend", flag_value])
            .env_remove(backend::ENV_VAR)
            .output()
            .expect("run torchgt_cli");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(output.status.code(), Some(2), "want usage exit: {stderr}");
        assert!(stderr.contains(expect), "unhelpful error: {stderr}");
        assert!(!metrics.exists(), "failed run must not write metrics");
    }
    // The env override takes the same validated path as the flag.
    let output = cli()
        .args(["train", "--dataset", "arxiv", "--epochs", "1", "--scale", "0.002"])
        .env(backend::ENV_VAR, "sse9000")
        .output()
        .expect("run torchgt_cli");
    assert_eq!(output.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("unknown kernel backend"),
        "env override must fail with the same diagnostic"
    );
}

/// Any backend named by `supported()` really runs: a smoke kernel under a
/// forced override executes without SIGILL and matches scalar.
#[test]
fn every_supported_backend_is_exercised_in_process() {
    let a: Vec<f32> = (0..133).map(|i| (i as f32).sin()).collect();
    let b: Vec<f32> = (0..133).map(|i| (i as f32).cos()).collect();
    let want = Backend::Scalar.dot(&a, &b);
    for be in backend::supported() {
        let got = be.dot(&a, &b);
        assert!(
            (want - got).abs() <= dot_bound(&a, &b),
            "{}: {want} vs {got}",
            be.name()
        );
    }
}
