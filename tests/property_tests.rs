//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use torchgt_compat::proptest::prelude::*;
use torchgt::graph::generators::{clustered_power_law, erdos_renyi, ClusteredConfig};
use torchgt::graph::partition::{cluster_order, edge_cut, partition};
use torchgt::graph::CsrGraph;
use torchgt::model::attention;
use torchgt::sparse::{access_profile, reform, topology_mask, ReformConfig};
use torchgt::tensor::bf16::bf16_round;
use torchgt::tensor::{init, ops, Tensor};

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (4usize..60, 0usize..150, 0u64..1000)
        .prop_map(|(n, m, seed)| erdos_renyi(n, m, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR construction is symmetric and degree-consistent for any edge set.
    #[test]
    fn csr_symmetry(g in arb_graph()) {
        for v in 0..g.num_nodes() {
            for &nb in g.neighbors(v) {
                prop_assert!(g.has_edge(nb as usize, v), "asymmetry at ({v},{nb})");
            }
        }
        let total: usize = (0..g.num_nodes()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, g.num_arcs());
    }

    /// Self-loop augmentation is idempotent and preserves existing edges.
    #[test]
    fn self_loop_idempotent(g in arb_graph()) {
        let a = g.with_self_loops();
        let b = a.with_self_loops();
        prop_assert_eq!(&a, &b);
        for v in 0..g.num_nodes() {
            prop_assert!(a.has_edge(v, v));
            for &nb in g.neighbors(v) {
                prop_assert!(a.has_edge(v, nb as usize));
            }
        }
    }

    /// Permuting a graph preserves edge count, degree multiset and
    /// round-trips through the inverse permutation.
    #[test]
    fn permutation_preserves_structure(g in arb_graph(), seed in 0u64..500) {
        let n = g.num_nodes();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        // Fisher–Yates with a simple LCG for determinism inside proptest.
        let mut state = seed.wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let p = g.permute(&perm);
        prop_assert_eq!(p.num_arcs(), g.num_arcs());
        let mut d1: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        let mut d2: Vec<usize> = (0..n).map(|v| p.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
        // Inverse round-trip.
        let mut inverse = vec![0u32; n];
        for (new, &old) in perm.iter().enumerate() {
            inverse[old as usize] = new as u32;
        }
        let back = p.permute(&inverse);
        prop_assert_eq!(&back, &g);
    }

    /// Partition output is a valid k-assignment and the cluster ordering is
    /// a true permutation.
    #[test]
    fn partition_and_order_are_valid(
        n in 16usize..120,
        k in 2usize..6,
        seed in 0u64..100
    ) {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n, communities: k, avg_degree: 6.0, intra_fraction: 0.8 },
            seed,
        );
        let assign = partition(&g, k, seed);
        prop_assert_eq!(assign.len(), n);
        prop_assert!(assign.iter().all(|&c| (c as usize) < k));
        let order = cluster_order(&assign, k);
        let mut seen = vec![false; n];
        for &old in &order.perm {
            prop_assert!(!seen[old as usize]);
            seen[old as usize] = true;
        }
        prop_assert!(order.cluster_of_new.windows(2).all(|w| w[0] <= w[1]));
        // Edge cut is at most all edges.
        prop_assert!(edge_cut(&g, &assign) <= g.num_edges());
    }

    /// Reformation always preserves self-loops (C1) and never invents
    /// cluster-pairs that had no edges.
    #[test]
    fn reform_invariants(
        n in 32usize..150,
        seed in 0u64..100,
        beta_scale in 0.0f64..12.0
    ) {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n, communities: 4, avg_degree: 6.0, intra_fraction: 0.8 },
            seed,
        );
        let assign = partition(&g, 4, seed);
        let order = cluster_order(&assign, 4);
        let pg = g.permute(&order.perm);
        let r = reform(&pg, &order, ReformConfig { db: 4, beta_thre: pg.sparsity() * beta_scale });
        for v in 0..n {
            prop_assert!(r.mask.has_edge(v, v));
        }
        prop_assert!(r.stats.edge_recall >= 0.0 && r.stats.edge_recall <= 1.0);
        prop_assert!(r.stats.clusters_transferred <= r.stats.clusters_total);
    }

    /// Access profiling: nnz equals the mask's arcs and the mean run length
    /// is within [1, nnz].
    #[test]
    fn access_profile_consistency(g in arb_graph()) {
        let mask = topology_mask(&g, true);
        let p = access_profile(&mask);
        prop_assert_eq!(p.nnz, mask.num_arcs());
        if p.nnz > 0 {
            prop_assert!(p.avg_run_len >= 1.0);
            prop_assert!(p.avg_run_len <= p.nnz as f64);
            prop_assert!(p.isolated <= p.runs);
        }
    }

    /// bf16 rounding is idempotent and monotone.
    #[test]
    fn bf16_round_properties(x in -1e30f32..1e30) {
        let r = bf16_round(x);
        prop_assert_eq!(bf16_round(r), r, "idempotence");
        // Relative error bounded by 2^-8.
        if x != 0.0 {
            prop_assert!(((r - x) / x).abs() <= 1.0 / 256.0 + 1e-7);
        }
    }

    /// Softmax rows always sum to 1 and attention outputs stay inside the
    /// convex hull bound of V.
    #[test]
    fn attention_convexity(s in 2usize..12, seed in 0u64..100) {
        let d = 8;
        let q = init::normal(s, d, 0.0, 1.0, seed);
        let k = init::normal(s, d, 0.0, 1.0, seed + 1);
        let v = init::normal(s, d, 0.0, 1.0, seed + 2);
        let out = attention::dense(&q, &k, &v, 2, None).out;
        let vmax = v.data().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        prop_assert!(out.data().iter().all(|&o| o.abs() <= vmax + 1e-4));
    }

    /// Flash attention equals dense attention on arbitrary inputs.
    #[test]
    fn flash_equals_dense(s in 2usize..40, seed in 0u64..50) {
        let d = 8;
        let q = init::normal(s, d, 0.0, 1.5, seed);
        let k = init::normal(s, d, 0.0, 1.5, seed + 7);
        let v = init::normal(s, d, 0.0, 1.5, seed + 13);
        let a = attention::dense(&q, &k, &v, 2, None).out;
        let b = attention::flash(&q, &k, &v, 2).out;
        let max = a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
        prop_assert!(max < 1e-4, "max diff {max}");
    }

    /// Matmul distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_linearity(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..50) {
        let a = init::normal(m, k, 0.0, 1.0, seed);
        let b = init::normal(m, k, 0.0, 1.0, seed + 1);
        let c = init::normal(k, n, 0.0, 1.0, seed + 2);
        let lhs = ops::matmul(&ops::add(&a, &b), &c);
        let rhs = ops::add(&ops::matmul(&a, &c), &ops::matmul(&b, &c));
        let max = lhs.data().iter().zip(rhs.data()).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
        prop_assert!(max < 1e-3);
    }

    /// Tensor vstack/slice round-trip.
    #[test]
    fn vstack_slice_roundtrip(r1 in 1usize..6, r2 in 1usize..6, c in 1usize..6, seed in 0u64..50) {
        let a = init::normal(r1, c, 0.0, 1.0, seed);
        let b = init::normal(r2, c, 0.0, 1.0, seed + 3);
        let s = Tensor::vstack(&[&a, &b]);
        let top = s.slice_rows(0, r1);
        let bottom = s.slice_rows(r1, r1 + r2);
        prop_assert_eq!(top.data(), a.data());
        prop_assert_eq!(bottom.data(), b.data());
    }
}

mod extension_props {
    use torchgt_compat::proptest::prelude::*;
    use torchgt::graph::generators::erdos_renyi;
    use torchgt::graph::pack::{pack_graphs, segment_mean, segment_mean_backward};
    use torchgt::graph::reorder::reverse_cuthill_mckee;
    use torchgt::sparse::BlockCsr;
    use torchgt::sparse::topology_mask;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Block-CSR stores exactly the CSR mask's nonzeros for any d_b.
        #[test]
        fn block_csr_is_lossless(n in 4usize..40, m in 0usize..80, seed in 0u64..100, db in 1usize..9) {
            let g = erdos_renyi(n, m, seed).with_self_loops();
            let b = BlockCsr::from_mask(&g, db);
            prop_assert_eq!(b.nnz(), g.num_arcs());
            for v in 0..n {
                for &u in g.neighbors(v) {
                    prop_assert!(b.contains(v, u as usize));
                }
            }
        }

        /// RCM always produces a permutation, for any graph.
        #[test]
        fn rcm_permutes(n in 2usize..60, m in 0usize..120, seed in 0u64..100) {
            let g = erdos_renyi(n, m, seed);
            let perm = reverse_cuthill_mckee(&g);
            let mut seen = vec![false; n];
            prop_assert_eq!(perm.len(), n);
            for &v in &perm {
                prop_assert!(!std::mem::replace(&mut seen[v as usize], true));
            }
        }

        /// Packing preserves total arcs and segment boundaries tile the
        /// token range exactly.
        #[test]
        fn packing_conserves(sizes in prop::collection::vec(2usize..12, 1..5), seed in 0u64..50) {
            let graphs: Vec<_> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| erdos_renyi(n, n, seed + i as u64))
                .collect();
            let refs: Vec<&torchgt::graph::CsrGraph> = graphs.iter().collect();
            let packed = pack_graphs(&refs);
            let total_arcs: usize = graphs.iter().map(|g| g.num_arcs()).sum();
            prop_assert_eq!(packed.graph.num_arcs(), total_arcs);
            let mut cursor = 0usize;
            for (i, &(s, e)) in packed.segments.iter().enumerate() {
                prop_assert_eq!(s, cursor);
                prop_assert_eq!(e - s, sizes[i]);
                cursor = e;
            }
            prop_assert_eq!(cursor, packed.graph.num_nodes());
            // Topology mask over the packed graph never crosses segments
            // (self-loops only within).
            let mask = topology_mask(&packed.graph, false);
            for (si, &(s, e)) in packed.segments.iter().enumerate() {
                for v in s..e {
                    for &u in mask.neighbors(v) {
                        let u = u as usize;
                        prop_assert!(u >= s && u < e, "segment {si} leaks to {u}");
                    }
                }
            }
        }

        /// segment_mean ∘ broadcast-backward conserves gradient mass.
        #[test]
        fn segment_mean_grad_mass(cols in 1usize..4, len1 in 1usize..6, len2 in 1usize..6) {
            let tokens = len1 + len2;
            let segments = [(0, len1), (len1, tokens)];
            let dout: Vec<f32> = (0..2 * cols).map(|i| i as f32 + 1.0).collect();
            let dv = segment_mean_backward(&dout, cols, &segments, tokens);
            // Column-wise: sum over a segment's tokens equals the segment's dout.
            for (s, &(a, b)) in segments.iter().enumerate() {
                for c in 0..cols {
                    let sum: f32 = (a..b).map(|r| dv[r * cols + c]).sum();
                    prop_assert!((sum - dout[s * cols + c]).abs() < 1e-4);
                }
            }
            // And forward of the backward is the identity on per-segment
            // constants.
            let means = segment_mean(&dv, cols, &segments);
            for (s, &(a, b)) in segments.iter().enumerate() {
                let len = (b - a) as f32;
                for c in 0..cols {
                    prop_assert!((means[s * cols + c] * len - dout[s * cols + c]).abs() < 1e-4);
                }
            }
        }
    }
}
