//! Integration tests of the fault-tolerance subsystem (`torchgt-ckpt`):
//! bit-exact crash-resume through the public facade, injected rank crashes
//! recovering from snapshots, and the CLI's `--checkpoint-dir` /
//! `--crash-after` / `--resume` flags end-to-end through the real binary.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use torchgt::obs::Event;
use torchgt::prelude::*;
use torchgt::TorchGtBuilder;

fn arxiv_builder(epochs: usize) -> TorchGtBuilder {
    TorchGtBuilder::new(Method::TorchGt)
        .seq_len(128)
        .epochs(epochs)
        .hidden(16)
        .layers(2)
        .heads(2)
        .lr(2e-3)
        .seed(7)
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Crash after 2 of 5 epochs, restore into a *fresh* trainer, and finish:
/// every resumed epoch's loss and the final parameters (values and Adam
/// moments) must match the uninterrupted run bit-for-bit.
#[test]
fn resume_is_bit_exact_through_the_facade() {
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.002, 7);
    let dir = scratch_dir("tgt-ft-bitexact");
    let store = CheckpointStore::new(&dir, 3).unwrap();
    let noop = torchgt::obs::noop();

    let mut full = arxiv_builder(5).build_node(&dataset).expect("valid configuration");
    let full_trainer: &mut dyn Trainer = &mut full;
    let full_stats = full_trainer.run();
    let full_end = full_trainer.snapshot();

    let mut first = arxiv_builder(5).build_node(&dataset).expect("valid configuration");
    let out = run_with_checkpoints(
        &mut first,
        &store,
        &CheckpointOptions { every: 1, resume: false, crash_after: Some(2) },
        &noop,
    )
    .unwrap();
    assert!(out.interrupted);
    assert_eq!(out.stats.len(), 2);
    drop(first); // the "crashed" process

    let mut second = arxiv_builder(5).build_node(&dataset).expect("valid configuration");
    let out = run_with_checkpoints(
        &mut second,
        &store,
        &CheckpointOptions { every: 1, resume: true, crash_after: None },
        &noop,
    )
    .unwrap();
    assert_eq!(out.resumed_from, Some(2));
    assert_eq!(out.stats.len(), 3);
    for (a, b) in full_stats[2..].iter().zip(&out.stats) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "epoch {} loss diverged", a.epoch);
        assert_eq!(a.train_acc, b.train_acc);
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.beta_thre, b.beta_thre);
    }

    // Final *state* equality, not just final metrics: parameter values and
    // Adam moments byte-identical, optimizer step counter and PRNG cursors
    // in lockstep.
    let resumed_trainer: &mut dyn Trainer = &mut second;
    let resumed_end = resumed_trainer.snapshot();
    assert_eq!(full_end.state.opt_steps, resumed_end.state.opt_steps);
    assert_eq!(full_end.state.rng_streams, resumed_end.state.rng_streams);
    assert_eq!(full_end.params, resumed_end.params, "final parameters diverged");

    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected rank crash in data-parallel training must recover from the
/// latest snapshot and converge to the exact losses of a fault-free run,
/// with the crash/restore cycle visible in the observability events.
#[test]
fn injected_rank_crash_recovers_and_converges() {
    use torchgt::model::{Gt, GtConfig, SequenceModel};
    use torchgt::runtime::{
        prepare_node_dataset, train_data_parallel, train_data_parallel_resilient,
    };

    let dataset = DatasetKind::OgbnArxiv.generate_node(0.002, 13);
    let world = 2;
    let epochs = 3;
    let mut cfg = TrainConfig::new(Method::GpSparse, 128, epochs);
    cfg.lr = 2e-3;
    cfg.seed = 7;
    let factory =
        || Box::new(Gt::new(GtConfig::tiny(dataset.feat_dim, dataset.num_classes), 11))
            as Box<dyn SequenceModel>;

    let clean = train_data_parallel(&dataset, cfg.clone(), world, factory);

    // Crash early in epoch 1: per step every rank issues one gradient
    // all-reduce per parameter (2 collective ticks each — the op plus its
    // nested all-gather), then 2 ticks for the epoch-end loss reduction.
    let nparams = factory().params_mut().len();
    let nseq = prepare_node_dataset(&dataset, cfg.seq_len, false, 1, cfg.seed).sequences.len();
    let ops_per_epoch = (nseq.div_ceil(world) * nparams * 2 + 2) as u64;
    let plan = FaultPlan {
        drop_prob: 0.05,
        max_retries: 2,
        crash: Some(CrashPoint { rank: 1, op: ops_per_epoch + 6 }),
        seed: 29,
        ..FaultPlan::default()
    };

    let dir = scratch_dir("tgt-ft-dist");
    let store = CheckpointStore::new(&dir, 2).unwrap();
    let mem = Arc::new(MemoryRecorder::default());
    let res = train_data_parallel_resilient(
        &dataset,
        cfg,
        world,
        factory,
        plan,
        &store,
        mem.clone(),
    )
    .unwrap();

    assert_eq!(res.restarts, 1, "exactly one crash/recovery cycle");
    assert_eq!(res.resumed_epochs, vec![1], "resumed from the epoch-1 snapshot");
    assert_eq!(res.stats.epoch_losses.len(), epochs);
    for (i, (a, b)) in res.stats.epoch_losses.iter().zip(&clean.epoch_losses).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "epoch {i}: resilient {a} vs clean {b}");
    }
    assert!(res.stats.epoch_losses.last().unwrap() < res.stats.epoch_losses.first().unwrap());

    let report = mem.report();
    let crashes = report.events_of(Event::RANK_CRASH);
    assert_eq!(crashes.len(), 1);
    assert_eq!(crashes[0].num("rank"), Some(1.0));
    assert_eq!(report.events_of(Event::RESTORE).len(), 1);
    assert!(report.events_of(Event::SNAPSHOT).len() >= epochs);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full CLI smoke test of the crash-resume gate: `--crash-after` exits with
/// code 3 leaving snapshots behind, `--resume` finishes the run with exit 0,
/// and the two metrics files stitch into exactly the per-epoch losses of an
/// uninterrupted run.
#[test]
fn cli_crash_resume_stitches_uninterrupted_losses() {
    let ckpt_dir = scratch_dir("tgt-ft-cli-ckpt");
    let crashed = std::env::temp_dir().join("tgt-ft-cli-crashed.json");
    let resumed = std::env::temp_dir().join("tgt-ft-cli-resumed.json");
    let clean = std::env::temp_dir().join("tgt-ft-cli-clean.json");
    for f in [&crashed, &resumed, &clean] {
        let _ = std::fs::remove_file(f);
    }

    let base = [
        "train", "--dataset", "arxiv", "--method", "torchgt", "--epochs", "4", "--scale",
        "0.002", "--seq-len", "128", "--hidden", "16", "--layers", "2", "--heads", "2",
        "--seed", "7",
    ];
    let run = |extra: &[&str], metrics: &PathBuf| {
        Command::new(env!("CARGO_BIN_EXE_torchgt_cli"))
            .args(base)
            .args(extra)
            .arg("--metrics")
            .arg(metrics)
            .output()
            .expect("CLI binary runs")
    };
    let ckpt = ckpt_dir.to_str().unwrap();

    let out = run(
        &["--checkpoint-dir", ckpt, "--checkpoint-every", "1", "--crash-after", "2"],
        &crashed,
    );
    assert_eq!(out.status.code(), Some(3), "simulated crash must exit 3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("simulated crash after epoch 2"), "stdout: {stdout}");

    let out = run(&["--checkpoint-dir", ckpt, "--resume"], &resumed);
    assert!(out.status.success(), "resume run failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resumed from snapshot at epoch 2"), "stdout: {stdout}");

    let out = run(&[], &clean);
    assert!(out.status.success(), "uninterrupted run failed: {out:?}");

    let epochs = |path: &PathBuf| {
        let text = std::fs::read_to_string(path).expect("metrics file written");
        MetricsReport::from_json_str(&text).expect("metrics file parses").epochs
    };
    let (crashed, resumed, clean) = (epochs(&crashed), epochs(&resumed), epochs(&clean));
    assert_eq!(crashed.len(), 2);
    assert_eq!(resumed.len(), 2);
    assert_eq!(clean.len(), 4);
    let stitched = crashed.iter().chain(&resumed);
    for (a, b) in stitched.zip(&clean) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(
            a.loss.to_bits(),
            b.loss.to_bits(),
            "epoch {}: stitched loss {} vs uninterrupted {}",
            a.epoch,
            a.loss,
            b.loss
        );
    }

    let _ = std::fs::remove_dir_all(&ckpt_dir);
    for f in ["tgt-ft-cli-crashed.json", "tgt-ft-cli-resumed.json", "tgt-ft-cli-clean.json"] {
        let _ = std::fs::remove_file(std::env::temp_dir().join(f));
    }
}
