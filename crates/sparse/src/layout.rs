//! Attention layout descriptors and memory-access profiling.
//!
//! An *attention layout* describes which (query, key) pairs an attention
//! kernel computes. The paper moves through three layouts (its Figure 5):
//! the raw topology-induced pattern, the cluster-reordered pattern, and the
//! cluster-sparse (sub-block compacted) pattern. Dense and FlashAttention
//! kernels always use the fully-connected layout.

use torchgt_graph::CsrGraph;

torchgt_compat::json_enum! {
    /// The attention pattern families used across the paper's experiments.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub enum LayoutKind {
        /// Fully-connected `O(S²)` attention (GP-RAW).
        Dense,
        /// Fully-connected attention computed with an IO-aware tiled kernel
        /// (GP-FLASH). Same pattern as `Dense`, different kernel cost.
        Flash,
        /// Topology-induced `O(E)` sparse attention (GP-SPARSE).
        Topology,
        /// Cluster-reordered topology attention (after graph parallelism's
        /// reordering step).
        Clustered,
        /// Cluster-sparse attention after Elastic Computation Reformation.
        ClusterSparse,
    }
}

impl LayoutKind {
    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            LayoutKind::Dense => "dense",
            LayoutKind::Flash => "flash",
            LayoutKind::Topology => "topology",
            LayoutKind::Clustered => "clustered",
            LayoutKind::ClusterSparse => "cluster-sparse",
        }
    }
}

torchgt_compat::json_struct! {
    /// Memory-access profile of a sparse attention mask.
    ///
    /// The cost model uses this to convert a layout into simulated GPU time:
    /// contiguous runs of column indices coalesce into wide loads, isolated
    /// nonzeros become serialized gathers (the paper's Table II measures exactly
    /// this penalty: up to 33× over dense).
    #[derive(Clone, Copy, Debug, Default, PartialEq)]
    pub struct AccessProfile {
        /// Total nonzeros (attended pairs).
        pub nnz: usize,
        /// Number of maximal runs of consecutive column indices.
        pub runs: usize,
        /// Mean run length (`nnz / runs`).
        pub avg_run_len: f64,
        /// Nonzeros in runs of length 1 — the fully irregular accesses.
        pub isolated: usize,
        /// Number of rows with at least one nonzero.
        pub active_rows: usize,
    }
}

/// Profile the memory-access pattern of a CSR attention mask.
pub fn access_profile(mask: &CsrGraph) -> AccessProfile {
    let mut nnz = 0usize;
    let mut runs = 0usize;
    let mut isolated = 0usize;
    let mut active_rows = 0usize;
    for v in 0..mask.num_nodes() {
        let cols = mask.neighbors(v);
        if cols.is_empty() {
            continue;
        }
        active_rows += 1;
        nnz += cols.len();
        let mut run_len = 1usize;
        for w in cols.windows(2) {
            if w[1] == w[0] + 1 {
                run_len += 1;
            } else {
                runs += 1;
                if run_len == 1 {
                    isolated += 1;
                }
                run_len = 1;
            }
        }
        runs += 1;
        if run_len == 1 {
            isolated += 1;
        }
    }
    AccessProfile {
        nnz,
        runs,
        avg_run_len: if runs > 0 { nnz as f64 / runs as f64 } else { 0.0 },
        isolated,
        active_rows,
    }
}

/// Profile of the fully-connected layout for a sequence length (one run per
/// row covering every column).
pub fn dense_profile(s: usize) -> AccessProfile {
    AccessProfile {
        nnz: s * s,
        runs: s,
        avg_run_len: s as f64,
        isolated: 0,
        active_rows: s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::{complete_graph, path_graph, star_graph};

    #[test]
    fn dense_profile_shape() {
        let p = dense_profile(8);
        assert_eq!(p.nnz, 64);
        assert_eq!(p.runs, 8);
        assert_eq!(p.isolated, 0);
    }

    #[test]
    fn complete_graph_is_fully_contiguous() {
        let g = complete_graph(6).with_self_loops();
        let p = access_profile(&g);
        assert_eq!(p.nnz, 36);
        assert_eq!(p.runs, 6); // one run per row
        assert_eq!(p.isolated, 0);
        assert_eq!(p.avg_run_len, 6.0);
    }

    #[test]
    fn star_graph_hub_row_is_one_run() {
        let g = star_graph(10);
        let p = access_profile(&g);
        // hub row = cols 1..9 contiguous (1 run); each leaf row = single col.
        assert_eq!(p.nnz, 18);
        assert_eq!(p.runs, 1 + 9);
        assert_eq!(p.isolated, 9);
    }

    #[test]
    fn path_graph_interior_rows_are_split_runs() {
        // Row v has cols {v-1, v+1}: two isolated nonzeros.
        let g = path_graph(5);
        let p = access_profile(&g);
        assert_eq!(p.nnz, 8);
        assert_eq!(p.active_rows, 5);
        assert_eq!(p.isolated, 8);
    }

    #[test]
    fn self_loops_merge_runs() {
        // With self-loops row v = {v-1, v, v+1}: one run of 3.
        let g = path_graph(5).with_self_loops();
        let p = access_profile(&g);
        assert_eq!(p.nnz, 13);
        assert!(p.avg_run_len > 2.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(LayoutKind::ClusterSparse.label(), "cluster-sparse");
        assert_eq!(LayoutKind::Flash.label(), "flash");
    }
}
