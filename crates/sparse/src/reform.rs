//! Elastic Computation Reformation (paper §III-D).
//!
//! Takes the clustered attention layout and compacts *sparse* clusters into
//! dense `d_b × d_b` sub-blocks ("cluster sparsity"), trading a small, bounded
//! modification of the attention pattern for contiguous memory access. Dense
//! clusters (typically the diagonal ones) are left untouched.
//!
//! The transfer is governed by a sparsity threshold `β_thre`: clusters whose
//! sparsity `β_C < β_thre` are transferred. `β_thre = β_G` is the paper's
//! *indolent* strategy; the Auto Tuner (runtime crate) moves `β_thre` through
//! `{0, β_G, 1.5β_G, 5β_G, 7β_G, 10β_G, 1}` during training (*elastic*).

use crate::layout::{access_profile, AccessProfile};
use torchgt_graph::partition::ClusterOrder;
use torchgt_graph::CsrGraph;

torchgt_compat::json_struct! {
    /// Configuration of a reformation pass.
    #[derive(Clone, Copy, Debug)]
    pub struct ReformConfig {
        /// Sub-block dimension `d_b` (the paper fits 16 for RTX 3090, hidden 64).
        pub db: usize,
        /// Transfer threshold `β_thre`: clusters sparser than this are
        /// compacted.
        pub beta_thre: f64,
    }
}

impl ReformConfig {
    /// Indolent strategy: `β_thre = β_G` (only clusters sparser than the
    /// whole graph are transferred).
    pub fn indolent(graph_sparsity: f64, db: usize) -> Self {
        Self { db, beta_thre: graph_sparsity }
    }
}

torchgt_compat::json_struct! {
    /// Statistics of one reformation pass.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct ReformStats {
        /// Number of nonempty cluster pairs examined.
        pub clusters_total: usize,
        /// Cluster pairs transferred to sub-block form.
        pub clusters_transferred: usize,
        /// Arcs (mask nonzeros) before reformation.
        pub nnz_before: usize,
        /// Arcs after reformation (sub-blocks may add or merge entries).
        pub nnz_after: usize,
        /// Original arcs still present afterwards (pattern recall; 1.0 means no
        /// connectivity loss).
        pub edge_recall: f64,
        /// Sub-blocks created across all transferred clusters.
        pub sub_blocks: usize,
    }
}

/// Result of reformation: the new attention mask plus bookkeeping.
#[derive(Clone, Debug)]
pub struct ReformedLayout {
    /// The cluster-sparse attention mask (self-loops always preserved —
    /// condition C1).
    pub mask: CsrGraph,
    /// Sub-block dimension the pass ran with (`ReformConfig::db`).
    pub db: usize,
    /// Transfer statistics.
    pub stats: ReformStats,
}

impl ReformedLayout {
    /// Memory-access profile of the reformed mask.
    pub fn profile(&self) -> AccessProfile {
        access_profile(&self.mask)
    }

    /// The mask in block-CSR form at the pass's own tile size — the layout
    /// [`crate::subblock::sub_block_attention`] consumes.
    pub fn blocked(&self) -> crate::block_csr::BlockCsr {
        crate::block_csr::BlockCsr::from_mask(&self.mask, self.db)
    }
}

/// Run the reformation on a graph already permuted into cluster order.
///
/// `graph` must be the *permuted* adjacency (node ids grouped by cluster —
/// see [`torchgt_graph::partition::cluster_order`]); `order` supplies the
/// cluster boundaries.
pub fn reform(graph: &CsrGraph, order: &ClusterOrder, cfg: ReformConfig) -> ReformedLayout {
    let k = order.num_clusters();
    let db = cfg.db.max(1);
    let nnz_before = graph.num_arcs();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(nnz_before / 2 + graph.num_nodes());
    let mut stats = ReformStats { nnz_before, ..Default::default() };

    // Collect the per-cluster-pair edge lists (ordered arcs with row < all
    // handled once: we process ordered pairs (i, j) and emit arcs once per
    // unordered pair by only taking row <= col arcs, then symmetrising in the
    // final CSR build).
    let mut cluster_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k * k];
    for v in 0..graph.num_nodes() {
        let ci = order.cluster_of(v) as usize;
        for &nb in graph.neighbors(v) {
            if (nb as usize) < v {
                continue; // handle each undirected edge once
            }
            let cj = order.cluster_of(nb as usize) as usize;
            cluster_edges[ci * k + cj].push((v as u32, nb));
        }
    }

    for i in 0..k {
        for j in i..k {
            // Merge the (i,j) and (j,i) buckets (row<=col arcs can land in
            // either depending on which endpoint had the smaller id).
            let list: Vec<(u32, u32)> = if i == j {
                cluster_edges[i * k + j].clone()
            } else {
                let mut l = cluster_edges[i * k + j].clone();
                l.extend(cluster_edges[j * k + i].iter().copied());
                l
            };
            if list.is_empty() {
                continue;
            }
            stats.clusters_total += 1;
            let rows = order.cluster_size(i);
            let cols = order.cluster_size(j);
            let cells = (rows * cols).max(1);
            // β_C counts arcs in both directions for off-diagonal clusters.
            let arc_count = if i == j { list.len() * 2 } else { list.len() } as f64;
            let beta_c = arc_count / cells as f64;
            if beta_c >= cfg.beta_thre {
                // Dense enough: keep as-is.
                edges.extend_from_slice(&list);
                continue;
            }
            // Transfer: compact the scattered edges into dense sub-blocks.
            stats.clusters_transferred += 1;
            let m = list.len();
            let per_block = db * db;
            let nblocks = m.div_ceil(per_block);
            stats.sub_blocks += nblocks;
            let row_base = order.offsets[i];
            let col_base = order.offsets[j];
            let db_r = db.min(rows);
            let db_c = db.min(cols);
            // Anchor each sub-block at the centroid of the edges it absorbs,
            // clamped inside the cluster — deterministic and
            // locality-preserving (edges move to *adjacent* positions, as in
            // the paper's Figure 4).
            let chunk = m.div_ceil(nblocks);
            for block in list.chunks(chunk) {
                let mean_r = block.iter().map(|&(r, _)| r as usize).sum::<usize>() / block.len();
                let mean_c = block.iter().map(|&(_, c)| c as usize).sum::<usize>() / block.len();
                let r0 = mean_r
                    .saturating_sub(db_r / 2)
                    .max(row_base)
                    .min(row_base + rows - db_r);
                let c0 = mean_c
                    .saturating_sub(db_c / 2)
                    .max(col_base)
                    .min(col_base + cols - db_c);
                for dr in 0..db_r {
                    for dc in 0..db_c {
                        edges.push(((r0 + dr) as u32, (c0 + dc) as u32));
                    }
                }
            }
        }
    }

    // Always preserve self-attention (C1).
    let n = graph.num_nodes();
    for v in 0..n as u32 {
        edges.push((v, v));
    }
    let mask = CsrGraph::from_edges(n, &edges);
    stats.nnz_after = mask.num_arcs();

    // Pattern recall: how many original arcs survived.
    let mut kept = 0usize;
    for v in 0..n {
        for &nb in graph.neighbors(v) {
            if mask.has_edge(v, nb as usize) {
                kept += 1;
            }
        }
    }
    stats.edge_recall = if nnz_before > 0 { kept as f64 / nnz_before as f64 } else { 1.0 };

    ReformedLayout { mask, db, stats }
}

/// Like [`reform`], but reports the pass to an observability recorder: one
/// [`torchgt_obs::Event::reform`] event (cluster density, sub-block count,
/// compaction ratio, edge recall) plus a `reform/compaction_ratio` gauge.
pub fn reform_recorded(
    graph: &CsrGraph,
    order: &ClusterOrder,
    cfg: ReformConfig,
    recorder: &torchgt_obs::RecorderHandle,
) -> ReformedLayout {
    let out = reform(graph, order, cfg);
    if recorder.enabled() {
        let s = &out.stats;
        recorder.event(torchgt_obs::Event::reform(
            s.clusters_total,
            s.clusters_transferred,
            s.sub_blocks,
            s.nnz_before,
            s.nnz_after,
            s.edge_recall,
        ));
        if s.nnz_before > 0 {
            recorder.gauge_set("reform/compaction_ratio", s.nnz_after as f64 / s.nnz_before as f64);
        }
    }
    out
}

/// The paper's β_thre candidate ladder `{0, β_G, 1.5β_G, 5β_G, 7β_G, 10β_G, 1}`
/// (§III-D, Hyperparameter Modeling).
pub fn beta_ladder(beta_g: f64) -> [f64; 7] {
    [0.0, beta_g, 1.5 * beta_g, 5.0 * beta_g, 7.0 * beta_g, 10.0 * beta_g, 1.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::{clustered_power_law, ClusteredConfig};
    use torchgt_graph::partition::{cluster_order, partition};

    fn clustered_fixture(n: usize, k: usize, seed: u64) -> (CsrGraph, ClusterOrder) {
        let (g, _) = clustered_power_law(
            ClusteredConfig {
                n,
                communities: k,
                avg_degree: 8.0,
                intra_fraction: 0.85,
            },
            seed,
        );
        let assign = partition(&g, k, seed);
        let order = cluster_order(&assign, k);
        (g.permute(&order.perm), order)
    }

    #[test]
    fn beta_zero_transfers_nothing() {
        let (g, order) = clustered_fixture(400, 4, 1);
        let r = reform(&g, &order, ReformConfig { db: 8, beta_thre: 0.0 });
        assert_eq!(r.stats.clusters_transferred, 0);
        assert!((r.stats.edge_recall - 1.0).abs() < 1e-12);
        // Mask = original + self-loops.
        for v in 0..g.num_nodes() {
            assert!(r.mask.has_edge(v, v));
            for &nb in g.neighbors(v) {
                assert!(r.mask.has_edge(v, nb as usize));
            }
        }
    }

    #[test]
    fn beta_one_transfers_everything_nonempty() {
        let (g, order) = clustered_fixture(400, 4, 2);
        let r = reform(&g, &order, ReformConfig { db: 8, beta_thre: 1.0 });
        assert_eq!(r.stats.clusters_transferred, r.stats.clusters_total);
        assert!(r.stats.sub_blocks > 0);
        // Recall drops below 1 but compactness rises: fewer, longer runs.
        let before = access_profile(&g);
        let after = r.profile();
        assert!(
            after.avg_run_len > before.avg_run_len,
            "expected longer runs: {} vs {}",
            after.avg_run_len,
            before.avg_run_len
        );
    }

    #[test]
    fn indolent_transfers_only_sub_graph_sparsity_clusters() {
        let (g, order) = clustered_fixture(600, 6, 3);
        let cfg = ReformConfig::indolent(g.sparsity(), 8);
        let r = reform(&g, &order, cfg);
        // Diagonal clusters are denser than β_G on a clustered graph, so
        // some clusters must be kept.
        assert!(r.stats.clusters_transferred < r.stats.clusters_total);
        // High recall: the diagonal (majority of edges) untouched.
        assert!(r.stats.edge_recall > 0.5, "recall {}", r.stats.edge_recall);
    }

    #[test]
    fn higher_threshold_transfers_more() {
        let (g, order) = clustered_fixture(600, 6, 4);
        let bg = g.sparsity();
        let mut last = 0usize;
        for beta in [bg, 5.0 * bg, 1.0] {
            let r = reform(&g, &order, ReformConfig { db: 8, beta_thre: beta });
            assert!(
                r.stats.clusters_transferred >= last,
                "monotonicity broken at beta={beta}"
            );
            last = r.stats.clusters_transferred;
        }
        assert!(last > 0);
    }

    #[test]
    fn self_loops_always_present_after_reform() {
        let (g, order) = clustered_fixture(300, 4, 5);
        let r = reform(&g, &order, ReformConfig { db: 4, beta_thre: 1.0 });
        for v in 0..g.num_nodes() {
            assert!(r.mask.has_edge(v, v), "missing self loop at {v}");
        }
    }

    #[test]
    fn sub_blocks_stay_inside_their_cluster() {
        let (g, order) = clustered_fixture(400, 4, 6);
        let r = reform(&g, &order, ReformConfig { db: 8, beta_thre: 1.0 });
        // Every mask edge must connect clusters that originally had edges or
        // be a self-loop; and must lie inside the k×k cluster grid cells that
        // were populated.
        let k = order.num_clusters();
        let mut populated = vec![false; k * k];
        for v in 0..g.num_nodes() {
            let ci = order.cluster_of(v) as usize;
            for &nb in g.neighbors(v) {
                let cj = order.cluster_of(nb as usize) as usize;
                populated[ci * k + cj] = true;
                populated[cj * k + ci] = true;
            }
        }
        for v in 0..r.mask.num_nodes() {
            let ci = order.cluster_of(v) as usize;
            for &nb in r.mask.neighbors(v) {
                if nb as usize == v {
                    continue;
                }
                let cj = order.cluster_of(nb as usize) as usize;
                assert!(
                    populated[ci * k + cj],
                    "reform invented edges in empty cluster ({ci},{cj})"
                );
            }
        }
    }

    #[test]
    fn nnz_is_roughly_preserved() {
        let (g, order) = clustered_fixture(500, 4, 7);
        let r = reform(&g, &order, ReformConfig { db: 8, beta_thre: 1.0 });
        // Sub-block packing keeps the pattern size within ~2.5× of the
        // original (padding to full blocks, plus self loops).
        assert!(r.stats.nnz_after < r.stats.nnz_before * 5 / 2 + g.num_nodes() * 2);
        assert!(r.stats.nnz_after > r.stats.nnz_before / 4);
    }

    #[test]
    fn reform_recorded_emits_matching_event() {
        use std::sync::Arc;
        use torchgt_obs::{Event, MemoryRecorder, RecorderHandle};
        let (g, order) = clustered_fixture(400, 4, 8);
        let mem = Arc::new(MemoryRecorder::default());
        let rec: RecorderHandle = mem.clone();
        let r = reform_recorded(&g, &order, ReformConfig { db: 8, beta_thre: 1.0 }, &rec);
        let report = mem.report();
        let events = report.events_of(Event::REFORM);
        assert_eq!(events.len(), 1);
        let e = events[0];
        assert_eq!(e.num("clusters_total"), Some(r.stats.clusters_total as f64));
        assert_eq!(e.num("nnz_after"), Some(r.stats.nnz_after as f64));
        assert_eq!(
            e.num("compaction_ratio"),
            Some(r.stats.nnz_after as f64 / r.stats.nnz_before as f64)
        );
        assert_eq!(report.gauges[0].name, "reform/compaction_ratio");
        // A disabled recorder records nothing and still reforms identically.
        let quiet = reform_recorded(&g, &order, ReformConfig { db: 8, beta_thre: 1.0 }, &torchgt_obs::noop());
        assert_eq!(quiet.stats.nnz_after, r.stats.nnz_after);
    }

    #[test]
    fn blocked_layout_matches_mask_at_pass_tile_size() {
        let (g, order) = clustered_fixture(300, 4, 9);
        let r = reform(&g, &order, ReformConfig { db: 8, beta_thre: 1.0 });
        assert_eq!(r.db, 8);
        let b = r.blocked();
        assert_eq!(b.db, 8);
        assert_eq!(b.nnz(), r.mask.num_arcs());
        for v in 0..r.mask.num_nodes() {
            for &nb in r.mask.neighbors(v) {
                assert!(b.contains(v, nb as usize));
            }
        }
    }

    #[test]
    fn ladder_matches_paper() {
        let l = beta_ladder(0.01);
        assert_eq!(l[0], 0.0);
        assert!((l[2] - 0.015).abs() < 1e-12);
        assert_eq!(l[6], 1.0);
        assert!(l.windows(2).all(|w| w[0] <= w[1]));
    }
}
