//! Cluster-sparse sub-block attention kernel.
//!
//! Consumes the [`BlockCsr`] mask produced by the Elastic Computation
//! Reformation and computes masked softmax attention by walking each query
//! row's tiles in block order — the contiguous-access pattern the paper's
//! block-sparse formats exist to enable (§I, third insight). The arithmetic
//! is routed through the [`torchgt_tensor::backend`] kernel backend, so the
//! same traversal runs scalar, AVX2 or AVX-512 depending on dispatch.
//!
//! Because a block row's tiles are sorted by block column and bits scan
//! row-major inside a tile, the columns visited for any query row come out in
//! ascending order — exactly the order `torchgt_model::attention::sparse`
//! visits CSR neighbours. Under any one backend the two kernels therefore
//! produce **bit-identical** output for the same mask, which is what the
//! cross-kernel parity suite asserts.

use crate::block_csr::BlockCsr;
use torchgt_tensor::backend::{self, Backend};
use torchgt_tensor::{MatRef, Tensor, Workspace};

/// Masked multi-head softmax attention over a block-sparse pattern.
///
/// `q`, `k`, `v` are `[s, d]` with `d = heads × d_head`; `blocks` is the
/// sub-block mask over the same `s` nodes. Returns the `[s, d]` attention
/// output. Rows with no active entries stay zero.
pub fn sub_block_attention(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize, blocks: &BlockCsr) -> Tensor {
    sub_block_attention_ws(q, k, v, heads, blocks, &mut Workspace::new())
}

/// [`sub_block_attention`] drawing scratch and the output from `ws`; the
/// caller gives the returned tensor back to the arena once consumed.
pub fn sub_block_attention_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    blocks: &BlockCsr,
    ws: &mut Workspace,
) -> Tensor {
    sub_block_attention_with(backend::active(), q, k, v, heads, blocks, ws)
}

/// [`sub_block_attention_ws`] on an explicit backend — the hook the
/// backend-differential parity harness uses to compare implementations
/// in-process without touching global dispatch.
pub fn sub_block_attention_with(
    be: Backend,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    blocks: &BlockCsr,
    ws: &mut Workspace,
) -> Tensor {
    let (s, d) = q.shape();
    assert_eq!(k.shape(), (s, d));
    assert_eq!(v.shape(), (s, d));
    assert_eq!(d % heads, 0, "hidden dim must split across heads");
    assert!(
        blocks.block_rows * blocks.db >= s,
        "block mask covers {} rows but sequence has {s}",
        blocks.block_rows * blocks.db
    );
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let db = blocks.db;
    let mut out = ws.take(s, d);
    // Scratch sized for the widest possible row; each row rewrites its prefix
    // before reading it.
    let mut scores = ws.take_buf(s);
    let mut cols: Vec<u32> = Vec::with_capacity(s);
    for h in 0..heads {
        let qh = q.view_cols(h * d_head, (h + 1) * d_head);
        let kh = k.view_cols(h * d_head, (h + 1) * d_head);
        let vh = v.view_cols(h * d_head, (h + 1) * d_head);
        for br in 0..blocks.block_rows {
            for lr in 0..db {
                let i = br * db + lr;
                if i >= s {
                    break;
                }
                cols.clear();
                blocks.row_cols_into(br, lr, &mut cols);
                if cols.is_empty() {
                    continue;
                }
                let qrow = qh.row(i);
                let mut max = f32::NEG_INFINITY;
                for (e, &j) in cols.iter().enumerate() {
                    let sc = be.dot(qrow, kh.row(j as usize)) * scale;
                    scores[e] = sc;
                    if sc > max {
                        max = sc;
                    }
                }
                let row_scores = &mut scores[..cols.len()];
                let den = be.exp_minus_max_sum(row_scores, max);
                let inv = 1.0 / den.max(f32::MIN_POSITIVE);
                be.scale_assign(row_scores, inv);
                let orow = &mut out.row_mut(i)[h * d_head..(h + 1) * d_head];
                for (e, &j) in cols.iter().enumerate() {
                    be.axpy(orow, row_scores[e], vh.row(j as usize));
                }
            }
        }
    }
    ws.give_buf(scores);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::{complete_graph, cycle_graph, path_graph};
    use torchgt_tensor::init;

    fn qkv(s: usize, d: usize) -> (Tensor, Tensor, Tensor) {
        (
            init::normal(s, d, 0.0, 1.0, 41),
            init::normal(s, d, 0.0, 1.0, 42),
            init::normal(s, d, 0.0, 1.0, 43),
        )
    }

    #[test]
    fn rows_are_convex_combinations_of_v() {
        let s = 12;
        let (q, k, v) = qkv(s, 8);
        let b = BlockCsr::from_mask(&complete_graph(s).with_self_loops(), 4);
        let out = sub_block_attention(&q, &k, &v, 2, &b);
        let vmax = v.data().iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        assert!(out.data().iter().all(|&o| o.abs() <= vmax + 1e-4));
    }

    #[test]
    fn isolated_rows_stay_zero() {
        // path_graph without self loops: every node attends to neighbours
        // only; with a single node and no loops the row has no entries.
        let s = 9;
        let (q, k, v) = qkv(s, 4);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for i in 0..(s as u32 - 1) {
            if i != 4 {
                edges.push((i, i + 1));
                edges.push((i + 1, i));
            }
        }
        // Node 4 keeps no incident arc in rows 4's adjacency? Build explicitly:
        let g = torchgt_graph::CsrGraph::from_edges(s, &edges);
        let b = BlockCsr::from_mask(&g, 4);
        let out = sub_block_attention(&q, &k, &v, 2, &b);
        if g.neighbors(4).is_empty() {
            assert!(out.row(4).iter().all(|&x| x == 0.0));
        }
        // Rows with entries are nonzero in general.
        assert!(out.row(0).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn ws_path_is_bitwise_identical_and_allocation_free_when_warm() {
        let s = 14;
        let (q, k, v) = qkv(s, 8);
        let b = BlockCsr::from_mask(&cycle_graph(s).with_self_loops(), 4);
        let cold = sub_block_attention(&q, &k, &v, 2, &b);
        let mut ws = Workspace::new();
        // Pre-dirty the arena so zero-init bugs surface.
        let mut dirty = ws.take(s, 8);
        dirty.data_mut().fill(f32::NAN);
        ws.give(dirty);
        let mut dirty = ws.take_buf(s);
        dirty.fill(f32::NAN);
        ws.give_buf(dirty);
        let warm1 = sub_block_attention_ws(&q, &k, &v, 2, &b, &mut ws);
        assert_eq!(cold.data(), warm1.data());
        ws.give(warm1);
        let stats_before = ws.stats();
        let warm2 = sub_block_attention_ws(&q, &k, &v, 2, &b, &mut ws);
        let stats_after = ws.stats();
        assert_eq!(cold.data(), warm2.data());
        assert_eq!(
            stats_after.alloc_bytes, stats_before.alloc_bytes,
            "warm sub-block attention allocated from the arena"
        );
    }

    #[test]
    fn every_supported_backend_agrees_with_scalar_within_tolerance() {
        let s = 17; // not a multiple of db
        let (q, k, v) = qkv(s, 8);
        let b = BlockCsr::from_mask(&path_graph(s).with_self_loops(), 4);
        let mut ws = Workspace::new();
        let reference = sub_block_attention_with(Backend::Scalar, &q, &k, &v, 2, &b, &mut ws);
        for be in backend::supported() {
            let got = sub_block_attention_with(be, &q, &k, &v, 2, &b, &mut ws);
            for (idx, (&r, &g)) in reference.data().iter().zip(got.data()).enumerate() {
                let tol = 1e-5f32.max(r.abs() * 1e-5);
                assert!(
                    (r - g).abs() <= tol,
                    "{}: idx {idx}: scalar {r} vs {g}",
                    be.name()
                );
            }
            ws.give(got);
        }
    }
}
