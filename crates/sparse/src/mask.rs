//! Attention-mask construction helpers.
//!
//! A mask is just a [`CsrGraph`] over sequence positions: position `q`
//! attends to `mask.neighbors(q)`. These helpers build the masks the paper's
//! attention variants need from an input (sub)graph.

use torchgt_graph::conditions::augment_for_conditions;
use torchgt_graph::CsrGraph;

/// Topology-induced mask: the input graph's adjacency with self-loops (C1)
/// and, when `repair` is set, the sequence Hamiltonian path (C2) — the
/// augmentation TorchGT applies instead of falling back to dense attention.
pub fn topology_mask(graph: &CsrGraph, repair: bool) -> CsrGraph {
    if repair {
        augment_for_conditions(graph)
    } else {
        graph.with_self_loops()
    }
}

/// Prepend a global token (as in Graphormer's `[VNode]`/CLS token): the new
/// position 0 attends to and is attended by every node; all original ids
/// shift by one. Matches §III-B: "If there exists a global token … we augment
/// Ẽ with the global token's edges."
pub fn add_global_token(mask: &CsrGraph) -> CsrGraph {
    let n = mask.num_nodes();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(mask.num_arcs() / 2 + n + 1);
    for v in 0..n {
        for &nb in mask.neighbors(v) {
            if nb as usize >= v {
                edges.push((v as u32 + 1, nb + 1));
            }
        }
    }
    for v in 1..=n as u32 {
        edges.push((0, v));
    }
    edges.push((0, 0));
    CsrGraph::from_edges(n + 1, &edges)
}

/// A banded "local window" mask of half-width `w` (classic sliding-window
/// sparse attention from the NLP literature; used as an ablation baseline to
/// show why structure-agnostic sparsity loses accuracy on graphs).
pub fn window_mask(n: usize, w: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (w + 1));
    for v in 0..n {
        for d in 0..=w {
            if v + d < n {
                edges.push((v as u32, (v + d) as u32));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::{erdos_renyi, path_graph};

    #[test]
    fn topology_mask_has_self_loops() {
        let g = path_graph(6);
        let m = topology_mask(&g, false);
        for v in 0..6 {
            assert!(m.has_edge(v, v));
        }
    }

    #[test]
    fn repaired_mask_is_connected() {
        let g = erdos_renyi(50, 20, 3); // almost surely disconnected
        let m = topology_mask(&g, true);
        assert!(m.is_connected());
    }

    #[test]
    fn global_token_attends_everything() {
        let g = path_graph(5);
        let m = add_global_token(&g.with_self_loops());
        assert_eq!(m.num_nodes(), 6);
        for v in 1..6 {
            assert!(m.has_edge(0, v));
            assert!(m.has_edge(v, 0));
        }
        // Original edge 0—1 becomes 1—2.
        assert!(m.has_edge(1, 2));
        assert!(m.has_edge(0, 0));
    }

    #[test]
    fn window_mask_band_shape() {
        let m = window_mask(10, 2);
        assert!(m.has_edge(3, 5));
        assert!(!m.has_edge(3, 6));
        assert!(m.has_edge(0, 0));
        // Symmetric band.
        assert!(m.has_edge(5, 3));
    }
}
