//! # torchgt-sparse
//!
//! Attention-layout machinery for the TorchGT reproduction: layout
//! descriptors and memory-access profiling ([`layout`]), attention-mask
//! builders ([`mask`]), and the Elastic Computation Reformation that compacts
//! sparse clusters into dense sub-blocks ([`reform`]).

pub mod block_csr;
pub mod layout;
pub mod mask;
pub mod reform;
pub mod subblock;

pub use block_csr::BlockCsr;
pub use subblock::{sub_block_attention, sub_block_attention_with, sub_block_attention_ws};
pub use layout::{access_profile, dense_profile, AccessProfile, LayoutKind};
pub use mask::{add_global_token, topology_mask, window_mask};
pub use reform::{
    beta_ladder, reform, reform_recorded, ReformConfig, ReformStats, ReformedLayout,
};
