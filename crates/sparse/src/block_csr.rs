//! Block-CSR storage for the cluster-sparse attention pattern.
//!
//! The Elastic Computation Reformation produces a mask whose nonzeros are
//! organised into dense `d_b × d_b` sub-blocks. Storing that mask as plain
//! CSR throws the structure away; this block-compressed format keeps each
//! sub-block's entries contiguous in memory — the paper's "block-sparse
//! formats store data contiguously in memory, reducing storage overheads and
//! memory access" (§I, third insight). The criterion bench
//! `criterion_kernels` measures the real CPU-side locality win of gathering
//! through this format vs element-wise CSR.

use torchgt_graph::CsrGraph;

torchgt_compat::json_struct! {
    /// A boolean block-sparse matrix: `d_b × d_b` tiles, each tile a dense
    /// bitmap of which entries are active.
    #[derive(Clone, Debug)]
    pub struct BlockCsr {
        /// Tile edge length `d_b`.
        pub db: usize,
        /// Number of block rows (`⌈n / d_b⌉`).
        pub block_rows: usize,
        /// Number of block cols.
        pub block_cols: usize,
        /// CSR over blocks: `block_ptr[i]..block_ptr[i+1]` indexes `block_col`.
        block_ptr: Vec<usize>,
        /// Column (block) index of each stored tile.
        block_col: Vec<u32>,
        /// Dense bitmaps, `db*db` bits per tile packed as bytes row-major.
        bitmaps: Vec<u8>,
    }
}

impl BlockCsr {
    /// Convert a CSR mask into block-CSR with tile size `db`.
    pub fn from_mask(mask: &CsrGraph, db: usize) -> Self {
        assert!(db >= 1);
        let n = mask.num_nodes();
        let block_rows = n.div_ceil(db);
        let block_cols = block_rows;
        let bytes_per_tile = (db * db).div_ceil(8);
        let mut block_ptr = vec![0usize; block_rows + 1];
        let mut block_col: Vec<u32> = Vec::new();
        let mut bitmaps: Vec<u8> = Vec::new();
        // Scratch: block-col -> tile index in the current block row.
        let mut tile_of: Vec<isize> = vec![-1; block_cols];
        for br in 0..block_rows {
            let row_start_tile = block_col.len();
            let r0 = br * db;
            let r1 = ((br + 1) * db).min(n);
            for r in r0..r1 {
                for &c in mask.neighbors(r) {
                    let bc = c as usize / db;
                    let tile = if tile_of[bc] >= 0 {
                        tile_of[bc] as usize
                    } else {
                        let t = block_col.len();
                        block_col.push(bc as u32);
                        bitmaps.resize(bitmaps.len() + bytes_per_tile, 0);
                        tile_of[bc] = t as isize;
                        t
                    };
                    let lr = r - r0;
                    let lc = c as usize - bc * db;
                    let bit = lr * db + lc;
                    bitmaps[tile * bytes_per_tile + bit / 8] |= 1 << (bit % 8);
                }
            }
            // Sort this block row's tiles by block column for determinism.
            let row_tiles = block_col.len() - row_start_tile;
            if row_tiles > 1 {
                let mut order: Vec<usize> = (0..row_tiles).collect();
                order.sort_unstable_by_key(|&i| block_col[row_start_tile + i]);
                let cols: Vec<u32> =
                    order.iter().map(|&i| block_col[row_start_tile + i]).collect();
                let maps: Vec<u8> = order
                    .iter()
                    .flat_map(|&i| {
                        let base = (row_start_tile + i) * bytes_per_tile;
                        bitmaps[base..base + bytes_per_tile].to_vec()
                    })
                    .collect();
                block_col[row_start_tile..].copy_from_slice(&cols);
                bitmaps[row_start_tile * bytes_per_tile..].copy_from_slice(&maps);
            }
            // Reset scratch.
            for t in row_start_tile..block_col.len() {
                tile_of[block_col[t] as usize] = -1;
            }
            block_ptr[br + 1] = block_col.len();
        }
        Self { db, block_rows, block_cols, block_ptr, block_col, bitmaps }
    }

    /// Number of stored tiles.
    pub fn num_blocks(&self) -> usize {
        self.block_col.len()
    }

    /// Number of active entries across all tiles.
    pub fn nnz(&self) -> usize {
        self.bitmaps.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Mean fill of the stored tiles (`nnz / (tiles · d_b²)`) — the quantity
    /// the reformation maximises.
    pub fn block_density(&self) -> f64 {
        let capacity = self.num_blocks() * self.db * self.db;
        if capacity == 0 {
            0.0
        } else {
            self.nnz() as f64 / capacity as f64
        }
    }

    /// Whether entry `(r, c)` is active.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        let db = self.db;
        let br = r / db;
        if br >= self.block_rows {
            return false;
        }
        let bc = (c / db) as u32;
        let bytes_per_tile = (db * db).div_ceil(8);
        for t in self.block_ptr[br]..self.block_ptr[br + 1] {
            if self.block_col[t] == bc {
                let bit = (r % db) * db + (c % db);
                return self.bitmaps[t * bytes_per_tile + bit / 8] & (1 << (bit % 8)) != 0;
            }
        }
        false
    }

    /// Iterate the active `(row, col)` pairs of one block row, tile by tile
    /// (the kernel traversal order: contiguous within tiles).
    pub fn block_row_entries(&self, br: usize) -> Vec<(u32, u32)> {
        let db = self.db;
        let bytes_per_tile = (db * db).div_ceil(8);
        let mut out = Vec::new();
        for t in self.block_ptr[br]..self.block_ptr[br + 1] {
            let bc = self.block_col[t] as usize;
            for bit in 0..db * db {
                if self.bitmaps[t * bytes_per_tile + bit / 8] & (1 << (bit % 8)) != 0 {
                    let r = br * db + bit / db;
                    let c = bc * db + bit % db;
                    out.push((r as u32, c as u32));
                }
            }
        }
        out
    }

    /// Append the active columns of local row `lr` within block row `br` to
    /// `out`, in tile-major order (ascending block column, ascending column
    /// inside each tile) — which is ascending column order overall, matching
    /// CSR neighbour order. This is the per-query gather the sub-block
    /// attention kernel runs.
    pub fn row_cols_into(&self, br: usize, lr: usize, out: &mut Vec<u32>) {
        let db = self.db;
        debug_assert!(lr < db);
        if br >= self.block_rows {
            return;
        }
        let bytes_per_tile = (db * db).div_ceil(8);
        for t in self.block_ptr[br]..self.block_ptr[br + 1] {
            let bc = self.block_col[t] as usize;
            for lc in 0..db {
                let bit = lr * db + lc;
                if self.bitmaps[t * bytes_per_tile + bit / 8] & (1 << (bit % 8)) != 0 {
                    out.push((bc * db + lc) as u32);
                }
            }
        }
    }

    /// Storage bytes of this representation.
    pub fn storage_bytes(&self) -> usize {
        self.block_ptr.len() * 8
            + self.block_col.len() * 4
            + self.bitmaps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::{clustered_power_law, complete_graph, path_graph, ClusteredConfig};
    use torchgt_graph::partition::{cluster_order, partition};

    #[test]
    fn roundtrip_contains_matches_csr() {
        let g = path_graph(20).with_self_loops();
        let b = BlockCsr::from_mask(&g, 4);
        for r in 0..20 {
            for c in 0..20 {
                assert_eq!(b.contains(r, c), g.has_edge(r, c), "({r},{c})");
            }
        }
        assert_eq!(b.nnz(), g.num_arcs());
    }

    #[test]
    fn complete_graph_fills_tiles() {
        let g = complete_graph(16).with_self_loops();
        let b = BlockCsr::from_mask(&g, 4);
        assert_eq!(b.num_blocks(), 16); // 4×4 block grid, all present
        assert!((b.block_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reformed_masks_are_denser_per_block_than_raw() {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: 600, communities: 6, avg_degree: 8.0, intra_fraction: 0.85 },
            3,
        );
        let assign = partition(&g, 6, 1);
        let order = cluster_order(&assign, 6);
        let pg = g.permute(&order.perm).with_self_loops();
        let raw = BlockCsr::from_mask(&pg, 8);
        let reformed = crate::reform::reform(
            &pg,
            &order,
            crate::reform::ReformConfig { db: 8, beta_thre: 1.0 },
        );
        let blocked = BlockCsr::from_mask(&reformed.mask, 8);
        assert!(
            blocked.block_density() > raw.block_density(),
            "reform must raise per-block density: {} vs {}",
            blocked.block_density(),
            raw.block_density()
        );
        // And need fewer tiles per nonzero.
        let raw_tiles_per_nnz = raw.num_blocks() as f64 / raw.nnz() as f64;
        let ref_tiles_per_nnz = blocked.num_blocks() as f64 / blocked.nnz() as f64;
        assert!(ref_tiles_per_nnz < raw_tiles_per_nnz);
    }

    #[test]
    fn block_row_entries_cover_all_nnz() {
        let g = path_graph(13).with_self_loops();
        let b = BlockCsr::from_mask(&g, 4);
        let mut total = 0;
        for br in 0..b.block_rows {
            for (r, c) in b.block_row_entries(br) {
                assert!(g.has_edge(r as usize, c as usize));
                total += 1;
            }
        }
        assert_eq!(total, g.num_arcs());
    }

    #[test]
    fn storage_is_compact_for_blocky_patterns() {
        // A dense 64-node clique at db=8: 64 tiles × 8 bytes ≈ 576 B of
        // bitmaps vs CSR's 4 KB of u32 col indices.
        let g = complete_graph(64).with_self_loops();
        let b = BlockCsr::from_mask(&g, 8);
        let csr_bytes = g.num_arcs() * 4 + (g.num_nodes() + 1) * 8;
        assert!(b.storage_bytes() < csr_bytes / 4, "{} vs {}", b.storage_bytes(), csr_bytes);
    }

    #[test]
    fn db_one_degenerates_to_csr() {
        let g = path_graph(6);
        let b = BlockCsr::from_mask(&g, 1);
        assert_eq!(b.nnz(), g.num_arcs());
        assert_eq!(b.num_blocks(), g.num_arcs());
        assert!((b.block_density() - 1.0).abs() < 1e-12);
    }
}
