//! Builder validation errors.
//!
//! [`crate::TorchGtBuilder::build_node`] / [`crate::TorchGtBuilder::build_graph`]
//! validate the configuration before any expensive preprocessing and return
//! [`BuildError`] instead of panicking deep inside model construction.

use std::error::Error;
use std::fmt;

/// Why a [`crate::TorchGtBuilder`] configuration cannot produce a trainer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// `seq_len` must be at least 1 token.
    ZeroSeqLen,
    /// `hidden` must be at least 1.
    ZeroHidden,
    /// `layers` must be at least 1.
    ZeroLayers,
    /// `heads` must be at least 1.
    ZeroHeads,
    /// Multi-head attention splits the hidden width across heads, so
    /// `hidden` must be divisible by `heads`.
    HeadsDontDivideHidden {
        /// Configured hidden width.
        hidden: usize,
        /// Configured head count.
        heads: usize,
    },
    /// The dataset has no nodes (node-level) or no sample graphs
    /// (graph-level).
    EmptyDataset,
    /// The output dimension (class count / regression width) is zero.
    ZeroOutDim,
    /// TorchGT's cluster-aware reordering is a global permutation of the
    /// node sequence and cannot stream shard-by-shard; out-of-core training
    /// requires a GP-* method.
    MethodCannotStream,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroSeqLen => write!(f, "seq_len must be >= 1"),
            BuildError::ZeroHidden => write!(f, "hidden width must be >= 1"),
            BuildError::ZeroLayers => write!(f, "layer count must be >= 1"),
            BuildError::ZeroHeads => write!(f, "head count must be >= 1"),
            BuildError::HeadsDontDivideHidden { hidden, heads } => {
                write!(f, "hidden width {hidden} is not divisible by {heads} heads")
            }
            BuildError::EmptyDataset => write!(f, "dataset has no samples"),
            BuildError::ZeroOutDim => write!(f, "output dimension must be >= 1"),
            BuildError::MethodCannotStream => write!(
                f,
                "the torchgt method's global cluster reorder cannot stream from disk; \
                 use a GP-* method (e.g. gp-sparse)"
            ),
        }
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_numbers() {
        let e = BuildError::HeadsDontDivideHidden { hidden: 50, heads: 4 };
        let msg = e.to_string();
        assert!(msg.contains("50") && msg.contains("4"), "{msg}");
        assert!(!BuildError::EmptyDataset.to_string().is_empty());
    }
}
