//! # torchgt
//!
//! A Rust reproduction of **TorchGT: A Holistic System for Large-Scale Graph
//! Transformer Training** (SC 2024).
//!
//! TorchGT scales graph-transformer training to million-token sequences with
//! three co-designed techniques:
//!
//! 1. **Dual-interleaved Attention** — topology-induced `O(E)` sparse
//!    attention, safety-checked by three structural conditions and
//!    periodically interleaved with fully-connected passes;
//! 2. **Cluster-aware Graph Parallelism** — sequence parallelism over graph
//!    tokens reordered by a METIS-style clustering, exchanged with
//!    `O(S/P)`-volume all-to-all collectives;
//! 3. **Elastic Computation Reformation** — sparse attention clusters
//!    compacted into dense sub-blocks, throttled by an LDR-driven Auto
//!    Tuner.
//!
//! This crate is the facade: it re-exports the substrate crates and offers
//! [`TorchGtBuilder`], a one-stop entry point that wires a dataset, a model
//! and a method into a ready [`NodeTrainer`].
//!
//! ```
//! use torchgt::prelude::*;
//!
//! let dataset = DatasetKind::OgbnArxiv.generate_node(0.002, 7);
//! let mut trainer = TorchGtBuilder::new(Method::TorchGt)
//!     .seq_len(256)
//!     .epochs(2)
//!     .hidden(32)
//!     .layers(2)
//!     .heads(4)
//!     .build_node(&dataset)
//!     .expect("valid configuration");
//! let stats = trainer.run();
//! assert_eq!(stats.len(), 2);
//! ```

pub use torchgt_ckpt as ckpt;
pub use torchgt_comm as comm;
pub use torchgt_data as data;
pub use torchgt_faults as faults;
pub use torchgt_graph as graph;
pub use torchgt_model as model;
pub use torchgt_obs as obs;
pub use torchgt_perf as perf;
pub use torchgt_runtime as runtime;
pub use torchgt_serve as serve;
pub use torchgt_sparse as sparse;
pub use torchgt_tensor as tensor;

pub mod error;
pub use error::BuildError;

use torchgt_comm::ClusterTopology;
use torchgt_data::ShardLoader;
use torchgt_graph::{GraphDataset, NodeDataset};
use torchgt_model::{Graphormer, GraphormerConfig, Gt, GtConfig};
use torchgt_perf::{GpuSpec, ModelShape};
use torchgt_runtime::{GraphTrainer, Method, NodeTrainer, StreamingTrainer, TrainConfig};
use torchgt_tensor::Precision;

/// Which model family the builder instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Graphormer (degree + SPD encodings).
    Graphormer,
    /// GT (Laplacian positional encodings).
    Gt,
}

/// Fluent builder for a complete training setup.
#[derive(Clone, Debug)]
pub struct TorchGtBuilder {
    method: Method,
    model: ModelKind,
    seq_len: usize,
    epochs: usize,
    lr: f32,
    hidden: usize,
    layers: usize,
    heads: usize,
    interleave_period: usize,
    precision: Option<Precision>,
    beta_thre: Option<f64>,
    gpu: GpuSpec,
    topology: ClusterTopology,
    seed: u64,
}

impl TorchGtBuilder {
    /// Start a builder for the given training method.
    pub fn new(method: Method) -> Self {
        Self {
            method,
            model: ModelKind::Graphormer,
            seq_len: 1024,
            epochs: 10,
            lr: 1e-3,
            hidden: 64,
            layers: 4,
            heads: 8,
            interleave_period: 8,
            precision: None,
            beta_thre: None,
            gpu: GpuSpec::rtx3090(),
            topology: ClusterTopology::rtx3090(1),
            seed: 1,
        }
    }

    /// Select the model family (default: Graphormer).
    pub fn model(mut self, kind: ModelKind) -> Self {
        self.model = kind;
        self
    }

    /// Sequence length in tokens.
    pub fn seq_len(mut self, s: usize) -> Self {
        self.seq_len = s;
        self
    }

    /// Training epochs.
    pub fn epochs(mut self, e: usize) -> Self {
        self.epochs = e;
        self
    }

    /// Adam learning rate.
    pub fn lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Hidden width.
    pub fn hidden(mut self, d: usize) -> Self {
        self.hidden = d;
        self
    }

    /// Transformer depth.
    pub fn layers(mut self, l: usize) -> Self {
        self.layers = l;
        self
    }

    /// Attention heads.
    pub fn heads(mut self, h: usize) -> Self {
        self.heads = h;
        self
    }

    /// Interleave a fully-connected pass every `n` iterations (0 = never).
    pub fn interleave_period(mut self, n: usize) -> Self {
        self.interleave_period = n;
        self
    }

    /// Override the numeric precision (defaults from the method).
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = Some(p);
        self
    }

    /// Pin the reformation threshold instead of the elastic Auto Tuner.
    pub fn beta_thre(mut self, beta: f64) -> Self {
        self.beta_thre = Some(beta);
        self
    }

    /// Simulated GPU model (default RTX 3090).
    pub fn gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Simulated cluster layout (default one 3090 server).
    pub fn topology(mut self, topo: ClusterTopology) -> Self {
        self.topology = topo;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn train_config(&self) -> TrainConfig {
        let mut cfg = TrainConfig::new(self.method, self.seq_len, self.epochs);
        cfg.lr = self.lr;
        cfg.interleave_period = self.interleave_period;
        cfg.beta_thre = self.beta_thre;
        cfg.seed = self.seed;
        if let Some(p) = self.precision {
            cfg.precision = p;
        }
        cfg
    }

    fn shape(&self) -> ModelShape {
        ModelShape { layers: self.layers, hidden: self.hidden, heads: self.heads }
    }

    fn make_model(
        &self,
        feat_dim: usize,
        out_dim: usize,
    ) -> Box<dyn torchgt_model::SequenceModel> {
        match self.model {
            ModelKind::Graphormer => {
                let cfg = GraphormerConfig {
                    feat_dim,
                    hidden: self.hidden,
                    layers: self.layers,
                    heads: self.heads,
                    ffn_mult: 4,
                    out_dim,
                    max_degree: 64,
                    max_spd: 8,
                    dropout: 0.1,
                };
                Box::new(Graphormer::new(cfg, self.seed))
            }
            ModelKind::Gt => {
                let cfg = GtConfig {
                    feat_dim,
                    hidden: self.hidden,
                    layers: self.layers,
                    heads: self.heads,
                    ffn_mult: 4,
                    out_dim,
                    pe_dim: 8,
                    dropout: 0.1,
                };
                Box::new(Gt::new(cfg, self.seed))
            }
        }
    }

    /// Validate the dimensional configuration shared by both trainer kinds.
    fn validate(&self) -> Result<(), BuildError> {
        if self.seq_len == 0 {
            return Err(BuildError::ZeroSeqLen);
        }
        if self.hidden == 0 {
            return Err(BuildError::ZeroHidden);
        }
        if self.layers == 0 {
            return Err(BuildError::ZeroLayers);
        }
        if self.heads == 0 {
            return Err(BuildError::ZeroHeads);
        }
        if self.hidden % self.heads != 0 {
            return Err(BuildError::HeadsDontDivideHidden {
                hidden: self.hidden,
                heads: self.heads,
            });
        }
        Ok(())
    }

    /// Build a node-level trainer over the dataset. Fails fast — before any
    /// preprocessing — when the configuration cannot produce a model.
    pub fn build_node(&self, dataset: &NodeDataset) -> Result<NodeTrainer, BuildError> {
        self.validate()?;
        if dataset.graph.num_nodes() == 0 {
            return Err(BuildError::EmptyDataset);
        }
        if dataset.num_classes == 0 {
            return Err(BuildError::ZeroOutDim);
        }
        let model = self.make_model(dataset.feat_dim, dataset.num_classes);
        Ok(NodeTrainer::new(
            self.train_config(),
            dataset,
            model,
            self.shape(),
            self.gpu,
            self.topology,
        ))
    }

    /// Build a graph-level trainer over the dataset. `out_dim` is the class
    /// count (or 1 for regression). Fails fast when the configuration cannot
    /// produce a model.
    pub fn build_graph(
        &self,
        dataset: &GraphDataset,
        out_dim: usize,
    ) -> Result<GraphTrainer, BuildError> {
        self.validate()?;
        if dataset.samples.is_empty() {
            return Err(BuildError::EmptyDataset);
        }
        if out_dim == 0 {
            return Err(BuildError::ZeroOutDim);
        }
        let model = self.make_model(dataset.feat_dim, out_dim);
        Ok(GraphTrainer::new(
            self.train_config(),
            dataset,
            model,
            self.shape(),
            self.gpu,
            self.topology,
        ))
    }

    /// Build an out-of-core node-level trainer fed from an opened
    /// [`ShardLoader`]. The model's input/output widths come from the
    /// dataset manifest — no shard is read during construction. Only GP-*
    /// methods can stream ([`BuildError::MethodCannotStream`] otherwise).
    pub fn build_streaming(&self, loader: ShardLoader) -> Result<StreamingTrainer, BuildError> {
        self.validate()?;
        if self.method == Method::TorchGt {
            return Err(BuildError::MethodCannotStream);
        }
        let m = loader.manifest();
        if m.total_nodes == 0 {
            return Err(BuildError::EmptyDataset);
        }
        if m.num_classes == 0 {
            return Err(BuildError::ZeroOutDim);
        }
        let model = self.make_model(m.feat_dim as usize, m.num_classes as usize);
        Ok(StreamingTrainer::new(
            self.train_config(),
            loader,
            model,
            self.shape(),
            self.gpu,
            self.topology,
        ))
    }
}

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::{BuildError, ModelKind, TorchGtBuilder};
    pub use torchgt_ckpt::{CheckpointStore, Snapshot};
    pub use torchgt_comm::{
        ClusterTopology, CrashPoint, FaultPlan, Interconnect, Membership, RankFailure,
        StragglerReport,
    };
    pub use torchgt_data::{
        generate_to_dir, load_node_dataset, DatagenReport, Manifest, ShardLoader,
        ShardQuarantined,
    };
    pub use torchgt_faults::{DiskFaultPlan, FaultSpec, ServeFaultPlan};
    pub use torchgt_graph::{
        DatasetKind, EffectiveSpec, GraphDataset, GraphLabel, NodeDataset, TaskKind,
    };
    pub use torchgt_model::{Pattern, SequenceBatch, SequenceModel};
    pub use torchgt_obs::{
        MemoryRecorder, MetricsReport, NoopRecorder, Recorder, RecorderHandle,
    };
    pub use torchgt_perf::{GpuSpec, ModelShape};
    pub use torchgt_runtime::{
        run_with_checkpoints, train_data_parallel_elastic, CheckpointOptions, ElasticStats,
        EpochStats, GraphTrainer, Method, NodeTrainer, RankLoss, RecoveryPolicy, ResumeOutcome,
        StreamingTrainer, TrainConfig, Trainer,
    };
    pub use torchgt_serve::{
        CalibSet, Freezable, FreezeError, FreezeOptions, FrozenExecutor, FrozenModel,
        Overloaded, QuantScheme, ServeConfig, ServeLoop, ServeReply, ServeStats, ShedReason,
        ShutdownHandle,
    };
    pub use torchgt_sparse::LayoutKind;
    pub use torchgt_tensor::{Precision, Tensor};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn builder_produces_working_node_trainer() {
        let dataset = DatasetKind::Flickr.generate_node(0.01, 3);
        let mut trainer = TorchGtBuilder::new(Method::TorchGt)
            .seq_len(300)
            .epochs(2)
            .hidden(32)
            .layers(2)
            .heads(4)
            .lr(2e-3)
            .build_node(&dataset)
            .expect("valid node configuration");
        let stats = trainer.run();
        assert_eq!(stats.len(), 2);
        assert!(stats[1].loss <= stats[0].loss * 1.2);
    }

    #[test]
    fn builder_produces_working_graph_trainer() {
        let dataset = DatasetKind::Zinc.generate_graphs(10, 1.0, 4);
        let mut trainer = TorchGtBuilder::new(Method::GpSparse)
            .model(crate::ModelKind::Gt)
            .epochs(1)
            .hidden(16)
            .layers(2)
            .heads(2)
            .build_graph(&dataset, 1)
            .expect("valid graph configuration");
        let stats = trainer.run();
        assert_eq!(stats.len(), 1);
    }

    #[test]
    fn misconfiguration_is_reported_not_panicked() {
        let node = DatasetKind::OgbnArxiv.generate_node(0.002, 5);
        let graphs = DatasetKind::Zinc.generate_graphs(4, 1.0, 4);
        let base = || TorchGtBuilder::new(Method::TorchGt).hidden(32).layers(2).heads(4);
        assert_eq!(base().seq_len(0).build_node(&node).err(), Some(BuildError::ZeroSeqLen));
        assert_eq!(base().hidden(0).build_node(&node).err(), Some(BuildError::ZeroHidden));
        assert_eq!(base().layers(0).build_node(&node).err(), Some(BuildError::ZeroLayers));
        assert_eq!(base().heads(0).build_node(&node).err(), Some(BuildError::ZeroHeads));
        assert_eq!(
            base().hidden(30).build_node(&node).err(),
            Some(BuildError::HeadsDontDivideHidden { hidden: 30, heads: 4 })
        );
        assert_eq!(
            base().build_graph(&graphs, 0).err(),
            Some(BuildError::ZeroOutDim)
        );
        let empty = GraphDataset { samples: Vec::new(), ..graphs.clone() };
        assert_eq!(base().build_graph(&empty, 1).err(), Some(BuildError::EmptyDataset));
    }

    #[test]
    fn checked_builder_is_the_single_entry_point() {
        let dataset = DatasetKind::OgbnArxiv.generate_node(0.002, 5);
        let trainer = TorchGtBuilder::new(Method::GpSparse)
            .seq_len(128)
            .epochs(1)
            .hidden(16)
            .layers(2)
            .heads(2)
            .build_node(&dataset)
            .expect("valid configuration");
        assert_eq!(trainer.cfg.seq_len, 128);
    }

    #[test]
    fn misconfig_is_a_typed_error_not_a_panic() {
        let dataset = DatasetKind::OgbnArxiv.generate_node(0.002, 5);
        let err = TorchGtBuilder::new(Method::TorchGt)
            .heads(3)
            .hidden(32)
            .build_node(&dataset)
            .err();
        assert_eq!(err, Some(BuildError::HeadsDontDivideHidden { hidden: 32, heads: 3 }));
    }

    #[test]
    fn precision_override_applies() {
        let dataset = DatasetKind::OgbnArxiv.generate_node(0.002, 5);
        let trainer = TorchGtBuilder::new(Method::TorchGt)
            .seq_len(200)
            .epochs(1)
            .hidden(16)
            .layers(2)
            .heads(2)
            .precision(Precision::Bf16)
            .build_node(&dataset)
            .expect("valid configuration");
        assert_eq!(trainer.cfg.precision, Precision::Bf16);
    }
}
