//! # torchgt-data
//!
//! Out-of-core streaming data subsystem. The paper's headline scale claim is
//! training ogbn-papers100M (111M nodes, Table III / Table V), but the
//! in-memory generators in `torchgt-graph` cap functional runs at whatever
//! fits in RAM. This crate puts a binary shard layer underneath the whole
//! training/serving stack:
//!
//! * [`shard`] — the versioned `TGDS` shard format: a contiguous range of
//!   nodes (features, labels, communities, and full global-id adjacency
//!   rows) behind the same double-CRC header discipline as `TGTS`
//!   snapshots and `TGTF` frozen artifacts.
//! * [`manifest`] — the `TGDM` dataset manifest: generation parameters
//!   (kind/scale/seed), effective totals, and the shard list with per-shard
//!   byte counts and content CRCs. [`Manifest::hash`] is the dataset's
//!   stable identity, embedded in checkpoints and frozen artifacts.
//! * [`writer`] — streaming generation: [`writer::generate_to_dir`] drives
//!   [`torchgt_graph::datasets::DatasetKind::stream_node`] into per-shard
//!   edge spill files and then finalises shards one at a time, so peak
//!   memory is `O(n + shard)` rather than `O(dataset)`.
//! * [`loader`] — [`ShardLoader`]: a double-buffered prefetching reader
//!   (background thread over a bounded `torchgt_compat::sync` channel,
//!   optional seeded per-epoch shard shuffle) publishing prefetch-stall /
//!   bytes-read / buffer-occupancy gauges through `torchgt-obs`.
//!
//! Every shard written by the streaming path is **bit-identical** to what
//! slicing the in-memory [`torchgt_graph::NodeDataset`] would produce, so
//! trainers fed from disk reproduce the in-memory loss history exactly.

pub mod loader;
pub mod manifest;
pub mod shard;
pub mod writer;

pub use loader::{LoaderStats, ShardLoader, ShardStream};
pub use manifest::{Manifest, ShardEntry, MANIFEST_FILE, MANIFEST_FORMAT_VERSION};
pub use shard::{Shard, SHARD_FORMAT_VERSION};
pub use writer::{generate_to_dir, load_node_dataset, DatagenReport};

use std::io;
use std::path::Path;

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Publish `bytes` at `path` atomically: write to a `.tmp` sibling in the
/// same directory, flush, then rename over the target — the same
/// write-then-rename discipline as `torchgt_ckpt::CheckpointStore` and
/// `TGTF` artifacts, so a crash mid-write never leaves a torn file behind.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}
