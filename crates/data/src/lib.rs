//! # torchgt-data
//!
//! Out-of-core streaming data subsystem. The paper's headline scale claim is
//! training ogbn-papers100M (111M nodes, Table III / Table V), but the
//! in-memory generators in `torchgt-graph` cap functional runs at whatever
//! fits in RAM. This crate puts a binary shard layer underneath the whole
//! training/serving stack:
//!
//! * [`shard`] — the versioned `TGDS` shard format: a contiguous range of
//!   nodes (features, labels, communities, and full global-id adjacency
//!   rows) behind the same double-CRC header discipline as `TGTS`
//!   snapshots and `TGTF` frozen artifacts.
//! * [`manifest`] — the `TGDM` dataset manifest: generation parameters
//!   (kind/scale/seed), effective totals, and the shard list with per-shard
//!   byte counts and content CRCs. [`Manifest::hash`] is the dataset's
//!   stable identity, embedded in checkpoints and frozen artifacts.
//! * [`writer`] — streaming generation: [`writer::generate_to_dir`] drives
//!   [`torchgt_graph::datasets::DatasetKind::stream_node`] into per-shard
//!   edge spill files and then finalises shards one at a time, so peak
//!   memory is `O(n + shard)` rather than `O(dataset)`.
//! * [`loader`] — [`ShardLoader`]: a double-buffered prefetching reader
//!   (background thread over a bounded `torchgt_compat::sync` channel,
//!   optional seeded per-epoch shard shuffle) publishing prefetch-stall /
//!   bytes-read / buffer-occupancy gauges through `torchgt-obs`.
//!
//! Every shard written by the streaming path is **bit-identical** to what
//! slicing the in-memory [`torchgt_graph::NodeDataset`] would produce, so
//! trainers fed from disk reproduce the in-memory loss history exactly.

pub mod loader;
pub mod manifest;
pub mod shard;
pub mod writer;

pub use loader::{LoaderStats, ShardLoader, ShardStream};
pub use manifest::{Manifest, ShardEntry, MANIFEST_FILE, MANIFEST_FORMAT_VERSION};
pub use shard::{Shard, SHARD_FORMAT_VERSION};
pub use writer::{generate_to_dir, load_node_dataset, DatagenReport};

use std::io;
use std::path::Path;

/// Typed payload of a shard-quarantine error: the self-healing reader
/// exhausted its retry ladder (transient retries plus the one CRC re-read)
/// against `path` and refuses to serve the shard. Reach it from an
/// [`io::Error`] via `e.get_ref().and_then(|r| r.downcast_ref())`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardQuarantined {
    /// The shard file that was quarantined.
    pub path: String,
    /// The underlying failure (I/O error text or CRC mismatch).
    pub reason: String,
}

impl std::fmt::Display for ShardQuarantined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} quarantined: {}", self.path, self.reason)
    }
}

impl std::error::Error for ShardQuarantined {}

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The fault-plane registry is process-global, so a test that installs a
/// plan would perturb any concurrently-running test that reads shards
/// through it. Every disk-touching test in this crate takes this gate.
#[cfg(test)]
pub(crate) fn test_fault_gate() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Publish `bytes` at `path` atomically: write to a `.tmp` sibling in the
/// same directory, flush, then rename over the target — the same
/// write-then-rename discipline as `torchgt_ckpt::CheckpointStore` and
/// `TGTF` artifacts, so a crash mid-write never leaves a torn file behind.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}
