//! The on-disk `TGDS` shard format.
//!
//! ```text
//! offset  size            field
//! 0       4               magic "TGDS"
//! 4       4               format version, u32 LE (currently 1)
//! 8       8               manifest length N, u64 LE
//! 16      4               CRC-32 of the manifest bytes, u32 LE
//! 20      N               manifest: compact JSON (torchgt-compat::json)
//! 20+N    payload_len     payload, packed LE:
//!                           features   node_count * feat_dim  f32
//!                           labels     node_count             u32
//!                           community  node_count             u32
//!                           row_lens   node_count             u32
//!                           col_idx    num_arcs               u32
//! ```
//!
//! A shard holds the contiguous node range `[node_start, node_start +
//! node_count)` of one dataset: per-node features, labels, planted
//! communities, and the node's **full, sorted, deduplicated adjacency row in
//! global ids**. Concatenating every shard's rows therefore reassembles the
//! whole graph's CSR exactly (`CsrGraph::from_raw`), and any window of rows
//! yields an induced subgraph without touching other shards.
//!
//! Readers follow the `TGTS`/`TGTF` discipline: verify magic → version →
//! manifest length cap → manifest CRC → UTF-8 → declared-shapes-vs-payload
//! cross-check → payload CRC → exact EOF → structural invariants (row sums,
//! neighbor bounds, sortedness), all *before* any data is handed out.

use crate::bad;
use std::io::{self, Read, Write};
use std::path::Path;
use torchgt_ckpt::crc32;
use torchgt_tensor::checkpoint::{expect_eof, read_f32s, write_f32s};

fn write_u32s<W: Write>(w: &mut W, data: &[u32]) -> io::Result<()> {
    for v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32s<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<u32>> {
    let mut out = Vec::with_capacity(n);
    let mut buf = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

/// Current `TGDS` shard format version.
pub const SHARD_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"TGDS";

/// Hard cap on the declared manifest length — a corrupted length field must
/// not trigger a huge allocation.
const MAX_MANIFEST_LEN: u64 = 64 << 20;

torchgt_compat::json_struct! {
    /// The shard's JSON manifest (private — [`Shard`] is the public
    /// surface).
    #[derive(Clone, Debug, PartialEq)]
    struct ShardManifest {
        format_version: u32,
        shard_index: u64,
        node_start: u64,
        node_count: u64,
        total_nodes: u64,
        feat_dim: u64,
        num_arcs: u64,
        payload_len: u64,
        payload_crc: u32,
    }
}

/// One contiguous slice of a node-level dataset, self-describing and
/// independently verifiable.
#[derive(Clone, Debug, PartialEq)]
pub struct Shard {
    /// Position of this shard in the dataset's shard sequence.
    pub shard_index: usize,
    /// Global id of the first node in the shard.
    pub node_start: usize,
    /// Nodes in the shard.
    pub node_count: usize,
    /// Total nodes in the whole dataset (for neighbor-bound validation).
    pub total_nodes: usize,
    /// Feature dimension.
    pub feat_dim: usize,
    /// Row-major `[node_count, feat_dim]` features.
    pub features: Vec<f32>,
    /// Per-node labels.
    pub labels: Vec<u32>,
    /// Per-node planted communities.
    pub community: Vec<u32>,
    /// Local CSR offsets into `col_idx`, length `node_count + 1`.
    pub row_ptr: Vec<usize>,
    /// Concatenated adjacency rows: **global** neighbor ids, sorted and
    /// deduplicated within each row.
    pub col_idx: Vec<u32>,
}

impl Shard {
    /// Arcs (directed adjacency entries) stored in the shard.
    pub fn num_arcs(&self) -> usize {
        self.col_idx.len()
    }

    /// Global neighbor ids of the shard-local node `local`.
    pub fn neighbors(&self, local: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[local]..self.row_ptr[local + 1]]
    }

    /// Feature row of the shard-local node `local`.
    pub fn feature_row(&self, local: usize) -> &[f32] {
        &self.features[local * self.feat_dim..(local + 1) * self.feat_dim]
    }

    /// Serialise to a writer (header + manifest + payload, per the module
    /// docs).
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut payload = Vec::with_capacity(
            4 * (self.features.len() + 3 * self.node_count + self.col_idx.len()),
        );
        write_f32s(&mut payload, &self.features)?;
        write_u32s(&mut payload, &self.labels)?;
        write_u32s(&mut payload, &self.community)?;
        let row_lens: Vec<u32> =
            self.row_ptr.windows(2).map(|w| (w[1] - w[0]) as u32).collect();
        write_u32s(&mut payload, &row_lens)?;
        write_u32s(&mut payload, &self.col_idx)?;
        let manifest = ShardManifest {
            format_version: SHARD_FORMAT_VERSION,
            shard_index: self.shard_index as u64,
            node_start: self.node_start as u64,
            node_count: self.node_count as u64,
            total_nodes: self.total_nodes as u64,
            feat_dim: self.feat_dim as u64,
            num_arcs: self.col_idx.len() as u64,
            payload_len: payload.len() as u64,
            payload_crc: crc32(&payload),
        };
        let manifest_bytes = torchgt_compat::json::to_string(&manifest)
            .map_err(|e| bad(format!("shard manifest encode: {e}")))?
            .into_bytes();
        w.write_all(MAGIC)?;
        w.write_all(&SHARD_FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(manifest_bytes.len() as u64).to_le_bytes())?;
        w.write_all(&crc32(&manifest_bytes).to_le_bytes())?;
        w.write_all(&manifest_bytes)?;
        w.write_all(&payload)?;
        Ok(())
    }

    /// Serialise to an owned byte buffer.
    pub fn to_bytes(&self) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)?;
        Ok(buf)
    }

    /// Deserialise from a reader, verifying magic, version, both checksums,
    /// every declared length, exact EOF, and the structural invariants
    /// (consistent row lengths, in-bounds sorted-unique neighbor rows).
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("bad shard magic"));
        }
        let mut buf4 = [0u8; 4];
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version != SHARD_FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported shard format version {version} (expected {SHARD_FORMAT_VERSION})"
            )));
        }
        r.read_exact(&mut buf8)?;
        let manifest_len = u64::from_le_bytes(buf8);
        if manifest_len > MAX_MANIFEST_LEN {
            return Err(bad(format!("implausible shard manifest length {manifest_len}")));
        }
        r.read_exact(&mut buf4)?;
        let manifest_crc = u32::from_le_bytes(buf4);
        let mut manifest_bytes = vec![0u8; manifest_len as usize];
        r.read_exact(&mut manifest_bytes)?;
        if crc32(&manifest_bytes) != manifest_crc {
            return Err(bad("shard manifest checksum mismatch (corrupt shard)"));
        }
        let manifest_text = std::str::from_utf8(&manifest_bytes)
            .map_err(|_| bad("shard manifest is not valid UTF-8"))?;
        let manifest: ShardManifest = torchgt_compat::json::from_str_as(manifest_text)
            .map_err(|e| bad(format!("shard manifest decode: {e}")))?;
        if manifest.format_version != version {
            return Err(bad("shard manifest/header version disagreement"));
        }
        let node_count = manifest.node_count as usize;
        let feat_dim = manifest.feat_dim as usize;
        let num_arcs = manifest.num_arcs as usize;
        if node_count == 0 || feat_dim == 0 {
            return Err(bad("shard declares zero nodes or zero feature dim"));
        }
        if manifest.node_start + manifest.node_count > manifest.total_nodes {
            return Err(bad(format!(
                "shard range [{}, {}) exceeds total nodes {}",
                manifest.node_start,
                manifest.node_start + manifest.node_count,
                manifest.total_nodes
            )));
        }
        let expected = 4 * (node_count * feat_dim + 3 * node_count + num_arcs) as u64;
        if expected != manifest.payload_len {
            return Err(bad(format!(
                "shard shapes require {expected} payload bytes, manifest declares {}",
                manifest.payload_len
            )));
        }
        let mut payload = vec![0u8; manifest.payload_len as usize];
        r.read_exact(&mut payload)?;
        if crc32(&payload) != manifest.payload_crc {
            return Err(bad("shard payload checksum mismatch (corrupt shard)"));
        }
        expect_eof(&mut r)?;
        let mut cursor: &[u8] = &payload;
        let features = read_f32s(&mut cursor, node_count * feat_dim)?;
        let labels = read_u32s(&mut cursor, node_count)?;
        let community = read_u32s(&mut cursor, node_count)?;
        let row_lens = read_u32s(&mut cursor, node_count)?;
        let col_idx = read_u32s(&mut cursor, num_arcs)?;
        let mut row_ptr = Vec::with_capacity(node_count + 1);
        row_ptr.push(0usize);
        let mut acc = 0usize;
        for &len in &row_lens {
            acc += len as usize;
            row_ptr.push(acc);
        }
        if acc != num_arcs {
            return Err(bad(format!(
                "shard row lengths sum to {acc}, manifest declares {num_arcs} arcs"
            )));
        }
        for (local, w) in row_ptr.windows(2).enumerate() {
            let row = &col_idx[w[0]..w[1]];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(bad(format!(
                        "shard row {local} is not sorted-unique"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last as u64 >= manifest.total_nodes {
                    return Err(bad(format!(
                        "shard row {local} references node {last} >= total {}",
                        manifest.total_nodes
                    )));
                }
            }
        }
        Ok(Self {
            shard_index: manifest.shard_index as usize,
            node_start: manifest.node_start as usize,
            node_count,
            total_nodes: manifest.total_nodes as usize,
            feat_dim,
            features,
            labels,
            community,
            row_ptr,
            col_idx,
        })
    }

    /// Publish atomically at `path` (write-then-rename).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        crate::atomic_write(path, &self.to_bytes()?)
    }

    /// Read and fully validate a shard file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::read_from(bytes.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_compat::proptest::prelude::*;

    pub(crate) fn sample() -> Shard {
        Shard {
            shard_index: 1,
            node_start: 4,
            node_count: 3,
            total_nodes: 16,
            feat_dim: 2,
            features: vec![0.5, -1.0, 2.25, 0.0, 3.5, -0.125],
            labels: vec![1, 0, 2],
            community: vec![0, 0, 1],
            row_ptr: vec![0, 2, 2, 5],
            col_idx: vec![1, 5, 0, 4, 15],
        }
    }

    #[test]
    fn byte_round_trip() {
        let s = sample();
        let back = Shard::read_from(s.to_bytes().unwrap().as_slice()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.neighbors(0), &[1, 5]);
        assert_eq!(back.neighbors(1), &[] as &[u32]);
        assert_eq!(back.feature_row(2), &[3.5, -0.125]);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let s = sample();
        let bytes = s.to_bytes().unwrap();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            // A flip inside a JSON number can still decode — but then it
            // must decode to a *different* manifest, which the shape/CRC
            // cross-checks catch; everywhere else the read must fail.
            match Shard::read_from(corrupt.as_slice()) {
                Err(_) => {}
                Ok(decoded) => {
                    assert_ne!(decoded, s, "byte {i}: corruption accepted verbatim")
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let s = sample();
        let bytes = s.to_bytes().unwrap();
        for len in 0..bytes.len() {
            assert!(
                Shard::read_from(&bytes[..len]).is_err(),
                "truncation to {len} bytes accepted"
            );
        }
    }

    #[test]
    fn trailing_junk_is_rejected() {
        let s = sample();
        let mut bytes = s.to_bytes().unwrap();
        bytes.push(0);
        assert!(Shard::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn future_version_is_rejected() {
        let s = sample();
        let mut bytes = s.to_bytes().unwrap();
        bytes[4] = 0xFF;
        assert!(Shard::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn unsorted_rows_are_rejected() {
        let mut s = sample();
        s.col_idx = vec![5, 1, 0, 4, 15]; // first row descends
        assert!(Shard::read_from(s.to_bytes().unwrap().as_slice()).is_err());
    }

    #[test]
    fn out_of_bounds_neighbors_are_rejected() {
        let mut s = sample();
        s.col_idx[4] = 16; // == total_nodes
        assert!(Shard::read_from(s.to_bytes().unwrap().as_slice()).is_err());
    }

    proptest! {
        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let _ = Shard::read_from(bytes.as_slice());
        }
    }
}
