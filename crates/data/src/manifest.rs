//! The `TGDM` dataset manifest: the identity and table of contents of an
//! on-disk sharded dataset.
//!
//! ```text
//! offset  size   field
//! 0       4      magic "TGDM"
//! 4       4      format version, u32 LE (currently 1)
//! 8       8      manifest length N, u64 LE
//! 16      4      CRC-32 of the manifest bytes, u32 LE
//! 20      N      manifest: compact JSON (torchgt-compat::json)
//! ```
//!
//! The manifest records the generation parameters (dataset kind, scale,
//! seed), the *effective* post-clamp totals actually generated
//! ([`torchgt_graph::EffectiveSpec`] — node count, feature dim, classes),
//! and one [`ShardEntry`] per shard with its byte count and whole-file
//! CRC-32, so the loader can verify a shard before parsing it.
//!
//! [`Manifest::hash`] — FNV-1a over the canonical JSON encoding — is the
//! dataset's stable identity. It is embedded in `TGTS` training snapshots
//! (restore refuses a mismatched dataset unless overridden) and in `TGTF`
//! frozen-artifact provenance.

use crate::bad;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use torchgt_ckpt::crc32;
use torchgt_graph::DatasetKind;

/// Current `TGDM` manifest format version.
pub const MANIFEST_FORMAT_VERSION: u32 = 1;

/// File name of the manifest inside a dataset directory.
pub const MANIFEST_FILE: &str = "manifest.tgdm";

const MAGIC: &[u8; 4] = b"TGDM";

/// Hard cap on the declared manifest length — a corrupted length field must
/// not trigger a huge allocation.
const MAX_MANIFEST_LEN: u64 = 64 << 20;

torchgt_compat::json_struct! {
    /// One shard's entry in the dataset's table of contents.
    #[derive(Clone, Debug, PartialEq)]
    pub struct ShardEntry {
        /// File name relative to the dataset directory.
        pub file: String,
        /// Global id of the shard's first node.
        pub node_start: u64,
        /// Nodes in the shard.
        pub node_count: u64,
        /// Adjacency entries in the shard.
        pub num_arcs: u64,
        /// Size of the shard file in bytes.
        pub bytes: u64,
        /// CRC-32 of the entire shard file (header included), checked by
        /// the loader before the shard is parsed.
        pub crc: u32,
    }
}

torchgt_compat::json_struct! {
    /// The dataset manifest: generation parameters, effective totals, and
    /// the shard list.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Manifest {
        /// `TGDM` format version.
        pub format_version: u32,
        /// Which dataset the shards stand in for.
        pub kind: DatasetKind,
        /// Scale the generator ran at.
        pub scale: f64,
        /// Generator seed (also derives the train/val/test split and the
        /// feature RNG, so it fully determines dataset content).
        pub seed: u64,
        /// Effective total nodes (post-clamp — what was actually written).
        pub total_nodes: u64,
        /// Effective feature dimension.
        pub feat_dim: u64,
        /// Effective class count.
        pub num_classes: u64,
        /// Total adjacency entries across all shards.
        pub total_arcs: u64,
        /// Nominal nodes per shard (the last shard may be smaller).
        pub shard_nodes: u64,
        /// Shards in node order.
        pub shards: Vec<ShardEntry>,
    }
}

impl Manifest {
    /// Stable dataset identity: 64-bit FNV-1a over the canonical compact
    /// JSON encoding, rendered as `tgds-` + 16 hex digits. Covers the
    /// generation parameters, effective totals, and every shard's size and
    /// CRC — any change to dataset content changes the hash.
    pub fn hash(&self) -> String {
        let json = torchgt_compat::json::to_string(self).expect("manifest encodes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in json.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("tgds-{h:016x}")
    }

    /// Sparsity β_G of the stored graph (`total_arcs / n²`) — the quantity
    /// the Elastic Computation Reformation thresholds against, computable
    /// without loading a single shard.
    pub fn beta_g(&self) -> f64 {
        if self.total_nodes == 0 {
            return 0.0;
        }
        self.total_arcs as f64 / (self.total_nodes as f64 * self.total_nodes as f64)
    }

    /// Path of the shard described by `entry` inside `dir`.
    pub fn shard_path(dir: &Path, entry: &ShardEntry) -> PathBuf {
        dir.join(&entry.file)
    }

    /// Serialise to framed bytes (header + checksummed JSON).
    pub fn to_bytes(&self) -> io::Result<Vec<u8>> {
        let manifest_bytes = torchgt_compat::json::to_string(self)
            .map_err(|e| bad(format!("manifest encode: {e}")))?
            .into_bytes();
        let mut out = Vec::with_capacity(20 + manifest_bytes.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&MANIFEST_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(manifest_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&manifest_bytes).to_le_bytes());
        out.extend_from_slice(&manifest_bytes);
        Ok(out)
    }

    /// Deserialise from a reader, verifying magic, version, the checksum,
    /// exact EOF, and the structural invariants (non-empty contiguous shard
    /// coverage whose totals match the declared ones).
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("bad dataset manifest magic"));
        }
        let mut buf4 = [0u8; 4];
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version != MANIFEST_FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported dataset manifest version {version} (expected {MANIFEST_FORMAT_VERSION})"
            )));
        }
        r.read_exact(&mut buf8)?;
        let manifest_len = u64::from_le_bytes(buf8);
        if manifest_len > MAX_MANIFEST_LEN {
            return Err(bad(format!("implausible dataset manifest length {manifest_len}")));
        }
        r.read_exact(&mut buf4)?;
        let manifest_crc = u32::from_le_bytes(buf4);
        let mut manifest_bytes = vec![0u8; manifest_len as usize];
        r.read_exact(&mut manifest_bytes)?;
        if crc32(&manifest_bytes) != manifest_crc {
            return Err(bad("dataset manifest checksum mismatch (corrupt manifest)"));
        }
        let text = std::str::from_utf8(&manifest_bytes)
            .map_err(|_| bad("dataset manifest is not valid UTF-8"))?;
        let manifest: Manifest = torchgt_compat::json::from_str_as(text)
            .map_err(|e| bad(format!("dataset manifest decode: {e}")))?;
        if manifest.format_version != version {
            return Err(bad("dataset manifest/header version disagreement"));
        }
        // Exact EOF: trailing junk is corruption, same as the shard codec.
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(bad("trailing bytes after dataset manifest"));
        }
        manifest.validate()?;
        Ok(manifest)
    }

    /// Structural invariants beyond the checksum: shards must tile
    /// `[0, total_nodes)` contiguously in order, and the per-shard totals
    /// must sum to the declared ones.
    fn validate(&self) -> io::Result<()> {
        if self.shards.is_empty() {
            return Err(bad("dataset manifest lists no shards"));
        }
        if self.total_nodes == 0 || self.feat_dim == 0 || self.num_classes == 0 {
            return Err(bad("dataset manifest declares a zero dimension"));
        }
        let mut next_start = 0u64;
        let mut arcs = 0u64;
        for (i, s) in self.shards.iter().enumerate() {
            if s.node_start != next_start {
                return Err(bad(format!(
                    "shard {i} starts at node {} (expected {next_start}): non-contiguous coverage",
                    s.node_start
                )));
            }
            if s.node_count == 0 {
                return Err(bad(format!("shard {i} is empty")));
            }
            next_start += s.node_count;
            arcs += s.num_arcs;
        }
        if next_start != self.total_nodes {
            return Err(bad(format!(
                "shards cover {next_start} nodes, manifest declares {}",
                self.total_nodes
            )));
        }
        if arcs != self.total_arcs {
            return Err(bad(format!(
                "shards hold {arcs} arcs, manifest declares {}",
                self.total_arcs
            )));
        }
        Ok(())
    }

    /// Publish atomically at `path` (write-then-rename).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        crate::atomic_write(path, &self.to_bytes()?)
    }

    /// Read and fully validate a manifest file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::read_from(bytes.as_slice())
    }

    /// Read the manifest of the dataset directory `dir`.
    pub fn load_dir(dir: &Path) -> io::Result<Self> {
        Self::load(&dir.join(MANIFEST_FILE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_compat::proptest::prelude::*;

    fn sample() -> Manifest {
        Manifest {
            format_version: MANIFEST_FORMAT_VERSION,
            kind: DatasetKind::OgbnArxiv,
            scale: 0.01,
            seed: 7,
            total_nodes: 300,
            feat_dim: 64,
            num_classes: 18,
            total_arcs: 1234,
            shard_nodes: 256,
            shards: vec![
                ShardEntry {
                    file: "shard-00000.tgds".to_string(),
                    node_start: 0,
                    node_count: 256,
                    num_arcs: 1100,
                    bytes: 70_000,
                    crc: 0xDEAD_BEEF,
                },
                ShardEntry {
                    file: "shard-00001.tgds".to_string(),
                    node_start: 256,
                    node_count: 44,
                    num_arcs: 134,
                    bytes: 12_000,
                    crc: 0x1234_5678,
                },
            ],
        }
    }

    #[test]
    fn byte_round_trip_and_stable_hash() {
        let m = sample();
        let back = Manifest::read_from(m.to_bytes().unwrap().as_slice()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.hash(), m.hash());
        assert!(m.hash().starts_with("tgds-") && m.hash().len() == 5 + 16);
        // Identity is content-sensitive: a different seed is a different
        // dataset.
        let mut other = m.clone();
        other.seed = 8;
        assert_ne!(other.hash(), m.hash());
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let m = sample();
        let bytes = m.to_bytes().unwrap();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            match Manifest::read_from(corrupt.as_slice()) {
                Err(_) => {}
                Ok(decoded) => {
                    assert_ne!(decoded, m, "byte {i}: corruption accepted verbatim")
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let m = sample();
        let bytes = m.to_bytes().unwrap();
        for len in 0..bytes.len() {
            assert!(
                Manifest::read_from(&bytes[..len]).is_err(),
                "truncation to {len} bytes accepted"
            );
        }
    }

    #[test]
    fn trailing_junk_is_rejected() {
        let m = sample();
        let mut bytes = m.to_bytes().unwrap();
        bytes.push(b'x');
        assert!(Manifest::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn non_contiguous_coverage_is_rejected() {
        let mut m = sample();
        m.shards[1].node_start = 300; // gap after shard 0
        assert!(Manifest::read_from(m.to_bytes().unwrap().as_slice()).is_err());
        let mut m = sample();
        m.total_arcs += 1;
        assert!(Manifest::read_from(m.to_bytes().unwrap().as_slice()).is_err());
    }

    proptest! {
        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let _ = Manifest::read_from(bytes.as_slice());
        }
    }
}
