//! The double-buffered prefetching [`ShardLoader`].
//!
//! A background thread reads, CRC-verifies, and parses shards in the
//! epoch's order and pushes them through a **bounded**
//! `torchgt_compat::sync` channel of depth `prefetch_depth` (default 2 —
//! classic double buffering: one shard in the consumer's hands, one ready,
//! the producer filling the next). The consumer side ([`ShardStream`])
//! measures the time it blocks waiting on the channel — the *prefetch
//! stall* — and publishes it together with bytes-read and buffer-occupancy
//! gauges through `torchgt-obs`:
//!
//! * `prefetch_stall_ms` — cumulative milliseconds the trainer spent
//!   blocked on the loader (including the unavoidable first-shard wait);
//! * `shard_bytes_read` — cumulative shard bytes fetched from disk;
//! * `prefetch_buffer_depth` — shards sitting ready in the channel after
//!   each receive (the double-buffer occupancy).
//!
//! Epoch order is deterministic: identity by default (required for
//! bit-identical parity with the in-memory trainer, whose sequences walk
//! nodes in id order), or a seeded Fisher–Yates shuffle of the shard list
//! re-derived per epoch via `splitmix64(seed, epoch)` when cross-shard
//! shuffling is enabled.

use crate::manifest::{Manifest, ShardEntry};
use crate::shard::Shard;
use crate::writer::read_verified_shard_with;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use torchgt_compat::sync::channel::{bounded, Receiver};
use torchgt_compat::sync::lock_unpoisoned;
use torchgt_obs::RecorderHandle;

/// Cumulative loader-side I/O statistics, shared across every epoch's
/// stream (the gauges published through the recorder mirror these).
#[derive(Clone, Copy, Debug, Default)]
pub struct LoaderStats {
    /// Milliseconds the consumer spent blocked waiting for a shard.
    pub stall_ms: f64,
    /// Shard bytes fetched from disk.
    pub bytes_read: u64,
    /// Shards delivered to the consumer.
    pub shards_delivered: u64,
    /// Read retries the self-healing ladder performed (transient-error
    /// retries plus CRC re-reads) across all streams.
    pub retries: u64,
}

/// Prefetching reader over a sharded dataset directory.
pub struct ShardLoader {
    dir: PathBuf,
    manifest: Manifest,
    hash: String,
    prefetch_depth: usize,
    shuffle_seed: Option<u64>,
    recorder: RecorderHandle,
    stats: Arc<Mutex<LoaderStats>>,
}

impl ShardLoader {
    /// Open the dataset at `dir`, reading and validating its manifest.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let manifest = Manifest::load_dir(dir)?;
        let hash = manifest.hash();
        Ok(Self {
            dir: dir.to_path_buf(),
            manifest,
            hash,
            prefetch_depth: 2,
            shuffle_seed: None,
            recorder: torchgt_obs::noop(),
            stats: Arc::new(Mutex::new(LoaderStats::default())),
        })
    }

    /// Override the prefetch channel depth (default 2, double buffering).
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth.max(1);
        self
    }

    /// Enable the seeded cross-shard shuffle: each epoch visits shards in a
    /// fresh deterministic order derived from `(seed, epoch)`. Off by
    /// default — identity order is what reproduces the in-memory trainer's
    /// sequence walk bit-exactly.
    pub fn with_shuffle(mut self, seed: u64) -> Self {
        self.shuffle_seed = Some(seed);
        self
    }

    /// Publish prefetch gauges through `recorder`.
    pub fn attach_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// The dataset manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The dataset's stable identity hash.
    pub fn hash(&self) -> &str {
        &self.hash
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.manifest.shards.len()
    }

    /// Cumulative I/O statistics across all streams opened so far.
    pub fn stats(&self) -> LoaderStats {
        *lock_unpoisoned(&self.stats)
    }

    /// Shard visit order for `epoch`.
    pub fn epoch_order(&self, epoch: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.manifest.shards.len()).collect();
        if let Some(seed) = self.shuffle_seed {
            let mut state = seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let n = order.len();
            for i in (1..n).rev() {
                let j = (torchgt_compat::rng::splitmix64(&mut state) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        order
    }

    /// Start prefetching `epoch`'s shards in order; returns the consuming
    /// stream. The background thread stays `prefetch_depth` shards ahead
    /// and exits early if the stream is dropped.
    pub fn stream_epoch(&self, epoch: usize) -> ShardStream {
        let order = self.epoch_order(epoch);
        let entries: Vec<ShardEntry> =
            order.iter().map(|&i| self.manifest.shards[i].clone()).collect();
        let dir = self.dir.clone();
        let (tx, rx) = bounded::<io::Result<(Shard, u64)>>(self.prefetch_depth);
        let last_error: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let producer_recorder = self.recorder.clone();
        let producer_stats = Arc::clone(&self.stats);
        let producer_error = Arc::clone(&last_error);
        let producer = std::thread::spawn(move || {
            for entry in entries {
                let mut retries = 0u64;
                let result = read_verified_shard_with(
                    &dir,
                    &entry,
                    &producer_recorder,
                    &mut retries,
                )
                .map(|shard| (shard, entry.bytes));
                if retries > 0 {
                    lock_unpoisoned(&producer_stats).retries += retries;
                }
                let failed = result.is_err();
                if let Err(e) = &result {
                    // Record the underlying failure so the consumer can
                    // surface it even if the channel tears down first.
                    *lock_unpoisoned(&producer_error) = Some(e.to_string());
                }
                if tx.send(result).is_err() {
                    return; // consumer hung up
                }
                if failed {
                    return; // don't stream past a quarantined shard
                }
            }
        });
        ShardStream {
            rx,
            producer: Some(producer),
            recorder: self.recorder.clone(),
            stats: Arc::clone(&self.stats),
            last_error,
            remaining: order.len(),
        }
    }
}

/// One epoch's shard stream: call [`ShardStream::next`] until it returns
/// `Ok(None)`.
pub struct ShardStream {
    rx: Receiver<io::Result<(Shard, u64)>>,
    producer: Option<std::thread::JoinHandle<()>>,
    recorder: RecorderHandle,
    stats: Arc<Mutex<LoaderStats>>,
    /// The producer's last failure text, for when the channel disconnects
    /// before the error message itself arrives (e.g. the thread panicked).
    last_error: Arc<Mutex<Option<String>>>,
    remaining: usize,
}

impl ShardStream {
    /// Receive the next shard, blocking until the prefetcher delivers it.
    /// Returns `Ok(None)` after the last shard.
    pub fn next(&mut self) -> io::Result<Option<Shard>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let wait_start = Instant::now();
        let msg = self.rx.recv();
        let stall_ms = wait_start.elapsed().as_secs_f64() * 1e3;
        let occupancy = self.rx.len();
        match msg {
            Ok(Ok((shard, bytes))) => {
                self.remaining -= 1;
                let snapshot = {
                    let mut stats = lock_unpoisoned(&self.stats);
                    stats.stall_ms += stall_ms;
                    stats.bytes_read += bytes;
                    stats.shards_delivered += 1;
                    *stats
                };
                if self.recorder.enabled() {
                    self.recorder.gauge_set("prefetch_stall_ms", snapshot.stall_ms);
                    self.recorder.gauge_set("shard_bytes_read", snapshot.bytes_read as f64);
                    self.recorder.gauge_set("prefetch_buffer_depth", occupancy as f64);
                    self.recorder.counter_add("shards_loaded", 1);
                }
                Ok(Some(shard))
            }
            Ok(Err(e)) => {
                self.remaining = 0;
                Err(e)
            }
            Err(_) => {
                // Producer hung up before delivering everything it owed —
                // surface the underlying failure, not just the symptom.
                self.remaining = 0;
                Err(match lock_unpoisoned(&self.last_error).take() {
                    Some(detail) => {
                        crate::bad(format!("shard prefetcher terminated early: {detail}"))
                    }
                    None => crate::bad(
                        "shard prefetcher terminated early (no failure recorded; \
                         likely a panic in the prefetch thread)",
                    ),
                })
            }
        }
    }
}

impl Drop for ShardStream {
    fn drop(&mut self) {
        // Unblock a producer waiting on the bounded channel, then join it.
        while self.rx.try_recv().is_some() {}
        self.remaining = 0;
        // Dropping the receiver makes the producer's next send fail.
        let (_tx, dead_rx) = bounded::<io::Result<(Shard, u64)>>(1);
        let rx = std::mem::replace(&mut self.rx, dead_rx);
        drop(rx);
        if let Some(h) = self.producer.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::generate_to_dir;
    use std::sync::atomic::{AtomicU64, Ordering};
    use torchgt_graph::DatasetKind;
    use torchgt_obs::Recorder;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("torchgt_loader_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Minimal gauge-capturing recorder for asserting the obs satellite.
    #[derive(Default)]
    struct GaugeSpy {
        stall: AtomicU64,
        bytes: AtomicU64,
        depth_sets: AtomicU64,
    }
    impl Recorder for GaugeSpy {
        fn record_span(&self, _: &str, _: f64) {}
        fn counter_add(&self, _: &str, _: u64) {}
        fn gauge_set(&self, name: &str, value: f64) {
            match name {
                "prefetch_stall_ms" => self.stall.store(value.to_bits(), Ordering::Relaxed),
                "shard_bytes_read" => self.bytes.store(value as u64, Ordering::Relaxed),
                "prefetch_buffer_depth" => {
                    self.depth_sets.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        fn collective(&self, _: &str, _: u64, _: u64, _: u64) {}
        fn event(&self, _: torchgt_obs::Event) {}
        fn step(&self, _: torchgt_obs::StepTrace) {}
        fn epoch(&self, _: torchgt_obs::EpochTrace) {}
    }

    #[test]
    fn streams_every_shard_in_order_and_publishes_gauges() {
        let _g = crate::test_fault_gate();
        let dir = tmpdir("stream");
        let report = generate_to_dir(DatasetKind::OgbnArxiv, 0.004, 3, &dir, 150).unwrap();
        let spy = Arc::new(GaugeSpy::default());
        let mut loader = ShardLoader::open(&dir).unwrap();
        loader.attach_recorder(spy.clone());
        assert_eq!(loader.hash(), report.hash);
        let mut stream = loader.stream_epoch(0);
        let mut seen = 0usize;
        let mut next_node = 0usize;
        while let Some(shard) = stream.next().unwrap() {
            assert_eq!(shard.node_start, next_node, "identity order by default");
            next_node += shard.node_count;
            seen += 1;
        }
        assert_eq!(seen, loader.num_shards());
        assert_eq!(next_node, report.manifest.total_nodes as usize);
        let stats = loader.stats();
        assert!(stats.stall_ms > 0.0, "first-shard wait must register as stall");
        assert_eq!(stats.bytes_read, report.total_bytes);
        assert!(f64::from_bits(spy.stall.load(Ordering::Relaxed)) > 0.0);
        assert_eq!(spy.bytes.load(Ordering::Relaxed), report.total_bytes);
        assert_eq!(spy.depth_sets.load(Ordering::Relaxed) as usize, seen);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shuffle_is_seeded_per_epoch_and_covers_all_shards() {
        let _g = crate::test_fault_gate();
        let dir = tmpdir("shuffle");
        generate_to_dir(DatasetKind::OgbnArxiv, 0.004, 3, &dir, 100).unwrap();
        let loader = ShardLoader::open(&dir).unwrap().with_shuffle(42);
        let e0 = loader.epoch_order(0);
        let e1 = loader.epoch_order(1);
        assert_eq!(e0, loader.epoch_order(0), "same epoch, same order");
        assert_ne!(e0, e1, "different epochs draw different orders");
        let mut sorted = e1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..loader.num_shards()).collect::<Vec<_>>());
        // The stream follows the shuffled order.
        let mut stream = loader.stream_epoch(1);
        let mut starts = Vec::new();
        while let Some(shard) = stream.next().unwrap() {
            starts.push(shard.shard_index);
        }
        assert_eq!(starts, e1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropping_a_stream_midway_does_not_wedge() {
        let _g = crate::test_fault_gate();
        let dir = tmpdir("drop");
        generate_to_dir(DatasetKind::OgbnArxiv, 0.004, 3, &dir, 100).unwrap();
        let loader = ShardLoader::open(&dir).unwrap();
        let mut stream = loader.stream_epoch(0);
        let _ = stream.next().unwrap();
        drop(stream); // must join the producer without deadlocking
        // And the loader still works afterwards.
        let mut stream = loader.stream_epoch(1);
        assert!(stream.next().unwrap().is_some());
    }

    #[test]
    fn corrupt_shard_surfaces_as_a_stream_error() {
        let _g = crate::test_fault_gate();
        let dir = tmpdir("corrupt");
        let report = generate_to_dir(DatasetKind::OgbnArxiv, 0.004, 3, &dir, 150).unwrap();
        let entry = report.manifest.shards.last().unwrap();
        let path = Manifest::shard_path(&dir, entry);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let loader = ShardLoader::open(&dir).unwrap();
        let mut stream = loader.stream_epoch(0);
        let mut result = Ok(Some(()));
        loop {
            match stream.next() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        assert!(result.is_err(), "corrupt shard must fail the stream");
        let msg = result.unwrap_err().to_string();
        assert!(
            msg.contains("quarantined"),
            "on-disk corruption must surface as a quarantine, got: {msg}"
        );
        assert!(msg.contains(".tgds"), "error must name the shard path, got: {msg}");
        // The CRC re-read counts as one retry before the quarantine.
        assert!(loader.stats().retries >= 1, "re-read-once must register as a retry");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_transient_faults_heal_and_preserve_shard_bytes() {
        let _g = crate::test_fault_gate();
        // Stable path, no pid: disk fault decisions hash the file path, so
        // a per-process path would re-roll the fault schedule every run.
        let dir = std::env::temp_dir().join("torchgt_data_heal_stable");
        let _ = std::fs::remove_dir_all(&dir);
        let report = generate_to_dir(DatasetKind::OgbnArxiv, 0.004, 3, &dir, 100).unwrap();
        // Clean baseline first (no plan installed).
        let loader = ShardLoader::open(&dir).unwrap();
        let mut baseline = Vec::new();
        let mut stream = loader.stream_epoch(0);
        while let Some(shard) = stream.next().unwrap() {
            baseline.push((shard.node_start, shard.features.clone()));
        }
        drop(stream);
        // Aggressive transient + corruption faults: transients retry with
        // backoff, torn/flipped buffers heal on the single CRC re-read
        // (the file on disk is never touched), so the stream completes
        // with bit-identical payloads.
        struct ClearPlan;
        impl Drop for ClearPlan {
            fn drop(&mut self) {
                torchgt_faults::clear();
            }
        }
        let _clear = ClearPlan;
        torchgt_faults::install(torchgt_faults::FaultSpec {
            seed: 5,
            disk: torchgt_faults::DiskFaultPlan {
                read_error_prob: 0.3,
                torn_read_prob: 0.05,
                bit_flip_prob: 0.05,
                ..Default::default()
            },
            ..Default::default()
        });
        let loader2 = ShardLoader::open(&dir).unwrap();
        let mut stream = loader2.stream_epoch(0);
        let mut healed = Vec::new();
        while let Some(shard) = stream.next().unwrap() {
            healed.push((shard.node_start, shard.features.clone()));
        }
        drop(stream);
        torchgt_faults::clear();
        assert_eq!(healed, baseline, "healed stream must be bit-identical");
        assert!(
            loader2.stats().retries > 0,
            "at these probabilities some reads must have retried"
        );
        assert_eq!(report.manifest.shards.len(), baseline.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
