//! Streaming shard generation: papers100M-statistics stand-ins written to
//! disk **without ever holding the full graph**.
//!
//! [`generate_to_dir`] drives [`DatasetKind::stream_node`] into a two-phase
//! sink:
//!
//! 1. **Edge phase** — every generated edge `u—v` is spilled as two arcs
//!    (`u→v` into the shard owning `u`, `v→u` into the shard owning `v`) to
//!    per-shard temporary files. Nothing but `O(n)` generator state and one
//!    buffered writer per shard is resident.
//! 2. **Node phase** — node records arrive in id order. When the stream
//!    enters shard `k`, that shard's spill file is read back into adjacency
//!    rows (`O(shard)` memory), and the shard's features/labels/communities
//!    accumulate as records arrive; at the shard boundary the rows are
//!    sorted and deduplicated (exactly the `CsrGraph::from_edges`
//!    semantics), the `TGDS` file is published atomically, and the spill is
//!    deleted.
//!
//! Peak memory is `O(n + shard_nodes · (feat_dim + avg_degree))`: the
//! generator's own `O(n)` labels plus a single shard — tunable via
//! `shard_nodes`, independent of total dataset size. The resulting shards
//! are bit-identical to slicing the in-memory
//! [`torchgt_graph::NodeDataset`], which is what makes disk-fed training
//! loss histories match the in-memory path exactly.

use crate::manifest::{Manifest, ShardEntry, MANIFEST_FILE, MANIFEST_FORMAT_VERSION};
use crate::shard::Shard;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use torchgt_ckpt::crc32;
use torchgt_graph::datasets::{DatasetKind, EffectiveSpec, NodeSink};

/// What [`generate_to_dir`] produced.
#[derive(Clone, Debug)]
pub struct DatagenReport {
    /// The published manifest.
    pub manifest: Manifest,
    /// The manifest's stable identity hash.
    pub hash: String,
    /// Effective (post-clamp) generation parameters.
    pub effective: EffectiveSpec,
    /// Total bytes across all shard files (manifest excluded).
    pub total_bytes: u64,
}

fn spill_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("spill-{shard:05}.tmp"))
}

fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:05}.tgds")
}

struct StreamingWriter {
    dir: PathBuf,
    shard_nodes: usize,
    total_nodes: usize,
    feat_dim: usize,
    /// One spill writer per shard during the edge phase; dropped (flushed)
    /// when the first node record arrives.
    spills: Vec<Option<BufWriter<File>>>,
    in_edge_phase: bool,
    /// Node-phase state for the shard currently being assembled.
    cur_shard: usize,
    adj: Vec<Vec<u32>>,
    features: Vec<f32>,
    labels: Vec<u32>,
    community: Vec<u32>,
    entries: Vec<ShardEntry>,
    total_bytes: u64,
    /// First I/O error; the sink interface is infallible, so errors latch
    /// here and short-circuit the rest of the stream.
    err: Option<io::Error>,
}

impl StreamingWriter {
    fn new(dir: &Path, shard_nodes: usize, eff: EffectiveSpec) -> io::Result<Self> {
        let num_shards = eff.nodes.div_ceil(shard_nodes);
        let mut spills = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            spills.push(Some(BufWriter::new(File::create(spill_path(dir, s))?)));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            shard_nodes,
            total_nodes: eff.nodes,
            feat_dim: eff.feat_dim,
            spills,
            in_edge_phase: true,
            cur_shard: 0,
            adj: Vec::new(),
            features: Vec::new(),
            labels: Vec::new(),
            community: Vec::new(),
            entries: Vec::new(),
            total_bytes: 0,
            err: None,
        })
    }

    fn spill_arc(&mut self, owner: u32, neighbor: u32) -> io::Result<()> {
        let w = self.spills[owner as usize / self.shard_nodes]
            .as_mut()
            .expect("edge phase still open");
        w.write_all(&owner.to_le_bytes())?;
        w.write_all(&neighbor.to_le_bytes())
    }

    /// Close the spill writers and open the node phase on shard 0.
    fn finish_edge_phase(&mut self) -> io::Result<()> {
        for s in &mut self.spills {
            if let Some(w) = s.take() {
                w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            }
        }
        self.in_edge_phase = false;
        self.begin_shard(0)
    }

    /// Read shard `k`'s spilled arcs back into adjacency rows and reset the
    /// node-record buffers.
    fn begin_shard(&mut self, k: usize) -> io::Result<()> {
        self.cur_shard = k;
        let start = k * self.shard_nodes;
        let count = self.shard_nodes.min(self.total_nodes - start);
        self.adj.clear();
        self.adj.resize(count, Vec::new());
        self.features.clear();
        self.labels.clear();
        self.community.clear();
        let path = spill_path(&self.dir, k);
        let mut r = BufReader::new(File::open(&path)?);
        let mut rec = [0u8; 8];
        loop {
            match r.read_exact(&mut rec) {
                Ok(()) => {
                    let owner = u32::from_le_bytes(rec[0..4].try_into().unwrap());
                    let neighbor = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                    self.adj[owner as usize - start].push(neighbor);
                }
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
        }
        drop(r);
        fs::remove_file(&path)
    }

    /// Sort/dedup rows, publish the `TGDS` file, record its entry.
    fn finalize_shard(&mut self) -> io::Result<()> {
        let start = self.cur_shard * self.shard_nodes;
        let count = self.adj.len();
        let mut row_ptr = Vec::with_capacity(count + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        for row in &mut self.adj {
            // from_edges semantics: arcs are globally sorted and
            // deduplicated, which per row is exactly sort + dedup.
            row.sort_unstable();
            row.dedup();
            col_idx.extend_from_slice(row);
            row_ptr.push(col_idx.len());
        }
        let shard = Shard {
            shard_index: self.cur_shard,
            node_start: start,
            node_count: count,
            total_nodes: self.total_nodes,
            feat_dim: self.feat_dim,
            features: std::mem::take(&mut self.features),
            labels: std::mem::take(&mut self.labels),
            community: std::mem::take(&mut self.community),
            row_ptr,
            col_idx,
        };
        let bytes = shard.to_bytes()?;
        let file = shard_file_name(self.cur_shard);
        crate::atomic_write(&self.dir.join(&file), &bytes)?;
        self.entries.push(ShardEntry {
            file,
            node_start: start as u64,
            node_count: count as u64,
            num_arcs: shard.col_idx.len() as u64,
            bytes: bytes.len() as u64,
            crc: crc32(&bytes),
        });
        self.total_bytes += bytes.len() as u64;
        Ok(())
    }

    fn push_node(&mut self, v: u32, label: u32, community: u32, features: &[f32]) -> io::Result<()> {
        if self.in_edge_phase {
            self.finish_edge_phase()?;
        }
        let v = v as usize;
        if v / self.shard_nodes != self.cur_shard {
            self.finalize_shard()?;
            self.begin_shard(v / self.shard_nodes)?;
        }
        self.labels.push(label);
        self.community.push(community);
        self.features.extend_from_slice(features);
        Ok(())
    }

    /// Finalize the last shard and return the shard entries.
    fn finish(mut self) -> io::Result<(Vec<ShardEntry>, u64)> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        if self.in_edge_phase {
            // Degenerate: a dataset with zero node records cannot exist
            // (effective() floors n at 256), but fail cleanly anyway.
            return Err(crate::bad("node stream produced no records"));
        }
        self.finalize_shard()?;
        Ok((self.entries, self.total_bytes))
    }
}

impl NodeSink for StreamingWriter {
    fn edge(&mut self, u: u32, v: u32) {
        if self.err.is_some() {
            return;
        }
        let r = self.spill_arc(u, v).and_then(|()| {
            if u != v {
                self.spill_arc(v, u)
            } else {
                Ok(())
            }
        });
        if let Err(e) = r {
            self.err = Some(e);
        }
    }

    fn node(&mut self, v: u32, label: u32, community: u32, features: &[f32]) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.push_node(v, label, community, features) {
            self.err = Some(e);
        }
    }
}

/// Generate the node-level dataset `kind` at `scale` with `seed` into `dir`
/// as `TGDS` shards of `shard_nodes` nodes plus a `TGDM` manifest, streaming
/// throughout — the full graph is never resident. Returns the manifest and
/// its identity hash.
pub fn generate_to_dir(
    kind: DatasetKind,
    scale: f64,
    seed: u64,
    dir: &Path,
    shard_nodes: usize,
) -> io::Result<DatagenReport> {
    if shard_nodes == 0 {
        return Err(crate::bad("shard_nodes must be >= 1"));
    }
    fs::create_dir_all(dir)?;
    let eff = kind.effective(scale);
    let mut writer = StreamingWriter::new(dir, shard_nodes, eff)?;
    let eff = kind.stream_node(scale, seed, &mut writer);
    let (entries, total_bytes) = writer.finish()?;
    let manifest = Manifest {
        format_version: MANIFEST_FORMAT_VERSION,
        kind,
        scale,
        seed,
        total_nodes: eff.nodes as u64,
        feat_dim: eff.feat_dim as u64,
        num_classes: eff.classes as u64,
        total_arcs: entries.iter().map(|e| e.num_arcs).sum(),
        shard_nodes: shard_nodes as u64,
        shards: entries,
    };
    manifest.save(&dir.join(MANIFEST_FILE))?;
    let hash = manifest.hash();
    Ok(DatagenReport { manifest, hash, effective: eff, total_bytes })
}

/// Reassemble the full in-memory [`torchgt_graph::NodeDataset`] from a
/// sharded dataset directory, verifying every shard's CRC against the
/// manifest. The inverse of [`generate_to_dir`]: the result is bit-identical
/// to `kind.generate_node(scale, seed)`. Use only when the dataset is known
/// to fit in RAM (calibration, tests, the `freeze` path); trainers should
/// stream through [`crate::ShardLoader`] instead.
pub fn load_node_dataset(dir: &Path) -> io::Result<torchgt_graph::NodeDataset> {
    use torchgt_graph::{CsrGraph, Split};
    let manifest = Manifest::load_dir(dir)?;
    let n = manifest.total_nodes as usize;
    let feat_dim = manifest.feat_dim as usize;
    let mut features = Vec::with_capacity(n * feat_dim);
    let mut labels = Vec::with_capacity(n);
    let mut community = Vec::with_capacity(n);
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(manifest.total_arcs as usize);
    for entry in &manifest.shards {
        let shard = read_verified_shard(dir, entry)?;
        if shard.node_start as u64 != entry.node_start
            || shard.node_count as u64 != entry.node_count
            || shard.feat_dim != feat_dim
            || shard.total_nodes != n
        {
            return Err(crate::bad(format!(
                "shard {} disagrees with its manifest entry",
                entry.file
            )));
        }
        features.extend_from_slice(&shard.features);
        labels.extend_from_slice(&shard.labels);
        community.extend_from_slice(&shard.community);
        let base = col_idx.len();
        col_idx.extend_from_slice(&shard.col_idx);
        row_ptr.extend(shard.row_ptr[1..].iter().map(|&p| base + p));
    }
    let graph = CsrGraph::from_raw(row_ptr, col_idx);
    let split = Split::standard(n, manifest.seed ^ DatasetKind::SPLIT_SEED_XOR);
    Ok(torchgt_graph::NodeDataset {
        kind: manifest.kind,
        graph,
        features,
        feat_dim,
        labels,
        num_classes: manifest.num_classes as usize,
        community,
        split,
    })
}

/// Read a shard file, checking its whole-file CRC and size against the
/// manifest entry before parsing. Self-healing: see
/// [`read_verified_shard_with`].
pub(crate) fn read_verified_shard(dir: &Path, entry: &ShardEntry) -> io::Result<Shard> {
    read_verified_shard_with(dir, entry, &torchgt_obs::noop(), &mut 0)
}

/// Transient-read retry budget per shard read (beyond the first attempt).
const MAX_TRANSIENT_RETRIES: usize = 4;
/// Backoff base for shard-read retries, seconds (first retry waits
/// ~`[0.5, 1.5) × base`, doubling per attempt — the elastic recovery
/// ladder's formula via [`torchgt_faults::backoff_s`]).
const READ_BACKOFF_BASE_S: f64 = 0.002;

/// Self-healing verified shard read. Faults route through the shared fault
/// plane ([`torchgt_faults::read_file`]); recovery follows the ladder the
/// issue prescribes:
///
/// * a **transient** error (interrupted/timed-out read) is retried up to
///   [`MAX_TRANSIENT_RETRIES`] times with seeded jittered backoff — each
///   retry draws a fresh fault decision, so injected transients heal;
/// * a **corruption** (size/CRC/parse mismatch) triggers exactly one
///   re-read — a torn or bit-flipped in-memory buffer heals because the
///   bytes on disk were never touched, while genuine on-disk corruption
///   fails again;
/// * anything still failing **quarantines** the shard: the error is a
///   typed [`crate::ShardQuarantined`] naming the path and the underlying
///   reason, and a `SHARD_QUARANTINED` event is emitted.
///
/// Every retry emits an `IO_RETRY` event on `recorder` and bumps
/// `retries_out` (the loader surfaces it as `LoaderStats::retries`).
pub(crate) fn read_verified_shard_with(
    dir: &Path,
    entry: &ShardEntry,
    recorder: &torchgt_obs::RecorderHandle,
    retries_out: &mut u64,
) -> io::Result<Shard> {
    let path = Manifest::shard_path(dir, entry);
    let seed = torchgt_faults::installed().map(|s| s.seed).unwrap_or(0);
    let backoff_seed = seed ^ torchgt_faults::path_key(&path);
    let mut transient_attempts = 0usize;
    let mut crc_reread_used = false;
    loop {
        match read_verified_shard_once(&path, entry) {
            Ok(shard) => return Ok(shard),
            Err(e) if torchgt_faults::is_transient(&e) && transient_attempts < MAX_TRANSIENT_RETRIES => {
                transient_attempts += 1;
                *retries_out += 1;
                let wait = torchgt_faults::backoff_s(
                    backoff_seed,
                    READ_BACKOFF_BASE_S,
                    transient_attempts,
                );
                if recorder.enabled() {
                    recorder.event(torchgt_obs::Event::io_retry(
                        &path.display().to_string(),
                        transient_attempts,
                        wait,
                        &e.to_string(),
                    ));
                    recorder.counter_add("io_retries", 1);
                }
                if wait > 0.0 {
                    std::thread::sleep(std::time::Duration::from_secs_f64(wait));
                }
            }
            Err(e) if torchgt_faults::is_corruption(&e) && !crc_reread_used => {
                // CRC/size/parse mismatch: re-read exactly once. No backoff
                // — corruption does not clear with time, only with a fresh
                // pass over the (uncorrupted) bytes on disk.
                crc_reread_used = true;
                *retries_out += 1;
                if recorder.enabled() {
                    recorder.event(torchgt_obs::Event::io_retry(
                        &path.display().to_string(),
                        transient_attempts + 1,
                        0.0,
                        &e.to_string(),
                    ));
                    recorder.counter_add("io_retries", 1);
                }
            }
            Err(e) => {
                let quarantined = crate::ShardQuarantined {
                    path: path.display().to_string(),
                    reason: e.to_string(),
                };
                if recorder.enabled() {
                    recorder.event(torchgt_obs::Event::shard_quarantined(
                        &quarantined.path,
                        &quarantined.reason,
                    ));
                    recorder.counter_add("shards_quarantined", 1);
                }
                return Err(io::Error::new(io::ErrorKind::InvalidData, quarantined));
            }
        }
    }
}

/// One verification pass: read (through the fault plane), check size and
/// whole-file CRC against the manifest entry, parse.
fn read_verified_shard_once(path: &Path, entry: &ShardEntry) -> io::Result<Shard> {
    let bytes = torchgt_faults::read_file(path)?;
    if bytes.len() as u64 != entry.bytes {
        return Err(crate::bad(format!(
            "shard {} is {} bytes, manifest says {}",
            entry.file,
            bytes.len(),
            entry.bytes
        )));
    }
    if crc32(&bytes) != entry.crc {
        return Err(crate::bad(format!(
            "shard {} content CRC mismatch against the manifest",
            entry.file
        )));
    }
    Shard::read_from(bytes.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("torchgt_data_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn streamed_shards_reassemble_the_in_memory_dataset() {
        let _g = crate::test_fault_gate();
        let dir = tmpdir("roundtrip");
        let (kind, scale, seed) = (DatasetKind::OgbnArxiv, 0.005, 11);
        let report = generate_to_dir(kind, scale, seed, &dir, 200).unwrap();
        assert!(report.manifest.shards.len() >= 2, "want a multi-shard dataset");
        assert_eq!(report.manifest.total_nodes as usize, report.effective.nodes);
        // No spill files may survive generation.
        for f in fs::read_dir(&dir).unwrap() {
            let name = f.unwrap().file_name();
            let name = name.to_string_lossy();
            assert!(!name.ends_with(".tmp"), "leftover temp file {name}");
        }
        let from_disk = load_node_dataset(&dir).unwrap();
        let in_memory = kind.generate_node(scale, seed);
        assert_eq!(from_disk.graph, in_memory.graph);
        assert_eq!(from_disk.features, in_memory.features);
        assert_eq!(from_disk.labels, in_memory.labels);
        assert_eq!(from_disk.community, in_memory.community);
        assert_eq!(from_disk.split.train, in_memory.split.train);
        assert_eq!(from_disk.num_classes, in_memory.num_classes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_hash_tracks_generation_parameters() {
        let _g = crate::test_fault_gate();
        let dir_a = tmpdir("hash_a");
        let dir_b = tmpdir("hash_b");
        let a = generate_to_dir(DatasetKind::OgbnArxiv, 0.003, 1, &dir_a, 200).unwrap();
        let b = generate_to_dir(DatasetKind::OgbnArxiv, 0.003, 2, &dir_b, 200).unwrap();
        assert_ne!(a.hash, b.hash, "different seeds are different datasets");
        // Same parameters regenerate to the identical hash.
        let dir_c = tmpdir("hash_c");
        let c = generate_to_dir(DatasetKind::OgbnArxiv, 0.003, 1, &dir_c, 200).unwrap();
        assert_eq!(a.hash, c.hash);
        for d in [dir_a, dir_b, dir_c] {
            fs::remove_dir_all(&d).unwrap();
        }
    }

    #[test]
    fn tampered_shard_is_refused_by_the_verified_reader() {
        let _g = crate::test_fault_gate();
        let dir = tmpdir("tamper");
        let report = generate_to_dir(DatasetKind::OgbnArxiv, 0.002, 5, &dir, 128).unwrap();
        let entry = &report.manifest.shards[0];
        let path = Manifest::shard_path(&dir, entry);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(read_verified_shard(&dir, entry).is_err());
        assert!(load_node_dataset(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
