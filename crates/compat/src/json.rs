//! Minimal JSON: a `torchgt_compat::json::Value`-style tree, a writer, a parser, and
//! declarative impl macros standing in for `#[derive(Serialize,
//! Deserialize)]`.
//!
//! Structs and C-like enums declare themselves through [`json_struct!`] /
//! [`json_enum!`] (which also emit the [`ToJson`] / [`FromJson`] impls);
//! the [`json!`] macro covers the literal-object construction the bench
//! harnesses use. Object key order is insertion order, so output is
//! deterministic.

use std::fmt::Write as _;

/// A JSON number, preserving integer-ness across round-trips.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer too large for `i64`.
    U(u64),
    /// Floating point.
    F(f64),
}

/// Numbers compare by value, not representation: `U(4)`, `I(4)` and
/// `F(4.0)` are all equal (the writer emits integral floats without a
/// decimal point and the parser reads bare integers as `I`, so a tree can
/// change representation across a round-trip without changing meaning).
impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::I(a), Number::I(b)) => a == b,
            (Number::U(a), Number::U(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            (Number::I(a), Number::U(b)) | (Number::U(b), Number::I(a)) => {
                u64::try_from(a).is_ok_and(|a| a == b)
            }
            (Number::I(a), Number::F(b)) | (Number::F(b), Number::I(a)) => b == a as f64,
            (Number::U(a), Number::F(b)) | (Number::F(b), Number::U(a)) => b == a as f64,
        }
    }
}

impl Number {
    /// Lossy view as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::I(v) => v as f64,
            Number::U(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// View as `u64` when exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::I(v) => u64::try_from(v).ok(),
            Number::U(v) => Some(v),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F(_) => None,
        }
    }

    /// View as `i64` when exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization error (shape mismatches during decode share the type).
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

// ---------------------------------------------------------------------------
// Encode / decode traits
// ---------------------------------------------------------------------------

/// Encode into a [`Value`] (the `serde::Serialize` stand-in).
pub trait ToJson {
    /// Build the JSON tree for `self`.
    fn to_json(&self) -> Value;
}

/// Decode from a [`Value`] (the `serde::Deserialize` stand-in).
pub trait FromJson: Sized {
    /// Reconstruct `Self`, erroring on shape mismatch.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError("expected bool".into()))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError("expected string".into()))
    }
}

macro_rules! json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = v.as_u64().ok_or_else(|| JsonError("expected unsigned integer".into()))?;
                <$t>::try_from(n).map_err(|_| JsonError("integer out of range".into()))
            }
        }
    )*};
}
json_unsigned!(u8, u16, u32, u64, usize);

macro_rules! json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                }
                .ok_or_else(|| JsonError("expected integer".into()))?;
                <$t>::try_from(n).map_err(|_| JsonError("integer out of range".into()))
            }
        }
    )*};
}
json_signed!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F(*self))
        } else {
            Value::Null // JSON has no NaN/Inf; match serde_json.
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError("expected number".into()))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        (*self as f64).to_json()
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            _ => err("expected array"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Decode a required object field (used by [`json_struct!`]).
pub fn field<T: FromJson>(v: &Value, name: &str) -> Result<T, JsonError> {
    match v.get(name) {
        Some(f) => T::from_json(f).map_err(|e| JsonError(format!("field `{name}`: {}", e.0))),
        None => err(format!("missing field `{name}`")),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) if v.is_finite() => {
            // `{}` on floats is the shortest round-trip representation.
            let _ = write!(out, "{v}");
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_value(out, item, indent.map(|d| d + 1));
            }
            newline_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent.map(|d| d + 1));
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Compact serialization.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None);
    Ok(out)
}

/// Two-space-indented serialization (`torchgt_compat::json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(0));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            // Surrogate pairs are unsupported (the writer
                            // never emits them); map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid utf-8 in number".into()))?;
        let n = if float {
            Number::F(text.parse::<f64>().map_err(|_| JsonError(format!("bad number `{text}`")))?)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I(i)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U(u)
        } else {
            Number::F(text.parse::<f64>().map_err(|_| JsonError(format!("bad number `{text}`")))?)
        };
        Ok(Value::Number(n))
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Parse a JSON document.
pub fn from_str(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

/// Parse and decode in one step.
pub fn from_str_as<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&from_str(input)?)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Build a [`Value`] literal: `json!({"key": expr, ...})`, `json!([..])`,
/// or `json!(expr)` for any [`ToJson`] expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::json::Value::Object(vec![
            $( (($key).to_string(), $crate::json::ToJson::to_json(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::json::Value::Array(vec![
            $( $crate::json::ToJson::to_json(&$elem) ),*
        ])
    };
    ($other:expr) => { $crate::json::ToJson::to_json(&$other) };
}

/// Declare a named-field struct together with its [`ToJson`] and
/// [`FromJson`] impls — the stand-in for `#[derive(Serialize,
/// Deserialize)]`.
#[macro_export]
macro_rules! json_struct {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $fname:ident : $fty:ty ),* $(,)?
        }
    ) => {
        $crate::json_struct_ser! {
            $(#[$meta])*
            $vis struct $name {
                $( $(#[$fmeta])* $fvis $fname : $fty ),*
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Value) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $( $fname: $crate::json::field(v, stringify!($fname))? ),*
                })
            }
        }
    };
}

/// Like [`json_struct!`] but serialize-only, for structs whose fields (e.g.
/// `&'static str`) cannot be reconstructed from parsed input.
#[macro_export]
macro_rules! json_struct_ser {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $fname:ident : $fty:ty ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $fname : $fty ),*
        }

        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::Value::Object(vec![
                    $( (stringify!($fname).to_string(),
                        $crate::json::ToJson::to_json(&self.$fname)) ),*
                ])
            }
        }
    };
}

/// Declare a C-like enum together with string-keyed [`ToJson`] /
/// [`FromJson`] impls (variants encode as their names).
#[macro_export]
macro_rules! json_enum {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident {
            $( $(#[$vmeta:meta])* $variant:ident ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis enum $name {
            $( $(#[$vmeta])* $variant ),*
        }

        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                match self {
                    $( Self::$variant =>
                        $crate::json::Value::Str(stringify!($variant).to_string()) ),*
                }
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Value) -> Result<Self, $crate::json::JsonError> {
                match v.as_str() {
                    $( Some(stringify!($variant)) => Ok(Self::$variant), )*
                    Some(other) => Err($crate::json::JsonError(
                        format!("unknown {} variant `{other}`", stringify!($name)))),
                    None => Err($crate::json::JsonError(
                        format!("expected string for enum {}", stringify!($name)))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::json_struct! {
        /// Round-trip fixture.
        #[derive(Clone, Debug, PartialEq)]
        pub struct Fixture {
            pub count: usize,
            pub rate: f64,
            pub label: String,
            pub maybe: Option<f64>,
            pub items: Vec<u32>,
        }
    }

    crate::json_enum! {
        #[derive(Clone, Copy, Debug, PartialEq)]
        pub enum Kind { Alpha, Beta }
    }

    #[test]
    fn struct_round_trip() {
        let v = Fixture {
            count: 7,
            rate: 0.125,
            label: "hello \"world\"\n".into(),
            maybe: None,
            items: vec![1, 2, 3],
        };
        let s = to_string(&v).unwrap();
        let back: Fixture = from_str_as(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Fixture = from_str_as(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn enum_round_trip() {
        for k in [Kind::Alpha, Kind::Beta] {
            let s = to_string(&k).unwrap();
            assert_eq!(from_str_as::<Kind>(&s).unwrap(), k);
        }
        assert!(from_str_as::<Kind>("\"Gamma\"").is_err());
    }

    #[test]
    fn json_macro_shapes() {
        let label = "run";
        let acc = 0.93f64;
        let v = crate::json!({"pattern": label, "test_acc": acc, "n": 5usize});
        assert_eq!(v.get("pattern").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("test_acc").unwrap().as_f64(), Some(0.93));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(5));
        let rows = vec![v.clone(), v];
        let arr = crate::json!(rows);
        assert_eq!(arr.as_array().unwrap().len(), 2);
    }

    #[test]
    fn parser_handles_nesting_and_numbers() {
        let v = from_str(r#" {"a": [1, -2.5, 1e3, true, null], "b": {"c": "d"}} "#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4], Value::Null);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2] trailing").is_err());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 6.02214076e23, -1e-300, 0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str_as(&s).unwrap();
            assert_eq!(back, x, "round-trip of {x} via `{s}`");
        }
        // Non-finite floats degrade to null, as in serde_json.
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
