//! `criterion`-style micro-bench harness: wall-clock timing with
//! warmup, per-sample statistics and the `criterion_group!` /
//! `criterion_main!` entry points.
//!
//! Each `Bencher::iter` call runs one warmup pass, then times
//! `sample_size` samples and prints min / mean / max. Honours
//! `TORCHGT_BENCH_FAST=1` to clamp samples to 2 (used by `cargo check`
//! pipelines and smoke runs).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n-- bench group: {name} --");
        BenchmarkGroup { name: name.to_string(), sample_size: 10 }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("run", f);
        group.finish();
    }
}

/// A named benchmark id, optionally parameterised (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{name}/{parameter}") }
    }

    /// Id from a bare function name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Samples per benchmark (criterion's knob of the same name).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: effective_samples(self.sample_size), last: Samples::default() };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Benchmark a closure that receives an input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: effective_samples(self.sample_size), last: Samples::default() };
        f(&mut b, input);
        b.report(&self.name, &id.full);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn effective_samples(configured: usize) -> usize {
    match std::env::var("TORCHGT_BENCH_FAST") {
        Ok(v) if v == "1" => configured.min(2),
        _ => configured,
    }
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    samples: usize,
    last: Samples,
}

/// Timing results, filled by [`Bencher::iter`].
#[derive(Default)]
struct Samples {
    seconds: Vec<f64>,
}

impl Bencher {
    /// Time `routine`: one untimed warmup, then `samples` timed runs. The
    /// routine's output is passed through `black_box` so the computation
    /// cannot be optimised away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        let mut s = Samples::default();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            s.seconds.push(start.elapsed().as_secs_f64());
        }
        self.last = s;
    }

    fn report(&self, group: &str, id: &str) {
        let s = &self.last.seconds;
        if s.is_empty() {
            println!("{group}/{id}: no samples (iter was never called)");
            return;
        }
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = s.iter().cloned().fold(0.0f64, f64::max);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{group}/{id}: mean {:>10} min {:>10} max {:>10} ({} samples)",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            s.len()
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} µs", seconds * 1e6)
    }
}

/// Define a bench entry function running each target against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from one or more [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("compat_smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("compat_input");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
