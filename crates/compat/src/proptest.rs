//! `proptest`-style property testing: seeded random-input generation with
//! failing-case reporting.
//!
//! The [`proptest!`](crate::proptest!) macro accepts the same shape the
//! seed tests were written against — an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
//! `#[test] fn name(arg in strategy, ...) { body }` items. Each test runs
//! `cases` deterministic cases (seeded from the test's full module path, so
//! failures reproduce across runs); a failing case reports its index, its
//! seed, and the `Debug` rendering of every generated input. There is no
//! shrinking — inputs here are small by construction.

use crate::rng::{Rng, SeedableRng, SmallRng};
use std::ops::Range;

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test base seed: FNV-1a over the test's full path.
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A value generator (`proptest::strategy::Strategy` stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A fixed value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SmallRng, Strategy};
    use crate::rng::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` generation: each case draws a length in `size`, then that many
    /// elements.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Case seed for `(test base seed, case index)` — SplitMix64-mixed so
/// consecutive cases get unrelated streams.
pub fn case_rng(base: u64, case: u32) -> SmallRng {
    let mut state = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SmallRng::seed_from_u64(crate::rng::splitmix64(&mut state))
}

/// Everything a property-test file imports (`proptest::prelude::*`).
pub mod prelude {
    pub use super::collection;
    pub use super::{Just, Map, ProptestConfig, Strategy, TestCaseError};
    pub use crate::proptest as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests. See the module docs for the accepted grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::proptest::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::proptest::ProptestConfig = $cfg;
                let __base =
                    $crate::proptest::test_seed(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::proptest::case_rng(__base, __case);
                    $(let $arg = $crate::proptest::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)* ""),
                        $(&$arg),*
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> Result<(), $crate::proptest::TestCaseError> {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    match __outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "property `{}` failed at case {}/{} (base seed {:#x}):\n{}\ninputs:\n{}",
                            stringify!($name), __case, __cfg.cases, __base, e, __inputs
                        ),
                        Err(payload) => {
                            eprintln!(
                                "property `{}` panicked at case {}/{} (base seed {:#x}); inputs:\n{}",
                                stringify!($name), __case, __cfg.cases, __base, __inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::proptest::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} vs {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert_ne!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: both sides equal `{:?}` ({} vs {})",
            l, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Addition commutes — exercises multi-arg generation.
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        /// prop_map and tuple strategies compose.
        #[test]
        fn mapped_tuples(pair in (1usize..10, 1usize..10).prop_map(|(x, y)| x * y)) {
            prop_assert!(pair >= 1);
            prop_assert!(pair < 100);
        }

        /// Collection vec respects its size range.
        #[test]
        fn vec_lengths(v in collection::vec(0u8..255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = super::case_rng(super::test_seed("x"), 3);
        let mut b = super::case_rng(super::test_seed("x"), 3);
        use crate::rng::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::case_rng(super::test_seed("x"), 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn failing_property_reports_inputs() {
        // Expand a tiny failing property manually via the macro and check
        // the panic message carries the generated input.
        let result = std::panic::catch_unwind(|| {
            crate::__proptest_impl! {
                (super::ProptestConfig::with_cases(4))
                fn always_fails(x in 0u32..8) {
                    crate::prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = match result {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "<non-string panic>".into()),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("always_fails"), "missing test name: {msg}");
        assert!(msg.contains("x ="), "missing input dump: {msg}");
    }
}
