//! `rand`-compatible deterministic PRNG.
//!
//! [`SmallRng`] is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family `rand`'s 64-bit `SmallRng` uses — exposing the `Rng` /
//! `SeedableRng` surface the workspace actually calls: `gen`, `gen_range`,
//! `gen_bool`, `seed_from_u64` and `fill`.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: mixes a 64-bit state into a well-distributed output.
/// Public because seed-derivation helpers elsewhere reuse it.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core random-source trait (the `rand::RngCore` analogue).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Seedable construction (the `rand::SeedableRng` analogue).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from ambient entropy (address-space layout and a
    /// `RandomState` hash). Only for non-reproducible uses.
    fn from_entropy() -> Self {
        use std::hash::{BuildHasher, Hasher};
        let h = std::collections::hash_map::RandomState::new().build_hasher();
        Self::seed_from_u64(h.finish())
    }
}

/// xoshiro256++ generator: small, fast, and statistically solid — the
/// drop-in stand-in for `rand::rngs::SmallRng`.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types drawable uniformly from their "standard" distribution (`rng.gen()`):
/// full range for integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a uniform `u64` onto `[0, span)` without modulo bias (fixed-point
/// multiply; bias is at most 2⁻⁶⁴ per draw).
fn mul_span(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(mul_span(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64-width domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_span(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up onto the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
range_float!(f32, f64);

/// Slice types fillable in bulk via [`Rng::fill`].
pub trait Fill {
    /// Overwrite `self` with uniformly random content.
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

macro_rules! fill_via_standard {
    ($($t:ty),*) => {$(
        impl Fill for [$t] {
            fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
                for v in self.iter_mut() {
                    *v = Standard::sample(rng);
                }
            }
        }
    )*};
}
fill_via_standard!(u16, u32, u64, usize, f32, f64);

/// The user-facing convenience trait (the `rand::Rng` analogue), blanket-
/// implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    /// Fill a slice with random content.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespace mirror of `rand::rngs`, so ports stay one-import diffs.
pub mod rngs {
    pub use super::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0..=5u32);
            assert!(w <= 5);
            let f = r.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let g = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&g));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval_and_spread() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut sum = 0.0f64;
        for _ in 0..4096 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits} heads at p=0.3");
    }

    #[test]
    fn fill_overwrites_whole_slice() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut bytes = [0u8; 13];
        r.fill(&mut bytes[..]);
        assert!(bytes.iter().any(|&b| b != 0));
        let mut floats = [0.0f32; 7];
        r.fill(&mut floats[..]);
        assert!(floats.iter().all(|f| (0.0..1.0).contains(f)));
    }
}
