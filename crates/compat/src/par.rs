//! `rayon`-style data parallelism over `std::thread::scope`.
//!
//! The workspace uses a narrow slice of rayon: `par_chunks_mut`,
//! `par_iter_mut` and `into_par_iter`, combined with `zip`, `enumerate` and
//! `for_each`. This module reproduces that surface with an eager model:
//! every parallel iterator materialises its (cheap, usually borrowed) items
//! up front, and `for_each` fans contiguous item ranges out to scoped
//! worker threads. Ordering guarantees match rayon's indexed iterators —
//! item `i` of a `zip` pairs position `i` of both sides, and `enumerate`
//! attaches the true index regardless of which worker runs it.

use std::sync::OnceLock;

/// Worker threads used by [`IndexedParallelIterator::for_each`]. Honours
/// `TORCHGT_THREADS` (0 or unset → all available cores).
pub fn worker_count() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        if let Ok(v) = std::env::var("TORCHGT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// An indexed parallel iterator: a finite, ordered item sequence whose
/// consumption may be split across threads.
pub trait IndexedParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materialise the items in index order.
    fn into_items(self) -> Vec<Self::Item>;

    /// Pair each item with its index.
    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter { items: self.into_items().into_iter().enumerate().collect() }
    }

    /// Pair items positionally with another indexed iterator. Like rayon,
    /// the result is truncated to the shorter side.
    fn zip<B: IndexedParallelIterator>(self, other: B) -> ParIter<(Self::Item, B::Item)> {
        ParIter {
            items: self.into_items().into_iter().zip(other.into_items()).collect(),
        }
    }

    /// Apply `f` to every item, fanning out across scoped threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let mut items = self.into_items();
        let workers = worker_count().min(items.len());
        if workers <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        // Split into contiguous per-worker chunks; a panic in any worker
        // propagates out of the scope (exception safety matches rayon).
        let chunk = items.len().div_ceil(workers);
        let mut chunks: Vec<Vec<Self::Item>> = Vec::with_capacity(workers);
        while items.len() > chunk {
            let tail = items.split_off(items.len() - chunk);
            chunks.push(tail);
        }
        chunks.push(items);
        let f = &f;
        std::thread::scope(|scope| {
            for chunk in chunks {
                scope.spawn(move || {
                    for item in chunk {
                        f(item);
                    }
                });
            }
        });
    }
}

/// The concrete iterator all adapters produce.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IndexedParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Mutable-slice entry points (`rayon::slice::ParallelSliceMut` analogue).
pub trait ParallelSliceMut<T: Send> {
    /// Non-overlapping mutable chunks of `chunk_size` (last may be short).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;

    /// One mutable reference per element.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be nonzero");
        ParIter { items: self.chunks_mut(chunk_size).collect() }
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

/// By-value entry point (`rayon::iter::IntoParallelIterator` analogue).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Namespace mirror of `rayon::iter` for fully-qualified trait paths.
pub mod iter {
    pub use super::{IndexedParallelIterator, IntoParallelIterator};
}

/// Drop-in replacement for `use rayon::prelude::*`.
pub mod prelude {
    pub use super::{
        IndexedParallelIterator, IntoParallelIterator, ParIter, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_slice_in_order() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 10 + j) as u64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn zip_pairs_positionally() {
        let mut a = vec![0usize; 257];
        let mut b: Vec<usize> = (0..257).collect();
        a.par_chunks_mut(1).zip(b.par_iter_mut()).enumerate().for_each(
            |(i, (chunk, bv))| {
                chunk[0] = *bv * 2;
                assert_eq!(*bv, i);
            },
        );
        for (i, v) in a.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn into_par_iter_consumes_vec() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        items.into_par_iter().for_each(|v| {
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499_500);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 64];
            data.par_chunks_mut(1).enumerate().for_each(|(i, _)| {
                if i == 33 {
                    panic!("worker bails");
                }
            });
        });
        assert!(result.is_err(), "panic inside for_each must propagate");
    }

    #[test]
    fn empty_and_single_item_paths() {
        let mut empty: Vec<u8> = Vec::new();
        empty.par_chunks_mut(4).for_each(|_| panic!("no items expected"));
        let mut one = vec![1u8];
        one.par_iter_mut().for_each(|v| *v += 1);
        assert_eq!(one[0], 2);
    }
}
