//! Std-only, in-workspace replacements for the external crates the
//! reproduction used to pull from crates.io. The build environment has no
//! network and no vendored registry, so every dependency here is
//! implemented against `std` alone and exposes exactly the API subset the
//! workspace consumes:
//!
//! | module        | replaces            | surface guaranteed                                   |
//! |---------------|---------------------|------------------------------------------------------|
//! | [`rng`]       | `rand` (`SmallRng`) | xoshiro256++ PRNG, `Rng`/`SeedableRng`, uniform ranges |
//! | [`par`]       | `rayon`             | `par_chunks_mut`/`par_iter_mut`/`into_par_iter` + `zip`/`enumerate`/`for_each` over scoped threads |
//! | [`sync`]      | `crossbeam-channel` | unbounded MPMC channel with clonable `Receiver`      |
//! | [`json`]      | `serde`/`serde_json`| `Value`, `json!`, writer + parser, struct/enum impl macros |
//! | [`proptest`]  | `proptest`          | seeded random-input property runner with failing-case reporting |
//! | [`bench`]     | `criterion`         | wall-clock micro-bench harness with the `criterion_group!` entry points |
//!
//! Everything is deterministic where the original was (the PRNG, the
//! property-test case streams) and the shims deliberately avoid clever
//! `unsafe`: the parallel helpers are built on `std::thread::scope`.

pub mod bench;
pub mod json;
pub mod par;
pub mod proptest;
pub mod rng;
pub mod sync;
