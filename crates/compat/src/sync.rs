//! `crossbeam-channel`-style unbounded MPMC channel on std primitives.
//!
//! The collectives build a P×P mesh where, unlike `std::sync::mpsc`, the
//! receiving end must be `Clone` (dummy self-links share one receiver).
//! This shim backs both ends with one `Mutex<VecDeque>` + `Condvar` and
//! tracks endpoint counts for crossbeam's disconnect semantics: `recv` on
//! an empty queue with no senders fails, `send` with no receivers fails.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Mirror of `crossbeam::channel`.
pub mod channel {
    pub use super::{unbounded, Receiver, RecvError, SendError, Sender};
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

/// Sending half; clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; clonable (MPMC, unlike `std::sync::mpsc`).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The message could not be delivered: every receiver is gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

/// The channel is empty and every sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty channel with no senders")
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        ready: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueue `value`, waking one waiting receiver.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            // Wake blocked receivers so they can observe disconnection.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next message, blocking until one arrives or every
    /// sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.ready.wait(inner).unwrap();
        }
    }

    /// Non-blocking dequeue; `None` when currently empty (regardless of
    /// sender liveness).
    pub fn try_recv(&self) -> Option<T> {
        self.shared.inner.lock().unwrap().queue.pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_channel() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 42);
        });
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }
}
