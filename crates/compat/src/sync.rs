//! `crossbeam-channel`-style MPMC channels on std primitives.
//!
//! The collectives build a P×P mesh where, unlike `std::sync::mpsc`, the
//! receiving end must be `Clone` (dummy self-links share one receiver).
//! This shim backs both ends with one `Mutex<VecDeque>` + `Condvar` and
//! tracks endpoint counts for crossbeam's disconnect semantics: `recv` on
//! an empty queue with no senders fails, `send` with no receivers fails.
//!
//! Two flavours share the endpoint types: [`unbounded`] (the collectives'
//! mesh links) and [`bounded`] (the serving layer's admission queue, where
//! a full queue must exert backpressure on producers via blocking `send`
//! or an observable [`TrySendError::Full`]).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Acquire `m`, recovering the guard if a previous holder panicked.
///
/// Shared stats/state mutexes (loader counters, serve histograms, the
/// channel internals below) hold plain-old-data that stays consistent
/// across a panic, so poisoning carries no information here — it only
/// cascades one thread's panic into every other thread that touches the
/// lock. Recovery keeps a dying background thread from taking the main
/// thread down with it.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Mirror of `crossbeam::channel`.
pub mod channel {
    pub use super::{
        bounded, unbounded, Receiver, RecvError, RecvTimeoutError, SendError, Sender,
        TrySendError,
    };
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// `None` for unbounded channels; `Some(cap)` makes `send` block while
    /// the queue holds `cap` messages.
    capacity: Option<usize>,
}

impl<T> Inner<T> {
    fn is_full(&self) -> bool {
        matches!(self.capacity, Some(cap) if self.queue.len() >= cap)
    }
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    /// Signalled when a bounded queue frees a slot (unused by unbounded).
    space: Condvar,
}

/// Sending half; clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; clonable (MPMC, unlike `std::sync::mpsc`).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The message could not be delivered: every receiver is gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

/// The channel is empty and every sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty channel with no senders")
    }
}

/// A non-blocking send could not enqueue the message.
pub enum TrySendError<T> {
    /// The bounded queue is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "TrySendError::Full(..)",
            TrySendError::Disconnected(_) => "TrySendError::Disconnected(..)",
        })
    }
}

/// A timed receive expired or found the channel dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no message.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecvTimeoutError::Timeout => "timed out waiting on an empty channel",
            RecvTimeoutError::Disconnected => "receiving on an empty channel with no senders",
        })
    }
}

fn make_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            capacity,
        }),
        ready: Condvar::new(),
        space: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make_channel(None)
}

/// Create a bounded channel holding at most `cap` messages (`cap ≥ 1`):
/// `send` blocks while full, `try_send` reports [`TrySendError::Full`].
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded channel capacity must be at least 1");
    make_channel(Some(cap))
}

impl<T> Sender<T> {
    /// Enqueue `value`, waking one waiting receiver. On a bounded channel
    /// this blocks while the queue is full (backpressure).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = lock_unpoisoned(&self.shared.inner);
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            if !inner.is_full() {
                break;
            }
            inner = self.shared.space.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Non-blocking enqueue: fails with [`TrySendError::Full`] instead of
    /// blocking when a bounded queue is at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = lock_unpoisoned(&self.shared.inner);
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.is_full() {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Messages currently queued (a racy snapshot — the serving loop reads
    /// it as the queue-depth gauge, not for synchronization).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.shared.inner).queue.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock_unpoisoned(&self.shared.inner).senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = lock_unpoisoned(&self.shared.inner);
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            // Wake blocked receivers so they can observe disconnection.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next message, blocking until one arrives or every
    /// sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = lock_unpoisoned(&self.shared.inner);
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.space.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Dequeue with a deadline: blocks at most `timeout` for a message.
    /// The micro-batching loop leans on this to flush a partial batch when
    /// the latency budget expires before the batch fills.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock_unpoisoned(&self.shared.inner);
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.space.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, wait) = self.shared.ready.wait_timeout(inner, remaining).unwrap_or_else(|p| p.into_inner());
            inner = guard;
            if wait.timed_out() && inner.queue.is_empty() {
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking dequeue; `None` when currently empty (regardless of
    /// sender liveness).
    pub fn try_recv(&self) -> Option<T> {
        let v = lock_unpoisoned(&self.shared.inner).queue.pop_front();
        if v.is_some() {
            self.shared.space.notify_one();
        }
        v
    }

    /// Messages currently queued (racy snapshot — a gauge, not a guard).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.shared.inner).queue.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock_unpoisoned(&self.shared.inner).receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = lock_unpoisoned(&self.shared.inner);
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            // Wake senders blocked on a full bounded queue so they can
            // observe disconnection instead of sleeping forever.
            self.shared.space.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_channel() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 42);
        });
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                // Blocks until the main thread drains a slot.
                tx.send(2).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        });
    }

    #[test]
    fn bounded_send_observes_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let handle = s.spawn(move || tx.send(2));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(handle.join().unwrap().is_err(), "blocked send must fail");
        });
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u8>(4);
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(10));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn len_tracks_queue_depth() {
        let (tx, rx) = bounded::<u8>(8);
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(tx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }
}
