//! The node-level training loop: executes GP-RAW / GP-FLASH / GP-SPARSE /
//! TorchGT over a prepared dataset, producing per-epoch statistics with both
//! real wall-clock and simulated GPU-cluster time.

use crate::autotune::AutoTuner;
use crate::config::{Method, TrainConfig};
use crate::interleave::{Decision, InterleaveScheduler};
use crate::preprocess::{prepare_node_dataset, Prepared};
use std::time::Instant;
use torchgt_comm::ClusterTopology;
use torchgt_graph::partition::{cluster_order, partition, ClusterOrder};
use torchgt_graph::{check_conditions, ConditionReport, CsrGraph, NodeDataset};
use torchgt_model::{loss, Pattern, SequenceBatch, SequenceModel};
use torchgt_obs::{EpochTrace, Event, RecorderHandle, SpanGuard, StepTrace};
use torchgt_perf::{all_to_all_traffic, iteration_cost, GpuSpec, ModelShape, StepSpec};
use torchgt_sparse::{access_profile, reform_recorded, AccessProfile, LayoutKind, ReformConfig};
use torchgt_tensor::bf16::{apply_precision, bf16_round};
use torchgt_tensor::{Adam, Optimizer, Precision, Workspace};

/// Elapsed seconds since the mark, re-arming it; 0 when timing is off
/// (disabled recorder — no clock reads at all).
pub(crate) fn lap(mark: &mut Option<Instant>) -> f64 {
    match mark {
        Some(t) => {
            let s = t.elapsed().as_secs_f64();
            *mark = Some(Instant::now());
            s
        }
        None => 0.0,
    }
}

/// `nnz_after / nnz_before` of a reformation pass (1.0 on an empty mask).
pub(crate) fn compaction_ratio(stats: &torchgt_sparse::ReformStats) -> f64 {
    if stats.nnz_before > 0 {
        stats.nnz_after as f64 / stats.nnz_before as f64
    } else {
        1.0
    }
}

torchgt_compat::json_struct! {
    /// Per-epoch training record.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct EpochStats {
        /// Epoch number (0-based).
        pub epoch: usize,
        /// Mean training loss over the epoch.
        pub loss: f32,
        /// Accuracy on the train split.
        pub train_acc: f64,
        /// Accuracy on the test split.
        pub test_acc: f64,
        /// Real wall-clock seconds of this Rust process.
        pub wall_seconds: f64,
        /// Simulated seconds on the configured GPU cluster (what the paper's
        /// tables report).
        pub sim_seconds: f64,
        /// Iterations run with the sparse pattern.
        pub sparse_iters: usize,
        /// Iterations run fully-connected (interleaves + fallbacks).
        pub full_iters: usize,
        /// The transfer threshold β_thre in effect.
        pub beta_thre: f64,
    }
}

/// Per-sequence attention state for the sparse path.
struct SeqAttention {
    /// The mask actually attended over (topology or cluster-sparse).
    mask: CsrGraph,
    /// Its access profile (feeds the cost model).
    profile: AccessProfile,
    /// Cached condition report for the scheduler.
    report: ConditionReport,
    /// Local cluster ordering used by the reformation (TorchGT only).
    local_order: Option<ClusterOrder>,
    /// Topology mask permuted into local cluster order (reform input).
    permuted_topo: Option<CsrGraph>,
    /// Compaction ratio `nnz_after / nnz_before` of the latest reformation
    /// (1.0 when no reformation applies).
    reform_ratio: f64,
}

/// Node-level trainer.
pub struct NodeTrainer {
    /// The run configuration.
    pub cfg: TrainConfig,
    /// Simulated device.
    pub gpu: GpuSpec,
    /// Simulated cluster.
    pub topology: ClusterTopology,
    /// Model shape for the cost model.
    pub shape: ModelShape,
    model: Box<dyn SequenceModel>,
    opt: Adam,
    prepared: Prepared,
    attn: Vec<SeqAttention>,
    scheduler: InterleaveScheduler,
    tuner: AutoTuner,
    train_pos: Vec<Vec<u32>>,
    test_pos: Vec<Vec<u32>>,
    current_beta: f64,
    sub_block: usize,
    epoch: usize,
    /// Scratch-tensor arena shared by every forward/backward/loss call.
    /// Lives outside [`torchgt_ckpt::TrainerState`], so it survives a
    /// checkpoint restore (the pools merely start cold after a crash —
    /// numerics are unaffected, only the first post-restore step allocates).
    ws: Workspace,
    recorder: RecorderHandle,
    /// Preprocess seconds not yet attributed to an epoch trace (initial
    /// dataset preparation, then mid-training reformation rebuilds).
    pending_preprocess_s: f64,
}

impl NodeTrainer {
    /// Build a trainer: preprocess the dataset (clustered for TorchGT) and
    /// construct the per-sequence masks.
    pub fn new(
        cfg: TrainConfig,
        dataset: &NodeDataset,
        model: Box<dyn SequenceModel>,
        shape: ModelShape,
        gpu: GpuSpec,
        topology: ClusterTopology,
    ) -> Self {
        let clustered = cfg.method == Method::TorchGt;
        let k = if cfg.clusters > 0 { cfg.clusters } else { gpu.tune_k(shape.hidden) };
        let prepared = prepare_node_dataset(dataset, cfg.seq_len, clustered, k, cfg.seed);
        let sub_block = if cfg.sub_block > 0 {
            cfg.sub_block
        } else {
            // d_b from the cache model, sized by a typical sequence's edges.
            let edges = prepared.sequences.first().map(|s| s.mask.num_arcs()).unwrap_or(1);
            AutoTuner::tune_shape(&gpu, shape.hidden, edges).1
        };
        let tuner = AutoTuner::new(prepared.beta_g, 10);
        let current_beta = cfg.beta_thre.unwrap_or_else(|| tuner.beta_thre());
        let train_pos = prepared.train_positions();
        let test_pos = prepared.test_positions();
        let pending_preprocess_s = prepared.preprocess_seconds;
        let mut trainer = Self {
            recorder: torchgt_obs::noop(),
            pending_preprocess_s,
            scheduler: InterleaveScheduler::new(cfg.interleave_period),
            tuner,
            attn: Vec::new(),
            train_pos,
            test_pos,
            current_beta,
            sub_block,
            epoch: 0,
            ws: Workspace::new(),
            model,
            opt: Adam::with_lr(cfg.lr),
            prepared,
            cfg,
            gpu,
            topology,
            shape,
        };
        trainer.build_attention_state();
        trainer
    }

    /// Pre-processing cost in seconds (partition + reorder + masks).
    pub fn preprocess_seconds(&self) -> f64 {
        self.prepared.preprocess_seconds
    }

    /// Route observability signals to `recorder` (spans, step/epoch traces,
    /// simulated all-to-all volume, β_thre transition events).
    pub fn attach_recorder(&mut self, recorder: RecorderHandle) {
        if recorder.enabled() {
            recorder.gauge_set("beta_thre", self.current_beta);
        }
        self.recorder = recorder;
    }

    /// Graph sparsity β_G of the prepared graph.
    pub fn beta_g(&self) -> f64 {
        self.prepared.beta_g
    }

    /// The model under training.
    pub fn model_mut(&mut self) -> &mut dyn SequenceModel {
        self.model.as_mut()
    }

    /// Number of training sequences.
    pub fn num_sequences(&self) -> usize {
        self.prepared.sequences.len()
    }

    /// Aggregate access profile of the *current* attention masks (reflects
    /// the reformation state — used to extrapolate kernel time to paper
    /// scale, e.g. by the Table VIII harness).
    pub fn mean_profile(&self) -> AccessProfile {
        let mut nnz = 0usize;
        let mut runs = 0usize;
        let mut isolated = 0usize;
        let mut active = 0usize;
        for s in &self.attn {
            nnz += s.profile.nnz;
            runs += s.profile.runs;
            isolated += s.profile.isolated;
            active += s.profile.active_rows;
        }
        AccessProfile {
            nnz,
            runs,
            avg_run_len: if runs > 0 { nnz as f64 / runs as f64 } else { 0.0 },
            isolated,
            active_rows: active,
        }
    }

    /// Effective depth for the C3 reachability check: with interleaving on,
    /// the periodic fully-connected pass propagates information globally, so
    /// any *connected* mask satisfies C3 (Yun et al.'s construction only
    /// needs eventual all-pair reachability); without interleaving the model
    /// depth is the hard bound.
    fn condition_layers(&self) -> u8 {
        if self.cfg.interleave_period > 0 {
            u8::MAX - 1
        } else {
            self.shape.layers.min(u8::MAX as usize) as u8
        }
    }

    fn build_attention_state(&mut self) {
        let layers = self.condition_layers();
        let method = self.cfg.method;
        let k = self.gpu.tune_k(self.shape.hidden);
        let mut states = Vec::with_capacity(self.prepared.sequences.len());
        for (si, seq) in self.prepared.sequences.iter().enumerate() {
            let state = match method {
                Method::TorchGt => {
                    // Local cluster structure for the reformation.
                    let assign = partition(&seq.mask, k.min(seq.mask.num_nodes().max(1)), self.cfg.seed ^ si as u64);
                    let kk = assign.iter().copied().max().unwrap_or(0) as usize + 1;
                    let order = cluster_order(&assign, kk);
                    let permuted = seq.mask.permute(&order.perm);
                    let reformed = reform_recorded(
                        &permuted,
                        &order,
                        ReformConfig { db: self.sub_block, beta_thre: self.current_beta },
                        &self.recorder,
                    );
                    // Back to sequence-local ids, then restore the C1/C2
                    // backbone the transfer may have broken (self-loops +
                    // Hamiltonian sequence path — O(S) extra edges).
                    let mask = torchgt_graph::augment_for_conditions(
                        &reformed.mask.permute(&order.inverse),
                    );
                    // Profile measured on the *clustered* layout (that is
                    // what the kernel sees).
                    let profile = access_profile(&reformed.mask);
                    let report = check_conditions(&mask, layers);
                    SeqAttention {
                        mask,
                        profile,
                        report,
                        local_order: Some(order),
                        permuted_topo: Some(permuted),
                        reform_ratio: compaction_ratio(&reformed.stats),
                    }
                }
                _ => SeqAttention {
                    mask: seq.mask.clone(),
                    profile: seq.profile,
                    report: check_conditions(&seq.mask, layers),
                    local_order: None,
                    permuted_topo: None,
                    reform_ratio: 1.0,
                },
            };
            states.push(state);
        }
        self.attn = states;
    }

    /// Re-run the reformation after a β_thre change (elastic transfer). The
    /// rebuild's wall-clock is charged to preprocess time in the next epoch
    /// trace.
    fn rebuild_reformed(&mut self) {
        if self.cfg.method != Method::TorchGt {
            return;
        }
        let mut mark = self.recorder.enabled().then(Instant::now);
        let layers = self.condition_layers();
        for state in &mut self.attn {
            let (Some(order), Some(permuted)) = (&state.local_order, &state.permuted_topo) else {
                continue;
            };
            let reformed = reform_recorded(
                permuted,
                order,
                ReformConfig { db: self.sub_block, beta_thre: self.current_beta },
                &self.recorder,
            );
            state.mask =
                torchgt_graph::augment_for_conditions(&reformed.mask.permute(&order.inverse));
            state.profile = access_profile(&reformed.mask);
            state.report = check_conditions(&state.mask, layers);
            state.reform_ratio = compaction_ratio(&reformed.stats);
        }
        self.pending_preprocess_s += lap(&mut mark);
    }

    fn layout_for(&self, decision: Decision) -> LayoutKind {
        match (self.cfg.method, decision) {
            (Method::GpRaw, _) => LayoutKind::Dense,
            (Method::GpFlash, _) => LayoutKind::Flash,
            (Method::GpSparse, _) => LayoutKind::Topology,
            (Method::TorchGt, Decision::Sparse) => LayoutKind::ClusterSparse,
            (Method::TorchGt, Decision::Full) => LayoutKind::Flash,
        }
    }

    fn sim_iteration(&self, seq_len: usize, profile: AccessProfile, decision: Decision) -> f64 {
        iteration_cost(&self.step_spec(seq_len, profile, decision)).total()
    }

    /// Run one training epoch.
    pub fn train_epoch(&mut self) -> EpochStats {
        let t0 = Instant::now();
        let on = self.recorder.enabled();
        let _epoch_span = SpanGuard::new(&self.recorder, "train_epoch");
        self.model.set_training(true);
        let mut total_loss = 0.0f32;
        let mut sim_seconds = 0.0f64;
        let mut sparse_iters = 0usize;
        let mut full_iters = 0usize;
        let (mut fwd_total, mut bwd_total, mut opt_total) = (0.0f64, 0.0f64, 0.0f64);
        let nseq = self.prepared.sequences.len();
        for si in 0..nseq {
            let seq = &self.prepared.sequences[si];
            let state = &self.attn[si];
            let seq_len = seq.nodes.len();
            let profile = state.profile;
            let reform_ratio = state.reform_ratio;
            let decision = match self.cfg.method {
                Method::GpRaw | Method::GpFlash => Decision::Full,
                Method::GpSparse => Decision::Sparse,
                Method::TorchGt => self.scheduler.decide_with_report(&state.report),
            };
            match decision {
                Decision::Sparse => sparse_iters += 1,
                Decision::Full => full_iters += 1,
            }
            let pattern = match (self.cfg.method, decision) {
                (Method::GpRaw, _) => Pattern::Dense,
                (Method::GpFlash, _) => Pattern::Flash,
                (Method::TorchGt, Decision::Full) => Pattern::Flash,
                _ => Pattern::Sparse(&state.mask),
            };
            let batch =
                SequenceBatch { features: &seq.features, graph: &seq.graph, spd: None };
            let ws0 = on.then(|| self.ws.stats());
            let mut mark = on.then(Instant::now);
            let mut logits = self.model.forward_ws(&batch, pattern, &mut self.ws);
            apply_precision(&mut logits, self.cfg.precision);
            let (l, dlogits) = loss::masked_softmax_cross_entropy_ws(
                &logits,
                &seq.labels,
                &self.train_pos[si],
                &mut self.ws,
            );
            total_loss += l;
            let forward_s = lap(&mut mark);
            self.model.backward_ws(&batch, pattern, &dlogits, &mut self.ws);
            self.ws.give(dlogits);
            self.ws.give(logits);
            let backward_s = lap(&mut mark);
            if self.cfg.warmup_steps > 0 {
                let schedule = torchgt_tensor::optim::WarmupSchedule {
                    peak_lr: self.cfg.lr,
                    warmup: self.cfg.warmup_steps as u64,
                };
                self.opt.set_lr(schedule.lr_at(self.opt.steps() + 1));
            }
            self.opt.step(&mut self.model.params_mut());
            if self.cfg.precision == Precision::Bf16 {
                for p in self.model.params_mut() {
                    for v in p.value.data_mut() {
                        *v = bf16_round(*v);
                    }
                }
            }
            let optim_s = lap(&mut mark);
            let sim_s = self.sim_iteration(seq_len, profile, decision);
            sim_seconds += sim_s;
            if on {
                fwd_total += forward_s;
                bwd_total += backward_s;
                opt_total += optim_s;
                // Memory discipline of this step: fresh arena allocations and
                // pool hits (steady state shows alloc_bytes == 0 once the
                // pools are warm).
                let ws1 = self.ws.stats();
                let ws0 = ws0.expect("stats snapshot taken when recorder is on");
                self.recorder
                    .gauge_set("alloc_bytes", (ws1.alloc_bytes - ws0.alloc_bytes) as f64);
                self.recorder
                    .gauge_set("arena_reuse_hits", (ws1.reuse_hits - ws0.reuse_hits) as f64);
                // The §III-C sequence↔head relayouts this iteration implies
                // on the simulated cluster.
                let traffic = all_to_all_traffic(&self.step_spec(seq_len, profile, decision));
                self.recorder.collective(
                    "all_to_all",
                    traffic.ops,
                    traffic.payload_bytes,
                    traffic.wire_bytes,
                );
                self.recorder.step(StepTrace {
                    epoch: self.epoch,
                    step: si,
                    seq_len,
                    sparse: decision == Decision::Sparse,
                    beta_thre: self.current_beta,
                    reform_ratio,
                    forward_s,
                    backward_s,
                    optim_s,
                    sim_s,
                });
            }
        }
        let mean_loss = total_loss / nseq.max(1) as f32;
        // Numerical-health guard: a NaN/Inf epoch loss means the run is
        // poisoned — flag it so drivers can restore from the last snapshot.
        if on && !mean_loss.is_finite() {
            self.recorder.event(Event::loss_nonfinite(self.epoch, mean_loss as f64));
        }
        let mut eval_mark = on.then(Instant::now);
        let (train_acc, test_acc) = self.evaluate();
        let eval_s = lap(&mut eval_mark);
        let wall = t0.elapsed().as_secs_f64();
        let stats = EpochStats {
            epoch: self.epoch,
            loss: mean_loss,
            train_acc,
            test_acc,
            wall_seconds: wall,
            sim_seconds,
            sparse_iters,
            full_iters,
            beta_thre: self.current_beta,
        };
        // Elastic transfer: let the Auto Tuner adjust β_thre.
        if self.cfg.method == Method::TorchGt && self.cfg.beta_thre.is_none() {
            let next = self.tuner.observe(mean_loss as f64, sim_seconds.max(1e-9));
            if (next - self.current_beta).abs() > f64::EPSILON {
                let from = self.current_beta;
                self.current_beta = next;
                if on {
                    self.recorder.event(Event::beta_transition(
                        self.epoch,
                        from,
                        next,
                        self.tuner.ladder_index(),
                    ));
                    self.recorder.gauge_set("beta_thre", next);
                }
                self.rebuild_reformed();
            }
        }
        if on {
            self.recorder.counter_add("iterations", nseq as u64);
            self.recorder.record_span("train_epoch/forward", fwd_total);
            self.recorder.record_span("train_epoch/backward", bwd_total);
            self.recorder.record_span("train_epoch/optim", opt_total);
            // Initial dataset preparation lands on epoch 0; a β_thre rebuild
            // triggered above lands on the epoch that triggered it.
            let preprocess_s = std::mem::take(&mut self.pending_preprocess_s);
            if preprocess_s > 0.0 {
                self.recorder.record_span("preprocess", preprocess_s);
            }
            self.recorder.epoch(EpochTrace {
                epoch: self.epoch,
                loss: mean_loss as f64,
                preprocess_s,
                forward_s: fwd_total,
                backward_s: bwd_total,
                optim_s: opt_total,
                eval_s,
                sim_s: sim_seconds,
                sparse_iters,
                full_iters,
                beta_thre: stats.beta_thre,
            });
        }
        self.epoch += 1;
        stats
    }

    /// The cost-model spec of one iteration (shared by time and traffic
    /// estimates).
    fn step_spec(&self, seq_len: usize, profile: AccessProfile, decision: Decision) -> StepSpec {
        StepSpec {
            gpu: self.gpu,
            topology: self.topology,
            shape: self.shape,
            layout: self.layout_for(decision),
            seq_len,
            profile,
        }
    }

    /// Evaluate train/test accuracy with the method's inference pattern.
    pub fn evaluate(&mut self) -> (f64, f64) {
        let _span = SpanGuard::new(&self.recorder, "evaluate");
        self.model.set_training(false);
        let mut train_hits = 0usize;
        let mut train_total = 0usize;
        let mut test_hits = 0usize;
        let mut test_total = 0usize;
        for si in 0..self.prepared.sequences.len() {
            let seq = &self.prepared.sequences[si];
            let state = &self.attn[si];
            let pattern = match self.cfg.method {
                Method::GpRaw => Pattern::Dense,
                Method::GpFlash => Pattern::Flash,
                _ => Pattern::Sparse(&state.mask),
            };
            let batch =
                SequenceBatch { features: &seq.features, graph: &seq.graph, spd: None };
            let mut logits = self.model.forward_ws(&batch, pattern, &mut self.ws);
            apply_precision(&mut logits, self.cfg.precision);
            let acc_of = |positions: &[u32]| {
                loss::accuracy(&logits, &seq.labels, Some(positions))
            };
            train_hits +=
                (acc_of(&self.train_pos[si]) * self.train_pos[si].len() as f64).round() as usize;
            train_total += self.train_pos[si].len();
            test_hits +=
                (acc_of(&self.test_pos[si]) * self.test_pos[si].len() as f64).round() as usize;
            test_total += self.test_pos[si].len();
            self.ws.give(logits);
        }
        self.model.set_training(true);
        (
            train_hits as f64 / train_total.max(1) as f64,
            test_hits as f64 / test_total.max(1) as f64,
        )
    }

    /// Train for the configured number of epochs, returning every epoch's
    /// stats.
    pub fn run(&mut self) -> Vec<EpochStats> {
        (0..self.cfg.epochs).map(|_| self.train_epoch()).collect()
    }

    /// Fraction of TorchGT iterations that ran fully-connected so far.
    pub fn full_fraction(&self) -> f64 {
        self.scheduler.full_fraction()
    }
}

impl crate::traits::Trainer for NodeTrainer {
    fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    fn attach_recorder(&mut self, recorder: RecorderHandle) {
        NodeTrainer::attach_recorder(self, recorder);
    }

    fn train_epoch(&mut self) -> EpochStats {
        NodeTrainer::train_epoch(self)
    }

    fn evaluate(&mut self) -> (f64, f64) {
        NodeTrainer::evaluate(self)
    }

    fn epoch(&self) -> usize {
        self.epoch
    }

    fn snapshot(&mut self) -> torchgt_ckpt::Snapshot {
        let (index, f_history, ldr_history) = self.tuner.export_state();
        let (iteration, sparse, full) = self.scheduler.export_state();
        let state = torchgt_ckpt::TrainerState {
            epoch: self.epoch,
            opt_steps: self.opt.steps(),
            rng_streams: self.model.rng_state(),
            beta_thre: Some(self.current_beta),
            tuner: Some(torchgt_ckpt::TunerState { index, f_history, ldr_history }),
            scheduler: Some(torchgt_ckpt::SchedulerState {
                iteration: iteration as u64,
                sparse_iters: sparse as u64,
                full_iters: full as u64,
            }),
            epoch_losses: Vec::new(),
        };
        crate::resume::capture_model(self.model.as_mut(), state)
    }

    fn restore(&mut self, snapshot: &torchgt_ckpt::Snapshot) -> std::io::Result<()> {
        crate::resume::restore_model(self.model.as_mut(), &mut self.opt, snapshot)?;
        let st = &snapshot.state;
        if let Some(t) = &st.tuner {
            self.tuner.restore_state(t.index, t.f_history.clone(), t.ldr_history.clone());
        }
        if let Some(s) = &st.scheduler {
            self.scheduler.restore_state(
                s.iteration as usize,
                s.sparse_iters as usize,
                s.full_iters as usize,
            );
        }
        if let Some(beta) = st.beta_thre {
            if (beta - self.current_beta).abs() > f64::EPSILON {
                // The attention masks are a pure function of β_thre: re-run
                // the reformation so they match the snapshotted threshold.
                self.current_beta = beta;
                self.rebuild_reformed();
            }
        }
        self.epoch = st.epoch;
        Ok(())
    }

    fn run(&mut self) -> Vec<EpochStats> {
        NodeTrainer::run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::DatasetKind;
    use torchgt_model::{Graphormer, GraphormerConfig};

    fn dataset() -> NodeDataset {
        DatasetKind::OgbnArxiv.generate_node(0.003, 11)
    }

    fn make_trainer(method: Method, d: &NodeDataset, epochs: usize) -> NodeTrainer {
        let mut cfg = TrainConfig::new(method, 256, epochs);
        cfg.interleave_period = 4;
        let mcfg = GraphormerConfig {
            feat_dim: d.feat_dim,
            hidden: 32,
            layers: 2,
            heads: 4,
            ffn_mult: 2,
            out_dim: d.num_classes,
            max_degree: 32,
            max_spd: 4,
            dropout: 0.0,
        };
        let model = Box::new(Graphormer::new(mcfg, 3));
        let shape = ModelShape { layers: 2, hidden: 32, heads: 4 };
        NodeTrainer::new(cfg, d, model, shape, GpuSpec::rtx3090(), ClusterTopology::rtx3090(1))
    }

    #[test]
    fn torchgt_trains_and_improves() {
        let d = dataset();
        let mut t = make_trainer(Method::TorchGt, &d, 8);
        let stats = t.run();
        assert_eq!(stats.len(), 8);
        let first = stats.first().unwrap();
        let last = stats.last().unwrap();
        assert!(last.loss < first.loss, "loss {} → {}", first.loss, last.loss);
        assert!(last.test_acc > 1.2 / d.num_classes as f64, "above chance");
        assert!(last.sim_seconds > 0.0);
    }

    #[test]
    fn interleave_mixes_patterns() {
        let d = dataset();
        let mut t = make_trainer(Method::TorchGt, &d, 2);
        let stats = t.run();
        let sparse: usize = stats.iter().map(|s| s.sparse_iters).sum();
        let full: usize = stats.iter().map(|s| s.full_iters).sum();
        assert!(sparse > 0, "sparse iterations must dominate");
        assert!(full > 0, "interleaved full passes must occur");
        assert!(sparse > full);
    }

    #[test]
    fn gp_flash_runs_in_bf16_and_quantises_params() {
        let d = dataset();
        let mut flash = make_trainer(Method::GpFlash, &d, 1);
        assert_eq!(flash.cfg.precision, Precision::Bf16);
        let stats = flash.train_epoch();
        assert!(stats.sim_seconds > 0.0);
        // After a BF16 step every parameter is bf16-representable.
        for p in flash.model_mut().params_mut() {
            for &v in p.value.data() {
                assert_eq!(v, bf16_round(v), "param not bf16-rounded: {v}");
            }
        }
    }

    #[test]
    fn attention_sim_gap_appears_at_paper_scale() {
        // At toy sequence lengths the FFN/optimizer terms dominate the sim
        // time; the Table V gap comes from the attention term at paper-scale
        // S. Extrapolate both trainers' layouts to S = 256K with the
        // dataset's nnz-per-token and compare.
        let d = dataset();
        let t = make_trainer(Method::TorchGt, &d, 1);
        let s = 256usize << 10;
        let nnz_per_token = d.graph.avg_degree().max(1.0);
        let profile = torchgt_sparse::AccessProfile {
            nnz: (s as f64 * nnz_per_token) as usize,
            runs: ((s as f64 * nnz_per_token) / 8.0) as usize,
            avg_run_len: 8.0,
            isolated: 0,
            active_rows: s,
        };
        let sparse_spec = StepSpec {
            gpu: t.gpu,
            topology: t.topology,
            shape: ModelShape::graphormer_slim(),
            layout: LayoutKind::ClusterSparse,
            seq_len: s,
            profile,
        };
        let flash_spec = StepSpec {
            layout: LayoutKind::Flash,
            profile: torchgt_sparse::dense_profile(0),
            ..sparse_spec.clone()
        };
        let ratio = iteration_cost(&flash_spec).total() / iteration_cost(&sparse_spec).total();
        assert!(ratio > 3.0, "paper-scale speedup {ratio}");
    }

    #[test]
    fn gp_sparse_never_interleaves() {
        let d = dataset();
        let mut t = make_trainer(Method::GpSparse, &d, 2);
        let stats = t.run();
        assert!(stats.iter().all(|s| s.full_iters == 0));
    }

    #[test]
    fn fixed_beta_disables_tuner() {
        let d = dataset();
        let mut cfg = TrainConfig::new(Method::TorchGt, 256, 3);
        cfg.beta_thre = Some(0.5);
        let mcfg = GraphormerConfig {
            feat_dim: d.feat_dim,
            hidden: 16,
            layers: 2,
            heads: 2,
            ffn_mult: 2,
            out_dim: d.num_classes,
            max_degree: 16,
            max_spd: 4,
            dropout: 0.0,
        };
        let model = Box::new(Graphormer::new(mcfg, 4));
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        let mut t = NodeTrainer::new(
            cfg,
            &d,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let stats = t.run();
        assert!(stats.iter().all(|s| (s.beta_thre - 0.5).abs() < 1e-12));
    }

    #[test]
    fn recorder_captures_phases_steps_and_traffic() {
        use std::sync::Arc;
        use torchgt_obs::MemoryRecorder;
        let d = dataset();
        let mut t = make_trainer(Method::TorchGt, &d, 2);
        let mem = Arc::new(MemoryRecorder::default());
        t.attach_recorder(mem.clone());
        let stats = t.run();
        let report = mem.report();
        // Per-epoch rollups mirror EpochStats.
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[0].sparse_iters, stats[0].sparse_iters);
        assert!(report.epochs[0].preprocess_s > 0.0, "epoch 0 carries preprocess");
        assert_eq!(report.epochs[1].preprocess_s, 0.0, "no rebuild yet");
        assert!(report.epochs.iter().all(|e| e.forward_s > 0.0 && e.backward_s > 0.0));
        // Span hierarchy: epoch > phases, evaluate nested under train_epoch.
        assert_eq!(report.span("train_epoch").unwrap().count, 2);
        assert!(report.span("train_epoch/evaluate").is_some());
        for phase in ["forward", "backward", "optim"] {
            let s = report.span(&format!("train_epoch/{phase}")).unwrap();
            assert_eq!(s.count, 2);
            assert!(s.total_s > 0.0, "{phase} must be timed");
        }
        // Simulated all-to-all volume: rtx3090(1) is an 8-GPU world, so
        // cross-link traffic is nonzero; one record per iteration.
        let a2a = mem.report().collective("all_to_all").cloned().unwrap();
        let iters: usize = stats.iter().map(|s| s.sparse_iters + s.full_iters).sum();
        assert!(a2a.wire_bytes > 0);
        assert_eq!(a2a.ops, (8 * t.shape.layers * iters) as u64);
        // One step trace per iteration, consistent with the epoch decisions.
        assert_eq!(report.steps.len(), iters);
        assert_eq!(
            report.steps.iter().filter(|s| s.epoch == 0 && s.sparse).count(),
            stats[0].sparse_iters
        );
    }

    #[test]
    fn dyn_trainer_matches_inherent_calls() {
        use crate::traits::Trainer;
        let d = dataset();
        let mut a = make_trainer(Method::TorchGt, &d, 3);
        let mut b = make_trainer(Method::TorchGt, &d, 3);
        let direct = a.run();
        let dyn_t: &mut dyn Trainer = &mut b;
        let via_trait = dyn_t.run();
        assert_eq!(direct.len(), via_trait.len());
        for (x, y) in direct.iter().zip(&via_trait) {
            // Everything except wall-clock must be bit-identical.
            assert_eq!((x.epoch, x.loss, x.train_acc, x.test_acc), (y.epoch, y.loss, y.train_acc, y.test_acc));
            assert_eq!((x.sim_seconds, x.sparse_iters, x.full_iters, x.beta_thre), (y.sim_seconds, y.sparse_iters, y.full_iters, y.beta_thre));
        }
    }

    #[test]
    fn preprocess_cost_is_small_fraction() {
        let d = dataset();
        let mut t = make_trainer(Method::TorchGt, &d, 3);
        let stats = t.run();
        let train_time: f64 = stats.iter().map(|s| s.wall_seconds).sum();
        // §IV-E: pre-processing ≤ ~5.4% of total training time — our scaled
        // runs are shorter, so just require it not to dominate.
        assert!(
            t.preprocess_seconds() < train_time,
            "preprocess {} vs train {train_time}",
            t.preprocess_seconds()
        );
    }
}

#[cfg(test)]
mod warmup_tests {
    use super::*;
    use torchgt_graph::DatasetKind;
    use torchgt_model::{Gt, GtConfig};

    #[test]
    fn warmup_ramps_learning_rate() {
        let d = DatasetKind::OgbnArxiv.generate_node(0.002, 55);
        let mut cfg = TrainConfig::new(Method::GpSparse, 128, 1);
        cfg.lr = 1e-2;
        cfg.warmup_steps = 100;
        let model = Box::new(Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 3));
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        let mut t = NodeTrainer::new(
            cfg,
            &d,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let _ = t.train_epoch();
        // Few steps into a 100-step warmup: LR must be well below peak.
        assert!(t.opt.lr() < 0.5 * 1e-2, "lr {} not warming up", t.opt.lr());
        assert!(t.opt.lr() > 0.0);
    }
}
