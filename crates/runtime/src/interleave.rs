//! The Dual-interleaved Attention scheduler (paper §III-B).
//!
//! Per sequence, checks the three safety conditions (C1 self-attention, C2
//! Hamiltonian path via Dirac's heuristic, C3 L-layer reachability). When
//! they hold, the sparse topology pattern is used, periodically overlaid
//! with a fully-connected pass ("interleave") to recover the high-order
//! information pure sparsity loses; when they fail, the scheduler falls back
//! to fully-connected attention for that sequence.

use torchgt_graph::{check_conditions, ConditionReport, CsrGraph};

/// What the scheduler decided for one iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Use the sparse topology/cluster-sparse pattern.
    Sparse,
    /// Use a fully-connected pass (interleave or condition fallback).
    Full,
}

/// Iteration-level interleave scheduler.
#[derive(Clone, Debug)]
pub struct InterleaveScheduler {
    /// Interleave a full pass every `period` iterations (0 = never).
    pub period: usize,
    iteration: usize,
    sparse_count: usize,
    full_count: usize,
}

impl InterleaveScheduler {
    /// Construct with the given interleave period.
    pub fn new(period: usize) -> Self {
        Self { period, iteration: 0, sparse_count: 0, full_count: 0 }
    }

    /// Evaluate the conditions for a sequence mask and advance one
    /// iteration.
    pub fn decide(&mut self, mask: &CsrGraph, model_layers: u8) -> (Decision, ConditionReport) {
        let report = check_conditions(mask, model_layers);
        let decision = self.decide_with_report(&report);
        (decision, report)
    }

    /// Advance one iteration reusing a cached condition report (masks are
    /// static across epochs, so callers cache the check).
    pub fn decide_with_report(&mut self, report: &ConditionReport) -> Decision {
        self.iteration += 1;
        let decision = if !report.sparse_ok() {
            Decision::Full
        } else if self.period > 0 && self.iteration % self.period == 0 {
            Decision::Full
        } else {
            Decision::Sparse
        };
        match decision {
            Decision::Sparse => self.sparse_count += 1,
            Decision::Full => self.full_count += 1,
        }
        decision
    }

    /// (sparse, full) pass counts so far.
    pub fn counts(&self) -> (usize, usize) {
        (self.sparse_count, self.full_count)
    }

    /// Export the resumable cursors: `(iteration, sparse_count, full_count)`.
    /// The interleave phase depends on the global iteration count, which
    /// advances across epoch boundaries — a resumed run must continue the
    /// modular pattern where the interrupted one stopped.
    pub fn export_state(&self) -> (usize, usize, usize) {
        (self.iteration, self.sparse_count, self.full_count)
    }

    /// Restore cursors captured by [`InterleaveScheduler::export_state`].
    pub fn restore_state(&mut self, iteration: usize, sparse_count: usize, full_count: usize) {
        self.iteration = iteration;
        self.sparse_count = sparse_count;
        self.full_count = full_count;
    }

    /// Fraction of passes that ran the full pattern.
    pub fn full_fraction(&self) -> f64 {
        let total = self.sparse_count + self.full_count;
        if total == 0 {
            0.0
        } else {
            self.full_count as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::augment_for_conditions;
    use torchgt_graph::generators::{erdos_renyi, path_graph};

    #[test]
    fn interleaves_at_the_requested_period() {
        let mask = augment_for_conditions(&path_graph(32));
        let mut s = InterleaveScheduler::new(4);
        let mut decisions = Vec::new();
        for _ in 0..12 {
            let (d, rep) = s.decide(&mask, 32);
            assert!(rep.sparse_ok());
            decisions.push(d);
        }
        let full: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == Decision::Full)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(full, vec![3, 7, 11]);
        assert_eq!(s.counts(), (9, 3));
        assert!((s.full_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn failing_conditions_force_full() {
        // Disconnected graph without self-loops: all conditions fail.
        let mask = erdos_renyi(64, 10, 3);
        let mut s = InterleaveScheduler::new(0);
        for _ in 0..5 {
            let (d, rep) = s.decide(&mask, 4);
            assert!(!rep.sparse_ok());
            assert_eq!(d, Decision::Full);
        }
        assert_eq!(s.counts(), (0, 5));
    }

    #[test]
    fn period_zero_never_interleaves() {
        let mask = augment_for_conditions(&path_graph(16));
        let mut s = InterleaveScheduler::new(0);
        for _ in 0..10 {
            assert_eq!(s.decide(&mask, 16).0, Decision::Sparse);
        }
    }

    #[test]
    fn c3_depth_matters() {
        let mask = augment_for_conditions(&path_graph(40));
        let mut s = InterleaveScheduler::new(0);
        // 4 layers cannot cover a 39-hop diameter.
        let (d, rep) = s.decide(&mask, 4);
        assert!(!rep.c3_reachable);
        assert_eq!(d, Decision::Full);
    }
}
