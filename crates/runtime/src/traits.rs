//! The unified [`Trainer`] abstraction: every training loop in this crate
//! (node-level, graph-level, batched) drives the same way, so CLIs,
//! examples and benchmarks can hold a `&mut dyn Trainer` and stay agnostic
//! of the task level.

use crate::config::TrainConfig;
use crate::trainer::EpochStats;
use torchgt_ckpt::Snapshot;
use torchgt_obs::RecorderHandle;

/// A training loop over a prepared dataset.
///
/// Implementations must make `train_epoch` / `evaluate` / `run` behave
/// identically to their inherent counterparts — dispatching through
/// `dyn Trainer` is observationally equivalent to calling the concrete type
/// (covered by the workspace's trait-parity tests).
pub trait Trainer {
    /// The run configuration this trainer was built with.
    fn cfg(&self) -> &TrainConfig;

    /// Route observability signals (spans, step/epoch traces, collective
    /// volume, events) to `recorder`. The default recorder is the no-op
    /// sink, which keeps instrumentation cost negligible.
    fn attach_recorder(&mut self, recorder: RecorderHandle);

    /// Run one training epoch and return its statistics.
    fn train_epoch(&mut self) -> EpochStats;

    /// Score the train and test splits (higher is better for both).
    fn evaluate(&mut self) -> (f64, f64);

    /// Number of completed epochs (the next [`Trainer::train_epoch`] call
    /// runs this epoch index).
    fn epoch(&self) -> usize;

    /// Capture the full resumable training state: model parameters, Adam
    /// step counter and moments, per-dropout PRNG cursors, and whatever
    /// controller state the trainer owns (AutoTuner ladder, interleave
    /// cursors). Restoring the snapshot into a freshly built trainer over
    /// the same dataset/config must continue the run bit-for-bit.
    fn snapshot(&mut self) -> Snapshot;

    /// Restore state captured by [`Trainer::snapshot`]. Validates shapes and
    /// stream counts before mutating anything — on error the trainer is
    /// unchanged.
    fn restore(&mut self, snapshot: &Snapshot) -> std::io::Result<()>;

    /// Train for the configured number of epochs.
    fn run(&mut self) -> Vec<EpochStats> {
        (0..self.cfg().epochs).map(|_| self.train_epoch()).collect()
    }
}
