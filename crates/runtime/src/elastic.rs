//! Elastic data-parallel training: survive *permanent* rank loss.
//!
//! [`crate::distributed::train_data_parallel_resilient`] assumes every crash
//! is transient — the same world re-runs after a restore. Real clusters lose
//! machines for good (PAPER.md §VI trains for days on 64 GPUs), and a job
//! that can only retry at full strength dies with its first dead host. This
//! module adds the paper-scale answer, the **escalation ladder**:
//!
//! 1. **retry** — re-enter the epoch loop on the same live set;
//! 2. **restore-from-snapshot** — every retry first restores the latest
//!    full-state snapshot, so a poisoned attempt costs at most one epoch;
//! 3. **shrink-and-continue** — after [`RecoveryPolicy::max_retries`]
//!    failures in one membership generation the crashed rank is declared
//!    permanently lost: the [`DeviceGroup`] reforms over the survivors
//!    (fresh generation, generation-tagged collectives), the token
//!    assignment is recomputed for the smaller world, and the surviving
//!    shards are redistributed with a real all-to-all
//!    ([`reshard_exchange`]) that provably conserves every token.
//!
//! Gradient averaging rescales automatically: `all_reduce_mean` divides by
//! the *live* world size, so after a shrink the replicas keep averaging
//! over exactly the ranks that contributed.
//!
//! Snapshots written by the elastic loop are **world-size-independent**:
//! parameters are stored in canonical (replicated) order and the partition
//! layout rides alongside as [`PartitionLayout`], so a snapshot taken at
//! `P = 4` restores bit-faithfully at `P = 3` — the restore pre-pass
//! reshards from the recorded layout to the current live set.

use crate::config::TrainConfig;
use crate::distributed::DistributedStats;
use crate::parallel::all_reduce_mean_params;
use crate::rebalance::{
    predicted_imbalance, rank_counts, weighted_token_assignment, RebalanceController,
    RebalancePolicy, StepLedger,
};
use crate::preprocess::{prepare_node_dataset, Prepared};
use std::io;
use torchgt_ckpt::{CheckpointStore, PartitionLayout, Snapshot, TrainerState};
use torchgt_comm::{CollectiveKind, Communicator, DeviceGroup, FaultPlan, RankCrash, RankFailure};
use torchgt_graph::NodeDataset;
use torchgt_model::{loss, Pattern, SequenceBatch, SequenceModel};
use torchgt_obs::{Event, RecorderHandle};
use torchgt_tensor::{Adam, Optimizer};

/// A scripted permanent rank loss for tests and the CLI's `--lose-rank`
/// flag: global rank `rank` dies at the start of epoch `epoch` and never
/// comes back (the crash refires on every retry while the rank is live,
/// which is exactly what forces the ladder to its shrink rung).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankLoss {
    /// Global rank id that is lost.
    pub rank: usize,
    /// Epoch at whose start the loss strikes.
    pub epoch: usize,
}

impl std::str::FromStr for RankLoss {
    type Err = String;

    /// Parse the CLI's `<rank>@<epoch>` syntax, e.g. `1@3`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (r, e) = s
            .split_once('@')
            .ok_or_else(|| format!("expected <rank>@<epoch>, got {s:?}"))?;
        Ok(RankLoss {
            rank: r.trim().parse().map_err(|err| format!("bad rank in {s:?}: {err}"))?,
            epoch: e.trim().parse().map_err(|err| format!("bad epoch in {s:?}: {err}"))?,
        })
    }
}

/// Cluster-aware token assignment for an arbitrary live set: stable-sort
/// token ids by cluster (so each cluster's tokens stay contiguous on one
/// rank as far as balance allows), then cut the order into balanced
/// contiguous chunks — one per live rank, first `n % p` ranks take the
/// extra token. Returns `assignment[t] = global rank id owning token t`.
pub fn cluster_token_assignment(clusters: &[u32], live: &[usize]) -> Vec<u32> {
    assert!(!live.is_empty(), "token assignment needs at least one live rank");
    let n = clusters.len();
    let p = live.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&t| clusters[t as usize]); // stable: ties keep token order
    let base = n / p;
    let extra = n % p;
    let mut assignment = vec![0u32; n];
    let mut cursor = 0usize;
    for (i, &g) in live.iter().enumerate() {
        let take = base + usize::from(i < extra);
        for &t in &order[cursor..cursor + take] {
            assignment[t as usize] = g as u32;
        }
        cursor += take;
    }
    assignment
}

/// What a resharding all-to-all produced.
#[derive(Clone, Debug)]
pub struct ReshardOutcome {
    /// Token ids each live rank holds after the exchange, dense-rank order,
    /// each list sorted ascending.
    pub held: Vec<Vec<u32>>,
    /// Tokens whose (live) old owner shipped them to a different new owner.
    pub moved: usize,
    /// Tokens whose old owner is dead: re-materialised by the new owner
    /// from the deterministic preprocessing pipeline instead of exchanged.
    pub reloaded: usize,
}

/// Redistribute token ownership from assignment `old` to `new` with a real
/// all-to-all over the group's live ranks. Every rank ships the token ids
/// it owns under `old` to their `new` owner; tokens stranded on a dead rank
/// are claimed (re-materialised) by their new owner directly — in this
/// simulation sequence data is a pure function of the dataset and seed, so
/// "reloading" a shard is re-indexing, exactly like re-reading it from
/// shared storage in a real deployment. `new` must only target live ranks.
pub fn reshard_exchange(group: &DeviceGroup, old: &[u32], new: &[u32]) -> ReshardOutcome {
    assert_eq!(old.len(), new.len(), "assignments must cover the same tokens");
    let membership = group.membership().clone();
    let m = &membership;
    let held = group.run(|comm| {
        let me = comm.global_rank() as u32;
        let p = comm.world_size();
        let mut chunks: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
        let mut mine: Vec<u32> = Vec::new();
        for (t, (&o, &n)) in old.iter().zip(new).enumerate() {
            let dest = m
                .dense_of(n as usize)
                .expect("new assignment must target a live rank");
            if m.is_live(o as usize) {
                if o == me {
                    chunks[dest].push(t as f32);
                }
            } else if n == me {
                mine.push(t as u32);
            }
        }
        for received in comm.all_to_all(chunks) {
            mine.extend(received.into_iter().map(|x| x as u32));
        }
        mine.sort_unstable();
        mine
    });
    let mut moved = 0usize;
    let mut reloaded = 0usize;
    for (&o, &n) in old.iter().zip(new) {
        if m.is_live(o as usize) {
            moved += usize::from(o != n);
        } else {
            reloaded += 1;
        }
    }
    ReshardOutcome { held, moved, reloaded }
}

/// True when `held` partitions `0..n` exactly: every token appears on
/// exactly one rank, none lost, none duplicated.
pub fn tokens_conserved(n: usize, held: &[Vec<u32>]) -> bool {
    let mut seen = vec![false; n];
    let mut count = 0usize;
    for list in held {
        for &t in list {
            let t = t as usize;
            if t >= n || seen[t] {
                return false;
            }
            seen[t] = true;
            count += 1;
        }
    }
    count == n
}

torchgt_compat::json_struct! {
    /// Result of an elastic run.
    #[derive(Clone, Debug)]
    pub struct ElasticStats {
        /// The distributed stats, with `epoch_losses` stitched across
        /// crash/restore/shrink cycles (covers every epoch exactly once).
        /// `world` is the *final* live world the run finished on.
        pub stats: DistributedStats,
        /// How many times the group was torn down and restarted.
        pub restarts: usize,
        /// The epoch each restart resumed from.
        pub resumed_epochs: Vec<usize>,
        /// How many times the ladder escalated to shrink-and-continue.
        pub shrinks: usize,
        /// Global rank ids declared permanently lost, in order.
        pub lost_ranks: Vec<usize>,
        /// World size the run started with.
        pub initial_world: usize,
        /// Live world size the run finished with.
        pub final_world: usize,
        /// Membership generation the run finished under.
        pub generation: u64,
        /// Watchdog straggler flags accumulated across all attempts.
        pub stragglers_flagged: usize,
        /// Closed-loop rebalances executed between retry attempts.
        pub rebalances: usize,
    }
}

/// Elastic [`crate::distributed::train_data_parallel_resilient`]: trains
/// under an injected [`FaultPlan`] and an optional scripted permanent
/// [`RankLoss`], escalating retry → restore → shrink per the config's
/// [`RecoveryPolicy`](crate::config::RecoveryPolicy). Rank 0 snapshots full
/// state *plus the partition layout* after every epoch, so the run restores
/// across world sizes; if `store` already holds a snapshot whose layout
/// differs from the current assignment (e.g. written at `P = 4`, resuming
/// at `P = 3`), a restore pre-pass reshards the recorded layout onto the
/// live ranks before training starts.
#[allow(clippy::too_many_arguments)]
pub fn train_data_parallel_elastic<F>(
    dataset: &NodeDataset,
    cfg: TrainConfig,
    world: usize,
    factory: F,
    plan: FaultPlan,
    lose: Option<RankLoss>,
    store: &CheckpointStore,
    recorder: RecorderHandle,
) -> io::Result<ElasticStats>
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    assert!(world >= 1);
    // Attach the run's recorder to the store so snapshot self-healing
    // (IO_RETRY / SNAPSHOT_FALLBACK) surfaces in this run's metrics.
    let store = store.clone().with_recorder(recorder.clone());
    let store = &store;
    let policy = cfg.recovery;
    let mut group = DeviceGroup::with_recorder(world, recorder.clone());
    group.set_fault_plan(Some(plan));

    // Prepare once — the pipeline is deterministic, so every rank (and
    // every retry) sees the identical sequence stream.
    let prepared = prepare_node_dataset(dataset, cfg.seq_len, false, 1, cfg.seed);
    let nseq = prepared.sequences.len();
    // Sequences come out of preprocessing in cluster-contiguous order, so
    // identity "clusters" make the balanced cut cluster-aware already.
    let seq_clusters: Vec<u32> = (0..nseq as u32).collect();
    let mut assignment = cluster_token_assignment(&seq_clusters, group.membership().live_ranks());

    // Cross-world restore pre-pass: a snapshot written under a different
    // partition layout reshards onto the current live set before training.
    if let Some(snap) = store.load_latest()? {
        if let Some(layout) = &snap.layout {
            if layout.assignment.len() == nseq && layout.assignment != assignment {
                let outcome = reshard_exchange(&group, &layout.assignment, &assignment);
                assert!(
                    tokens_conserved(nseq, &outcome.held),
                    "cross-world restore reshard lost or duplicated tokens"
                );
                if recorder.enabled() {
                    recorder.event(Event::reshard(
                        group.generation(),
                        group.live_world(),
                        nseq,
                        outcome.moved,
                        outcome.reloaded,
                    ));
                }
            }
        }
    }

    let mut restarts = 0usize;
    let mut attempts_this_gen = 0usize;
    let mut shrinks = 0usize;
    let mut lost_ranks: Vec<usize> = Vec::new();
    let mut resumed_epochs: Vec<usize> = Vec::new();
    // Closed straggler loop: watchdog reports and the per-rank delay
    // ledger feed EWMA step-time estimates; persistent skew triggers a
    // token-conserving reshard away from the slow rank between attempts.
    let mut ledger = StepLedger::new(world);
    let mut rebalancer = RebalanceController::new(RebalancePolicy::default());
    let mut stragglers_flagged = 0usize;
    let mut rebalances = 0usize;
    loop {
        let start = store.load_latest()?;
        if restarts > 0 {
            let epoch = start.as_ref().map(|s| s.state.epoch).unwrap_or(0);
            resumed_epochs.push(epoch);
            if recorder.enabled() {
                recorder.event(Event::restore(epoch));
            }
        }
        let assignment_ref = &assignment;
        let results = group.try_run(|comm| {
            run_rank_elastic(
                &comm,
                &prepared,
                cfg,
                &factory,
                start.as_ref(),
                store,
                &recorder,
                assignment_ref,
                lose,
            )
        });
        // Straggler watchdog over the delay ledger of the attempt that
        // just finished: the reports (and every live rank's injected
        // delay) feed the step ledger so detection drives the rebalance
        // policy instead of being discarded.
        let reports = group.detect_stragglers(policy.straggler_multiple);
        stragglers_flagged += reports.len();
        for (g, d) in group.injected_delays() {
            if !reports.iter().any(|r| r.rank == g) {
                ledger.observe(g, d);
            }
        }
        ledger.observe_stragglers(&reports);
        if results.iter().all(Result::is_ok) {
            group.rollup_generation();
            let mut out = results
                .into_iter()
                .next()
                .expect("world >= 1")
                .expect("checked all ranks ok")?;
            let stats = group.stats();
            out.grad_bytes = stats.bytes_sent();
            out.all_reduces = stats.ops(CollectiveKind::AllReduce);
            return Ok(ElasticStats {
                stats: out,
                restarts,
                resumed_epochs,
                shrinks,
                lost_ranks,
                initial_world: world,
                final_world: group.live_world(),
                generation: group.generation(),
                stragglers_flagged,
                rebalances,
            });
        }
        restarts += 1;
        attempts_this_gen += 1;
        let crashed: Option<usize> = results
            .iter()
            .filter_map(|r| match r {
                Err(RankFailure::Crash(c)) => Some(c.rank),
                _ => None,
            })
            .next();
        if attempts_this_gen > policy.max_retries {
            // Ladder exhausted for this generation: shrink or give up.
            let failure = results
                .into_iter()
                .filter_map(Result::err)
                .next()
                .map(|f| f.to_string())
                .unwrap_or_else(|| "unknown rank failure".to_string());
            let Some(rank) = crashed else {
                return Err(io::Error::other(format!(
                    "elastic run failed {restarts} times with no identifiable \
                     crashed rank: {failure}"
                )));
            };
            if !policy.allow_shrink {
                return Err(io::Error::other(format!(
                    "rank {rank} keeps failing and shrink is disabled \
                     (after {restarts} restarts): {failure}"
                )));
            }
            let floor = policy.min_ranks.max(1);
            if group.live_world() <= floor {
                return Err(io::Error::other(format!(
                    "cannot shrink below min_ranks = {floor} \
                     (live world {}, rank {rank} lost): {failure}",
                    group.live_world()
                )));
            }
            if recorder.enabled() {
                recorder.event(Event::rank_lost(rank, group.generation(), restarts));
            }
            group.remove_rank(rank).map_err(io::Error::other)?;
            shrinks += 1;
            lost_ranks.push(rank);
            let new_assignment =
                cluster_token_assignment(&seq_clusters, group.membership().live_ranks());
            let outcome = reshard_exchange(&group, &assignment, &new_assignment);
            assert!(
                tokens_conserved(nseq, &outcome.held),
                "shrink reshard lost or duplicated tokens"
            );
            if recorder.enabled() {
                recorder.event(Event::reshard(
                    group.generation(),
                    group.live_world(),
                    nseq,
                    outcome.moved,
                    outcome.reloaded,
                ));
            }
            assignment = new_assignment;
            attempts_this_gen = 0;
        } else if rebalancer.observe(ledger.imbalance(group.membership().live_ranks())) {
            // Plain retry with persistent measured skew: shift tokens away
            // from the slow rank before the next attempt (token-conserving,
            // executed online over the live group).
            let live: Vec<usize> = group.membership().live_ranks().to_vec();
            let counts = rank_counts(&assignment, &live);
            let per_token = ledger.per_token_seconds(&live, &counts);
            let weights: Vec<f64> =
                per_token.iter().map(|&t| 1.0 / t.max(f64::EPSILON)).collect();
            let imbalance_before = ledger.imbalance(&live);
            let new_assignment = weighted_token_assignment(&seq_clusters, &live, &weights);
            let outcome = reshard_exchange(&group, &assignment, &new_assignment);
            assert!(
                tokens_conserved(nseq, &outcome.held),
                "rebalance reshard lost or duplicated tokens"
            );
            if recorder.enabled() {
                let after =
                    predicted_imbalance(&per_token, &rank_counts(&new_assignment, &live));
                recorder.event(Event::rebalance(
                    resumed_epochs.last().copied().unwrap_or(0),
                    group.generation(),
                    outcome.moved,
                    imbalance_before,
                    after,
                ));
            }
            assignment = new_assignment;
            rebalances += 1;
            rebalancer.reset();
        }
        let wait = policy.backoff_s(restarts);
        if wait > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(wait));
        }
    }
}

/// One rank of the elastic loop. Trains only the tokens `assignment` gives
/// this rank's *global* id; the per-epoch loss all-reduce and gradient
/// averaging span the dense live group, and dense rank 0 publishes the
/// snapshot (with the partition layout attached) after every epoch.
#[allow(clippy::too_many_arguments)]
fn run_rank_elastic<F>(
    comm: &Communicator,
    prepared: &Prepared,
    cfg: TrainConfig,
    factory: &F,
    start: Option<&Snapshot>,
    store: &CheckpointStore,
    recorder: &RecorderHandle,
    assignment: &[u32],
    lose: Option<RankLoss>,
) -> io::Result<DistributedStats>
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    let global = comm.global_rank();
    let train_pos = prepared.train_positions();
    let nseq = prepared.sequences.len();
    let mine: Vec<usize> =
        (0..nseq).filter(|&t| assignment[t] as usize == global).collect();
    // Lock-step bound: every rank walks the same number of steps (the
    // largest shard size) so the collectives stay aligned; ranks past
    // their own shard contribute zero gradients.
    let maxg = assignment.iter().copied().max().unwrap_or(0) as usize;
    let mut counts = vec![0usize; maxg + 1];
    for &a in assignment {
        counts[a as usize] += 1;
    }
    let steps = counts.into_iter().max().unwrap_or(0);
    let mut model = factory();
    let mut opt = Adam::with_lr(cfg.lr);
    let mut start_epoch = 0usize;
    let mut epoch_losses: Vec<f32> = Vec::new();
    if let Some(snap) = start {
        // Parameters are replicated (canonical order), so the same snapshot
        // restores every rank identically — at any world size.
        crate::resume::restore_model(model.as_mut(), &mut opt, snap)?;
        start_epoch = snap.state.epoch;
        epoch_losses = snap.state.epoch_losses.iter().map(|&l| l as f32).collect();
    }
    model.set_training(true);
    for epoch in start_epoch..cfg.epochs {
        if let Some(l) = lose {
            if l.rank == global && epoch >= l.epoch {
                // Permanent loss: refires on every retry while this rank is
                // still in the group, forcing the ladder to shrink.
                if recorder.enabled() {
                    recorder.event(Event::rank_crash(l.rank, u64::MAX));
                }
                std::panic::panic_any(RankCrash { rank: l.rank, op: u64::MAX });
            }
        }
        let mut total_loss = 0.0f32;
        let mut counted = 0usize;
        for step in 0..steps {
            if step < mine.len() {
                let idx = mine[step];
                let seq = &prepared.sequences[idx];
                let batch =
                    SequenceBatch { features: &seq.features, graph: &seq.graph, spd: None };
                let pattern = Pattern::Sparse(&seq.mask);
                let logits = model.forward(&batch, pattern);
                let (l, dlogits) =
                    loss::masked_softmax_cross_entropy(&logits, &seq.labels, &train_pos[idx]);
                model.backward(&batch, pattern, &dlogits);
                total_loss += l;
                counted += 1;
            }
            // Mean over the *live* world: gradient averaging rescales to
            // the surviving rank count automatically after a shrink. With
            // overlap on, later parameters' reduces fly while earlier sums
            // are folded.
            all_reduce_mean_params(comm, &mut model.params_mut());
            opt.step(&mut model.params_mut());
        }
        let sums = comm.all_reduce_sum(vec![total_loss, counted as f32]);
        epoch_losses.push(if sums[1] > 0.0 { sums[0] / sums[1] } else { 0.0 });
        if comm.rank() == 0 {
            let mut state = TrainerState::basic(epoch + 1, opt.steps());
            state.rng_streams = model.rng_state();
            state.epoch_losses = epoch_losses.iter().map(|&l| l as f64).collect();
            let snap = crate::resume::capture_model(model.as_mut(), state).with_layout(
                PartitionLayout {
                    world: comm.world_size(),
                    generation: comm.generation(),
                    assignment: assignment.to_vec(),
                },
            );
            store.save(&snap)?;
            if recorder.enabled() {
                recorder.event(Event::snapshot(epoch + 1));
            }
        }
    }
    Ok(DistributedStats {
        epoch_losses,
        grad_bytes: 0,
        all_reduces: 0,
        world: comm.world_size(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_loss_parses_rank_at_epoch() {
        let l: RankLoss = "1@3".parse().unwrap();
        assert_eq!(l, RankLoss { rank: 1, epoch: 3 });
        let l: RankLoss = " 2 @ 0 ".parse().unwrap();
        assert_eq!(l, RankLoss { rank: 2, epoch: 0 });
        assert!("nope".parse::<RankLoss>().is_err());
        assert!("a@1".parse::<RankLoss>().is_err());
        assert!("1@b".parse::<RankLoss>().is_err());
    }

    #[test]
    fn assignment_is_balanced_and_cluster_contiguous() {
        // 10 tokens, clusters [0,0,0,1,1,1,2,2,2,2], live global ranks {0,2,3}.
        let clusters = vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 2];
        let live = vec![0usize, 2, 3];
        let a = cluster_token_assignment(&clusters, &live);
        assert_eq!(a.len(), 10);
        // Balanced: 10 = 4 + 3 + 3 in live order.
        let count = |g: u32| a.iter().filter(|&&x| x == g).count();
        assert_eq!(count(0), 4);
        assert_eq!(count(2), 3);
        assert_eq!(count(3), 3);
        // Only live ranks are targeted.
        assert!(a.iter().all(|&x| live.contains(&(x as usize))));
        // Stable sort keeps cluster 0's tokens (0,1,2) together on rank 0.
        assert_eq!(&a[0..3], &[0, 0, 0]);
    }

    #[test]
    fn conservation_detects_loss_and_duplication() {
        assert!(tokens_conserved(4, &[vec![0, 2], vec![1, 3]]));
        assert!(!tokens_conserved(4, &[vec![0, 2], vec![1]]), "token 3 lost");
        assert!(!tokens_conserved(4, &[vec![0, 2], vec![1, 2, 3]]), "token 2 duplicated");
        assert!(!tokens_conserved(2, &[vec![0, 1, 2]]), "token out of range");
        assert!(tokens_conserved(0, &[]));
    }

    #[test]
    fn reshard_moves_shards_to_their_new_owners() {
        let mut group = DeviceGroup::new(4);
        // Initial even split of 8 tokens over 4 ranks.
        let clusters: Vec<u32> = (0..8).collect();
        let old = cluster_token_assignment(&clusters, group.membership().live_ranks());
        group.remove_rank(1).unwrap();
        let new = cluster_token_assignment(&clusters, group.membership().live_ranks());
        let out = reshard_exchange(&group, &old, &new);
        assert!(tokens_conserved(8, &out.held));
        // Rank 1's two tokens had a dead owner → re-materialised.
        assert_eq!(out.reloaded, 2);
        // held is in dense order over live ranks {0, 2, 3}; each rank holds
        // exactly the tokens `new` assigns to its global id.
        for (dense, held) in out.held.iter().enumerate() {
            let g = group.membership().global_of(dense) as u32;
            let expect: Vec<u32> =
                (0..8).filter(|&t| new[t as usize] == g).collect();
            assert_eq!(held, &expect, "dense rank {dense} (global {g})");
        }
    }
}
