//! End-to-end distributed training over simulated devices.
//!
//! Combines the two parallel axes of the paper's runtime:
//!
//! * **sequence/graph parallelism** inside attention (see [`crate::parallel`]
//!   — all-to-all head/sequence relayouts), and
//! * **data parallelism across sequences** for the parameter path: each rank
//!   trains on its share of the sequence stream and gradients are averaged
//!   with an all-reduce before every optimizer step, keeping replicas
//!   bit-synchronised.
//!
//! [`train_data_parallel`] runs the full loop on a [`DeviceGroup`] with real
//! gradient traffic; its parity with single-device training is asserted by
//! the tests and the `distributed_scaling` example.

use crate::config::TrainConfig;
use crate::parallel::all_reduce_mean;
use crate::preprocess::prepare_node_dataset;
use torchgt_comm::{CollectiveKind, Communicator, DeviceGroup};
use torchgt_graph::NodeDataset;
use torchgt_model::{loss, Pattern, SequenceBatch, SequenceModel};
use torchgt_tensor::{Adam, Optimizer, Tensor};

torchgt_compat::json_struct! {
    /// Result of a distributed run (identical on every rank; rank 0's copy is
    /// returned).
    #[derive(Clone, Debug)]
    pub struct DistributedStats {
        /// Mean training loss per epoch.
        pub epoch_losses: Vec<f32>,
        /// Total bytes moved by gradient all-reduces.
        pub grad_bytes: u64,
        /// All-reduce invocations per rank.
        pub all_reduces: u64,
        /// World size the run used.
        pub world: usize,
    }
}

/// Train `cfg.epochs` epochs of the node-level task across `world` simulated
/// ranks with data-parallel gradients. `factory` builds one identically-
/// seeded model per rank (replicas must start equal for the parity
/// guarantee).
pub fn train_data_parallel<F>(
    dataset: &NodeDataset,
    cfg: TrainConfig,
    world: usize,
    factory: F,
) -> DistributedStats
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    assert!(world >= 1);
    let group = DeviceGroup::new(world);
    let mut results = group.run(|comm| run_rank(&comm, dataset, cfg, &factory));
    let stats = group.stats();
    let mut out = results.swap_remove(0);
    out.grad_bytes = stats.bytes_sent();
    out.all_reduces = stats.ops(CollectiveKind::AllReduce);
    out
}

fn run_rank<F>(
    comm: &Communicator,
    dataset: &NodeDataset,
    cfg: TrainConfig,
    factory: &F,
) -> DistributedStats
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    let world = comm.world_size();
    // Every rank prepares identically (deterministic pipeline).
    let prepared = prepare_node_dataset(dataset, cfg.seq_len, false, 1, cfg.seed);
    let train_pos = prepared.train_positions();
    let mut model = factory();
    model.set_training(true);
    let mut opt = Adam::with_lr(cfg.lr);
    let nseq = prepared.sequences.len();
    let steps = nseq.div_ceil(world);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut total_loss = 0.0f32;
        let mut counted = 0usize;
        for step in 0..steps {
            let idx = step * world + comm.rank();
            let has_work = idx < nseq;
            if has_work {
                let seq = &prepared.sequences[idx];
                let batch =
                    SequenceBatch { features: &seq.features, graph: &seq.graph, spd: None };
                let pattern = Pattern::Sparse(&seq.mask);
                let logits = model.forward(&batch, pattern);
                let (l, dlogits) =
                    loss::masked_softmax_cross_entropy(&logits, &seq.labels, &train_pos[idx]);
                model.backward(&batch, pattern, &dlogits);
                total_loss += l;
                counted += 1;
            }
            // Gradient all-reduce: idle ranks contribute zeros so the
            // collective stays aligned.
            for p in model.params_mut() {
                let averaged = all_reduce_mean(comm, &p.grad);
                p.grad = averaged;
            }
            opt.step(&mut model.params_mut());
        }
        // Average the loss across ranks for reporting.
        let sums = comm.all_reduce_sum(vec![total_loss, counted as f32]);
        epoch_losses.push(if sums[1] > 0.0 { sums[0] / sums[1] } else { 0.0 });
    }
    let _ = Tensor::zeros(0, 0);
    DistributedStats { epoch_losses, grad_bytes: 0, all_reduces: 0, world }
}

/// Single-process reference with the same update semantics as
/// [`train_data_parallel`]: `world` sequences per step, mean gradient, one
/// optimizer step. Used by parity tests.
pub fn train_reference(
    dataset: &NodeDataset,
    cfg: TrainConfig,
    world: usize,
    mut model: Box<dyn SequenceModel>,
) -> Vec<f32> {
    let prepared = prepare_node_dataset(dataset, cfg.seq_len, false, 1, cfg.seed);
    let train_pos = prepared.train_positions();
    model.set_training(true);
    let mut opt = Adam::with_lr(cfg.lr);
    let nseq = prepared.sequences.len();
    let steps = nseq.div_ceil(world);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut total_loss = 0.0f32;
        let mut counted = 0usize;
        for step in 0..steps {
            // Accumulate the "world" sequences of this step, then average.
            for r in 0..world {
                let idx = step * world + r;
                if idx >= nseq {
                    continue;
                }
                let seq = &prepared.sequences[idx];
                let batch =
                    SequenceBatch { features: &seq.features, graph: &seq.graph, spd: None };
                let pattern = Pattern::Sparse(&seq.mask);
                let logits = model.forward(&batch, pattern);
                let (l, dlogits) =
                    loss::masked_softmax_cross_entropy(&logits, &seq.labels, &train_pos[idx]);
                model.backward(&batch, pattern, &dlogits);
                total_loss += l;
                counted += 1;
            }
            for p in model.params_mut() {
                torchgt_tensor::ops::scale_inplace(&mut p.grad, 1.0 / world as f32);
            }
            opt.step(&mut model.params_mut());
        }
        epoch_losses.push(if counted > 0 { total_loss / counted as f32 } else { 0.0 });
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Method;
    use torchgt_graph::DatasetKind;
    use torchgt_model::{Gt, GtConfig};

    fn dataset() -> NodeDataset {
        DatasetKind::OgbnArxiv.generate_node(0.002, 19)
    }

    fn cfg(epochs: usize) -> TrainConfig {
        let mut c = TrainConfig::new(Method::GpSparse, 128, epochs);
        c.lr = 2e-3;
        c.seed = 7;
        c
    }

    fn factory(d: &NodeDataset) -> impl Fn() -> Box<dyn SequenceModel> + Sync + '_ {
        move || Box::new(Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 11))
    }

    #[test]
    fn distributed_matches_reference_losses() {
        let d = dataset();
        let world = 2;
        let dist = train_data_parallel(&d, cfg(2), world, factory(&d));
        let reference = train_reference(
            &d,
            cfg(2),
            world,
            Box::new(Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 11)),
        );
        assert_eq!(dist.epoch_losses.len(), reference.len());
        for (a, b) in dist.epoch_losses.iter().zip(&reference) {
            assert!(
                (a - b).abs() < 5e-3,
                "distributed {a} vs reference {b} (losses {:?} vs {:?})",
                dist.epoch_losses,
                reference
            );
        }
    }

    #[test]
    fn gradient_traffic_is_accounted() {
        let d = dataset();
        let dist = train_data_parallel(&d, cfg(1), 2, factory(&d));
        assert!(dist.grad_bytes > 0, "all-reduce must move bytes");
        assert!(dist.all_reduces > 0);
        assert_eq!(dist.world, 2);
    }

    #[test]
    fn world_one_equals_reference_exactly() {
        let d = dataset();
        let dist = train_data_parallel(&d, cfg(2), 1, factory(&d));
        let reference = train_reference(
            &d,
            cfg(2),
            1,
            Box::new(Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 11)),
        );
        for (a, b) in dist.epoch_losses.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn losses_decrease_across_epochs() {
        let d = dataset();
        let dist = train_data_parallel(&d, cfg(4), 4, factory(&d));
        assert!(
            dist.epoch_losses.last().unwrap() < dist.epoch_losses.first().unwrap(),
            "{:?}",
            dist.epoch_losses
        );
    }
}
