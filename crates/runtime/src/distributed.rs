//! End-to-end distributed training over simulated devices.
//!
//! Combines the two parallel axes of the paper's runtime:
//!
//! * **sequence/graph parallelism** inside attention (see [`crate::parallel`]
//!   — all-to-all head/sequence relayouts), and
//! * **data parallelism across sequences** for the parameter path: each rank
//!   trains on its share of the sequence stream and gradients are averaged
//!   with an all-reduce before every optimizer step, keeping replicas
//!   bit-synchronised.
//!
//! [`train_data_parallel`] runs the full loop on a [`DeviceGroup`] with real
//! gradient traffic; its parity with single-device training is asserted by
//! the tests and the `distributed_scaling` example.
//!
//! [`train_data_parallel_resilient`] is the fault-tolerant variant: it runs
//! the same loop under an injected [`FaultPlan`], with rank 0 publishing a
//! full-state snapshot after every epoch. When an injected crash tears the
//! group down (the whole-group abort semantics of a real NCCL job), the
//! driver restores every rank from the last snapshot and re-enters the
//! epoch loop — the stitched loss history is bit-identical to an
//! uninterrupted run, because delay/drop faults never perturb delivered
//! data and the snapshot carries the complete optimizer/PRNG state.

use crate::config::TrainConfig;
use crate::parallel::all_reduce_mean_params;
use crate::preprocess::prepare_node_dataset;
use std::io;
use torchgt_ckpt::{CheckpointStore, Snapshot, TrainerState};
use torchgt_comm::{CollectiveKind, Communicator, DeviceGroup, FaultPlan};
use torchgt_graph::NodeDataset;
use torchgt_model::{loss, Pattern, SequenceBatch, SequenceModel};
use torchgt_obs::{Event, RecorderHandle};
use torchgt_tensor::{Adam, Optimizer, Tensor};

torchgt_compat::json_struct! {
    /// Result of a distributed run (identical on every rank; rank 0's copy is
    /// returned).
    #[derive(Clone, Debug)]
    pub struct DistributedStats {
        /// Mean training loss per epoch.
        pub epoch_losses: Vec<f32>,
        /// Total bytes moved by gradient all-reduces.
        pub grad_bytes: u64,
        /// All-reduce invocations per rank.
        pub all_reduces: u64,
        /// World size the run used.
        pub world: usize,
    }
}

/// Train `cfg.epochs` epochs of the node-level task across `world` simulated
/// ranks with data-parallel gradients. `factory` builds one identically-
/// seeded model per rank (replicas must start equal for the parity
/// guarantee).
pub fn train_data_parallel<F>(
    dataset: &NodeDataset,
    cfg: TrainConfig,
    world: usize,
    factory: F,
) -> DistributedStats
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    assert!(world >= 1);
    let group = DeviceGroup::new(world);
    let mut results = group.run(|comm| run_rank(&comm, dataset, cfg, &factory));
    let stats = group.stats();
    let mut out = results.swap_remove(0);
    out.grad_bytes = stats.bytes_sent();
    out.all_reduces = stats.ops(CollectiveKind::AllReduce);
    out
}

fn run_rank<F>(
    comm: &Communicator,
    dataset: &NodeDataset,
    cfg: TrainConfig,
    factory: &F,
) -> DistributedStats
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    let world = comm.world_size();
    // Every rank prepares identically (deterministic pipeline).
    let prepared = prepare_node_dataset(dataset, cfg.seq_len, false, 1, cfg.seed);
    let train_pos = prepared.train_positions();
    let mut model = factory();
    model.set_training(true);
    let mut opt = Adam::with_lr(cfg.lr);
    let nseq = prepared.sequences.len();
    let steps = nseq.div_ceil(world);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut total_loss = 0.0f32;
        let mut counted = 0usize;
        for step in 0..steps {
            let idx = step * world + comm.rank();
            let has_work = idx < nseq;
            if has_work {
                let seq = &prepared.sequences[idx];
                let batch =
                    SequenceBatch { features: &seq.features, graph: &seq.graph, spd: None };
                let pattern = Pattern::Sparse(&seq.mask);
                let logits = model.forward(&batch, pattern);
                let (l, dlogits) =
                    loss::masked_softmax_cross_entropy(&logits, &seq.labels, &train_pos[idx]);
                model.backward(&batch, pattern, &dlogits);
                total_loss += l;
                counted += 1;
            }
            // Gradient all-reduce: idle ranks contribute zeros so the
            // collective stays aligned. With overlap on, every parameter's
            // reduce is in flight before the first is awaited.
            all_reduce_mean_params(comm, &mut model.params_mut());
            opt.step(&mut model.params_mut());
        }
        // Average the loss across ranks for reporting.
        let sums = comm.all_reduce_sum(vec![total_loss, counted as f32]);
        epoch_losses.push(if sums[1] > 0.0 { sums[0] / sums[1] } else { 0.0 });
    }
    let _ = Tensor::zeros(0, 0);
    DistributedStats { epoch_losses, grad_bytes: 0, all_reduces: 0, world }
}

torchgt_compat::json_struct! {
    /// Result of a fault-tolerant distributed run.
    #[derive(Clone, Debug)]
    pub struct ResilientStats {
        /// The distributed stats, with `epoch_losses` stitched across
        /// crash/restore cycles (covers every epoch exactly once).
        pub stats: DistributedStats,
        /// How many times the group was torn down and restarted.
        pub restarts: usize,
        /// The epoch each restart resumed from (0 = cold restart because no
        /// snapshot existed yet).
        pub resumed_epochs: Vec<usize>,
    }
}

/// Fault-tolerant [`train_data_parallel`]: trains under an injected
/// [`FaultPlan`], checkpointing full state (parameters, Adam moments and
/// step counter, PRNG cursors, loss ledger) into `store` after every epoch
/// on rank 0. An injected rank crash aborts the whole group; the driver
/// then restores from the latest snapshot and re-runs the remaining epochs
/// on the same group (the crash is one-shot, so the recovery attempt runs
/// clean). Crash, snapshot and restore transitions are all recorded as
/// events on `recorder`.
pub fn train_data_parallel_resilient<F>(
    dataset: &NodeDataset,
    cfg: TrainConfig,
    world: usize,
    factory: F,
    plan: FaultPlan,
    store: &CheckpointStore,
    recorder: RecorderHandle,
) -> io::Result<ResilientStats>
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    assert!(world >= 1);
    // The retry budget comes from the config's RecoveryPolicy (default 4,
    // matching the former hardcoded bound): the injected crash fires at
    // most once, so two attempts normally suffice.
    let policy = cfg.recovery;
    let mut group = DeviceGroup::with_recorder(world, recorder.clone());
    group.set_fault_plan(Some(plan));
    let mut restarts = 0usize;
    let mut resumed_epochs = Vec::new();
    loop {
        let start = store.load_latest()?;
        if restarts > 0 {
            let epoch = start.as_ref().map(|s| s.state.epoch).unwrap_or(0);
            resumed_epochs.push(epoch);
            if recorder.enabled() {
                recorder.event(Event::restore(epoch));
            }
        }
        let results = group.try_run(|comm| {
            run_rank_resilient(&comm, dataset, cfg, &factory, start.as_ref(), store, &recorder)
        });
        if results.iter().all(Result::is_ok) {
            let mut out = results
                .into_iter()
                .next()
                .expect("world >= 1")
                .expect("checked all ranks ok")?;
            let stats = group.stats();
            out.grad_bytes = stats.bytes_sent();
            out.all_reduces = stats.ops(CollectiveKind::AllReduce);
            return Ok(ResilientStats { stats: out, restarts, resumed_epochs });
        }
        restarts += 1;
        if restarts >= policy.max_retries {
            let failure = results
                .into_iter()
                .filter_map(Result::err)
                .next()
                .map(|f| f.to_string())
                .unwrap_or_else(|| "unknown rank failure".to_string());
            return Err(io::Error::other(format!(
                "distributed run did not recover after {restarts} restarts: {failure}"
            )));
        }
        let wait = policy.backoff_s(restarts);
        if wait > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(wait));
        }
    }
}

/// One rank of the resilient loop: restore from `start` if present, train
/// the remaining epochs, and (on rank 0) snapshot after each one.
fn run_rank_resilient<F>(
    comm: &Communicator,
    dataset: &NodeDataset,
    cfg: TrainConfig,
    factory: &F,
    start: Option<&Snapshot>,
    store: &CheckpointStore,
    recorder: &RecorderHandle,
) -> io::Result<DistributedStats>
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    let world = comm.world_size();
    let prepared = prepare_node_dataset(dataset, cfg.seq_len, false, 1, cfg.seed);
    let train_pos = prepared.train_positions();
    let mut model = factory();
    let mut opt = Adam::with_lr(cfg.lr);
    let mut start_epoch = 0usize;
    let mut epoch_losses: Vec<f32> = Vec::new();
    if let Some(snap) = start {
        // Every rank restores the same snapshot, so the replicas re-enter
        // the loop identical — the data-parallel parity invariant holds
        // across the restart.
        crate::resume::restore_model(model.as_mut(), &mut opt, snap)?;
        start_epoch = snap.state.epoch;
        epoch_losses = snap.state.epoch_losses.iter().map(|&l| l as f32).collect();
    }
    model.set_training(true);
    let nseq = prepared.sequences.len();
    let steps = nseq.div_ceil(world);
    for epoch in start_epoch..cfg.epochs {
        let mut total_loss = 0.0f32;
        let mut counted = 0usize;
        for step in 0..steps {
            let idx = step * world + comm.rank();
            if idx < nseq {
                let seq = &prepared.sequences[idx];
                let batch =
                    SequenceBatch { features: &seq.features, graph: &seq.graph, spd: None };
                let pattern = Pattern::Sparse(&seq.mask);
                let logits = model.forward(&batch, pattern);
                let (l, dlogits) =
                    loss::masked_softmax_cross_entropy(&logits, &seq.labels, &train_pos[idx]);
                model.backward(&batch, pattern, &dlogits);
                total_loss += l;
                counted += 1;
            }
            all_reduce_mean_params(comm, &mut model.params_mut());
            opt.step(&mut model.params_mut());
        }
        let sums = comm.all_reduce_sum(vec![total_loss, counted as f32]);
        epoch_losses.push(if sums[1] > 0.0 { sums[0] / sums[1] } else { 0.0 });
        if comm.rank() == 0 {
            let mut state = TrainerState::basic(epoch + 1, opt.steps());
            state.rng_streams = model.rng_state();
            // f32 → f64 widening is exact, so the ledger survives the
            // manifest round-trip bit-for-bit.
            state.epoch_losses = epoch_losses.iter().map(|&l| l as f64).collect();
            let snap = crate::resume::capture_model(model.as_mut(), state);
            store.save(&snap)?;
            if recorder.enabled() {
                recorder.event(Event::snapshot(epoch + 1));
            }
        }
    }
    Ok(DistributedStats { epoch_losses, grad_bytes: 0, all_reduces: 0, world })
}

/// Single-process reference with the same update semantics as
/// [`train_data_parallel`]: `world` sequences per step, mean gradient, one
/// optimizer step. Used by parity tests.
pub fn train_reference(
    dataset: &NodeDataset,
    cfg: TrainConfig,
    world: usize,
    mut model: Box<dyn SequenceModel>,
) -> Vec<f32> {
    let prepared = prepare_node_dataset(dataset, cfg.seq_len, false, 1, cfg.seed);
    let train_pos = prepared.train_positions();
    model.set_training(true);
    let mut opt = Adam::with_lr(cfg.lr);
    let nseq = prepared.sequences.len();
    let steps = nseq.div_ceil(world);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut total_loss = 0.0f32;
        let mut counted = 0usize;
        for step in 0..steps {
            // Accumulate the "world" sequences of this step, then average.
            for r in 0..world {
                let idx = step * world + r;
                if idx >= nseq {
                    continue;
                }
                let seq = &prepared.sequences[idx];
                let batch =
                    SequenceBatch { features: &seq.features, graph: &seq.graph, spd: None };
                let pattern = Pattern::Sparse(&seq.mask);
                let logits = model.forward(&batch, pattern);
                let (l, dlogits) =
                    loss::masked_softmax_cross_entropy(&logits, &seq.labels, &train_pos[idx]);
                model.backward(&batch, pattern, &dlogits);
                total_loss += l;
                counted += 1;
            }
            for p in model.params_mut() {
                torchgt_tensor::ops::scale_inplace(&mut p.grad, 1.0 / world as f32);
            }
            opt.step(&mut model.params_mut());
        }
        epoch_losses.push(if counted > 0 { total_loss / counted as f32 } else { 0.0 });
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Method;
    use torchgt_graph::DatasetKind;
    use torchgt_model::{Gt, GtConfig};

    fn dataset() -> NodeDataset {
        DatasetKind::OgbnArxiv.generate_node(0.002, 19)
    }

    fn cfg(epochs: usize) -> TrainConfig {
        let mut c = TrainConfig::new(Method::GpSparse, 128, epochs);
        c.lr = 2e-3;
        c.seed = 7;
        c
    }

    fn factory(d: &NodeDataset) -> impl Fn() -> Box<dyn SequenceModel> + Sync + '_ {
        move || Box::new(Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 11))
    }

    #[test]
    fn distributed_matches_reference_losses() {
        let d = dataset();
        let world = 2;
        let dist = train_data_parallel(&d, cfg(2), world, factory(&d));
        let reference = train_reference(
            &d,
            cfg(2),
            world,
            Box::new(Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 11)),
        );
        assert_eq!(dist.epoch_losses.len(), reference.len());
        for (a, b) in dist.epoch_losses.iter().zip(&reference) {
            assert!(
                (a - b).abs() < 5e-3,
                "distributed {a} vs reference {b} (losses {:?} vs {:?})",
                dist.epoch_losses,
                reference
            );
        }
    }

    #[test]
    fn gradient_traffic_is_accounted() {
        let d = dataset();
        let dist = train_data_parallel(&d, cfg(1), 2, factory(&d));
        assert!(dist.grad_bytes > 0, "all-reduce must move bytes");
        assert!(dist.all_reduces > 0);
        assert_eq!(dist.world, 2);
    }

    #[test]
    fn world_one_equals_reference_exactly() {
        let d = dataset();
        let dist = train_data_parallel(&d, cfg(2), 1, factory(&d));
        let reference = train_reference(
            &d,
            cfg(2),
            1,
            Box::new(Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 11)),
        );
        for (a, b) in dist.epoch_losses.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn losses_decrease_across_epochs() {
        let d = dataset();
        let dist = train_data_parallel(&d, cfg(4), 4, factory(&d));
        assert!(
            dist.epoch_losses.last().unwrap() < dist.epoch_losses.first().unwrap(),
            "{:?}",
            dist.epoch_losses
        );
    }

    #[test]
    fn injected_crash_recovers_from_snapshot_and_matches_clean_run() {
        use std::sync::Arc;
        use torchgt_obs::{Event, MemoryRecorder};
        let d = dataset();
        let world = 2;
        let epochs = 3;
        let clean = train_data_parallel(&d, cfg(epochs), world, factory(&d));

        // Place the crash early in epoch 1 on rank 1: per step every rank
        // runs one all-reduce per parameter (2 collective ticks each — the
        // op itself plus its nested all-gather), plus 2 ticks for the
        // epoch-end loss reduction.
        let mut probe = factory(&d)();
        let nparams = probe.params_mut().len();
        let nseq =
            prepare_node_dataset(&d, cfg(epochs).seq_len, false, 1, cfg(epochs).seed)
                .sequences
                .len();
        let steps = nseq.div_ceil(world);
        let ops_per_epoch = (steps * nparams * 2 + 2) as u64;
        let plan = FaultPlan {
            drop_prob: 0.1,
            max_retries: 2,
            crash: Some(torchgt_comm::CrashPoint { rank: 1, op: ops_per_epoch + 4 }),
            seed: 23,
            ..FaultPlan::default()
        };

        let dir = std::env::temp_dir().join("tgt-dist-resilient");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 2).unwrap();
        let mem = Arc::new(MemoryRecorder::default());
        let res = train_data_parallel_resilient(
            &d,
            cfg(epochs),
            world,
            factory(&d),
            plan,
            &store,
            mem.clone(),
        )
        .unwrap();

        assert_eq!(res.restarts, 1, "exactly one crash/recovery cycle");
        assert_eq!(res.resumed_epochs, vec![1], "resumed from the epoch-1 snapshot");
        assert_eq!(res.stats.epoch_losses.len(), epochs);
        for (i, (a, b)) in res.stats.epoch_losses.iter().zip(&clean.epoch_losses).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "epoch {i}: resilient {a} vs clean {b}");
        }
        assert!(
            res.stats.epoch_losses.last().unwrap() < res.stats.epoch_losses.first().unwrap(),
            "{:?}",
            res.stats.epoch_losses
        );

        let report = mem.report();
        assert_eq!(report.events_of(Event::RANK_CRASH).len(), 1);
        assert_eq!(report.events_of(Event::RESTORE).len(), 1);
        assert!(report.events_of(Event::SNAPSHOT).len() >= epochs, "one snapshot per epoch");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
