//! Training-run configuration.

use torchgt_tensor::Precision;

torchgt_compat::json_enum! {
    /// The training systems compared throughout the paper's evaluation.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub enum Method {
        /// Vanilla graph parallelism with standard dense attention (the paper's
        /// GP-RAW baseline) — materialises `S²` scores, OOMs at scale.
        GpRaw,
        /// Graph parallelism + FlashAttention (GP-FLASH): fully-connected tiled
        /// attention, BF16-only compute, no attention-bias support.
        GpFlash,
        /// Graph parallelism + pure topology-induced sparse attention
        /// (GP-SPARSE): fast but convergence-degraded — no interleaving.
        GpSparse,
        /// The full TorchGT system: Dual-interleaved Attention + Cluster-aware
        /// Graph Parallelism + Elastic Computation Reformation.
        TorchGt,
    }
}

impl Method {
    /// Label used in experiment tables (matches the paper's names).
    pub fn label(self) -> &'static str {
        match self {
            Method::GpRaw => "GP-Raw",
            Method::GpFlash => "GP-Flash",
            Method::GpSparse => "GP-Sparse",
            Method::TorchGt => "TorchGT",
        }
    }

    /// The numeric precision the method trains in. FlashAttention only
    /// supports FP16/BF16 (paper §IV-B), everything else defaults to FP32.
    pub fn default_precision(self) -> Precision {
        match self {
            Method::GpFlash => Precision::Bf16,
            _ => Precision::Fp32,
        }
    }
}

torchgt_compat::json_struct! {
    /// How distributed drivers recover from rank failures: the retry
    /// budget, the seeded backoff schedule, and the shrink threshold of
    /// the escalation ladder (retry → restore-from-snapshot →
    /// shrink-and-continue).
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct RecoveryPolicy {
        /// Restore-and-retry attempts per membership generation before the
        /// driver escalates (shrinks when allowed, fails otherwise).
        pub max_retries: usize,
        /// Base of the exponential backoff slept between attempts, seconds
        /// (0 disables backoff).
        pub backoff_base_s: f64,
        /// Seed of the backoff jitter — the sleep is a pure function of
        /// `(backoff_seed, attempt)`, so a replayed run waits identically.
        pub backoff_seed: u64,
        /// Permit the escalation ladder's final rung: drop the crashed
        /// rank and continue on the survivors.
        pub allow_shrink: bool,
        /// Never shrink below this many live ranks.
        pub min_ranks: usize,
        /// Straggler watchdog threshold: flag a rank whose injected send
        /// delay exceeds this multiple of the live-group median.
        pub straggler_multiple: f64,
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            // Matches the pre-policy hardcoded MAX_ATTEMPTS = 4.
            max_retries: 4,
            backoff_base_s: 0.01,
            backoff_seed: 0,
            allow_shrink: false,
            min_ranks: 1,
            straggler_multiple: 4.0,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before retry `attempt` (1-based), seconds: exponential in
    /// the attempt number with a seeded jitter factor in `[0.5, 1.5)`.
    /// Pure — same `(backoff_seed, attempt)` always gives the same wait.
    /// The formula lives in the shared fault plane
    /// ([`torchgt_faults::backoff_s`], bit-identical to the original
    /// implementation here) so the self-healing disk readers wait exactly
    /// the way rank-recovery retries do.
    pub fn backoff_s(&self, attempt: usize) -> f64 {
        torchgt_faults::backoff_s(self.backoff_seed, self.backoff_base_s, attempt)
    }
}

torchgt_compat::json_struct! {
    /// Configuration of a training run.
    #[derive(Clone, Copy, Debug)]
    pub struct TrainConfig {
        /// Which system executes the run.
        pub method: Method,
        /// Sequence length (tokens per training sequence).
        pub seq_len: usize,
        /// Number of training epochs.
        pub epochs: usize,
        /// Adam learning rate.
        pub lr: f32,
        /// Numeric precision (defaults from the method; override for the
        /// Table VII TorchGT-BF16 run).
        pub precision: Precision,
        /// Dual-interleaved Attention: run one fully-connected pass every
        /// `interleave_period` iterations (0 disables interleaving).
        pub interleave_period: usize,
        /// Number of clusters `k` for the cluster-aware reordering (0 = let the
        /// Auto Tuner pick from the GPU spec).
        pub clusters: usize,
        /// Sub-block dimension `d_b` (0 = Auto Tuner).
        pub sub_block: usize,
        /// Fixed transfer threshold `β_thre`; `None` enables the elastic Auto
        /// Tuner ladder.
        pub beta_thre: Option<f64>,
        /// Linear LR warmup steps followed by inverse-sqrt decay (Graphormer's
        /// recipe); 0 keeps the LR constant.
        pub warmup_steps: usize,
        /// RNG seed.
        pub seed: u64,
        /// Failure-recovery policy for the distributed drivers.
        pub recovery: RecoveryPolicy,
    }
}

impl TrainConfig {
    /// Reasonable defaults for a method.
    pub fn new(method: Method, seq_len: usize, epochs: usize) -> Self {
        Self {
            method,
            seq_len,
            epochs,
            lr: 1e-3,
            precision: method.default_precision(),
            interleave_period: 8,
            clusters: 0,
            sub_block: 0,
            beta_thre: None,
            warmup_steps: 0,
            seed: 1,
            recovery: RecoveryPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Method::GpRaw.label(), "GP-Raw");
        assert_eq!(Method::GpFlash.label(), "GP-Flash");
        assert_eq!(Method::TorchGt.label(), "TorchGT");
    }

    #[test]
    fn flash_defaults_to_bf16() {
        assert_eq!(Method::GpFlash.default_precision(), Precision::Bf16);
        assert_eq!(Method::TorchGt.default_precision(), Precision::Fp32);
        let cfg = TrainConfig::new(Method::GpFlash, 1024, 10);
        assert_eq!(cfg.precision, Precision::Bf16);
    }

    #[test]
    fn method_round_trips_through_json() {
        use torchgt_compat::json::{from_str_as, to_string, ToJson};
        for m in [Method::GpRaw, Method::GpFlash, Method::GpSparse, Method::TorchGt] {
            let text = to_string(&m.to_json()).unwrap();
            let back: Method = from_str_as(&text).unwrap();
            assert_eq!(back, m);
        }
        assert!(from_str_as::<Method>("\"NotAMethod\"").is_err());
    }

    #[test]
    fn train_config_round_trips_through_json() {
        use torchgt_compat::json::{from_str_as, to_string, ToJson};
        let mut cfg = TrainConfig::new(Method::TorchGt, 4096, 12);
        cfg.lr = 2.5e-4;
        cfg.beta_thre = Some(0.125);
        cfg.warmup_steps = 400;
        cfg.seed = 0xDEAD_BEEF_u64;
        let text = to_string(&cfg.to_json()).unwrap();
        let back: TrainConfig = from_str_as(&text).unwrap();
        assert_eq!(back.method, cfg.method);
        assert_eq!(back.seq_len, cfg.seq_len);
        assert_eq!(back.epochs, cfg.epochs);
        assert_eq!(back.lr, cfg.lr);
        assert_eq!(back.precision, cfg.precision);
        assert_eq!(back.interleave_period, cfg.interleave_period);
        assert_eq!(back.clusters, cfg.clusters);
        assert_eq!(back.sub_block, cfg.sub_block);
        assert_eq!(back.beta_thre, cfg.beta_thre);
        assert_eq!(back.warmup_steps, cfg.warmup_steps);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.recovery, cfg.recovery);
    }

    #[test]
    fn recovery_policy_round_trips_and_defaults_match_legacy() {
        use torchgt_compat::json::{from_str_as, to_string, ToJson};
        let p = RecoveryPolicy {
            max_retries: 2,
            backoff_base_s: 0.5,
            backoff_seed: 99,
            allow_shrink: true,
            min_ranks: 3,
            straggler_multiple: 2.5,
        };
        let text = to_string(&p.to_json()).unwrap();
        let back: RecoveryPolicy = from_str_as(&text).unwrap();
        assert_eq!(back, p);
        // The default retry budget matches the previously hardcoded
        // MAX_ATTEMPTS = 4, so existing resilient runs behave identically.
        assert_eq!(RecoveryPolicy::default().max_retries, 4);
        assert!(!RecoveryPolicy::default().allow_shrink);
    }

    #[test]
    fn backoff_is_pure_jittered_and_exponential() {
        let p = RecoveryPolicy { backoff_base_s: 0.1, backoff_seed: 7, ..Default::default() };
        // Pure: same (seed, attempt) → same wait.
        for attempt in 1..8 {
            assert_eq!(p.backoff_s(attempt).to_bits(), p.backoff_s(attempt).to_bits());
        }
        // Jitter stays within [0.5, 1.5) of the exponential envelope and
        // the envelope doubles per attempt.
        for attempt in 1..8usize {
            let envelope = 0.1 * (1u64 << (attempt - 1)) as f64;
            let b = p.backoff_s(attempt);
            assert!(b >= envelope * 0.5 && b < envelope * 1.5, "attempt {attempt}: {b}");
        }
        // Different seeds give different schedules somewhere.
        let q = RecoveryPolicy { backoff_seed: 8, ..p };
        assert!((1..8).any(|a| p.backoff_s(a) != q.backoff_s(a)));
        // Disabled backoff and attempt 0 wait nothing.
        assert_eq!(p.backoff_s(0), 0.0);
        let off = RecoveryPolicy { backoff_base_s: 0.0, ..p };
        assert_eq!(off.backoff_s(3), 0.0);
    }

    #[test]
    fn train_config_none_beta_round_trips() {
        use torchgt_compat::json::{from_str_as, to_string, ToJson};
        let cfg = TrainConfig::new(Method::GpSparse, 512, 3);
        assert!(cfg.beta_thre.is_none());
        let text = to_string(&cfg.to_json()).unwrap();
        assert!(text.contains("\"beta_thre\":null"), "None must encode as null: {text}");
        let back: TrainConfig = from_str_as(&text).unwrap();
        assert!(back.beta_thre.is_none());
    }
}
