//! # torchgt-runtime
//!
//! The TorchGT training runtime: the three techniques of the paper wired
//! into end-to-end training loops.
//!
//! * [`interleave`] — Dual-interleaved Attention scheduler (conditions
//!   C1–C3, periodic fully-connected passes);
//! * [`preprocess`] — cluster partitioning, node reordering, sequence
//!   chunking and mask construction (the runtime level of Figure 4);
//! * [`autotune`] — the elastic `β_thre` controller (LDR ladder) and the
//!   `k`/`d_b` selection (the Auto Tuner of §III-D);
//! * [`parallel`] — cluster-aware graph parallelism over simulated devices
//!   (all-to-all sequence↔head relayouts, distributed attention that matches
//!   the single-device result bit-for-bit up to float tolerance);
//! * [`trainer`] / [`graph_trainer`] — node-level and graph-level training
//!   loops for all four methods (GP-RAW, GP-FLASH, GP-SPARSE, TorchGT) with
//!   per-epoch loss/accuracy and simulated cluster time;
//! * [`resume`] — crash-resume driving on top of `torchgt-ckpt`: periodic
//!   full-state snapshots and bit-exact re-entry into the epoch loop;
//! * [`distributed`] — data-parallel training over simulated ranks, plus a
//!   fault-resilient driver that recovers injected rank crashes from the
//!   latest snapshot;
//! * [`elastic`] — degraded-mode training that survives *permanent* rank
//!   loss: the escalation ladder (retry → restore → shrink-and-continue),
//!   token-conserving resharding, and world-size-independent snapshots;
//! * [`rebalance`] — closed-loop straggler rebalancing: an EWMA
//!   [`StepLedger`] fed by measurements and the watchdog drives a
//!   [`RebalancePolicy`] that reshards tokens away from slow ranks online,
//!   with loss histories bit-identical to the static layout;
//! * [`streaming`] — out-of-core training over `torchgt-data` shard
//!   streams: bounded-memory epochs that are bit-identical to the
//!   in-memory GP-* loops, with dataset identity enforced on restore.

pub mod autotune;
pub mod batched;
pub mod config;
pub mod distributed;
pub mod elastic;
pub mod graph_trainer;
pub mod interleave;
pub mod parallel;
pub mod preprocess;
pub mod rebalance;
pub mod resume;
pub mod streaming;
pub mod trainer;
pub mod traits;

pub use autotune::AutoTuner;
pub use batched::BatchedGraphTrainer;
pub use config::{Method, RecoveryPolicy, TrainConfig};
pub use distributed::{
    train_data_parallel, train_data_parallel_resilient, DistributedStats, ResilientStats,
};
pub use elastic::{
    cluster_token_assignment, reshard_exchange, tokens_conserved, train_data_parallel_elastic,
    ElasticStats, RankLoss, ReshardOutcome,
};
pub use graph_trainer::GraphTrainer;
pub use interleave::{Decision, InterleaveScheduler};
pub use parallel::overlap_enabled;
pub use preprocess::{prepare_node_dataset, Prepared, Sequence};
pub use rebalance::{
    train_data_parallel_rebalance, weighted_token_assignment, RebalanceController,
    RebalancePolicy, RebalanceStats, StepLedger,
};
pub use resume::{run_with_checkpoints, CheckpointOptions, ResumeOutcome};
pub use streaming::StreamingTrainer;
pub use trainer::{EpochStats, NodeTrainer};
pub use traits::Trainer;
