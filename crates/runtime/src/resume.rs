//! Crash-resume driving: periodic snapshots during training and bit-exact
//! re-entry into the epoch loop from the latest snapshot.
//!
//! [`run_with_checkpoints`] wraps any [`Trainer`] with a
//! [`CheckpointStore`]: after every `every` completed epochs it captures a
//! full-state snapshot (model parameters, Adam moments and step counter,
//! dropout PRNG cursors, AutoTuner ladder, interleave cursors) and publishes
//! it atomically. Interrupt the process at any point, start a *fresh*
//! trainer over the same dataset/config with `resume: true`, and the run
//! continues from the last snapshot producing the same per-epoch losses and
//! final parameters as the uninterrupted run — asserted bit-for-bit by
//! `tests/fault_tolerance.rs`.

use crate::trainer::EpochStats;
use crate::traits::Trainer;
use std::io;
use torchgt_ckpt::{CheckpointStore, Snapshot, TrainerState};
use torchgt_model::SequenceModel;
use torchgt_obs::{Event, RecorderHandle};
use torchgt_tensor::Adam;

/// Capture a model + optimizer into a snapshot around a prepared
/// [`TrainerState`] (shared by all trainer implementations).
pub(crate) fn capture_model(model: &mut dyn SequenceModel, state: TrainerState) -> Snapshot {
    let params = model.params_mut();
    let refs: Vec<&torchgt_tensor::param::Param> = params.iter().map(|p| &**p).collect();
    Snapshot::capture(state, &refs)
}

/// Restore the model/optimizer half of a snapshot: parameter values, Adam
/// moments and step counter, dropout PRNG cursors. Validates the PRNG
/// stream count and every tensor shape before mutating anything.
pub(crate) fn restore_model(
    model: &mut dyn SequenceModel,
    opt: &mut Adam,
    snapshot: &Snapshot,
) -> io::Result<()> {
    let live_streams = model.rng_state().len();
    if snapshot.state.rng_streams.len() != live_streams {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "snapshot carries {} PRNG streams, model {} has {}",
                snapshot.state.rng_streams.len(),
                model.name(),
                live_streams
            ),
        ));
    }
    let mut params = model.params_mut();
    snapshot.apply_params(&mut params)?;
    drop(params);
    model.set_rng_state(&snapshot.state.rng_streams);
    opt.set_steps(snapshot.state.opt_steps);
    Ok(())
}

/// How [`run_with_checkpoints`] snapshots and resumes.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointOptions {
    /// Snapshot after every `every` completed epochs (values below 1 are
    /// treated as 1). The final epoch is always snapshotted.
    pub every: usize,
    /// Restore from the store's latest snapshot before training (no-op when
    /// the store is empty — a cold start).
    pub resume: bool,
    /// Simulated crash: stop training (snapshots intact) once this many
    /// epochs have completed. Drives the crash-resume verification gate.
    pub crash_after: Option<usize>,
}

impl Default for CheckpointOptions {
    fn default() -> Self {
        Self { every: 1, resume: false, crash_after: None }
    }
}

/// What a checkpointed run did.
#[derive(Clone, Debug)]
pub struct ResumeOutcome {
    /// The epoch the run resumed from (`None` on a cold start).
    pub resumed_from: Option<usize>,
    /// Stats of the epochs *this* process ran (a resumed run starts at
    /// `resumed_from`, not 0).
    pub stats: Vec<EpochStats>,
    /// True when `crash_after` stopped the run before `cfg.epochs`.
    pub interrupted: bool,
}

/// Train `trainer` to its configured epoch count, snapshotting into `store`
/// as it goes; see [`CheckpointOptions`] for resume and simulated-crash
/// behaviour. Snapshot/restore transitions are recorded as
/// [`Event::SNAPSHOT`] / [`Event::RESTORE`] events on `recorder`.
pub fn run_with_checkpoints(
    trainer: &mut dyn Trainer,
    store: &CheckpointStore,
    opts: &CheckpointOptions,
    recorder: &RecorderHandle,
) -> io::Result<ResumeOutcome> {
    // Attach the run's recorder to the store so the self-healing ladder
    // (IO_RETRY / SNAPSHOT_FALLBACK) surfaces in this run's metrics.
    let store = store.clone().with_recorder(recorder.clone());
    let store = &store;
    let mut resumed_from = None;
    if opts.resume {
        if let Some(snap) = store.load_latest()? {
            trainer.restore(&snap)?;
            resumed_from = Some(trainer.epoch());
            if recorder.enabled() {
                recorder.event(Event::restore(trainer.epoch()));
            }
        }
    }
    let total = trainer.cfg().epochs;
    let every = opts.every.max(1);
    let mut stats = Vec::new();
    let mut nonfinite_restore_spent = false;
    while trainer.epoch() < total {
        let epoch_stats = trainer.train_epoch();
        if !epoch_stats.loss.is_finite() {
            // Numerical-health guard: the epoch is poisoned (NaN/Inf loss),
            // so don't record or snapshot it. Restore from the last good
            // snapshot once; a recurrence means the run itself is diverging
            // and retrying would loop forever.
            if recorder.enabled() {
                recorder.event(Event::loss_nonfinite(epoch_stats.epoch, epoch_stats.loss as f64));
            }
            if !nonfinite_restore_spent {
                if let Some(snap) = store.load_latest()? {
                    nonfinite_restore_spent = true;
                    trainer.restore(&snap)?;
                    if recorder.enabled() {
                        recorder.event(Event::restore(trainer.epoch()));
                    }
                    continue;
                }
            }
            return Err(io::Error::other(format!(
                "non-finite training loss {} at epoch {}",
                epoch_stats.loss, epoch_stats.epoch
            )));
        }
        stats.push(epoch_stats);
        let done = trainer.epoch();
        if done % every == 0 || done == total {
            store.save(&trainer.snapshot())?;
            if recorder.enabled() {
                recorder.event(Event::snapshot(done));
            }
        }
        if opts.crash_after.is_some_and(|at| done >= at) && done < total {
            return Ok(ResumeOutcome { resumed_from, stats, interrupted: true });
        }
    }
    Ok(ResumeOutcome { resumed_from, stats, interrupted: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Method, TrainConfig};
    use crate::trainer::NodeTrainer;
    use std::sync::Arc;
    use torchgt_comm::ClusterTopology;
    use torchgt_graph::{DatasetKind, NodeDataset};
    use torchgt_model::{Graphormer, GraphormerConfig};
    use torchgt_obs::MemoryRecorder;
    use torchgt_perf::{GpuSpec, ModelShape};

    fn dataset() -> NodeDataset {
        DatasetKind::OgbnArxiv.generate_node(0.002, 31)
    }

    fn make_trainer(d: &NodeDataset, epochs: usize) -> NodeTrainer {
        let mut cfg = TrainConfig::new(Method::TorchGt, 128, epochs);
        cfg.interleave_period = 3;
        let mcfg = GraphormerConfig {
            feat_dim: d.feat_dim,
            hidden: 16,
            layers: 2,
            heads: 2,
            ffn_mult: 2,
            out_dim: d.num_classes,
            max_degree: 16,
            max_spd: 4,
            // Dropout on: the PRNG cursors are part of the state under test.
            dropout: 0.1,
        };
        let model = Box::new(Graphormer::new(mcfg, 5));
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        NodeTrainer::new(cfg, d, model, shape, GpuSpec::rtx3090(), ClusterTopology::rtx3090(1))
    }

    #[test]
    fn crash_then_resume_matches_uninterrupted() {
        let d = dataset();
        let dir = std::env::temp_dir().join("tgt-resume-match");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 3).unwrap();
        let noop = torchgt_obs::noop();

        let mut full = make_trainer(&d, 5);
        let full_stats: Vec<_> = full.run();

        let mut first = make_trainer(&d, 5);
        let out = run_with_checkpoints(
            &mut first,
            &store,
            &CheckpointOptions { every: 1, resume: false, crash_after: Some(2) },
            &noop,
        )
        .unwrap();
        assert!(out.interrupted);
        assert_eq!(out.stats.len(), 2);
        drop(first); // the "crashed" process

        let mut second = make_trainer(&d, 5);
        let out = run_with_checkpoints(
            &mut second,
            &store,
            &CheckpointOptions { every: 1, resume: true, crash_after: None },
            &noop,
        )
        .unwrap();
        assert_eq!(out.resumed_from, Some(2));
        assert!(!out.interrupted);
        assert_eq!(out.stats.len(), 3);
        for (a, b) in full_stats[2..].iter().zip(&out.stats) {
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "epoch {} loss", a.epoch);
            assert_eq!(a.test_acc, b.test_acc);
            assert_eq!(a.beta_thre, b.beta_thre);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_and_restore_events_are_recorded() {
        let d = dataset();
        let dir = std::env::temp_dir().join("tgt-resume-events");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 2).unwrap();
        let mem = Arc::new(MemoryRecorder::default());
        let rec: RecorderHandle = mem.clone();
        let mut t = make_trainer(&d, 2);
        run_with_checkpoints(&mut t, &store, &CheckpointOptions::default(), &rec).unwrap();
        let mut t2 = make_trainer(&d, 2);
        run_with_checkpoints(
            &mut t2,
            &store,
            &CheckpointOptions { resume: true, ..CheckpointOptions::default() },
            &rec,
        )
        .unwrap();
        let report = mem.report();
        assert_eq!(report.events_of(Event::SNAPSHOT).len(), 2);
        let restores = report.events_of(Event::RESTORE);
        assert_eq!(restores.len(), 1);
        assert_eq!(restores[0].num("epoch"), Some(2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_into_mismatched_trainer_fails_cleanly() {
        let d = dataset();
        let mut a = make_trainer(&d, 2);
        let snap = {
            let t: &mut dyn Trainer = &mut a;
            t.train_epoch();
            t.snapshot()
        };
        // A different architecture must be rejected, not corrupted.
        let mut cfg = TrainConfig::new(Method::TorchGt, 128, 2);
        cfg.interleave_period = 3;
        let mcfg = GraphormerConfig {
            feat_dim: d.feat_dim,
            hidden: 32,
            layers: 3,
            heads: 2,
            ffn_mult: 2,
            out_dim: d.num_classes,
            max_degree: 16,
            max_spd: 4,
            dropout: 0.1,
        };
        let model = Box::new(Graphormer::new(mcfg, 5));
        let shape = ModelShape { layers: 3, hidden: 32, heads: 2 };
        let mut other = NodeTrainer::new(
            cfg,
            &d,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let t: &mut dyn Trainer = &mut other;
        assert!(t.restore(&snap).is_err());
        assert_eq!(t.epoch(), 0, "failed restore must leave the trainer untouched");
    }
}
