//! Graph-level training loop (ZINC / ogbg-molpcba / MalNet-style tasks):
//! each sample is one graph whose nodes form the sequence; a mean-pool
//! readout turns per-token logits into one prediction per graph.

use crate::config::{Method, TrainConfig};
use crate::interleave::{Decision, InterleaveScheduler};
use crate::trainer::{lap, EpochStats};
use std::time::Instant;
use torchgt_comm::ClusterTopology;
use torchgt_graph::spd::spd_matrix;
use torchgt_graph::{check_conditions, ConditionReport, CsrGraph, GraphDataset, GraphLabel};
use torchgt_model::{loss, Pattern, SequenceBatch, SequenceModel};
use torchgt_obs::{EpochTrace, RecorderHandle, SpanGuard, StepTrace};
use torchgt_perf::{all_to_all_traffic, iteration_cost, GpuSpec, ModelShape, StepSpec};
use torchgt_sparse::{access_profile, topology_mask, AccessProfile, LayoutKind};
use torchgt_tensor::bf16::apply_precision;
use torchgt_tensor::ops;
use torchgt_tensor::{Adam, Optimizer, Tensor, Workspace};

/// Sequences longer than this skip the `O(s²)` SPD matrix (dense bias).
const SPD_LIMIT: usize = 512;

struct PreparedSample {
    features: Tensor,
    graph: CsrGraph,
    mask: CsrGraph,
    spd: Option<Vec<u8>>,
    profile: AccessProfile,
    report: ConditionReport,
    label: GraphLabel,
}

/// Trainer over a graph-level dataset.
pub struct GraphTrainer {
    /// Run configuration.
    pub cfg: TrainConfig,
    /// Simulated device + cluster for the cost model.
    pub gpu: GpuSpec,
    /// Simulated cluster layout.
    pub topology: ClusterTopology,
    /// Model shape for the cost model.
    pub shape: ModelShape,
    model: Box<dyn SequenceModel>,
    opt: Adam,
    samples: Vec<PreparedSample>,
    train_idx: Vec<usize>,
    test_idx: Vec<usize>,
    scheduler: InterleaveScheduler,
    /// Wall-clock seconds spent preparing masks/SPD (the §IV-E cost).
    pub preprocess_seconds: f64,
    epoch: usize,
    /// Scratch arena shared across steps and epochs (not checkpointed: it
    /// starts cold after a restore, which only costs one warm-up step).
    ws: Workspace,
    recorder: RecorderHandle,
    /// Preprocess seconds not yet attributed to an epoch trace.
    pending_preprocess_s: f64,
}

impl GraphTrainer {
    /// Prepare a dataset (masks, SPD matrices) and build the trainer.
    pub fn new(
        cfg: TrainConfig,
        dataset: &GraphDataset,
        model: Box<dyn SequenceModel>,
        shape: ModelShape,
        gpu: GpuSpec,
        topology: ClusterTopology,
    ) -> Self {
        let t0 = Instant::now();
        // With interleaving on, the periodic dense pass gives global reach,
        // so C3 only requires connectivity (mirrors NodeTrainer).
        let layers = if cfg.interleave_period > 0 {
            u8::MAX - 1
        } else {
            shape.layers.min(u8::MAX as usize) as u8
        };
        let want_spd = cfg.method != Method::GpFlash;
        let samples: Vec<PreparedSample> = dataset
            .samples
            .iter()
            .map(|s| {
                let n = s.graph.num_nodes();
                let features =
                    Tensor::from_vec(n, s.feat_dim, s.features.clone());
                let mask = topology_mask(&s.graph, true);
                let spd = if want_spd && n <= SPD_LIMIT {
                    Some(spd_matrix(&s.graph, 8))
                } else {
                    None
                };
                PreparedSample {
                    profile: access_profile(&mask),
                    report: check_conditions(&mask, layers),
                    features,
                    graph: s.graph.clone(),
                    mask,
                    spd,
                    label: s.label,
                }
            })
            .collect();
        let n = samples.len();
        let split = (n * 8) / 10;
        let preprocess_seconds = t0.elapsed().as_secs_f64();
        Self {
            scheduler: InterleaveScheduler::new(cfg.interleave_period),
            opt: Adam::with_lr(cfg.lr),
            train_idx: (0..split).collect(),
            test_idx: (split..n).collect(),
            samples,
            preprocess_seconds,
            epoch: 0,
            ws: Workspace::new(),
            recorder: torchgt_obs::noop(),
            pending_preprocess_s: preprocess_seconds,
            model,
            cfg,
            gpu,
            topology,
            shape,
        }
    }

    /// Route observability signals to `recorder`.
    pub fn attach_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    fn decide(&mut self, report: &ConditionReport) -> Decision {
        match self.cfg.method {
            Method::GpRaw | Method::GpFlash => Decision::Full,
            Method::GpSparse => Decision::Sparse,
            Method::TorchGt => self.scheduler.decide_with_report(report),
        }
    }

    fn layout_for(&self, decision: Decision) -> LayoutKind {
        match (self.cfg.method, decision) {
            (Method::GpRaw, _) => LayoutKind::Dense,
            (Method::GpFlash, _) | (Method::TorchGt, Decision::Full) => LayoutKind::Flash,
            (Method::GpSparse, _) => LayoutKind::Topology,
            (Method::TorchGt, Decision::Sparse) => LayoutKind::ClusterSparse,
        }
    }

    /// Forward one sample; returns `(graph_logits, sample_index_pattern)`.
    fn forward_sample(&mut self, idx: usize, decision: Decision) -> Tensor {
        let sample = &self.samples[idx];
        let pattern = match (self.cfg.method, decision) {
            (Method::GpRaw, _) => Pattern::Dense,
            (Method::GpFlash, _) | (Method::TorchGt, Decision::Full) => Pattern::Flash,
            _ => Pattern::Sparse(&sample.mask),
        };
        let batch = SequenceBatch {
            features: &sample.features,
            graph: &sample.graph,
            spd: sample.spd.as_deref(),
        };
        let token_logits = self.model.forward_ws(&batch, pattern, &mut self.ws);
        let mut pooled = self.ws.take(1, token_logits.cols());
        ops::mean_rows_into(&token_logits, &mut pooled);
        self.ws.give(token_logits);
        pooled
    }

    fn backward_sample(&mut self, idx: usize, decision: Decision, dgraph_logits: &Tensor) {
        let sample = &self.samples[idx];
        let n = sample.features.rows();
        let pattern = match (self.cfg.method, decision) {
            (Method::GpRaw, _) => Pattern::Dense,
            (Method::GpFlash, _) | (Method::TorchGt, Decision::Full) => Pattern::Flash,
            _ => Pattern::Sparse(&sample.mask),
        };
        let batch = SequenceBatch {
            features: &sample.features,
            graph: &sample.graph,
            spd: sample.spd.as_deref(),
        };
        // Mean-pool backward: broadcast / n.
        let mut dtokens = self.ws.take(n, dgraph_logits.cols());
        let inv = 1.0 / n as f32;
        for r in 0..n {
            for c in 0..dgraph_logits.cols() {
                dtokens.set(r, c, dgraph_logits.get(0, c) * inv);
            }
        }
        self.model.backward_ws(&batch, pattern, &dtokens, &mut self.ws);
        self.ws.give(dtokens);
    }

    /// Run one epoch over the training split.
    pub fn train_epoch(&mut self) -> EpochStats {
        let t0 = Instant::now();
        let on = self.recorder.enabled();
        let _epoch_span = SpanGuard::new(&self.recorder, "train_epoch");
        self.model.set_training(true);
        let mut total_loss = 0.0f32;
        let mut sim_seconds = 0.0;
        let mut sparse_iters = 0;
        let mut full_iters = 0;
        let (mut fwd_total, mut bwd_total, mut opt_total) = (0.0f64, 0.0f64, 0.0f64);
        let iters = self.train_idx.len();
        for i in 0..iters {
            let idx = self.train_idx[i];
            let report = self.samples[idx].report;
            let decision = self.decide(&report);
            match decision {
                Decision::Sparse => sparse_iters += 1,
                Decision::Full => full_iters += 1,
            }
            let ws0 = on.then(|| self.ws.stats());
            let mut mark = on.then(Instant::now);
            let mut glogits = self.forward_sample(idx, decision);
            apply_precision(&mut glogits, self.cfg.precision);
            let (l, dl) = match self.samples[idx].label {
                GraphLabel::Class(c) => {
                    loss::softmax_cross_entropy_ws(&glogits, &[c], &mut self.ws)
                }
                GraphLabel::Value(v) => loss::mae_loss(&glogits, &[v]),
            };
            total_loss += l;
            let forward_s = lap(&mut mark);
            self.backward_sample(idx, decision, &dl);
            self.ws.give(dl);
            self.ws.give(glogits);
            let backward_s = lap(&mut mark);
            self.opt.step(&mut self.model.params_mut());
            let optim_s = lap(&mut mark);
            let seq_len = self.samples[idx].features.rows();
            let spec = StepSpec {
                gpu: self.gpu,
                topology: self.topology,
                shape: self.shape,
                layout: self.layout_for(decision),
                seq_len,
                profile: self.samples[idx].profile,
            };
            let sim_s = iteration_cost(&spec).total();
            sim_seconds += sim_s;
            if on {
                fwd_total += forward_s;
                bwd_total += backward_s;
                opt_total += optim_s;
                let ws1 = self.ws.stats();
                let ws0 = ws0.expect("stats snapshot taken when recorder is on");
                self.recorder
                    .gauge_set("alloc_bytes", (ws1.alloc_bytes - ws0.alloc_bytes) as f64);
                self.recorder
                    .gauge_set("arena_reuse_hits", (ws1.reuse_hits - ws0.reuse_hits) as f64);
                let traffic = all_to_all_traffic(&spec);
                self.recorder.collective(
                    "all_to_all",
                    traffic.ops,
                    traffic.payload_bytes,
                    traffic.wire_bytes,
                );
                self.recorder.step(StepTrace {
                    epoch: self.epoch,
                    step: i,
                    seq_len,
                    sparse: decision == Decision::Sparse,
                    beta_thre: self.cfg.beta_thre.unwrap_or(0.0),
                    reform_ratio: 1.0,
                    forward_s,
                    backward_s,
                    optim_s,
                    sim_s,
                });
            }
        }
        let mean_loss = total_loss / self.train_idx.len().max(1) as f32;
        // Numerical-health guard (see NodeTrainer::train_epoch).
        if on && !mean_loss.is_finite() {
            self.recorder.event(torchgt_obs::Event::loss_nonfinite(self.epoch, mean_loss as f64));
        }
        let mut eval_mark = on.then(Instant::now);
        let (train_m, test_m) = self.evaluate();
        let eval_s = lap(&mut eval_mark);
        let stats = EpochStats {
            epoch: self.epoch,
            loss: mean_loss,
            train_acc: train_m,
            test_acc: test_m,
            wall_seconds: t0.elapsed().as_secs_f64(),
            sim_seconds,
            sparse_iters,
            full_iters,
            beta_thre: self.cfg.beta_thre.unwrap_or(0.0),
        };
        if on {
            self.recorder.counter_add("iterations", iters as u64);
            self.recorder.record_span("train_epoch/forward", fwd_total);
            self.recorder.record_span("train_epoch/backward", bwd_total);
            self.recorder.record_span("train_epoch/optim", opt_total);
            let preprocess_s = std::mem::take(&mut self.pending_preprocess_s);
            if preprocess_s > 0.0 {
                self.recorder.record_span("preprocess", preprocess_s);
            }
            self.recorder.epoch(EpochTrace {
                epoch: self.epoch,
                loss: mean_loss as f64,
                preprocess_s,
                forward_s: fwd_total,
                backward_s: bwd_total,
                optim_s: opt_total,
                eval_s,
                sim_s: sim_seconds,
                sparse_iters,
                full_iters,
                beta_thre: stats.beta_thre,
            });
        }
        self.epoch += 1;
        stats
    }

    /// Evaluate: classification → accuracy; regression → negative MAE (so
    /// "higher is better" holds everywhere).
    pub fn evaluate(&mut self) -> (f64, f64) {
        let _span = SpanGuard::new(&self.recorder, "evaluate");
        self.model.set_training(false);
        let train_idx = self.train_idx.clone();
        let test_idx = self.test_idx.clone();
        let score = |idxs: &[usize], trainer: &mut Self| -> f64 {
            if idxs.is_empty() {
                return 0.0;
            }
            let mut acc = 0.0f64;
            for &idx in idxs {
                let decision = match trainer.cfg.method {
                    Method::GpRaw | Method::GpFlash => Decision::Full,
                    _ => Decision::Sparse,
                };
                let glogits = trainer.forward_sample(idx, decision);
                match trainer.samples[idx].label {
                    GraphLabel::Class(c) => {
                        acc += loss::accuracy(&glogits, &[c], None);
                    }
                    GraphLabel::Value(v) => {
                        acc -= (glogits.get(0, 0) - v).abs() as f64;
                    }
                }
                trainer.ws.give(glogits);
            }
            acc / idxs.len() as f64
        };
        let train = score(&train_idx, self);
        let test = score(&test_idx, self);
        self.model.set_training(true);
        (train, test)
    }

    /// Train for the configured epochs.
    pub fn run(&mut self) -> Vec<EpochStats> {
        (0..self.cfg.epochs).map(|_| self.train_epoch()).collect()
    }
}

impl crate::traits::Trainer for GraphTrainer {
    fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    fn attach_recorder(&mut self, recorder: RecorderHandle) {
        GraphTrainer::attach_recorder(self, recorder);
    }

    fn train_epoch(&mut self) -> EpochStats {
        GraphTrainer::train_epoch(self)
    }

    fn evaluate(&mut self) -> (f64, f64) {
        GraphTrainer::evaluate(self)
    }

    fn epoch(&self) -> usize {
        self.epoch
    }

    fn snapshot(&mut self) -> torchgt_ckpt::Snapshot {
        let (iteration, sparse, full) = self.scheduler.export_state();
        let mut state = torchgt_ckpt::TrainerState::basic(self.epoch, self.opt.steps());
        state.rng_streams = self.model.rng_state();
        state.scheduler = Some(torchgt_ckpt::SchedulerState {
            iteration: iteration as u64,
            sparse_iters: sparse as u64,
            full_iters: full as u64,
        });
        crate::resume::capture_model(self.model.as_mut(), state)
    }

    fn restore(&mut self, snapshot: &torchgt_ckpt::Snapshot) -> std::io::Result<()> {
        crate::resume::restore_model(self.model.as_mut(), &mut self.opt, snapshot)?;
        if let Some(s) = &snapshot.state.scheduler {
            self.scheduler.restore_state(
                s.iteration as usize,
                s.sparse_iters as usize,
                s.full_iters as usize,
            );
        }
        self.epoch = snapshot.state.epoch;
        Ok(())
    }

    fn run(&mut self) -> Vec<EpochStats> {
        GraphTrainer::run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::DatasetKind;
    use torchgt_model::{Gt, GtConfig};

    fn trainer_for(method: Method, epochs: usize) -> GraphTrainer {
        let data = DatasetKind::Zinc.generate_graphs(30, 1.0, 5);
        let mut cfg = TrainConfig::new(method, 64, epochs);
        cfg.interleave_period = 3;
        cfg.lr = 3e-3;
        let model = Box::new(Gt::new(GtConfig::tiny(data.feat_dim, 1), 7));
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        GraphTrainer::new(
            cfg,
            &data,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        )
    }

    #[test]
    fn regression_loss_decreases() {
        let mut t = trainer_for(Method::TorchGt, 6);
        let stats = t.run();
        assert!(
            stats.last().unwrap().loss < stats.first().unwrap().loss,
            "{} → {}",
            stats.first().unwrap().loss,
            stats.last().unwrap().loss
        );
    }

    #[test]
    fn classification_on_malnet_like() {
        let data = DatasetKind::MalNet.generate_graphs(20, 0.002, 3);
        let mut cfg = TrainConfig::new(Method::TorchGt, 64, 4);
        cfg.lr = 2e-3;
        let model = Box::new(Gt::new(GtConfig::tiny(data.feat_dim, 5), 9));
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        let mut t = GraphTrainer::new(
            cfg,
            &data,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let stats = t.run();
        assert!(stats.last().unwrap().loss < stats.first().unwrap().loss * 1.5);
        assert!(stats.iter().all(|s| s.sim_seconds > 0.0));
    }

    #[test]
    fn torchgt_runs_sparse_on_large_graphs() {
        // MalNet-like graphs are big enough for the sparse pattern to engage
        // (the Table V speed gap itself is asserted at paper scale in the
        // perf crate and reproduced by the bench harness).
        let data = DatasetKind::MalNet.generate_graphs(6, 0.02, 4);
        let mut cfg = TrainConfig::new(Method::TorchGt, 64, 1);
        cfg.interleave_period = 4;
        let model = Box::new(Gt::new(GtConfig::tiny(data.feat_dim, 5), 9));
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        let mut t = GraphTrainer::new(
            cfg,
            &data,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let stats = t.train_epoch();
        assert!(stats.sparse_iters > 0, "sparse pattern must engage");
        assert!(stats.sim_seconds > 0.0);
    }

    #[test]
    fn split_is_8020() {
        let t = trainer_for(Method::GpSparse, 1);
        assert_eq!(t.train_idx.len(), 24);
        assert_eq!(t.test_idx.len(), 6);
    }
}
