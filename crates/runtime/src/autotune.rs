//! The Auto Tuner (paper §III-D, "Transfer Strategy" / "Hyperparameter
//! Modeling").
//!
//! Tracks a running-average loss `F_t = 0.9·F_{t−1} + 0.1·L_t` and the Loss
//! Descent Rate `LDR_t = (F_t − F_{t−1}) / et_t`. When descent is healthy
//! (`LDR_t ≥ LDR_{t−δ}` — mind that descent rates are negative), the tuner
//! climbs the `β_thre` ladder `{0, β_G, 1.5β_G, 5β_G, 7β_G, 10β_G, 1}` to
//! transfer more clusters (faster); when descent degrades, it steps back
//! down (more accurate). It also selects `k` and `d_b` from the GPU spec via
//! the cache model.

use torchgt_perf::{tune_db, GpuSpec};
use torchgt_sparse::reform::beta_ladder;

/// The elastic `β_thre` controller.
#[derive(Clone, Debug)]
pub struct AutoTuner {
    ladder: [f64; 7],
    index: usize,
    delta: usize,
    f_history: Vec<f64>,
    ldr_history: Vec<f64>,
}

impl AutoTuner {
    /// Construct for a graph of sparsity `β_G`, comparing LDRs `delta`
    /// epochs apart (the paper uses δ = 10).
    pub fn new(beta_g: f64, delta: usize) -> Self {
        Self {
            ladder: beta_ladder(beta_g),
            // Start at β_G — the paper's initialisation.
            index: 1,
            delta: delta.max(1),
            f_history: Vec::new(),
            ldr_history: Vec::new(),
        }
    }

    /// Current transfer threshold.
    pub fn beta_thre(&self) -> f64 {
        self.ladder[self.index]
    }

    /// Current ladder position (for tests/telemetry).
    pub fn ladder_index(&self) -> usize {
        self.index
    }

    /// Export the resumable state: ladder position plus both observation
    /// histories. The ladder itself and `delta` are configuration (rebuilt
    /// from `β_G` on restart), but the histories feed the look-back LDR
    /// comparison, so they must survive a checkpoint/restore cycle for the
    /// resumed run's `β_thre` transitions to match the uninterrupted run.
    pub fn export_state(&self) -> (usize, Vec<f64>, Vec<f64>) {
        (self.index, self.f_history.clone(), self.ldr_history.clone())
    }

    /// Restore state captured by [`AutoTuner::export_state`] (the index is
    /// clamped to the ladder, so a corrupt value cannot cause a panic).
    pub fn restore_state(&mut self, index: usize, f_history: Vec<f64>, ldr_history: Vec<f64>) {
        self.index = index.min(self.ladder.len() - 1);
        self.f_history = f_history;
        self.ldr_history = ldr_history;
    }

    /// Feed one epoch's loss and wall-clock; returns the `β_thre` to use for
    /// the *next* epoch.
    pub fn observe(&mut self, loss: f64, epoch_seconds: f64) -> f64 {
        let f_prev = self.f_history.last().copied();
        let f_t = match f_prev {
            Some(f) => 0.9 * f + 0.1 * loss,
            None => loss,
        };
        self.f_history.push(f_t);
        if let Some(f) = f_prev {
            let ldr = (f_t - f) / epoch_seconds.max(1e-9);
            self.ldr_history.push(ldr);
            if self.ldr_history.len() > self.delta {
                let now = *self.ldr_history.last().unwrap();
                let before = self.ldr_history[self.ldr_history.len() - 1 - self.delta];
                if now >= before {
                    // Descent still healthy ⇒ trade accuracy headroom for
                    // speed.
                    self.index = (self.index + 1).min(self.ladder.len() - 1);
                } else {
                    // Converging or quantisation errors ⇒ back off.
                    self.index = self.index.saturating_sub(1);
                }
            }
        }
        self.beta_thre()
    }

    /// Pick `(k, d_b)` for a GPU, hidden dimension and workload size —
    /// Figure 6's "ideal d_b considers both load balance and cache hit
    /// rate" plus the `k` formula.
    pub fn tune_shape(gpu: &GpuSpec, hidden: usize, edges: usize) -> (usize, usize) {
        (gpu.tune_k(hidden), tune_db(gpu, edges.max(1), hidden))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_beta_g() {
        let t = AutoTuner::new(0.01, 10);
        assert!((t.beta_thre() - 0.01).abs() < 1e-12);
        assert_eq!(t.ladder_index(), 1);
    }

    #[test]
    fn healthy_descent_climbs_ladder() {
        // Exponentially decaying loss: once the EMA warms up, LDR shrinks in
        // magnitude every epoch (LDR_t ≥ LDR_{t−δ}), so the tuner keeps
        // climbing toward the fast end of the ladder.
        let mut t = AutoTuner::new(0.01, 3);
        let mut loss = 2.0;
        for _ in 0..40 {
            t.observe(loss, 1.0);
            loss *= 0.9;
        }
        assert!(t.ladder_index() >= 4, "index {}", t.ladder_index());
    }

    #[test]
    fn accelerating_descent_backs_off() {
        // Loss drops faster and faster (quadratic): LDR becomes *more*
        // negative each epoch, i.e. LDR_t < LDR_{t−δ} — the paper's signal
        // to step back down for stability.
        let mut t = AutoTuner::new(0.01, 2);
        for i in 0..20 {
            let loss = 100.0 - 0.05 * (i as f64) * (i as f64);
            t.observe(loss, 1.0);
        }
        assert_eq!(t.ladder_index(), 0, "index {}", t.ladder_index());
    }

    #[test]
    fn index_is_clamped() {
        let mut t = AutoTuner::new(0.01, 1);
        // Endless perfect descent: index must stop at the ladder top.
        let mut loss = 10.0;
        for _ in 0..50 {
            t.observe(loss, 1.0);
            loss *= 0.5;
        }
        assert!(t.ladder_index() <= 6);
        assert!((t.beta_thre() - 1.0).abs() < 1e-12 || t.ladder_index() < 6);
    }

    #[test]
    fn tune_shape_matches_paper_fit() {
        let (k, db) = AutoTuner::tune_shape(&GpuSpec::rtx3090(), 64, 200_000);
        // Paper: k = 8, d_b = 16 for RTX 3090, hidden 64.
        assert_eq!(k, 8, "k");
        assert!((8..=32).contains(&db), "db = {db}");
    }
}
