//! Out-of-core node-level training: the [`NodeTrainer`] epoch loop driven
//! from disk through a [`torchgt_data::ShardLoader`] instead of an
//! in-memory [`torchgt_graph::NodeDataset`].
//!
//! The trainer never materialises the full graph. Each epoch streams `TGDS`
//! shards through the loader's prefetch thread, carries the sub-`seq_len`
//! remainder of each shard into the next one, and emits exactly the chunks
//! the in-memory preprocessing pipeline would have produced: with the
//! default (identity) shard order the per-epoch loss history is
//! **bit-identical** to a [`NodeTrainer`] over the same generated dataset —
//! asserted by this module's tests and by `tests/data_pipeline.rs`.
//!
//! Only the GP-* baselines stream: TorchGT's cluster-aware reordering is a
//! global permutation of the node sequence, which requires the whole graph
//! up front. Construction rejects [`Method::TorchGt`].
//!
//! Dataset identity: snapshots taken by this trainer carry the dataset's
//! manifest hash ([`torchgt_data::Manifest::hash`]); restoring a snapshot
//! taken against a *different* dataset fails unless explicitly overridden.
//!
//! [`NodeTrainer`]: crate::trainer::NodeTrainer

use crate::autotune::AutoTuner;
use crate::config::{Method, TrainConfig};
use crate::trainer::{lap, EpochStats};
use std::io;
use std::time::Instant;
use torchgt_comm::ClusterTopology;
use torchgt_data::{Shard, ShardLoader};
use torchgt_graph::{CsrGraph, DatasetKind, Split};
use torchgt_model::{loss, Pattern, SequenceBatch, SequenceModel};
use torchgt_obs::{EpochTrace, Event, RecorderHandle, SpanGuard, StepTrace};
use torchgt_perf::{all_to_all_traffic, iteration_cost, GpuSpec, ModelShape, StepSpec};
use torchgt_sparse::{access_profile, topology_mask, AccessProfile, LayoutKind};
use torchgt_tensor::bf16::{apply_precision, bf16_round};
use torchgt_tensor::{Adam, Optimizer, Precision, Tensor, Workspace};

/// One training sequence assembled from the shard stream — the streaming
/// equivalent of [`crate::preprocess::Sequence`].
struct Chunk {
    /// Global node ids in stream order.
    ids: Vec<u32>,
    /// Induced subgraph over the chunk's nodes (local ids).
    graph: CsrGraph,
    /// Topology attention mask (self-loops + Hamiltonian repair).
    mask: CsrGraph,
    /// Memory-access profile of the mask.
    profile: AccessProfile,
    /// Features `[s, feat]` in local order.
    features: Tensor,
    /// Labels in local order.
    labels: Vec<u32>,
}

/// Re-chunks a shard stream into `seq_len`-node sequences, carrying the
/// remainder of each shard into the next so chunk boundaries are identical
/// to the in-memory pipeline's regardless of how the dataset was sharded.
struct Chunker {
    stream: torchgt_data::ShardStream,
    seq_len: usize,
    feat_dim: usize,
    /// Scratch global→local map (`u32::MAX` = not in chunk), sized to the
    /// full node count and cleared after each chunk. Borrowed from the
    /// trainer via `mem::take` and handed back by [`Chunker::into_remap`].
    remap: Vec<u32>,
    ids: Vec<u32>,
    rows: Vec<Vec<u32>>,
    labels: Vec<u32>,
    feats: Vec<f32>,
    exhausted: bool,
}

impl Chunker {
    fn new(
        stream: torchgt_data::ShardStream,
        seq_len: usize,
        feat_dim: usize,
        remap: Vec<u32>,
    ) -> Self {
        Self {
            stream,
            seq_len,
            feat_dim,
            remap,
            ids: Vec::new(),
            rows: Vec::new(),
            labels: Vec::new(),
            feats: Vec::new(),
            exhausted: false,
        }
    }

    fn absorb(&mut self, shard: &Shard) {
        for local in 0..shard.node_count {
            self.ids.push((shard.node_start + local) as u32);
            self.rows.push(shard.neighbors(local).to_vec());
        }
        self.labels.extend_from_slice(&shard.labels);
        self.feats.extend_from_slice(&shard.features);
    }

    fn next(&mut self) -> io::Result<Option<Chunk>> {
        while self.rows.len() < self.seq_len && !self.exhausted {
            match self.stream.next()? {
                Some(shard) => self.absorb(&shard),
                None => self.exhausted = true,
            }
        }
        if self.rows.is_empty() {
            return Ok(None);
        }
        let k = self.seq_len.min(self.rows.len());
        let ids: Vec<u32> = self.ids.drain(..k).collect();
        let rows: Vec<Vec<u32>> = self.rows.drain(..k).collect();
        let labels: Vec<u32> = self.labels.drain(..k).collect();
        let feats: Vec<f32> = self.feats.drain(..k * self.feat_dim).collect();
        for (local, &g) in ids.iter().enumerate() {
            self.remap[g as usize] = local as u32;
        }
        let mut row_ptr = Vec::with_capacity(k + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for row in &rows {
            scratch.clear();
            for &nb in row {
                let m = self.remap[nb as usize];
                if m != u32::MAX {
                    scratch.push(m);
                }
            }
            // Rows arrive sorted by global id; with the identity shard order
            // the local mapping is monotonic and this sort is a no-op, but a
            // shuffled epoch permutes the mapping.
            scratch.sort_unstable();
            col_idx.extend_from_slice(&scratch);
            row_ptr.push(col_idx.len());
        }
        for &g in &ids {
            self.remap[g as usize] = u32::MAX;
        }
        let graph = CsrGraph::from_raw(row_ptr, col_idx);
        let mask = topology_mask(&graph, true);
        let profile = access_profile(&mask);
        let mut features = Tensor::zeros(k, self.feat_dim);
        features.data_mut().copy_from_slice(&feats);
        Ok(Some(Chunk { ids, graph, mask, profile, features, labels }))
    }

    /// Hand the scratch map back to the trainer.
    fn into_remap(self) -> Vec<u32> {
        self.remap
    }
}

/// Node-level trainer fed from an on-disk sharded dataset.
pub struct StreamingTrainer {
    /// The run configuration.
    pub cfg: TrainConfig,
    /// Simulated device.
    pub gpu: GpuSpec,
    /// Simulated cluster.
    pub topology: ClusterTopology,
    /// Model shape for the cost model.
    pub shape: ModelShape,
    model: Box<dyn SequenceModel>,
    opt: Adam,
    loader: ShardLoader,
    dataset_id: String,
    train_mark: Vec<bool>,
    test_mark: Vec<bool>,
    /// Scratch global→local map shared by every chunk build.
    remap: Vec<u32>,
    current_beta: f64,
    seq_len: usize,
    epoch: usize,
    ws: Workspace,
    recorder: RecorderHandle,
    allow_dataset_mismatch: bool,
}

impl StreamingTrainer {
    /// Build a streaming trainer over an opened shard loader.
    ///
    /// # Panics
    ///
    /// Panics on [`Method::TorchGt`] — its cluster-aware reordering is a
    /// global permutation and cannot stream shard-by-shard (callers such as
    /// `TorchGtBuilder::build_streaming` surface this as a typed error).
    pub fn new(
        cfg: TrainConfig,
        loader: ShardLoader,
        model: Box<dyn SequenceModel>,
        shape: ModelShape,
        gpu: GpuSpec,
        topology: ClusterTopology,
    ) -> Self {
        assert!(
            cfg.method != Method::TorchGt,
            "TorchGT's global cluster reorder cannot stream; use a GP-* method (e.g. gp-sparse)"
        );
        let m = loader.manifest();
        let n = m.total_nodes as usize;
        let split = Split::standard(n, m.seed ^ DatasetKind::SPLIT_SEED_XOR);
        let mut train_mark = vec![false; n];
        let mut test_mark = vec![false; n];
        for &v in &split.train {
            train_mark[v as usize] = true;
        }
        for &v in &split.test {
            test_mark[v as usize] = true;
        }
        let current_beta =
            cfg.beta_thre.unwrap_or_else(|| AutoTuner::new(loader.manifest().beta_g(), 10).beta_thre());
        let seq_len = cfg.seq_len.min(n).max(1);
        let dataset_id = loader.hash().to_string();
        Self {
            recorder: torchgt_obs::noop(),
            opt: Adam::with_lr(cfg.lr),
            dataset_id,
            train_mark,
            test_mark,
            remap: vec![u32::MAX; n],
            current_beta,
            seq_len,
            epoch: 0,
            ws: Workspace::new(),
            model,
            loader,
            cfg,
            gpu,
            topology,
            shape,
            allow_dataset_mismatch: false,
        }
    }

    /// Route observability signals to `recorder` — the trainer's spans and
    /// traces plus the loader's prefetch gauges.
    pub fn attach_recorder(&mut self, recorder: RecorderHandle) {
        if recorder.enabled() {
            recorder.gauge_set("beta_thre", self.current_beta);
        }
        self.loader.attach_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Identity hash of the dataset being streamed.
    pub fn dataset_id(&self) -> &str {
        &self.dataset_id
    }

    /// The shard loader driving this trainer (prefetch stats live here).
    pub fn loader(&self) -> &ShardLoader {
        &self.loader
    }

    /// Graph sparsity β_G, from the manifest — no shard reads needed.
    pub fn beta_g(&self) -> f64 {
        self.loader.manifest().beta_g()
    }

    /// Accept snapshots whose dataset identity differs from the loaded
    /// dataset (the `--allow-dataset-mismatch` escape hatch).
    pub fn set_allow_dataset_mismatch(&mut self, allow: bool) {
        self.allow_dataset_mismatch = allow;
    }

    /// The model under training.
    pub fn model_mut(&mut self) -> &mut dyn SequenceModel {
        self.model.as_mut()
    }

    fn layout(&self) -> LayoutKind {
        match self.cfg.method {
            Method::GpRaw => LayoutKind::Dense,
            Method::GpFlash => LayoutKind::Flash,
            Method::GpSparse => LayoutKind::Topology,
            Method::TorchGt => unreachable!("rejected at construction"),
        }
    }

    fn step_spec(&self, seq_len: usize, profile: AccessProfile) -> StepSpec {
        StepSpec {
            gpu: self.gpu,
            topology: self.topology,
            shape: self.shape,
            layout: self.layout(),
            seq_len,
            profile,
        }
    }

    /// Local positions of a chunk's nodes that carry the given split marks.
    fn positions(ids: &[u32], marks: &[bool]) -> Vec<u32> {
        ids.iter()
            .enumerate()
            .filter(|(_, &g)| marks[g as usize])
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Run one training epoch from disk.
    pub fn train_epoch(&mut self) -> EpochStats {
        let t0 = Instant::now();
        let on = self.recorder.enabled();
        let _epoch_span = SpanGuard::new(&self.recorder, "train_epoch");
        self.model.set_training(true);
        let mut total_loss = 0.0f32;
        let mut sim_seconds = 0.0f64;
        let (mut fwd_total, mut bwd_total, mut opt_total) = (0.0f64, 0.0f64, 0.0f64);
        let mut nseq = 0usize;
        let stream = self.loader.stream_epoch(self.epoch);
        let feat_dim = self.loader.manifest().feat_dim as usize;
        let mut chunker =
            Chunker::new(stream, self.seq_len, feat_dim, std::mem::take(&mut self.remap));
        loop {
            let chunk = match chunker.next() {
                Ok(Some(c)) => c,
                Ok(None) => break,
                Err(e) => panic!("out-of-core shard stream failed mid-epoch: {e}"),
            };
            let si = nseq;
            nseq += 1;
            let seq_len = chunk.ids.len();
            let train_pos = Self::positions(&chunk.ids, &self.train_mark);
            let pattern = match self.cfg.method {
                Method::GpRaw => Pattern::Dense,
                Method::GpFlash => Pattern::Flash,
                _ => Pattern::Sparse(&chunk.mask),
            };
            let batch =
                SequenceBatch { features: &chunk.features, graph: &chunk.graph, spd: None };
            let ws0 = on.then(|| self.ws.stats());
            let mut mark = on.then(Instant::now);
            let mut logits = self.model.forward_ws(&batch, pattern, &mut self.ws);
            apply_precision(&mut logits, self.cfg.precision);
            let (l, dlogits) = loss::masked_softmax_cross_entropy_ws(
                &logits,
                &chunk.labels,
                &train_pos,
                &mut self.ws,
            );
            total_loss += l;
            let forward_s = lap(&mut mark);
            self.model.backward_ws(&batch, pattern, &dlogits, &mut self.ws);
            self.ws.give(dlogits);
            self.ws.give(logits);
            let backward_s = lap(&mut mark);
            if self.cfg.warmup_steps > 0 {
                let schedule = torchgt_tensor::optim::WarmupSchedule {
                    peak_lr: self.cfg.lr,
                    warmup: self.cfg.warmup_steps as u64,
                };
                self.opt.set_lr(schedule.lr_at(self.opt.steps() + 1));
            }
            self.opt.step(&mut self.model.params_mut());
            if self.cfg.precision == Precision::Bf16 {
                for p in self.model.params_mut() {
                    for v in p.value.data_mut() {
                        *v = bf16_round(*v);
                    }
                }
            }
            let optim_s = lap(&mut mark);
            let sim_s = iteration_cost(&self.step_spec(seq_len, chunk.profile)).total();
            sim_seconds += sim_s;
            if on {
                fwd_total += forward_s;
                bwd_total += backward_s;
                opt_total += optim_s;
                let ws1 = self.ws.stats();
                let ws0 = ws0.expect("stats snapshot taken when recorder is on");
                self.recorder
                    .gauge_set("alloc_bytes", (ws1.alloc_bytes - ws0.alloc_bytes) as f64);
                self.recorder
                    .gauge_set("arena_reuse_hits", (ws1.reuse_hits - ws0.reuse_hits) as f64);
                let traffic = all_to_all_traffic(&self.step_spec(seq_len, chunk.profile));
                self.recorder.collective(
                    "all_to_all",
                    traffic.ops,
                    traffic.payload_bytes,
                    traffic.wire_bytes,
                );
                self.recorder.step(StepTrace {
                    epoch: self.epoch,
                    step: si,
                    seq_len,
                    sparse: self.cfg.method == Method::GpSparse,
                    beta_thre: self.current_beta,
                    reform_ratio: 1.0,
                    forward_s,
                    backward_s,
                    optim_s,
                    sim_s,
                });
            }
        }
        self.remap = chunker.into_remap();
        let mean_loss = total_loss / nseq.max(1) as f32;
        if on && !mean_loss.is_finite() {
            self.recorder.event(Event::loss_nonfinite(self.epoch, mean_loss as f64));
        }
        let (sparse_iters, full_iters) = match self.cfg.method {
            Method::GpSparse => (nseq, 0),
            _ => (0, nseq),
        };
        let mut eval_mark = on.then(Instant::now);
        let (train_acc, test_acc) = self.evaluate();
        let eval_s = lap(&mut eval_mark);
        let wall = t0.elapsed().as_secs_f64();
        let stats = EpochStats {
            epoch: self.epoch,
            loss: mean_loss,
            train_acc,
            test_acc,
            wall_seconds: wall,
            sim_seconds,
            sparse_iters,
            full_iters,
            beta_thre: self.current_beta,
        };
        if on {
            self.recorder.counter_add("iterations", nseq as u64);
            self.recorder.record_span("train_epoch/forward", fwd_total);
            self.recorder.record_span("train_epoch/backward", bwd_total);
            self.recorder.record_span("train_epoch/optim", opt_total);
            self.recorder.epoch(EpochTrace {
                epoch: self.epoch,
                loss: mean_loss as f64,
                preprocess_s: 0.0,
                forward_s: fwd_total,
                backward_s: bwd_total,
                optim_s: opt_total,
                eval_s,
                sim_s: sim_seconds,
                sparse_iters,
                full_iters,
                beta_thre: stats.beta_thre,
            });
        }
        self.epoch += 1;
        stats
    }

    /// Evaluate train/test accuracy with the method's inference pattern,
    /// re-streaming the current epoch's chunk sequence.
    pub fn evaluate(&mut self) -> (f64, f64) {
        let _span = SpanGuard::new(&self.recorder, "evaluate");
        self.model.set_training(false);
        let mut train_hits = 0usize;
        let mut train_total = 0usize;
        let mut test_hits = 0usize;
        let mut test_total = 0usize;
        let stream = self.loader.stream_epoch(self.epoch);
        let feat_dim = self.loader.manifest().feat_dim as usize;
        let mut chunker =
            Chunker::new(stream, self.seq_len, feat_dim, std::mem::take(&mut self.remap));
        loop {
            let chunk = match chunker.next() {
                Ok(Some(c)) => c,
                Ok(None) => break,
                Err(e) => panic!("out-of-core shard stream failed during evaluation: {e}"),
            };
            let pattern = match self.cfg.method {
                Method::GpRaw => Pattern::Dense,
                Method::GpFlash => Pattern::Flash,
                _ => Pattern::Sparse(&chunk.mask),
            };
            let batch =
                SequenceBatch { features: &chunk.features, graph: &chunk.graph, spd: None };
            let mut logits = self.model.forward_ws(&batch, pattern, &mut self.ws);
            apply_precision(&mut logits, self.cfg.precision);
            let train_pos = Self::positions(&chunk.ids, &self.train_mark);
            let test_pos = Self::positions(&chunk.ids, &self.test_mark);
            let acc_of =
                |positions: &[u32]| loss::accuracy(&logits, &chunk.labels, Some(positions));
            train_hits += (acc_of(&train_pos) * train_pos.len() as f64).round() as usize;
            train_total += train_pos.len();
            test_hits += (acc_of(&test_pos) * test_pos.len() as f64).round() as usize;
            test_total += test_pos.len();
            self.ws.give(logits);
        }
        self.remap = chunker.into_remap();
        self.model.set_training(true);
        (
            train_hits as f64 / train_total.max(1) as f64,
            test_hits as f64 / test_total.max(1) as f64,
        )
    }

    /// Train for the configured number of epochs.
    pub fn run(&mut self) -> Vec<EpochStats> {
        (0..self.cfg.epochs).map(|_| self.train_epoch()).collect()
    }
}

impl crate::traits::Trainer for StreamingTrainer {
    fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    fn attach_recorder(&mut self, recorder: RecorderHandle) {
        StreamingTrainer::attach_recorder(self, recorder);
    }

    fn train_epoch(&mut self) -> EpochStats {
        StreamingTrainer::train_epoch(self)
    }

    fn evaluate(&mut self) -> (f64, f64) {
        StreamingTrainer::evaluate(self)
    }

    fn epoch(&self) -> usize {
        self.epoch
    }

    fn snapshot(&mut self) -> torchgt_ckpt::Snapshot {
        let state = torchgt_ckpt::TrainerState {
            epoch: self.epoch,
            opt_steps: self.opt.steps(),
            rng_streams: self.model.rng_state(),
            beta_thre: Some(self.current_beta),
            tuner: None,
            scheduler: None,
            epoch_losses: Vec::new(),
        };
        crate::resume::capture_model(self.model.as_mut(), state)
            .with_dataset_id(self.dataset_id.clone())
    }

    fn restore(&mut self, snapshot: &torchgt_ckpt::Snapshot) -> std::io::Result<()> {
        if let Some(id) = &snapshot.dataset_id {
            if id != &self.dataset_id && !self.allow_dataset_mismatch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "snapshot was taken against dataset {id}, but the loaded dataset is {}; \
                         pass --allow-dataset-mismatch to restore anyway",
                        self.dataset_id
                    ),
                ));
            }
        }
        crate::resume::restore_model(self.model.as_mut(), &mut self.opt, snapshot)?;
        if let Some(beta) = snapshot.state.beta_thre {
            self.current_beta = beta;
        }
        self.epoch = snapshot.state.epoch;
        Ok(())
    }

    fn run(&mut self) -> Vec<EpochStats> {
        StreamingTrainer::run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::NodeTrainer;
    use crate::traits::Trainer;
    use torchgt_data::generate_to_dir;
    use torchgt_model::{Graphormer, GraphormerConfig};

    const KIND: DatasetKind = DatasetKind::OgbnArxiv;
    const SCALE: f64 = 0.004;
    const SEED: u64 = 11;

    fn make_model(feat_dim: usize, out_dim: usize) -> Box<Graphormer> {
        let mcfg = GraphormerConfig {
            feat_dim,
            hidden: 16,
            layers: 2,
            heads: 2,
            ffn_mult: 2,
            out_dim,
            max_degree: 16,
            max_spd: 4,
            dropout: 0.1,
        };
        Box::new(Graphormer::new(mcfg, 5))
    }

    fn config(epochs: usize) -> TrainConfig {
        let mut cfg = TrainConfig::new(Method::GpSparse, 128, epochs);
        cfg.seed = 3;
        cfg
    }

    fn sharded_dir(tag: &str, seed: u64) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tgt-streaming-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        generate_to_dir(KIND, SCALE, seed, &dir, 300).unwrap();
        dir
    }

    fn streaming(dir: &std::path::Path, epochs: usize) -> StreamingTrainer {
        let loader = ShardLoader::open(dir).unwrap();
        let m = loader.manifest();
        let model = make_model(m.feat_dim as usize, m.num_classes as usize);
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        StreamingTrainer::new(
            config(epochs),
            loader,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        )
    }

    #[test]
    fn streaming_matches_in_memory_bit_for_bit() {
        let dir = sharded_dir("parity", SEED);
        let d = KIND.generate_node(SCALE, SEED);
        let model = make_model(d.feat_dim, d.num_classes);
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        let mut mem = NodeTrainer::new(
            config(2),
            &d,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let mut ooc = streaming(&dir, 2);
        let mem_stats = mem.run();
        let ooc_stats = ooc.run();
        assert_eq!(mem_stats.len(), ooc_stats.len());
        for (a, b) in mem_stats.iter().zip(&ooc_stats) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "epoch {} loss", a.epoch);
            assert_eq!(a.train_acc, b.train_acc, "epoch {} train acc", a.epoch);
            assert_eq!(a.test_acc, b.test_acc, "epoch {} test acc", a.epoch);
            assert_eq!(a.sim_seconds, b.sim_seconds, "epoch {} sim", a.epoch);
            assert_eq!(a.beta_thre, b.beta_thre, "epoch {} beta", a.epoch);
            assert_eq!(
                (a.sparse_iters, a.full_iters),
                (b.sparse_iters, b.full_iters),
                "epoch {} iter mix",
                a.epoch
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_resume_continues_bit_for_bit() {
        let dir = sharded_dir("resume", SEED);
        let mut full = streaming(&dir, 3);
        let full_stats = full.run();

        let mut first = streaming(&dir, 3);
        first.train_epoch();
        let snap = Trainer::snapshot(&mut first);
        assert_eq!(snap.dataset_id.as_deref(), Some(first.dataset_id()));
        drop(first);

        let mut second = streaming(&dir, 3);
        Trainer::restore(&mut second, &snap).unwrap();
        assert_eq!(second.epoch, 1);
        let mut resumed = Vec::new();
        while second.epoch < 3 {
            resumed.push(second.train_epoch());
        }
        assert_eq!(resumed.len(), 2);
        for (a, b) in full_stats[1..].iter().zip(&resumed) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "epoch {} loss", a.epoch);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_refuses_a_different_dataset() {
        let dir_a = sharded_dir("id-a", SEED);
        let dir_b = sharded_dir("id-b", SEED + 1);
        let mut a = streaming(&dir_a, 2);
        a.train_epoch();
        let snap = Trainer::snapshot(&mut a);

        let mut b = streaming(&dir_b, 2);
        let err = Trainer::restore(&mut b, &snap).unwrap_err();
        assert!(err.to_string().contains("allow-dataset-mismatch"), "{err}");
        assert_eq!(b.epoch, 0, "failed restore must leave the trainer untouched");
        // The escape hatch: same architecture, so the restore itself works.
        b.set_allow_dataset_mismatch(true);
        Trainer::restore(&mut b, &snap).unwrap();
        assert_eq!(b.epoch, 1);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn shuffled_epochs_still_train() {
        let dir = sharded_dir("shuffle", SEED);
        let loader = ShardLoader::open(&dir).unwrap().with_shuffle(99);
        let m = loader.manifest();
        let model = make_model(m.feat_dim as usize, m.num_classes as usize);
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        let mut t = StreamingTrainer::new(
            config(2),
            loader,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let stats = t.run();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.loss.is_finite()));
        assert!(stats[1].loss < stats[0].loss * 1.5, "shuffled run must still learn");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torchgt_method_is_rejected() {
        let dir = sharded_dir("reject", SEED);
        let loader = ShardLoader::open(&dir).unwrap();
        let m = loader.manifest();
        let model = make_model(m.feat_dim as usize, m.num_classes as usize);
        let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            StreamingTrainer::new(
                TrainConfig::new(Method::TorchGt, 128, 1),
                loader,
                model,
                shape,
                GpuSpec::rtx3090(),
                ClusterTopology::rtx3090(1),
            )
        }));
        assert!(res.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
