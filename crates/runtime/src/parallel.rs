//! Cluster-aware Graph Parallelism — the distributed execution path
//! (paper §III-C).
//!
//! Sequence shards live on each rank; two all-to-all collectives per
//! attention call re-layout `[S/P, d]` shards into `[S, d/P]` head shards
//! and back (the DeepSpeed-Ulysses layout the paper builds on), so every
//! rank computes the *complete* sequence for a slice of heads — which is
//! exactly what lets the topology-induced sparse pattern apply unchanged.
//! The collectives here move real data between rank threads; the α–β model
//! in `torchgt-comm` provides the simulated time.

use torchgt_comm::{Communicator, DeviceGroup, PendingCollective};
use torchgt_graph::CsrGraph;
use torchgt_model::attention;
use torchgt_tensor::Tensor;

/// Whether the runtime drivers overlap communication with independent
/// compute (`TORCHGT_OVERLAP`, default **on**): collectives are issued with
/// `*_begin` and awaited after the next chunk of independent work instead
/// of blocking inline. Both modes produce bit-identical results — the env
/// var is read live so a single process (e.g. a bench) can toggle it
/// between passes.
pub fn overlap_enabled() -> bool {
    match std::env::var("TORCHGT_OVERLAP") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "false" | "no"),
        Err(_) => true,
    }
}

/// Column-slice a local `[S/P, d]` shard into the `P` per-peer chunks of the
/// sequence→head relayout (chunk `j` = our rows, head-block `j`).
fn head_chunks(local: &Tensor, p: usize) -> Vec<Vec<f32>> {
    let (_s_local, d) = local.shape();
    assert_eq!(d % p, 0, "hidden dim must divide world size");
    let d_local = d / p;
    (0..p)
        .map(|j| {
            let block = local.slice_cols(j * d_local, (j + 1) * d_local);
            block.into_vec()
        })
        .collect()
}

/// Stack the all-to-all results of a sequence→head relayout into the full
/// `[S, d/P]` head shard (received[r] = rank r's rows for our head block,
/// stacked in rank order).
fn assemble_head_shard(received: Vec<Vec<f32>>, s_local: usize, d_local: usize) -> Tensor {
    let parts: Vec<Tensor> = received
        .into_iter()
        .map(|buf| {
            let rows = buf.len() / d_local;
            Tensor::from_vec(rows, d_local, buf)
        })
        .collect();
    let refs: Vec<&Tensor> = parts.iter().collect();
    let full = Tensor::vstack(&refs);
    assert_eq!(full.rows(), s_local * parts.len());
    full
}

/// An in-flight sequence→head relayout started by [`shard_to_heads_begin`].
/// Must be awaited; dropping it un-awaited panics (via the underlying
/// [`PendingCollective`]).
pub struct PendingRelayout<'c> {
    pending: PendingCollective<'c, Vec<Vec<f32>>>,
    s_local: usize,
    d_local: usize,
}

impl PendingRelayout<'_> {
    /// Complete the relayout: receive the peers' chunks and assemble the
    /// `[S, d/P]` head shard. Bit-identical to [`shard_to_heads`].
    pub fn wait(self) -> Tensor {
        let (s_local, d_local) = (self.s_local, self.d_local);
        assemble_head_shard(self.pending.wait(), s_local, d_local)
    }
}

/// Re-layout a local `[S/P, d]` shard into `[S, d/P]` (full sequence, this
/// rank's head block) via all-to-all.
pub fn shard_to_heads(comm: &Communicator, local: &Tensor) -> Tensor {
    shard_to_heads_begin(comm, local).wait()
}

/// Start the `[S/P, d] → [S, d/P]` relayout without blocking: the chunk
/// slicing happens now, the sends go out in the background, and the caller
/// does independent work (e.g. slicing the *next* operand) before calling
/// [`PendingRelayout::wait`].
pub fn shard_to_heads_begin<'c>(comm: &'c Communicator, local: &Tensor) -> PendingRelayout<'c> {
    let p = comm.world_size();
    let (s_local, d) = local.shape();
    let chunks = head_chunks(local, p);
    PendingRelayout { pending: comm.all_to_all_begin(chunks), s_local, d_local: d / p }
}

/// Inverse re-layout: `[S, d/P]` head shard back to the local `[S/P, d]`
/// sequence shard via all-to-all.
pub fn heads_to_shard(comm: &Communicator, heads_block: &Tensor) -> Tensor {
    let p = comm.world_size();
    let (s, _d_local) = heads_block.shape();
    assert_eq!(s % p, 0);
    let s_local = s / p;
    let chunks: Vec<Vec<f32>> = (0..p)
        .map(|j| heads_block.slice_rows(j * s_local, (j + 1) * s_local).into_vec())
        .collect();
    let received = comm.all_to_all(chunks);
    let parts: Vec<Tensor> = received
        .into_iter()
        .map(|buf| Tensor::from_vec(s_local, buf.len() / s_local, buf))
        .collect();
    let refs: Vec<&Tensor> = parts.iter().collect();
    Tensor::hstack(&refs)
}

/// Distributed sparse attention: every rank holds `[S/P, d]` shards of
/// already-projected Q/K/V; the mask (graph topology) is replicated — the
/// paper's observation that graph encodings share the attention layout, so
/// replicating them costs only `O(E)`.
///
/// Returns this rank's `[S/P, d]` output shard.
pub fn parallel_sparse_attention(
    comm: &Communicator,
    q_shard: &Tensor,
    k_shard: &Tensor,
    v_shard: &Tensor,
    total_heads: usize,
    mask: &CsrGraph,
) -> Tensor {
    let p = comm.world_size();
    assert_eq!(total_heads % p, 0, "heads must divide world size");
    let heads_local = total_heads / p;
    let (q, k, v) = relayout_qkv(comm, q_shard, k_shard, v_shard);
    let out = attention::sparse(&q, &k, &v, heads_local, mask, None).out;
    heads_to_shard(comm, &out)
}

/// Run the three Q/K/V sequence→head relayouts, pipelined when overlap is
/// on: K's chunk slicing happens while Q's all-to-all is in flight, V's
/// while K's is, and Q's assembly overlaps both. Handles are awaited in
/// issue order, so per-peer FIFO keeps each relayout's receives matched to
/// its sends and the assembled tensors are bit-identical to the
/// synchronous path.
fn relayout_qkv(
    comm: &Communicator,
    q_shard: &Tensor,
    k_shard: &Tensor,
    v_shard: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    if overlap_enabled() {
        let qp = shard_to_heads_begin(comm, q_shard);
        let kp = shard_to_heads_begin(comm, k_shard);
        let vp = shard_to_heads_begin(comm, v_shard);
        (qp.wait(), kp.wait(), vp.wait())
    } else {
        (
            shard_to_heads(comm, q_shard),
            shard_to_heads(comm, k_shard),
            shard_to_heads(comm, v_shard),
        )
    }
}

/// Distributed flash attention with the same layout (for the interleaved
/// fully-connected passes).
pub fn parallel_flash_attention(
    comm: &Communicator,
    q_shard: &Tensor,
    k_shard: &Tensor,
    v_shard: &Tensor,
    total_heads: usize,
) -> Tensor {
    let p = comm.world_size();
    assert_eq!(total_heads % p, 0);
    let heads_local = total_heads / p;
    let (q, k, v) = relayout_qkv(comm, q_shard, k_shard, v_shard);
    let out = attention::flash(&q, &k, &v, heads_local).out;
    heads_to_shard(comm, &out)
}

/// Average gradients across ranks (classic data parallelism, used for the
/// parameter path while sequences are parallelised).
pub fn all_reduce_mean(comm: &Communicator, grad: &Tensor) -> Tensor {
    let p = comm.world_size() as f32;
    let summed = comm.all_reduce_sum(grad.data().to_vec());
    let data = summed.into_iter().map(|v| v / p).collect();
    Tensor::from_vec(grad.rows(), grad.cols(), data)
}

/// Average every parameter gradient of `params` across ranks, in place.
///
/// With overlap on, the all-reduce for every parameter is *begun* before
/// the first is awaited, so later parameters' reductions are in flight
/// while earlier sums are folded and scaled — the optimizer-prep side of
/// the classic overlap split. Collectives are begun and awaited in
/// parameter order on every rank, so the per-rank collective-op sequence
/// (and therefore any [`torchgt_comm::FaultPlan`] crash/delay schedule)
/// is identical to the synchronous path, and the results are bit-identical.
pub fn all_reduce_mean_params(comm: &Communicator, params: &mut [&mut torchgt_tensor::Param]) {
    let p = comm.world_size() as f32;
    if overlap_enabled() {
        let pendings: Vec<PendingCollective<'_, Vec<f32>>> =
            params.iter().map(|q| comm.all_reduce_begin(q.grad.data().to_vec())).collect();
        for (q, pending) in params.iter_mut().zip(pendings) {
            let data: Vec<f32> = pending.wait().into_iter().map(|v| v / p).collect();
            q.grad = Tensor::from_vec(q.grad.rows(), q.grad.cols(), data);
        }
    } else {
        for q in params.iter_mut() {
            q.grad = all_reduce_mean(comm, &q.grad);
        }
    }
}

/// Run distributed sparse attention over `p` simulated ranks and reassemble
/// the full `[S, d]` output (driver used by examples, tests and benches).
pub fn run_distributed_attention(
    p: usize,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    mask: &CsrGraph,
) -> Tensor {
    let (s, _d) = q.shape();
    assert_eq!(s % p, 0, "sequence must divide world size");
    let s_local = s / p;
    let group = DeviceGroup::new(p);
    let shards = group.run(|comm| {
        let r = comm.rank();
        let qs = q.slice_rows(r * s_local, (r + 1) * s_local);
        let ks = k.slice_rows(r * s_local, (r + 1) * s_local);
        let vs = v.slice_rows(r * s_local, (r + 1) * s_local);
        parallel_sparse_attention(&comm, &qs, &ks, &vs, heads, mask)
    });
    let refs: Vec<&Tensor> = shards.iter().collect();
    Tensor::vstack(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::{clustered_power_law, ClusteredConfig};
    use torchgt_sparse::topology_mask;
    use torchgt_tensor::gradcheck::max_abs_diff;
    use torchgt_tensor::init;

    fn fixture(s: usize, d: usize) -> (Tensor, Tensor, Tensor, CsrGraph) {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: s, communities: 4, avg_degree: 6.0, intra_fraction: 0.8 },
            9,
        );
        let mask = topology_mask(&g, true);
        (
            init::normal(s, d, 0.0, 1.0, 1),
            init::normal(s, d, 0.0, 1.0, 2),
            init::normal(s, d, 0.0, 1.0, 3),
            mask,
        )
    }

    #[test]
    fn shard_roundtrip_is_identity() {
        let p = 4;
        let full = init::normal(32, 8, 0.0, 1.0, 5);
        let group = DeviceGroup::new(p);
        let shards = group.run(|comm| {
            let r = comm.rank();
            let local = full.slice_rows(r * 8, (r + 1) * 8);
            let heads = shard_to_heads(&comm, &local);
            heads_to_shard(&comm, &heads)
        });
        for (r, shard) in shards.iter().enumerate() {
            let expect = full.slice_rows(r * 8, (r + 1) * 8);
            assert_eq!(shard.data(), expect.data(), "rank {r}");
        }
    }

    #[test]
    fn distributed_sparse_matches_single_device() {
        let (q, k, v, mask) = fixture(48, 16);
        let single = attention::sparse(&q, &k, &v, 4, &mask, None).out;
        for p in [2usize, 4] {
            let dist = run_distributed_attention(p, &q, &k, &v, 4, &mask);
            assert!(
                max_abs_diff(&single, &dist) < 1e-4,
                "P={p} diff {}",
                max_abs_diff(&single, &dist)
            );
        }
    }

    #[test]
    fn distributed_flash_matches_single_device() {
        let (q, k, v, _) = fixture(32, 16);
        let single = attention::flash(&q, &k, &v, 4).out;
        let group = DeviceGroup::new(4);
        let shards = group.run(|comm| {
            let r = comm.rank();
            let qs = q.slice_rows(r * 8, (r + 1) * 8);
            let ks = k.slice_rows(r * 8, (r + 1) * 8);
            let vs = v.slice_rows(r * 8, (r + 1) * 8);
            parallel_flash_attention(&comm, &qs, &ks, &vs, 4)
        });
        let refs: Vec<&Tensor> = shards.iter().collect();
        let dist = Tensor::vstack(&refs);
        assert!(max_abs_diff(&single, &dist) < 1e-4);
    }

    #[test]
    fn comm_volume_matches_o_s_over_p() {
        // §III-C: per-GPU all-to-all volume is 4·S·d/P per attention call
        // (3 inbound Q/K/V + 1 outbound). Own-rank chunks never cross the
        // wire, so the measured volume is that times (P−1)/P.
        let (q, k, v, mask) = fixture(64, 16);
        let p = 4;
        let s_local = 64 / p;
        let group = DeviceGroup::new(p);
        group.run(|comm| {
            let r = comm.rank();
            let qs = q.slice_rows(r * s_local, (r + 1) * s_local);
            let ks = k.slice_rows(r * s_local, (r + 1) * s_local);
            let vs = v.slice_rows(r * s_local, (r + 1) * s_local);
            parallel_sparse_attention(&comm, &qs, &ks, &vs, 4, &mask)
        });
        let expected_per_rank = 4 * s_local * 16 * 4; // bytes, 4 all-to-alls
        let cross_fraction = (p - 1) as f64 / p as f64;
        let expected_total = (expected_per_rank * p) as f64 * cross_fraction;
        let measured = group.stats().bytes_sent() as f64;
        assert!(
            (measured - expected_total).abs() / expected_total < 0.01,
            "measured {measured}, expected {expected_total}"
        );
    }

    #[test]
    fn all_reduce_mean_averages() {
        let group = DeviceGroup::new(3);
        let outs = group.run(|comm| {
            let g = Tensor::full(2, 2, comm.rank() as f32);
            all_reduce_mean(&comm, &g)
        });
        for o in outs {
            assert_eq!(o.data(), &[1.0; 4]); // mean of 0,1,2
        }
    }
}
