//! Closed-loop straggler rebalancing (ROADMAP item 4).
//!
//! PR 5 left the loop open: `detect_stragglers` flagged slow ranks and
//! `reshard_exchange` could move tokens, but nothing connected the two.
//! This module closes it:
//!
//! * [`StepLedger`] — per-rank EWMA step-time estimates, fed from measured
//!   per-epoch compute time plus the comm layer's injected-delay ledger
//!   (the same ledger the median-multiple watchdog reads);
//! * [`RebalancePolicy`] / [`RebalanceController`] — fire when the
//!   max/mean imbalance exceeds a threshold for K consecutive epochs;
//! * [`weighted_token_assignment`] — token-conserving largest-remainder
//!   apportionment of the cluster-sorted token order by per-rank
//!   throughput;
//! * [`train_data_parallel_rebalance`] — a gradient-accumulation driver
//!   whose per-rank communication volume is proportional to the tokens it
//!   owns, executing fired rebalances online via
//!   [`reshard_exchange`](crate::elastic::reshard_exchange) and emitting
//!   [`Event::REBALANCE`] with before/after imbalance ratios.
//!
//! The driver's loss history is **bit-identical** across all four corners
//! of the overlap × rebalance ablation: each token's gradient is computed
//! by its owner against epoch-frozen parameters and broadcast verbatim, so
//! every rank folds the exact same bytes in global token order no matter
//! who owns what or whether the broadcasts were pipelined.

use crate::config::TrainConfig;
use crate::distributed::DistributedStats;
use crate::elastic::{cluster_token_assignment, reshard_exchange, tokens_conserved};
use crate::parallel::overlap_enabled;
use crate::preprocess::{prepare_node_dataset, Prepared};
use std::sync::Mutex;
use std::time::Instant;
use torchgt_comm::{
    CollectiveKind, Communicator, DeviceGroup, FaultPlan, PendingCollective, StragglerReport,
};
use torchgt_graph::NodeDataset;
use torchgt_model::{loss, Pattern, SequenceBatch, SequenceModel};
use torchgt_obs::{Event, RecorderHandle};
use torchgt_tensor::{Adam, Optimizer, Tensor};

/// Per-rank EWMA step-time ledger: the measurement side of the closed
/// loop. Observations are seconds-per-epoch charged to a *global* rank id;
/// the blended estimate survives rebalances so one fast epoch does not
/// erase a rank's history.
#[derive(Clone, Debug)]
pub struct StepLedger {
    alpha: f64,
    ewma: Vec<Option<f64>>,
    flags: Vec<usize>,
}

impl StepLedger {
    /// Ledger over `world` global ranks with the default smoothing 0.5.
    pub fn new(world: usize) -> Self {
        Self::with_alpha(world, 0.5)
    }

    /// Ledger with an explicit EWMA factor `alpha` in `(0, 1]` — the
    /// weight of the newest observation.
    pub fn with_alpha(world: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, ewma: vec![None; world], flags: vec![0; world] }
    }

    /// Record one step-time observation (seconds) for `rank`.
    pub fn observe(&mut self, rank: usize, seconds: f64) {
        let prev = self.ewma[rank];
        self.ewma[rank] = Some(match prev {
            Some(e) => self.alpha * seconds + (1.0 - self.alpha) * e,
            None => seconds,
        });
    }

    /// Route watchdog reports into the ledger: each flagged rank's
    /// accumulated injected delay becomes a step-time observation and its
    /// flag count is bumped. This is how drivers without direct per-rank
    /// timings (the elastic ladder) feed detection into the policy.
    pub fn observe_stragglers(&mut self, reports: &[StragglerReport]) {
        for r in reports {
            self.observe(r.rank, r.delay_s);
            self.flags[r.rank] += 1;
        }
    }

    /// How many times the watchdog has flagged `rank`.
    pub fn flags(&self, rank: usize) -> usize {
        self.flags[rank]
    }

    /// Current EWMA estimate for `rank`, seconds.
    pub fn ewma(&self, rank: usize) -> Option<f64> {
        self.ewma[rank]
    }

    /// Step-time imbalance over the `live` ranks: max/mean of the EWMA
    /// estimates. `1.0` (perfectly balanced) until at least two live ranks
    /// have observations or when the mean is not positive.
    pub fn imbalance(&self, live: &[usize]) -> f64 {
        let vals: Vec<f64> = live.iter().filter_map(|&r| self.ewma[r]).collect();
        if vals.len() < 2 {
            return 1.0;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        vals.iter().cloned().fold(f64::MIN, f64::max) / mean
    }

    /// Estimated seconds-per-token for each live rank given its current
    /// token count: `ewma / count`. Ranks without observations fall back
    /// to the mean of the observed estimates (or 1.0 when none exist).
    pub fn per_token_seconds(&self, live: &[usize], counts: &[usize]) -> Vec<f64> {
        assert_eq!(live.len(), counts.len());
        let observed: Vec<f64> = live
            .iter()
            .zip(counts)
            .filter_map(|(&r, &c)| self.ewma[r].map(|e| e / c.max(1) as f64))
            .collect();
        let fallback = if observed.is_empty() {
            1.0
        } else {
            observed.iter().sum::<f64>() / observed.len() as f64
        };
        live.iter()
            .zip(counts)
            .map(|(&r, &c)| self.ewma[r].map_or(fallback, |e| e / c.max(1) as f64))
            .collect()
    }
}

torchgt_compat::json_struct! {
    /// When the closed loop fires: the measured step-time imbalance
    /// (max/mean EWMA) must exceed `threshold` for `patience` consecutive
    /// epochs. `alpha` is the ledger's EWMA smoothing factor.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct RebalancePolicy {
        /// Imbalance ratio above which an epoch counts as skewed.
        pub threshold: f64,
        /// Consecutive skewed epochs required before rebalancing.
        pub patience: usize,
        /// EWMA weight of the newest step-time observation.
        pub alpha: f64,
    }
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        Self { threshold: 1.5, patience: 2, alpha: 0.5 }
    }
}

/// The decision side of the closed loop: counts consecutive over-threshold
/// epochs and fires when patience runs out.
#[derive(Clone, Debug)]
pub struct RebalanceController {
    /// The policy being enforced.
    pub policy: RebalancePolicy,
    over: usize,
}

impl RebalanceController {
    /// Controller enforcing `policy`.
    pub fn new(policy: RebalancePolicy) -> Self {
        Self { policy, over: 0 }
    }

    /// Record one epoch's measured imbalance; returns `true` when the
    /// policy says to rebalance now.
    pub fn observe(&mut self, imbalance: f64) -> bool {
        if imbalance > self.policy.threshold {
            self.over += 1;
        } else {
            self.over = 0;
        }
        self.over >= self.policy.patience.max(1)
    }

    /// Restart the patience window (called after a rebalance executes).
    pub fn reset(&mut self) {
        self.over = 0;
    }
}

/// Token-conserving weighted assignment: cut the cluster-sorted token
/// order into contiguous chunks apportioned to `weights` (per live rank,
/// higher = more tokens) by the largest-remainder method. Every rank keeps
/// at least one token while `n >= live.len()`; degenerate weights (all
/// zero/negative) fall back to the balanced cut.
pub fn weighted_token_assignment(clusters: &[u32], live: &[usize], weights: &[f64]) -> Vec<u32> {
    assert_eq!(live.len(), weights.len(), "one weight per live rank");
    assert!(!live.is_empty(), "token assignment needs at least one live rank");
    let n = clusters.len();
    let p = live.len();
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if total <= 0.0 {
        return cluster_token_assignment(clusters, live);
    }
    let shares: Vec<f64> = weights.iter().map(|w| w.max(0.0) / total * n as f64).collect();
    let min_take = usize::from(n >= p);
    let mut take: Vec<usize> =
        shares.iter().map(|s| (s.floor() as usize).max(min_take)).collect();
    let mut sum: usize = take.iter().sum();
    // Largest remainder: hand out missing tokens to the most-shortchanged
    // ranks; claw back overshoot from the most-overfull (ties break on the
    // lowest index, keeping the cut deterministic).
    while sum < n {
        let mut best = 0usize;
        let mut best_gap = f64::MIN;
        for i in 0..p {
            let gap = shares[i] - take[i] as f64;
            if gap > best_gap {
                best_gap = gap;
                best = i;
            }
        }
        take[best] += 1;
        sum += 1;
    }
    while sum > n {
        let mut best = None;
        let mut best_excess = f64::MIN;
        for i in 0..p {
            if take[i] <= min_take {
                continue;
            }
            let excess = take[i] as f64 - shares[i];
            if excess > best_excess {
                best_excess = excess;
                best = Some(i);
            }
        }
        let i = best.expect("sum > n implies some rank is above its floor");
        take[i] -= 1;
        sum -= 1;
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&t| clusters[t as usize]); // stable: ties keep token order
    let mut assignment = vec![0u32; n];
    let mut cursor = 0usize;
    for (i, &g) in live.iter().enumerate() {
        for &t in &order[cursor..cursor + take[i]] {
            assignment[t as usize] = g as u32;
        }
        cursor += take[i];
    }
    assignment
}

/// Tokens owned by each live rank under `assignment`, live order.
pub fn rank_counts(assignment: &[u32], live: &[usize]) -> Vec<usize> {
    live.iter()
        .map(|&g| assignment.iter().filter(|&&a| a as usize == g).count())
        .collect()
}

/// Predicted step-time imbalance (max/mean) of an assignment giving each
/// rank `counts[i]` tokens at `per_token_s[i]` seconds each.
pub fn predicted_imbalance(per_token_s: &[f64], counts: &[usize]) -> f64 {
    assert_eq!(per_token_s.len(), counts.len());
    let times: Vec<f64> =
        per_token_s.iter().zip(counts).map(|(&t, &c)| t * c as f64).collect();
    if times.is_empty() {
        return 1.0;
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    times.iter().cloned().fold(f64::MIN, f64::max) / mean
}

torchgt_compat::json_struct! {
    /// Result of a closed-loop (or static-ablation) rebalance run.
    #[derive(Clone, Debug)]
    pub struct RebalanceStats {
        /// The distributed stats; `epoch_losses` is identical on every
        /// rank and independent of the token assignment.
        pub stats: DistributedStats,
        /// How many times the closed loop fired and resharded.
        pub rebalances: usize,
        /// Tokens shipped across all rebalances.
        pub moved_tokens: usize,
        /// Driver-measured wall-clock seconds per epoch.
        pub epoch_seconds: Vec<f64>,
        /// Measured step-time imbalance (max/mean EWMA) after each epoch.
        pub imbalance_history: Vec<f64>,
        /// Tokens per rank when the run finished, global-rank order.
        pub final_counts: Vec<usize>,
    }
}

/// Persistent per-rank training state: lives across the per-epoch
/// [`DeviceGroup::run`] calls so rebalances never reset the model.
struct RankState {
    model: Box<dyn SequenceModel>,
    opt: Adam,
}

/// What one rank reports back from an epoch.
struct EpochOut {
    /// Seconds this rank spent computing gradients for its own tokens.
    active_s: f64,
    /// Mean training loss over all tokens (identical on every rank).
    loss: f32,
}

/// Train with per-token gradient accumulation under closed-loop straggler
/// rebalancing. Each epoch walks the tokens in global order: the owner
/// computes the gradient against epoch-frozen parameters and broadcasts
/// it (so per-rank comm volume — and any injected slow-rank delay — is
/// proportional to owned tokens); every rank folds the broadcast bytes
/// into an accumulator and applies one optimizer step per epoch. With
/// overlap on, the owner's next gradient is computed while the previous
/// broadcast is still in flight.
///
/// Between epochs the driver feeds measured compute time plus the comm
/// layer's injected-delay ledger into a [`StepLedger`]; when `policy` is
/// `Some` and the [`RebalanceController`] fires, a throughput-weighted
/// assignment is installed online via `reshard_exchange` and a
/// [`Event::REBALANCE`] event records the before/after imbalance.
/// `policy = None` is the static-assignment ablation baseline.
pub fn train_data_parallel_rebalance<F>(
    dataset: &NodeDataset,
    cfg: TrainConfig,
    world: usize,
    factory: F,
    plan: FaultPlan,
    policy: Option<RebalancePolicy>,
    recorder: RecorderHandle,
) -> RebalanceStats
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    assert!(world >= 1);
    let mut group = DeviceGroup::with_recorder(world, recorder.clone());
    group.set_fault_plan(Some(plan));
    let prepared = prepare_node_dataset(dataset, cfg.seq_len, false, 1, cfg.seed);
    let nseq = prepared.sequences.len();
    assert!(nseq > 0, "dataset produced no sequences");
    // Sequences come out of preprocessing in cluster-contiguous order, so
    // identity "clusters" keep the weighted cut cluster-aware.
    let seq_clusters: Vec<u32> = (0..nseq as u32).collect();
    let live: Vec<usize> = group.membership().live_ranks().to_vec();
    let mut assignment = cluster_token_assignment(&seq_clusters, &live);
    let mut ledger = StepLedger::with_alpha(world, policy.map_or(0.5, |p| p.alpha));
    let mut controller = policy.map(RebalanceController::new);
    let states: Vec<Mutex<Option<RankState>>> = (0..world).map(|_| Mutex::new(None)).collect();

    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut epoch_seconds = Vec::with_capacity(cfg.epochs);
    let mut imbalance_history = Vec::with_capacity(cfg.epochs);
    let mut rebalances = 0usize;
    let mut moved_tokens = 0usize;
    for epoch in 0..cfg.epochs {
        let assignment_ref = &assignment;
        let t0 = Instant::now();
        let outs = group.run(|comm| {
            run_epoch_rebalance(&comm, &prepared, cfg, &factory, &states, assignment_ref)
        });
        epoch_seconds.push(t0.elapsed().as_secs_f64());
        epoch_losses.push(outs[0].loss);
        // Feed the ledger: measured compute plus the injected-delay ledger
        // (the same one the watchdog reads), per global rank.
        let delays = group.injected_delays();
        for (i, &g) in live.iter().enumerate() {
            let injected =
                delays.iter().find(|(r, _)| *r == g).map_or(0.0, |&(_, d)| d);
            ledger.observe(g, outs[i].active_s + injected);
        }
        // Watchdog events ride along for observability; the ledger already
        // holds richer (compute + delay) observations for these ranks.
        let _reports = group.detect_stragglers(cfg.recovery.straggler_multiple);
        let imbalance = ledger.imbalance(&live);
        imbalance_history.push(imbalance);
        if let Some(ctl) = controller.as_mut() {
            if ctl.observe(imbalance) && epoch + 1 < cfg.epochs {
                let counts = rank_counts(&assignment, &live);
                let per_token = ledger.per_token_seconds(&live, &counts);
                let weights: Vec<f64> =
                    per_token.iter().map(|&t| 1.0 / t.max(f64::EPSILON)).collect();
                let new_assignment =
                    weighted_token_assignment(&seq_clusters, &live, &weights);
                let outcome = reshard_exchange(&group, &assignment, &new_assignment);
                assert!(
                    tokens_conserved(nseq, &outcome.held),
                    "rebalance reshard lost or duplicated tokens"
                );
                let new_counts = rank_counts(&new_assignment, &live);
                let after = predicted_imbalance(&per_token, &new_counts);
                if recorder.enabled() {
                    recorder.event(Event::rebalance(
                        epoch,
                        group.generation(),
                        outcome.moved,
                        imbalance,
                        after,
                    ));
                }
                assignment = new_assignment;
                rebalances += 1;
                moved_tokens += outcome.moved;
                ctl.reset();
            }
        }
    }
    let stats = group.stats();
    RebalanceStats {
        stats: DistributedStats {
            epoch_losses,
            grad_bytes: stats.bytes_sent(),
            all_reduces: stats.ops(CollectiveKind::AllReduce),
            world,
        },
        rebalances,
        moved_tokens,
        epoch_seconds,
        imbalance_history,
        final_counts: rank_counts(&assignment, &live),
    }
}

/// One rank's epoch: walk every token in global order, compute-and-
/// broadcast when owner, fold the broadcast gradient either way. The fold
/// order (global token order) and the folded bytes (owner-computed against
/// epoch-frozen parameters) are independent of both the assignment and the
/// overlap mode — the bit-parity guarantee.
fn run_epoch_rebalance<F>(
    comm: &Communicator,
    prepared: &Prepared,
    cfg: TrainConfig,
    factory: &F,
    states: &[Mutex<Option<RankState>>],
    assignment: &[u32],
) -> EpochOut
where
    F: Fn() -> Box<dyn SequenceModel> + Sync,
{
    let me = comm.global_rank();
    let mut guard = states[me].lock().expect("rank state poisoned");
    let state = guard
        .get_or_insert_with(|| RankState { model: factory(), opt: Adam::with_lr(cfg.lr) });
    let RankState { model, opt } = state;
    model.set_training(true);
    let train_pos = prepared.train_positions();
    let n = prepared.sequences.len();
    let overlap = overlap_enabled();
    let flat_len: usize =
        model.params_mut().iter().map(|p| p.grad.data().len()).sum::<usize>() + 1;
    let mut acc = vec![0.0f32; flat_len];
    let mut active_s = 0.0f64;
    let fold = |acc: &mut [f32], data: Vec<f32>| {
        assert_eq!(data.len(), acc.len(), "broadcast payload shape mismatch");
        for (a, v) in acc.iter_mut().zip(data) {
            *a += v;
        }
    };
    let mut inflight: Option<PendingCollective<'_, Vec<f32>>> = None;
    for t in 0..n {
        // Full world, no shrink: dense rank ids equal global ids.
        let root = assignment[t] as usize;
        let payload: Option<Vec<f32>> = if root == me {
            let start = Instant::now();
            let seq = &prepared.sequences[t];
            let batch =
                SequenceBatch { features: &seq.features, graph: &seq.graph, spd: None };
            let pattern = Pattern::Sparse(&seq.mask);
            let logits = model.forward(&batch, pattern);
            let (l, dlogits) =
                loss::masked_softmax_cross_entropy(&logits, &seq.labels, &train_pos[t]);
            model.backward(&batch, pattern, &dlogits);
            let mut flat = Vec::with_capacity(flat_len);
            for p in model.params_mut() {
                flat.extend_from_slice(p.grad.data());
                // Clear so the next owned token's backward starts fresh.
                p.grad = Tensor::zeros(p.grad.rows(), p.grad.cols());
            }
            flat.push(l);
            active_s += start.elapsed().as_secs_f64();
            Some(flat)
        } else {
            None
        };
        if overlap {
            // Begin token t's broadcast, then fold t−1 while t is in
            // flight; the owner of t+1 computes its gradient before t is
            // awaited (parameters are frozen for the whole epoch, so that
            // compute is independent of every in-flight broadcast).
            let pending = comm.broadcast_begin(root, payload);
            if let Some(prev) = inflight.take() {
                fold(&mut acc, prev.wait());
            }
            inflight = Some(pending);
        } else {
            fold(&mut acc, comm.broadcast(root, payload));
        }
    }
    if let Some(prev) = inflight.take() {
        fold(&mut acc, prev.wait());
    }
    // One optimizer step per epoch on the token-mean gradient; every rank
    // applies the identical update, keeping the replicas in lockstep.
    let inv = 1.0 / n as f32;
    let mut params = model.params_mut();
    let mut off = 0usize;
    for p in params.iter_mut() {
        let len = p.grad.data().len();
        let data: Vec<f32> = acc[off..off + len].iter().map(|&v| v * inv).collect();
        p.grad = Tensor::from_vec(p.grad.rows(), p.grad.cols(), data);
        off += len;
    }
    opt.step(&mut params);
    EpochOut { active_s, loss: acc[off] * inv }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Method;
    use torchgt_graph::DatasetKind;
    use torchgt_model::{Gt, GtConfig};

    fn dataset() -> NodeDataset {
        DatasetKind::OgbnArxiv.generate_node(0.004, 23)
    }

    fn cfg(epochs: usize) -> TrainConfig {
        let mut c = TrainConfig::new(Method::GpSparse, 64, epochs);
        c.lr = 2e-3;
        c.seed = 7;
        c
    }

    fn factory(d: &NodeDataset) -> impl Fn() -> Box<dyn SequenceModel> + Sync + '_ {
        move || Box::new(Gt::new(GtConfig::tiny(d.feat_dim, d.num_classes), 11))
    }

    #[test]
    fn weighted_assignment_conserves_and_follows_weights() {
        let clusters: Vec<u32> = (0..24).collect();
        let live = vec![0usize, 1, 2];
        let a = weighted_token_assignment(&clusters, &live, &[2.0, 1.0, 1.0]);
        let counts = rank_counts(&a, &live);
        assert_eq!(counts.iter().sum::<usize>(), 24);
        assert_eq!(counts, vec![12, 6, 6]);
        // Degenerate weights fall back to the balanced cut.
        let b = weighted_token_assignment(&clusters, &live, &[0.0, 0.0, 0.0]);
        assert_eq!(b, cluster_token_assignment(&clusters, &live));
        // Every rank keeps at least one token even under extreme skew.
        let c = weighted_token_assignment(&clusters, &live, &[1e9, 1.0, 1e-9]);
        let counts = rank_counts(&c, &live);
        assert!(counts.iter().all(|&c| c >= 1), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 24);
    }

    #[test]
    fn ledger_ewma_blends_and_measures_imbalance() {
        let mut l = StepLedger::with_alpha(3, 0.5);
        assert_eq!(l.imbalance(&[0, 1, 2]), 1.0); // no observations yet
        l.observe(0, 1.0);
        l.observe(1, 1.0);
        l.observe(2, 4.0);
        assert_eq!(l.ewma(2), Some(4.0));
        l.observe(2, 2.0);
        assert_eq!(l.ewma(2), Some(3.0)); // 0.5·2 + 0.5·4
        let imb = l.imbalance(&[0, 1, 2]);
        assert!(imb > 1.5, "imbalance {imb}");
        // Per-token estimates divide by the current token count.
        let taus = l.per_token_seconds(&[0, 1, 2], &[2, 2, 2]);
        assert!((taus[0] - 0.5).abs() < 1e-12);
        assert!((taus[2] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn controller_needs_consecutive_skewed_epochs() {
        let mut ctl = RebalanceController::new(RebalancePolicy {
            threshold: 1.5,
            patience: 2,
            alpha: 0.5,
        });
        assert!(!ctl.observe(2.0));
        assert!(!ctl.observe(1.2)); // dip resets the window
        assert!(!ctl.observe(2.0));
        assert!(ctl.observe(2.0)); // second consecutive skewed epoch fires
        ctl.reset();
        assert!(!ctl.observe(2.0));
    }

    #[test]
    fn stragglers_feed_the_ledger() {
        let mut l = StepLedger::new(4);
        l.observe_stragglers(&[StragglerReport {
            rank: 2,
            delay_s: 0.25,
            median_s: 0.01,
            measured_multiple: 25.0,
        }]);
        assert_eq!(l.ewma(2), Some(0.25));
        assert_eq!(l.flags(2), 1);
        assert_eq!(l.flags(0), 0);
    }

    #[test]
    fn closed_loop_rebalances_away_from_slow_rank_with_bit_identical_losses() {
        let d = dataset();
        let world = 3;
        let epochs = 4;
        let plan = FaultPlan::slow(1, 0.002);
        let policy = RebalancePolicy { threshold: 1.3, patience: 1, alpha: 0.5 };
        let run = |rebalance: bool, overlap: &str| {
            std::env::set_var("TORCHGT_OVERLAP", overlap);
            let out = train_data_parallel_rebalance(
                &d,
                cfg(epochs),
                world,
                factory(&d),
                plan,
                rebalance.then_some(policy),
                torchgt_obs::noop(),
            );
            std::env::remove_var("TORCHGT_OVERLAP");
            out
        };
        let closed = run(true, "on");
        let still = run(false, "on");
        let closed_sync = run(true, "off");
        // The loop fired and shifted tokens off the slow rank.
        assert!(closed.rebalances >= 1, "imbalance {:?}", closed.imbalance_history);
        assert!(closed.moved_tokens > 0);
        let static_counts = still.final_counts.clone();
        assert!(
            closed.final_counts[1] < static_counts[1],
            "slow rank should own fewer tokens: {:?} vs {:?}",
            closed.final_counts,
            static_counts
        );
        assert_eq!(still.rebalances, 0);
        // Loss histories are bit-identical across the rebalance toggle and
        // the overlap toggle: the fold is owner-exact in token order.
        assert_eq!(closed.stats.epoch_losses.len(), epochs);
        for ((a, b), c) in closed
            .stats
            .epoch_losses
            .iter()
            .zip(&still.stats.epoch_losses)
            .zip(&closed_sync.stats.epoch_losses)
        {
            assert_eq!(a.to_bits(), b.to_bits(), "rebalance changed the losses");
            assert_eq!(a.to_bits(), c.to_bits(), "overlap changed the losses");
        }
        // Losses actually train.
        let first = closed.stats.epoch_losses[0];
        let last = *closed.stats.epoch_losses.last().unwrap();
        assert!(last < first, "{:?}", closed.stats.epoch_losses);
    }
}
