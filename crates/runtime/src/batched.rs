//! Batched graph-level training via graph packing.
//!
//! The paper's graph-level pipeline concatenates each graph's nodes into a
//! sequence; production training packs *several* graphs per sequence. The
//! attention pattern keeps members independent (block-diagonal masks), so
//! even the "fully-connected" interleave pass is expressed as a pack of
//! per-graph complete blocks — attention never leaks across graphs, while
//! projections/FFN/optimizer amortise over the whole batch.

use crate::config::{Method, TrainConfig};
use crate::interleave::{Decision, InterleaveScheduler};
use crate::trainer::EpochStats;
use std::time::Instant;
use torchgt_graph::generators::complete_graph;
use torchgt_graph::pack::{pack_graphs, segment_mean, segment_mean_backward};
use torchgt_graph::{CsrGraph, GraphDataset, GraphLabel};
use torchgt_model::{loss, Pattern, SequenceBatch, SequenceModel};
use torchgt_obs::{RecorderHandle, SpanGuard};
use torchgt_sparse::topology_mask;
use torchgt_tensor::{Adam, Optimizer, Tensor, Workspace};

/// One packed batch, ready to train on.
struct PackedBatch {
    features: Tensor,
    graph: CsrGraph,
    sparse_mask: CsrGraph,
    full_mask: CsrGraph,
    segments: Vec<(usize, usize)>,
    labels: Vec<GraphLabel>,
}

/// Graph-level trainer that packs `batch_size` graphs per iteration.
pub struct BatchedGraphTrainer {
    /// Run configuration.
    pub cfg: TrainConfig,
    model: Box<dyn SequenceModel>,
    opt: Adam,
    batches: Vec<PackedBatch>,
    test_batches: Vec<PackedBatch>,
    scheduler: InterleaveScheduler,
    epoch: usize,
    /// Scratch arena reused across batches and epochs (not checkpointed).
    ws: Workspace,
    recorder: RecorderHandle,
}

fn build_batches(dataset: &GraphDataset, idxs: &[usize], batch_size: usize) -> Vec<PackedBatch> {
    idxs.chunks(batch_size)
        .map(|chunk| {
            let members: Vec<&CsrGraph> = chunk.iter().map(|&i| &dataset.samples[i].graph).collect();
            let packed = pack_graphs(&members);
            let sparse_mask = topology_mask(&packed.graph, true);
            // "Full" attention per member graph: a pack of complete blocks.
            let completes: Vec<CsrGraph> =
                members.iter().map(|g| complete_graph(g.num_nodes()).with_self_loops()).collect();
            let complete_refs: Vec<&CsrGraph> = completes.iter().collect();
            let full_mask = pack_graphs(&complete_refs).graph;
            let total: usize = members.iter().map(|g| g.num_nodes()).sum();
            let feat_dim = dataset.feat_dim;
            let mut features = Tensor::zeros(total, feat_dim);
            let mut row = 0usize;
            for &i in chunk {
                let s = &dataset.samples[i];
                for v in 0..s.graph.num_nodes() {
                    features
                        .row_mut(row)
                        .copy_from_slice(&s.features[v * feat_dim..(v + 1) * feat_dim]);
                    row += 1;
                }
            }
            PackedBatch {
                features,
                graph: packed.graph,
                sparse_mask,
                full_mask,
                segments: packed.segments,
                labels: chunk.iter().map(|&i| dataset.samples[i].label).collect(),
            }
        })
        .collect()
}

impl BatchedGraphTrainer {
    /// Build from a dataset with the given per-iteration `batch_size`
    /// (80/20 train/test split by sample order, as in [`crate::GraphTrainer`]).
    pub fn new(
        cfg: TrainConfig,
        dataset: &GraphDataset,
        model: Box<dyn SequenceModel>,
        batch_size: usize,
    ) -> Self {
        assert!(batch_size >= 1);
        let n = dataset.len();
        let split = n * 8 / 10;
        let train_idx: Vec<usize> = (0..split).collect();
        let test_idx: Vec<usize> = (split..n).collect();
        Self {
            scheduler: InterleaveScheduler::new(cfg.interleave_period),
            opt: Adam::with_lr(cfg.lr),
            batches: build_batches(dataset, &train_idx, batch_size),
            test_batches: build_batches(dataset, &test_idx, batch_size),
            epoch: 0,
            ws: Workspace::new(),
            recorder: torchgt_obs::noop(),
            model,
            cfg,
        }
    }

    /// Number of training batches per epoch.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    fn forward_batch(&mut self, bi: usize, decision: Decision, train: bool) -> (f32, f64) {
        let batch_store = if train { &self.batches } else { &self.test_batches };
        let b = &batch_store[bi];
        let mask = match (self.cfg.method, decision) {
            (Method::GpRaw | Method::GpFlash, _) | (_, Decision::Full) => &b.full_mask,
            _ => &b.sparse_mask,
        };
        let pattern = Pattern::Sparse(mask);
        let sb = SequenceBatch { features: &b.features, graph: &b.graph, spd: None };
        let token_logits = self.model.forward_ws(&sb, pattern, &mut self.ws);
        let cols = token_logits.cols();
        let pooled = segment_mean(token_logits.data(), cols, &b.segments);
        let glogits = Tensor::from_vec(b.segments.len(), cols, pooled);
        // Loss + metric over the member graphs.
        let mut total_loss = 0.0f32;
        let mut metric = 0.0f64;
        let mut dglogits = Tensor::zeros(b.segments.len(), cols);
        for (s, &label) in b.labels.iter().enumerate() {
            let row = glogits.slice_rows(s, s + 1);
            match label {
                GraphLabel::Class(c) => {
                    let (l, dl) = loss::softmax_cross_entropy(&row, &[c]);
                    total_loss += l;
                    metric += loss::accuracy(&row, &[c], None);
                    dglogits.row_mut(s).copy_from_slice(dl.row(0));
                }
                GraphLabel::Value(v) => {
                    let (l, dl) = loss::mae_loss(&row, &[v]);
                    total_loss += l;
                    metric -= (row.get(0, 0) - v).abs() as f64;
                    dglogits.row_mut(s).copy_from_slice(dl.row(0));
                }
            }
        }
        let count = b.labels.len().max(1);
        if train {
            let dtokens = segment_mean_backward(
                dglogits.data(),
                cols,
                &b.segments,
                token_logits.rows(),
            );
            let dtokens = Tensor::from_vec(token_logits.rows(), cols, dtokens);
            self.model.backward_ws(&sb, pattern, &dtokens, &mut self.ws);
            self.ws.give(dtokens);
            self.opt.step(&mut self.model.params_mut());
        }
        self.ws.give(token_logits);
        (total_loss / count as f32, metric / count as f64)
    }

    /// Route observability signals to `recorder`.
    pub fn attach_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Run one epoch over the training batches.
    pub fn train_epoch(&mut self) -> EpochStats {
        let t0 = Instant::now();
        let _epoch_span = SpanGuard::new(&self.recorder, "train_epoch");
        self.model.set_training(true);
        let on = self.recorder.enabled();
        let ws0 = on.then(|| self.ws.stats());
        let mut total_loss = 0.0f32;
        let mut sparse_iters = 0usize;
        let mut full_iters = 0usize;
        for bi in 0..self.batches.len() {
            let decision = match self.cfg.method {
                Method::GpRaw | Method::GpFlash => Decision::Full,
                Method::GpSparse => Decision::Sparse,
                Method::TorchGt => {
                    // Packed masks are rebuilt with repair, so the report is
                    // condition-satisfying; just follow the period.
                    let rep = torchgt_graph::check_conditions(
                        &self.batches[bi].sparse_mask,
                        u8::MAX - 1,
                    );
                    self.scheduler.decide_with_report(&rep)
                }
            };
            match decision {
                Decision::Sparse => sparse_iters += 1,
                Decision::Full => full_iters += 1,
            }
            let (l, _) = self.forward_batch(bi, decision, true);
            total_loss += l;
        }
        let mean_loss = total_loss / self.batches.len().max(1) as f32;
        // Numerical-health guard (see NodeTrainer::train_epoch).
        if on && !mean_loss.is_finite() {
            self.recorder.event(torchgt_obs::Event::loss_nonfinite(self.epoch, mean_loss as f64));
        }
        let (train_m, test_m) = self.evaluate();
        let stats = EpochStats {
            epoch: self.epoch,
            loss: mean_loss,
            train_acc: train_m,
            test_acc: test_m,
            wall_seconds: t0.elapsed().as_secs_f64(),
            sim_seconds: 0.0,
            sparse_iters,
            full_iters,
            beta_thre: 0.0,
        };
        if on {
            self.recorder.counter_add("iterations", self.batches.len() as u64);
            // Epoch-granular memory discipline (this trainer has no per-step
            // traces): fresh arena bytes and pool hits over the whole epoch.
            let ws1 = self.ws.stats();
            let ws0 = ws0.expect("stats snapshot taken when recorder is on");
            self.recorder.gauge_set("alloc_bytes", (ws1.alloc_bytes - ws0.alloc_bytes) as f64);
            self.recorder
                .gauge_set("arena_reuse_hits", (ws1.reuse_hits - ws0.reuse_hits) as f64);
        }
        self.epoch += 1;
        stats
    }

    /// Evaluate mean metric over train and test batches.
    pub fn evaluate(&mut self) -> (f64, f64) {
        self.model.set_training(false);
        let mut train_m = 0.0;
        for bi in 0..self.batches.len() {
            train_m += self.eval_batch(bi, true);
        }
        let mut test_m = 0.0;
        for bi in 0..self.test_batches.len() {
            test_m += self.eval_batch(bi, false);
        }
        self.model.set_training(true);
        (
            train_m / self.batches.len().max(1) as f64,
            test_m / self.test_batches.len().max(1) as f64,
        )
    }

    fn eval_batch(&mut self, bi: usize, train: bool) -> f64 {
        let batch_store = if train { &self.batches } else { &self.test_batches };
        let b = &batch_store[bi];
        let sb = SequenceBatch { features: &b.features, graph: &b.graph, spd: None };
        let pattern = Pattern::Sparse(&b.sparse_mask);
        let token_logits = self.model.forward_ws(&sb, pattern, &mut self.ws);
        let cols = token_logits.cols();
        let pooled = segment_mean(token_logits.data(), cols, &b.segments);
        let glogits = Tensor::from_vec(b.segments.len(), cols, pooled);
        self.ws.give(token_logits);
        let mut metric = 0.0f64;
        for (s, &label) in b.labels.iter().enumerate() {
            let row = glogits.slice_rows(s, s + 1);
            match label {
                GraphLabel::Class(c) => metric += loss::accuracy(&row, &[c], None),
                GraphLabel::Value(v) => metric -= (row.get(0, 0) - v).abs() as f64,
            }
        }
        metric / b.labels.len().max(1) as f64
    }

    /// Train for the configured number of epochs.
    pub fn run(&mut self) -> Vec<EpochStats> {
        (0..self.cfg.epochs).map(|_| self.train_epoch()).collect()
    }
}

impl crate::traits::Trainer for BatchedGraphTrainer {
    fn cfg(&self) -> &TrainConfig {
        &self.cfg
    }

    fn attach_recorder(&mut self, recorder: RecorderHandle) {
        BatchedGraphTrainer::attach_recorder(self, recorder);
    }

    fn train_epoch(&mut self) -> EpochStats {
        BatchedGraphTrainer::train_epoch(self)
    }

    fn evaluate(&mut self) -> (f64, f64) {
        BatchedGraphTrainer::evaluate(self)
    }

    fn epoch(&self) -> usize {
        self.epoch
    }

    fn snapshot(&mut self) -> torchgt_ckpt::Snapshot {
        let (iteration, sparse, full) = self.scheduler.export_state();
        let mut state = torchgt_ckpt::TrainerState::basic(self.epoch, self.opt.steps());
        state.rng_streams = self.model.rng_state();
        state.scheduler = Some(torchgt_ckpt::SchedulerState {
            iteration: iteration as u64,
            sparse_iters: sparse as u64,
            full_iters: full as u64,
        });
        crate::resume::capture_model(self.model.as_mut(), state)
    }

    fn restore(&mut self, snapshot: &torchgt_ckpt::Snapshot) -> std::io::Result<()> {
        crate::resume::restore_model(self.model.as_mut(), &mut self.opt, snapshot)?;
        if let Some(s) = &snapshot.state.scheduler {
            self.scheduler.restore_state(
                s.iteration as usize,
                s.sparse_iters as usize,
                s.full_iters as usize,
            );
        }
        self.epoch = snapshot.state.epoch;
        Ok(())
    }

    fn run(&mut self) -> Vec<EpochStats> {
        BatchedGraphTrainer::run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::DatasetKind;
    use torchgt_model::{Graphormer, GraphormerConfig};

    fn tiny_graphormer(feat: usize, out: usize) -> Box<dyn SequenceModel> {
        Box::new(Graphormer::new(
            GraphormerConfig {
                feat_dim: feat,
                hidden: 16,
                layers: 2,
                heads: 2,
                ffn_mult: 2,
                out_dim: out,
                max_degree: 16,
                max_spd: 4,
                dropout: 0.0,
            },
            5,
        ))
    }

    #[test]
    fn batched_forward_equals_per_graph_forward() {
        // Block-diagonal masks keep members independent: pooled logits of a
        // packed batch must equal running each graph alone (Graphormer has
        // no cross-graph state; dropout off).
        let data = DatasetKind::OgbgMolpcba.generate_graphs(6, 1.0, 13);
        let mut batched = BatchedGraphTrainer::new(
            TrainConfig::new(Method::GpSparse, 64, 1),
            &data,
            tiny_graphormer(data.feat_dim, 6),
            3,
        );
        batched.model.set_training(false);
        // Pooled metric from the packed batch.
        let packed_metric = batched.eval_batch(0, true);
        // Per-graph metric with an identical model.
        let mut single = BatchedGraphTrainer::new(
            TrainConfig::new(Method::GpSparse, 64, 1),
            &data,
            tiny_graphormer(data.feat_dim, 6),
            1,
        );
        single.model.set_training(false);
        let mut per_graph = 0.0;
        for bi in 0..3 {
            per_graph += single.eval_batch(bi, true);
        }
        per_graph /= 3.0;
        assert!(
            (packed_metric - per_graph).abs() < 1e-5,
            "packed {packed_metric} vs per-graph {per_graph}"
        );
    }

    #[test]
    fn batched_training_reduces_loss() {
        let data = DatasetKind::OgbgMolpcba.generate_graphs(24, 1.0, 21);
        let mut cfg = TrainConfig::new(Method::TorchGt, 64, 5);
        cfg.lr = 3e-3;
        cfg.interleave_period = 3;
        let mut t = BatchedGraphTrainer::new(cfg, &data, tiny_graphormer(data.feat_dim, 6), 4);
        let stats = t.run();
        assert!(
            stats.last().unwrap().loss < stats.first().unwrap().loss,
            "{} → {}",
            stats.first().unwrap().loss,
            stats.last().unwrap().loss
        );
        // Interleave engaged in batched mode too.
        let full: usize = stats.iter().map(|s| s.full_iters).sum();
        assert!(full > 0);
    }

    #[test]
    fn batch_count_math() {
        let data = DatasetKind::Zinc.generate_graphs(10, 1.0, 3);
        let t = BatchedGraphTrainer::new(
            TrainConfig::new(Method::GpSparse, 64, 1),
            &data,
            tiny_graphormer(data.feat_dim, 1),
            3,
        );
        // 8 train samples in batches of 3 → 3 batches.
        assert_eq!(t.num_batches(), 3);
    }
}
