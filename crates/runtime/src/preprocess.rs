//! Pre-processing pipeline: cluster partitioning, node reordering, sequence
//! chunking and attention-mask construction.
//!
//! This is the "runtime level" of the paper's Figure 3/4: the input graph is
//! METIS-partitioned, nodes are relabelled so clusters are contiguous, the
//! sequence is chunked, and each chunk gets its topology mask (later
//! reformed at the kernel level). §IV-E measures this stage's cost against
//! total training time — [`Prepared::preprocess_seconds`] records it.

use std::time::Instant;
use torchgt_graph::partition::{cluster_order, partition, ClusterOrder};
use torchgt_graph::{CsrGraph, NodeDataset};
use torchgt_sparse::{topology_mask, access_profile, AccessProfile};
use torchgt_tensor::Tensor;

/// One training sequence: a contiguous chunk of (reordered) nodes with its
/// induced subgraph and attention mask.
pub struct Sequence {
    /// Node ids (into the *reordered* dataset) covered by this sequence.
    pub nodes: Vec<u32>,
    /// Induced subgraph over the sequence's nodes (local ids).
    pub graph: CsrGraph,
    /// Topology attention mask (self-loops + Hamiltonian repair).
    pub mask: CsrGraph,
    /// Features `[s, feat]` in local order.
    pub features: Tensor,
    /// Labels in local order.
    pub labels: Vec<u32>,
    /// Memory-access profile of the topology mask.
    pub profile: AccessProfile,
}

/// Pre-processed node-level dataset.
pub struct Prepared {
    /// Cluster assignment and ordering (identity for baseline methods).
    pub order: Option<ClusterOrder>,
    /// Number of clusters used.
    pub clusters: usize,
    /// The reordered graph (or a clone of the original for baselines).
    pub graph: CsrGraph,
    /// Reordered labels.
    pub labels: Vec<u32>,
    /// Reordered split indices (train/test in new ids).
    pub train_idx: Vec<u32>,
    /// Test indices in new ids.
    pub test_idx: Vec<u32>,
    /// The training sequences.
    pub sequences: Vec<Sequence>,
    /// Wall-clock seconds spent in this pipeline (partition + reorder +
    /// masks) — the §IV-E pre-processing cost.
    pub preprocess_seconds: f64,
    /// Whole-graph sparsity β_G.
    pub beta_g: f64,
}

/// Run the pipeline. `clustered = true` applies the METIS-style reordering
/// (TorchGT); `false` keeps the original order (the GP-* baselines).
pub fn prepare_node_dataset(
    dataset: &NodeDataset,
    seq_len: usize,
    clustered: bool,
    clusters: usize,
    seed: u64,
) -> Prepared {
    let t0 = Instant::now();
    let n = dataset.num_nodes();
    let (order, graph, perm_inverse) = if clustered && clusters > 1 {
        let assign = partition(&dataset.graph, clusters, seed);
        let order = cluster_order(&assign, clusters);
        let graph = dataset.graph.permute(&order.perm);
        let inverse = order.inverse.clone();
        (Some(order), graph, Some(inverse))
    } else {
        (None, dataset.graph.clone(), None)
    };
    // Reorder features/labels to the new ids.
    let feat_dim = dataset.feat_dim;
    let mut features = Tensor::zeros(n, feat_dim);
    let mut labels = vec![0u32; n];
    for new in 0..n {
        let old = match &order {
            Some(o) => o.perm[new] as usize,
            None => new,
        };
        features.row_mut(new).copy_from_slice(dataset.feature_row(old));
        labels[new] = dataset.labels[old];
    }
    let remap = |idx: &[u32]| -> Vec<u32> {
        match &perm_inverse {
            Some(inv) => idx.iter().map(|&v| inv[v as usize]).collect(),
            None => idx.to_vec(),
        }
    };
    let train_idx = remap(&dataset.split.train);
    let test_idx = remap(&dataset.split.test);

    // Chunk into sequences.
    let seq_len = seq_len.min(n).max(1);
    let mut sequences = Vec::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + seq_len).min(n);
        let nodes: Vec<u32> = (start as u32..end as u32).collect();
        let sub = graph.induced_subgraph(&nodes);
        let mask = topology_mask(&sub, true);
        let profile = access_profile(&mask);
        let mut seq_feat = Tensor::zeros(end - start, feat_dim);
        for (i, &v) in nodes.iter().enumerate() {
            seq_feat.row_mut(i).copy_from_slice(features.row(v as usize));
        }
        let seq_labels: Vec<u32> = nodes.iter().map(|&v| labels[v as usize]).collect();
        sequences.push(Sequence {
            nodes,
            graph: sub,
            mask,
            features: seq_feat,
            labels: seq_labels,
            profile,
        });
        start = end;
    }

    let beta_g = graph.sparsity();
    Prepared {
        order,
        clusters: if clustered { clusters } else { 1 },
        graph,
        labels,
        train_idx,
        test_idx,
        sequences,
        preprocess_seconds: t0.elapsed().as_secs_f64(),
        beta_g,
    }
}

impl Prepared {
    /// Per-sequence (train-index, local-position) lists: which positions of
    /// each sequence carry training labels.
    pub fn train_positions(&self) -> Vec<Vec<u32>> {
        self.positions_of(&self.train_idx)
    }

    /// Same for test nodes.
    pub fn test_positions(&self) -> Vec<Vec<u32>> {
        self.positions_of(&self.test_idx)
    }

    fn positions_of(&self, idx: &[u32]) -> Vec<Vec<u32>> {
        let mut marks = vec![false; self.labels.len()];
        for &v in idx {
            marks[v as usize] = true;
        }
        self.sequences
            .iter()
            .map(|s| {
                s.nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| marks[v as usize])
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::DatasetKind;

    fn small_dataset() -> NodeDataset {
        DatasetKind::OgbnArxiv.generate_node(0.004, 7)
    }

    #[test]
    fn sequences_cover_all_nodes_once() {
        let d = small_dataset();
        let p = prepare_node_dataset(&d, 200, true, 4, 1);
        let total: usize = p.sequences.iter().map(|s| s.nodes.len()).sum();
        assert_eq!(total, d.num_nodes());
        let mut seen = vec![false; d.num_nodes()];
        for s in &p.sequences {
            for &v in &s.nodes {
                assert!(!seen[v as usize], "node {v} appears twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn reordering_preserves_label_feature_pairing() {
        let d = small_dataset();
        let p = prepare_node_dataset(&d, 100_000, true, 4, 1);
        let order = p.order.as_ref().unwrap();
        for new in [0usize, 5, 100, d.num_nodes() - 1] {
            let old = order.perm[new] as usize;
            assert_eq!(p.labels[new], d.labels[old]);
        }
    }

    #[test]
    fn split_indices_remapped_consistently() {
        let d = small_dataset();
        let p = prepare_node_dataset(&d, 100_000, true, 4, 1);
        // Every remapped train index carries the same label as the original.
        let order = p.order.as_ref().unwrap();
        for (&orig, &new) in d.split.train.iter().zip(&p.train_idx) {
            assert_eq!(order.inverse[orig as usize], new);
            assert_eq!(d.labels[orig as usize], p.labels[new as usize]);
        }
    }

    #[test]
    fn masks_satisfy_c1_and_connectivity() {
        let d = small_dataset();
        let p = prepare_node_dataset(&d, 300, true, 4, 1);
        for s in &p.sequences {
            for v in 0..s.mask.num_nodes() {
                assert!(s.mask.has_edge(v, v), "C1 violated");
            }
            assert!(s.mask.is_connected(), "repair must connect the mask");
        }
    }

    #[test]
    fn unclustered_mode_keeps_original_order() {
        let d = small_dataset();
        let p = prepare_node_dataset(&d, 100_000, false, 1, 1);
        assert!(p.order.is_none());
        assert_eq!(p.labels, d.labels);
    }

    #[test]
    fn clustering_improves_mask_locality() {
        let d = DatasetKind::OgbnProducts.generate_node(0.0006, 3);
        let seq = d.num_nodes();
        let raw = prepare_node_dataset(&d, seq, false, 1, 1);
        let clu = prepare_node_dataset(&d, seq, true, 8, 1);
        let raw_run = raw.sequences[0].profile.avg_run_len;
        let clu_run = clu.sequences[0].profile.avg_run_len;
        assert!(
            clu_run > raw_run,
            "clustered run {clu_run} should beat raw {raw_run}"
        );
    }

    #[test]
    fn train_positions_map_back_to_train_nodes() {
        let d = small_dataset();
        let p = prepare_node_dataset(&d, 150, true, 4, 1);
        let pos = p.train_positions();
        let mut count = 0;
        for (s, positions) in p.sequences.iter().zip(&pos) {
            for &local in positions {
                let global = s.nodes[local as usize];
                assert!(p.train_idx.contains(&global));
                count += 1;
            }
        }
        assert_eq!(count, p.train_idx.len());
    }

    #[test]
    fn preprocess_time_is_recorded() {
        let d = small_dataset();
        let p = prepare_node_dataset(&d, 500, true, 8, 1);
        assert!(p.preprocess_seconds > 0.0);
        assert!(p.beta_g > 0.0 && p.beta_g < 1.0);
    }
}
