//! # torchgt-obs
//!
//! The observability substrate for the TorchGT reproduction: everything the
//! paper's evaluation (§VI) measures on a live run — per-phase timings,
//! all-to-all volumes, `β_thre` transfer events, reformation compaction —
//! flows through one pluggable [`Recorder`] interface.
//!
//! * [`Recorder`] — the sink trait: hierarchical spans, counters, gauges,
//!   per-collective volume, structured [`Event`]s, per-iteration
//!   [`StepTrace`]s and per-epoch [`EpochTrace`]s;
//! * [`NoopRecorder`] — the default sink; reports `enabled() == false` so
//!   every instrumentation site short-circuits before touching a clock
//!   (training with no recorder attached pays essentially nothing);
//! * [`MemoryRecorder`] — accumulates everything in memory and exports a
//!   [`MetricsReport`] that serializes to JSON via `torchgt_compat::json`
//!   (what `torchgt_cli train --metrics out.json` writes);
//! * [`SpanGuard`] / [`span!`] — RAII wall-clock timers that nest: a guard
//!   opened inside another guard's scope records under the joined path
//!   (`"train_epoch/forward"`).
//!
//! ```
//! use std::sync::Arc;
//! use torchgt_obs::{span, MemoryRecorder, Recorder, RecorderHandle};
//!
//! let mem = Arc::new(MemoryRecorder::default());
//! let recorder: RecorderHandle = mem.clone();
//! {
//!     let _epoch = span!(recorder, "train_epoch");
//!     let _fwd = span!(recorder, "forward");
//!     recorder.counter_add("iterations", 1);
//! }
//! let report = mem.report();
//! assert!(report.spans.iter().any(|s| s.path == "train_epoch/forward"));
//! ```

pub mod histogram;
pub mod memory;
pub mod recorder;
pub mod trace;

pub use histogram::LatencyHistogram;
pub use memory::MemoryRecorder;
pub use recorder::{noop, NoopRecorder, Recorder, RecorderHandle, SpanGuard};
pub use trace::{
    CollectiveStat, CounterStat, EpochTrace, Event, GaugeStat, MetricsReport, SpanStat, StepTrace,
};

/// Open a [`SpanGuard`] on a recorder handle: `let _g = span!(rec, "forward");`.
///
/// The guard records the span's wall-clock on drop; nested invocations join
/// their names with `/`. With a disabled recorder (e.g. [`NoopRecorder`])
/// the expansion is a no-op that never reads the clock.
#[macro_export]
macro_rules! span {
    ($recorder:expr, $name:expr) => {
        $crate::SpanGuard::new(&$recorder, $name)
    };
}
