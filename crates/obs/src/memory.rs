//! The in-memory recorder behind `--metrics` files and bench-harness
//! attachments.

use crate::recorder::Recorder;
use crate::trace::{
    CollectiveStat, CounterStat, EpochTrace, Event, GaugeStat, MetricsReport, SpanStat, StepTrace,
};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total_s: f64,
    min_s: f64,
    max_s: f64,
}

#[derive(Clone, Copy, Default)]
struct CollectiveAgg {
    ops: u64,
    payload_bytes: u64,
    wire_bytes: u64,
}

#[derive(Default)]
struct Inner {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    collectives: BTreeMap<String, CollectiveAgg>,
    events: Vec<Event>,
    epochs: Vec<EpochTrace>,
    steps: Vec<StepTrace>,
}

/// Accumulates every signal in memory (one mutex; signals arrive from
/// trainer and rank threads) and exports a [`MetricsReport`]. `BTreeMap`
/// keys make the export order — and therefore the JSON — deterministic.
#[derive(Default)]
pub struct MemoryRecorder {
    inner: Mutex<Inner>,
}

impl MemoryRecorder {
    /// Snapshot everything recorded so far.
    pub fn report(&self) -> MetricsReport {
        let inner = self.inner.lock().expect("recorder poisoned");
        MetricsReport {
            spans: inner
                .spans
                .iter()
                .map(|(path, a)| SpanStat {
                    path: path.clone(),
                    count: a.count,
                    total_s: a.total_s,
                    min_s: a.min_s,
                    max_s: a.max_s,
                })
                .collect(),
            counters: inner
                .counters
                .iter()
                .map(|(name, &value)| CounterStat { name: name.clone(), value })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, &value)| GaugeStat { name: name.clone(), value })
                .collect(),
            collectives: inner
                .collectives
                .iter()
                .map(|(kind, a)| CollectiveStat {
                    kind: kind.clone(),
                    ops: a.ops,
                    payload_bytes: a.payload_bytes,
                    wire_bytes: a.wire_bytes,
                })
                .collect(),
            events: inner.events.clone(),
            epochs: inner.epochs.clone(),
            steps: inner.steps.clone(),
        }
    }

    /// Drop everything recorded so far.
    pub fn reset(&self) {
        *self.inner.lock().expect("recorder poisoned") = Inner::default();
    }
}

impl Recorder for MemoryRecorder {
    fn record_span(&self, path: &str, seconds: f64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let agg = inner.spans.entry(path.to_string()).or_default();
        if agg.count == 0 {
            agg.min_s = seconds;
            agg.max_s = seconds;
        } else {
            agg.min_s = agg.min_s.min(seconds);
            agg.max_s = agg.max_s.max(seconds);
        }
        agg.count += 1;
        agg.total_s += seconds;
    }

    fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        *inner.counters.entry(name.to_string()).or_default() += delta;
    }

    fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    fn collective(&self, kind: &str, ops: u64, payload_bytes: u64, wire_bytes: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let agg = inner.collectives.entry(kind.to_string()).or_default();
        agg.ops += ops;
        agg.payload_bytes += payload_bytes;
        agg.wire_bytes += wire_bytes;
    }

    fn event(&self, event: Event) {
        self.inner.lock().expect("recorder poisoned").events.push(event);
    }

    fn step(&self, trace: StepTrace) {
        self.inner.lock().expect("recorder poisoned").steps.push(trace);
    }

    fn epoch(&self, trace: EpochTrace) {
        self.inner.lock().expect("recorder poisoned").epochs.push(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn span_aggregation_tracks_min_max_total() {
        let rec = MemoryRecorder::default();
        rec.record_span("a/b", 0.2);
        rec.record_span("a/b", 0.1);
        rec.record_span("a/b", 0.4);
        let s = rec.report().span("a/b").cloned().unwrap();
        assert_eq!(s.count, 3);
        assert!((s.total_s - 0.7).abs() < 1e-12);
        assert!((s.min_s - 0.1).abs() < 1e-12);
        assert!((s.max_s - 0.4).abs() < 1e-12);
    }

    #[test]
    fn counters_gauges_and_collectives_accumulate() {
        let rec = MemoryRecorder::default();
        rec.counter_add("iters", 2);
        rec.counter_add("iters", 3);
        rec.gauge_set("beta", 0.1);
        rec.gauge_set("beta", 0.2);
        rec.collective("all_to_all", 4, 100, 75);
        rec.collective("all_to_all", 4, 100, 75);
        let report = rec.report();
        assert_eq!(report.counters[0].value, 5);
        assert_eq!(report.gauges[0].value, 0.2, "gauge keeps last value");
        let c = report.collective("all_to_all").unwrap();
        assert_eq!((c.ops, c.payload_bytes, c.wire_bytes), (8, 200, 150));
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let rec = Arc::new(MemoryRecorder::default());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for _ in 0..100 {
                        rec.counter_add("n", 1);
                        rec.collective("all_reduce", 1, 8, 4);
                    }
                });
            }
        });
        let report = rec.report();
        assert_eq!(report.counters[0].value, 400);
        assert_eq!(report.collective("all_reduce").unwrap().ops, 400);
    }

    #[test]
    fn reset_clears_everything() {
        let rec = MemoryRecorder::default();
        rec.counter_add("n", 1);
        rec.event(Event::beta_transition(0, 0.0, 1.0, 6));
        rec.reset();
        let report = rec.report();
        assert!(report.counters.is_empty());
        assert!(report.events.is_empty());
    }
}
