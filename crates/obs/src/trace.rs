//! The structured records a [`crate::Recorder`] collects: per-iteration
//! [`StepTrace`]s, per-epoch [`EpochTrace`]s, discrete [`Event`]s and the
//! aggregated [`MetricsReport`] the JSON exporter writes.
//!
//! Every type here round-trips through `torchgt_compat::json`, so a metrics
//! file written by one process can be re-loaded and asserted on by another
//! (the schema round-trip is covered by tests).

use torchgt_compat::json::{ToJson, Value};

torchgt_compat::json_struct! {
    /// One training iteration, the granularity of the paper's Fig. 2
    /// breakdown: wall-clock per phase plus the sparse/full decision and the
    /// reformation state in effect.
    #[derive(Clone, Debug, PartialEq)]
    pub struct StepTrace {
        /// Epoch this step belongs to (0-based).
        pub epoch: usize,
        /// Step index within the epoch (0-based).
        pub step: usize,
        /// Tokens in this step's sequence.
        pub seq_len: usize,
        /// `true` when the scheduler ran the sparse pattern, `false` for a
        /// fully-connected (interleaved or baseline) pass.
        pub sparse: bool,
        /// The transfer threshold `β_thre` in effect during the step.
        pub beta_thre: f64,
        /// Reformation compaction ratio `nnz_after / nnz_before` of this
        /// sequence's mask (1.0 when no reformation applies).
        pub reform_ratio: f64,
        /// Forward-pass wall-clock seconds (includes the loss).
        pub forward_s: f64,
        /// Backward-pass wall-clock seconds.
        pub backward_s: f64,
        /// Optimizer-step wall-clock seconds.
        pub optim_s: f64,
        /// Simulated GPU-cluster seconds of the iteration (cost model).
        pub sim_s: f64,
    }
}

torchgt_compat::json_struct! {
    /// Per-epoch phase rollup — the record `--metrics` files key their
    /// "per-epoch spans" on. `preprocess_s` covers dataset preparation
    /// (charged to epoch 0) and any mid-training reformation rebuilds
    /// (charged to the epoch that triggered them).
    #[derive(Clone, Debug, Default, PartialEq)]
    pub struct EpochTrace {
        /// Epoch number (0-based).
        pub epoch: usize,
        /// Mean training loss of the epoch — lets two metrics files be
        /// compared epoch-by-epoch (the crash-resume gate relies on this).
        pub loss: f64,
        /// Preprocess seconds attributable to this epoch (partition /
        /// reorder / mask building / reformation rebuilds).
        pub preprocess_s: f64,
        /// Summed forward seconds over the epoch's iterations.
        pub forward_s: f64,
        /// Summed backward seconds.
        pub backward_s: f64,
        /// Summed optimizer seconds.
        pub optim_s: f64,
        /// Evaluation (train+test scoring) seconds.
        pub eval_s: f64,
        /// Simulated cluster seconds of the epoch.
        pub sim_s: f64,
        /// Iterations that ran the sparse pattern.
        pub sparse_iters: usize,
        /// Iterations that ran fully-connected.
        pub full_iters: usize,
        /// The `β_thre` in effect during the epoch.
        pub beta_thre: f64,
    }
}

torchgt_compat::json_struct! {
    /// A discrete, timestamped-by-position occurrence: `β_thre` ladder
    /// transitions, reformation passes, anything future subsystems emit.
    /// `fields` is free-form JSON so new event kinds need no schema change.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Event {
        /// Event kind discriminator (`"beta_transition"`, `"reform"`, ...).
        pub kind: String,
        /// Kind-specific payload.
        pub fields: Value,
    }
}

impl Event {
    /// Kind tag of [`Event::beta_transition`] events.
    pub const BETA_TRANSITION: &'static str = "beta_transition";
    /// Kind tag of [`Event::reform`] events.
    pub const REFORM: &'static str = "reform";
    /// Kind tag of [`Event::backend`] events.
    pub const BACKEND: &'static str = "backend";

    /// The kernel backend the process dispatched to at startup — recorded so
    /// exported metrics say which instruction set produced them.
    pub fn backend(name: &str) -> Self {
        Self {
            kind: Self::BACKEND.to_string(),
            fields: torchgt_compat::json!({ "name": name }),
        }
    }

    /// An Auto-Tuner `β_thre` ladder move after `epoch`.
    pub fn beta_transition(epoch: usize, from: f64, to: f64, ladder_index: usize) -> Self {
        Self {
            kind: Self::BETA_TRANSITION.to_string(),
            fields: torchgt_compat::json!({
                "epoch": epoch,
                "from": from,
                "to": to,
                "ladder_index": ladder_index,
            }),
        }
    }

    /// One Elastic Computation Reformation pass over a sequence mask.
    #[allow(clippy::too_many_arguments)]
    pub fn reform(
        clusters_total: usize,
        clusters_transferred: usize,
        sub_blocks: usize,
        nnz_before: usize,
        nnz_after: usize,
        edge_recall: f64,
    ) -> Self {
        let density = if clusters_total > 0 {
            1.0 - clusters_transferred as f64 / clusters_total as f64
        } else {
            1.0
        };
        Self {
            kind: Self::REFORM.to_string(),
            fields: torchgt_compat::json!({
                "clusters_total": clusters_total,
                "clusters_transferred": clusters_transferred,
                "dense_cluster_fraction": density,
                "sub_blocks": sub_blocks,
                "nnz_before": nnz_before,
                "nnz_after": nnz_after,
                "compaction_ratio": if nnz_before > 0 {
                    nnz_after as f64 / nnz_before as f64
                } else {
                    1.0
                },
                "edge_recall": edge_recall,
            }),
        }
    }

    /// Kind tag of [`Event::fault_delay`] events.
    pub const FAULT_DELAY: &'static str = "fault_delay";
    /// Kind tag of [`Event::fault_drop`] events.
    pub const FAULT_DROP: &'static str = "fault_drop";
    /// Kind tag of [`Event::rank_crash`] events.
    pub const RANK_CRASH: &'static str = "rank_crash";
    /// Kind tag of [`Event::snapshot`] events.
    pub const SNAPSHOT: &'static str = "snapshot";
    /// Kind tag of [`Event::restore`] events.
    pub const RESTORE: &'static str = "restore";

    /// An injected message delay on a point-to-point send.
    pub fn fault_delay(rank: usize, peer: usize, op: u64, seconds: f64) -> Self {
        Self {
            kind: Self::FAULT_DELAY.to_string(),
            fields: torchgt_compat::json!({
                "rank": rank,
                "peer": peer,
                "op": op,
                "seconds": seconds,
            }),
        }
    }

    /// An injected message drop: the send was lost `retries` times (each
    /// costing a receiver timeout) before the retry succeeded.
    pub fn fault_drop(rank: usize, peer: usize, op: u64, retries: u64) -> Self {
        Self {
            kind: Self::FAULT_DROP.to_string(),
            fields: torchgt_compat::json!({
                "rank": rank,
                "peer": peer,
                "op": op,
                "retries": retries,
            }),
        }
    }

    /// An injected rank crash at communication op `op`.
    pub fn rank_crash(rank: usize, op: u64) -> Self {
        Self {
            kind: Self::RANK_CRASH.to_string(),
            fields: torchgt_compat::json!({ "rank": rank, "op": op }),
        }
    }

    /// A training-state snapshot was published after `epoch` epochs.
    pub fn snapshot(epoch: usize) -> Self {
        Self {
            kind: Self::SNAPSHOT.to_string(),
            fields: torchgt_compat::json!({ "epoch": epoch }),
        }
    }

    /// Training state was restored from the snapshot taken after `epoch`
    /// completed epochs (recovery from a crash or an explicit `--resume`).
    pub fn restore(epoch: usize) -> Self {
        Self {
            kind: Self::RESTORE.to_string(),
            fields: torchgt_compat::json!({ "epoch": epoch }),
        }
    }

    /// Kind tag of [`Event::rank_lost`] events.
    pub const RANK_LOST: &'static str = "rank_lost";
    /// Kind tag of [`Event::group_shrunk`] events.
    pub const GROUP_SHRUNK: &'static str = "group_shrunk";
    /// Kind tag of [`Event::reshard`] events.
    pub const RESHARD: &'static str = "reshard";
    /// Kind tag of [`Event::rank_rejoined`] events.
    pub const RANK_REJOINED: &'static str = "rank_rejoined";
    /// Kind tag of [`Event::straggler`] events.
    pub const STRAGGLER: &'static str = "straggler";
    /// Kind tag of [`Event::loss_nonfinite`] events.
    pub const LOSS_NONFINITE: &'static str = "loss_nonfinite";
    /// Kind tag of [`Event::generation_rollup`] events.
    pub const GENERATION_ROLLUP: &'static str = "generation_rollup";

    /// A rank exhausted its retry budget and is declared permanently lost
    /// (the escalation ladder's shrink decision is about to run).
    pub fn rank_lost(rank: usize, generation: u64, restarts: usize) -> Self {
        Self {
            kind: Self::RANK_LOST.to_string(),
            fields: torchgt_compat::json!({
                "rank": rank,
                "generation": generation,
                "restarts": restarts,
            }),
        }
    }

    /// The device group reformed without a lost rank: generation
    /// `generation` now spans `to_world` live ranks (was `from_world`).
    pub fn group_shrunk(generation: u64, from_world: usize, to_world: usize, lost_rank: usize) -> Self {
        Self {
            kind: Self::GROUP_SHRUNK.to_string(),
            fields: torchgt_compat::json!({
                "generation": generation,
                "from_world": from_world,
                "to_world": to_world,
                "lost_rank": lost_rank,
            }),
        }
    }

    /// Token assignment was recomputed for a new world size: of `tokens`
    /// total, `moved` migrated between surviving ranks over the wire and
    /// `reloaded` were re-materialized because their old owner is gone.
    pub fn reshard(generation: u64, world: usize, tokens: usize, moved: usize, reloaded: usize) -> Self {
        Self {
            kind: Self::RESHARD.to_string(),
            fields: torchgt_compat::json!({
                "generation": generation,
                "world": world,
                "tokens": tokens,
                "moved": moved,
                "reloaded": reloaded,
            }),
        }
    }

    /// A previously lost rank was re-admitted at an epoch boundary:
    /// generation `generation` now spans `world` live ranks again.
    pub fn rank_rejoined(rank: usize, generation: u64, world: usize) -> Self {
        Self {
            kind: Self::RANK_REJOINED.to_string(),
            fields: torchgt_compat::json!({
                "rank": rank,
                "generation": generation,
                "world": world,
            }),
        }
    }

    /// The straggler watchdog flagged `rank`: its accumulated injected
    /// send delay `delay_s` exceeds `multiple` × the group median
    /// `median_s` (detection only — no eviction). `measured_multiple` is
    /// the observed severity `delay_s / median_s`, as opposed to the
    /// configured threshold `multiple`.
    pub fn straggler(
        rank: usize,
        delay_s: f64,
        median_s: f64,
        multiple: f64,
        measured_multiple: f64,
    ) -> Self {
        Self {
            kind: Self::STRAGGLER.to_string(),
            fields: torchgt_compat::json!({
                "rank": rank,
                "delay_s": delay_s,
                "median_s": median_s,
                "multiple": multiple,
                "measured_multiple": measured_multiple,
            }),
        }
    }

    /// The epoch mean training loss came out NaN/Inf — the numerical-health
    /// guard fires before the poisoned state can reach a snapshot.
    pub fn loss_nonfinite(epoch: usize, loss: f64) -> Self {
        // NaN is not representable in JSON; encode it as a string marker so
        // the event survives a metrics round-trip.
        let loss_field = if loss.is_finite() {
            torchgt_compat::json!(loss)
        } else if loss.is_nan() {
            torchgt_compat::json!("nan")
        } else if loss > 0.0 {
            torchgt_compat::json!("inf")
        } else {
            torchgt_compat::json!("-inf")
        };
        Self {
            kind: Self::LOSS_NONFINITE.to_string(),
            fields: torchgt_compat::json!({ "epoch": epoch, "loss": loss_field }),
        }
    }

    /// Collective-volume rollup of one membership generation, emitted when
    /// the generation closes (shrink, rejoin, or end of training).
    pub fn generation_rollup(
        generation: u64,
        world: usize,
        ops: u64,
        wire_bytes: u64,
        bytes_sent: u64,
    ) -> Self {
        Self {
            kind: Self::GENERATION_ROLLUP.to_string(),
            fields: torchgt_compat::json!({
                "generation": generation,
                "world": world,
                "ops": ops,
                "wire_bytes": wire_bytes,
                "bytes_sent": bytes_sent,
            }),
        }
    }

    /// Kind tag of [`Event::rebalance`] events.
    pub const REBALANCE: &'static str = "rebalance";

    /// The rebalance policy fired: at the end of `epoch`, generation
    /// `generation` migrated `moved` tokens onto a new token-conserving
    /// assignment. `imbalance_before` is the measured max/mean step-time
    /// ratio that tripped the policy; `imbalance_after` the predicted
    /// ratio of the new assignment under the same per-rank rates.
    pub fn rebalance(
        epoch: usize,
        generation: u64,
        moved: usize,
        imbalance_before: f64,
        imbalance_after: f64,
    ) -> Self {
        Self {
            kind: Self::REBALANCE.to_string(),
            fields: torchgt_compat::json!({
                "epoch": epoch,
                "generation": generation,
                "moved": moved,
                "imbalance_before": imbalance_before,
                "imbalance_after": imbalance_after,
            }),
        }
    }

    /// Kind tag of [`Event::io_retry`] events.
    pub const IO_RETRY: &'static str = "io_retry";
    /// Kind tag of [`Event::shard_quarantined`] events.
    pub const SHARD_QUARANTINED: &'static str = "shard_quarantined";
    /// Kind tag of [`Event::snapshot_fallback`] events.
    pub const SNAPSHOT_FALLBACK: &'static str = "snapshot_fallback";
    /// Kind tag of [`Event::load_shed`] events.
    pub const LOAD_SHED: &'static str = "load_shed";

    /// A storage read failed transiently and was retried: attempt number
    /// `attempt` (1-based) against `path`, after backing off `backoff_s`
    /// seconds. `reason` carries the underlying error text.
    pub fn io_retry(path: &str, attempt: usize, backoff_s: f64, reason: &str) -> Self {
        Self {
            kind: Self::IO_RETRY.to_string(),
            fields: torchgt_compat::json!({
                "path": path,
                "attempt": attempt,
                "backoff_s": backoff_s,
                "reason": reason,
            }),
        }
    }

    /// A shard exhausted its retry budget (or failed CRC twice) and was
    /// quarantined: the loader refuses to serve it and surfaces a typed
    /// error naming the path.
    pub fn shard_quarantined(path: &str, reason: &str) -> Self {
        Self {
            kind: Self::SHARD_QUARANTINED.to_string(),
            fields: torchgt_compat::json!({ "path": path, "reason": reason }),
        }
    }

    /// `load_latest` found the newest snapshot corrupt, renamed it to
    /// `*.quarantined`, and fell back to the snapshot from `to_epoch`
    /// (`from_epoch` is the epoch of the corrupt one).
    pub fn snapshot_fallback(from_epoch: usize, to_epoch: usize, reason: &str) -> Self {
        Self {
            kind: Self::SNAPSHOT_FALLBACK.to_string(),
            fields: torchgt_compat::json!({
                "from_epoch": from_epoch,
                "to_epoch": to_epoch,
                "reason": reason,
            }),
        }
    }

    /// The serving admission controller rejected a query: `reason` is
    /// `"queue_full"` (depth exceeded the shed watermark), `"expired"`
    /// (deadline already passed at dequeue) or `"draining"` (arrived after
    /// shutdown began). `depth` is the queue depth observed at the decision.
    pub fn load_shed(node: u64, reason: &str, depth: usize) -> Self {
        Self {
            kind: Self::LOAD_SHED.to_string(),
            fields: torchgt_compat::json!({
                "node": node,
                "reason": reason,
                "depth": depth,
            }),
        }
    }

    /// Numeric field accessor (`None` when absent or non-numeric).
    pub fn num(&self, name: &str) -> Option<f64> {
        self.fields.get(name).and_then(Value::as_f64)
    }
}

torchgt_compat::json_struct! {
    /// Aggregated statistics of one span path.
    #[derive(Clone, Debug, PartialEq)]
    pub struct SpanStat {
        /// Hierarchical path, `/`-joined (`"train_epoch/forward"`).
        pub path: String,
        /// Number of recorded instances.
        pub count: u64,
        /// Total wall-clock seconds across instances.
        pub total_s: f64,
        /// Shortest instance.
        pub min_s: f64,
        /// Longest instance.
        pub max_s: f64,
    }
}

torchgt_compat::json_struct! {
    /// A monotonic counter's final value.
    #[derive(Clone, Debug, PartialEq)]
    pub struct CounterStat {
        /// Counter name.
        pub name: String,
        /// Accumulated value.
        pub value: u64,
    }
}

torchgt_compat::json_struct! {
    /// A gauge's last-set value.
    #[derive(Clone, Debug, PartialEq)]
    pub struct GaugeStat {
        /// Gauge name.
        pub name: String,
        /// Most recent value.
        pub value: f64,
    }
}

torchgt_compat::json_struct! {
    /// Volume/ops rollup of one collective kind — the paper's all-to-all
    /// accounting (§III-C). `payload_bytes` is the logical message volume;
    /// `wire_bytes` excludes same-rank chunks that never cross a link (zero
    /// on a single-GPU topology).
    #[derive(Clone, Debug, PartialEq)]
    pub struct CollectiveStat {
        /// Collective kind label (`"all_to_all"`, `"all_reduce"`, ...).
        pub kind: String,
        /// Invocations recorded.
        pub ops: u64,
        /// Logical payload bytes moved.
        pub payload_bytes: u64,
        /// Bytes that actually crossed an interconnect link.
        pub wire_bytes: u64,
    }
}

torchgt_compat::json_struct! {
    /// The full export of a [`crate::MemoryRecorder`]: what
    /// `torchgt_cli train --metrics out.json` writes and the bench harness
    /// attaches. Field order is the serialization order.
    #[derive(Clone, Debug, Default, PartialEq)]
    pub struct MetricsReport {
        /// Aggregated span timings, sorted by path.
        pub spans: Vec<SpanStat>,
        /// Counters, sorted by name.
        pub counters: Vec<CounterStat>,
        /// Gauges, sorted by name.
        pub gauges: Vec<GaugeStat>,
        /// Per-collective volume rollups, sorted by kind.
        pub collectives: Vec<CollectiveStat>,
        /// Events in emission order.
        pub events: Vec<Event>,
        /// Per-epoch phase rollups in epoch order.
        pub epochs: Vec<EpochTrace>,
        /// Per-iteration traces in emission order.
        pub steps: Vec<StepTrace>,
    }
}

impl MetricsReport {
    /// Serialize to compact JSON.
    pub fn to_json_string(&self) -> String {
        torchgt_compat::json::to_string(&self.to_json()).unwrap_or_default()
    }

    /// Serialize to two-space-indented JSON (what `--metrics` writes).
    pub fn to_json_string_pretty(&self) -> String {
        torchgt_compat::json::to_string_pretty(&self.to_json()).unwrap_or_default()
    }

    /// Parse a metrics file back into a report.
    pub fn from_json_str(s: &str) -> Result<Self, torchgt_compat::json::JsonError> {
        torchgt_compat::json::from_str_as(s)
    }

    /// Events of one kind, in order.
    pub fn events_of(&self, kind: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Lookup a collective rollup by kind label.
    pub fn collective(&self, kind: &str) -> Option<&CollectiveStat> {
        self.collectives.iter().find(|c| c.kind == kind)
    }

    /// Lookup a span aggregate by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = MetricsReport {
            spans: vec![SpanStat {
                path: "train_epoch/forward".into(),
                count: 3,
                total_s: 0.5,
                min_s: 0.1,
                max_s: 0.3,
            }],
            counters: vec![CounterStat { name: "iterations".into(), value: 12 }],
            gauges: vec![GaugeStat { name: "beta_thre".into(), value: 0.01 }],
            collectives: vec![CollectiveStat {
                kind: "all_to_all".into(),
                ops: 64,
                payload_bytes: 1 << 20,
                wire_bytes: (1 << 20) * 7 / 8,
            }],
            events: vec![
                Event::beta_transition(4, 0.01, 0.015, 2),
                Event::reform(10, 4, 17, 900, 1100, 0.93),
            ],
            epochs: vec![EpochTrace { epoch: 0, forward_s: 0.2, ..Default::default() }],
            steps: vec![StepTrace {
                epoch: 0,
                step: 1,
                seq_len: 256,
                sparse: true,
                beta_thre: 0.01,
                reform_ratio: 1.2,
                forward_s: 0.05,
                backward_s: 0.08,
                optim_s: 0.01,
                sim_s: 0.4,
            }],
        };
        let text = report.to_json_string_pretty();
        let back = MetricsReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn event_constructors_tag_kinds() {
        let b = Event::beta_transition(7, 0.0, 0.5, 3);
        assert_eq!(b.kind, Event::BETA_TRANSITION);
        assert_eq!(b.num("epoch"), Some(7.0));
        assert_eq!(b.num("to"), Some(0.5));
        let r = Event::reform(8, 8, 5, 100, 150, 0.9);
        assert_eq!(r.kind, Event::REFORM);
        assert_eq!(r.num("compaction_ratio"), Some(1.5));
        assert_eq!(r.num("dense_cluster_fraction"), Some(0.0));
        assert_eq!(r.num("missing"), None);
    }

    #[test]
    fn membership_event_constructors_tag_kinds() {
        let l = Event::rank_lost(3, 0, 2);
        assert_eq!(l.kind, Event::RANK_LOST);
        assert_eq!(l.num("rank"), Some(3.0));
        let s = Event::group_shrunk(1, 4, 3, 3);
        assert_eq!(s.kind, Event::GROUP_SHRUNK);
        assert_eq!(s.num("to_world"), Some(3.0));
        let r = Event::reshard(1, 3, 12, 4, 3);
        assert_eq!(r.kind, Event::RESHARD);
        assert_eq!(r.num("moved"), Some(4.0));
        assert_eq!(r.num("reloaded"), Some(3.0));
        let j = Event::rank_rejoined(3, 2, 4);
        assert_eq!(j.kind, Event::RANK_REJOINED);
        assert_eq!(j.num("world"), Some(4.0));
        let st = Event::straggler(2, 0.5, 0.01, 4.0, 50.0);
        assert_eq!(st.kind, Event::STRAGGLER);
        assert_eq!(st.num("delay_s"), Some(0.5));
        assert_eq!(st.num("measured_multiple"), Some(50.0));
        let g = Event::generation_rollup(0, 4, 128, 1 << 20, 1 << 21);
        assert_eq!(g.kind, Event::GENERATION_ROLLUP);
        assert_eq!(g.num("ops"), Some(128.0));
        let rb = Event::rebalance(3, 1, 96, 2.5, 1.1);
        assert_eq!(rb.kind, Event::REBALANCE);
        assert_eq!(rb.num("moved"), Some(96.0));
        assert_eq!(rb.num("imbalance_before"), Some(2.5));
        assert_eq!(rb.num("imbalance_after"), Some(1.1));
    }

    #[test]
    fn loss_nonfinite_event_survives_json_round_trip() {
        let e = Event::loss_nonfinite(5, f64::NAN);
        assert_eq!(e.kind, Event::LOSS_NONFINITE);
        assert_eq!(e.num("epoch"), Some(5.0));
        // NaN encodes as a string marker, not a broken number literal.
        assert_eq!(e.fields.get("loss").and_then(Value::as_str), Some("nan"));
        let text = torchgt_compat::json::to_string(&e.to_json()).unwrap();
        let back: Event = torchgt_compat::json::from_str_as(&text).unwrap();
        assert_eq!(back, e);
        let inf = Event::loss_nonfinite(1, f64::INFINITY);
        assert_eq!(inf.fields.get("loss").and_then(Value::as_str), Some("inf"));
        let fin = Event::loss_nonfinite(1, 2.5);
        assert_eq!(fin.num("loss"), Some(2.5));
    }

    #[test]
    fn report_lookup_helpers() {
        let mut report = MetricsReport::default();
        report.events.push(Event::beta_transition(0, 0.1, 0.2, 1));
        report.events.push(Event::reform(1, 1, 1, 1, 1, 1.0));
        report.collectives.push(CollectiveStat {
            kind: "all_to_all".into(),
            ops: 1,
            payload_bytes: 2,
            wire_bytes: 3,
        });
        assert_eq!(report.events_of(Event::BETA_TRANSITION).len(), 1);
        assert_eq!(report.collective("all_to_all").unwrap().wire_bytes, 3);
        assert!(report.collective("broadcast").is_none());
        assert!(report.span("nope").is_none());
    }
}
