//! The [`Recorder`] trait, the free [`NoopRecorder`], and the RAII
//! [`SpanGuard`].
//!
//! Instrumentation sites throughout the workspace hold a [`RecorderHandle`]
//! (an `Arc<dyn Recorder>`) and call it unconditionally; the contract that
//! keeps the hot path free is [`Recorder::enabled`] — every site with
//! non-trivial capture cost (clock reads, string building, per-step record
//! construction) checks it first, and the no-op recorder answers `false`.

use crate::trace::{EpochTrace, Event, StepTrace};
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Shared handle to a recorder sink. Cloning is one atomic increment, so
/// trainers, communicators and guards can all hold one.
pub type RecorderHandle = Arc<dyn Recorder>;

/// A sink for observability signals. All methods take `&self`: recorders are
/// shared across rank threads, so implementations synchronize internally.
pub trait Recorder: Send + Sync {
    /// Fast-path gate: when `false`, instrumentation sites skip all capture
    /// work (no clock reads, no allocation) and the remaining methods are
    /// never expected to be called.
    fn enabled(&self) -> bool {
        true
    }

    /// Record a completed span of `seconds` under a `/`-joined hierarchical
    /// path (normally emitted by [`SpanGuard`], but callers may report
    /// externally measured durations — e.g. preprocessing done before the
    /// recorder was attached).
    fn record_span(&self, path: &str, seconds: f64);

    /// Add to a monotonic counter.
    fn counter_add(&self, name: &str, delta: u64);

    /// Set a gauge to its latest value.
    fn gauge_set(&self, name: &str, value: f64);

    /// Record `ops` invocations of a collective moving `payload_bytes` of
    /// logical payload, `wire_bytes` of which crossed an interconnect link.
    fn collective(&self, kind: &str, ops: u64, payload_bytes: u64, wire_bytes: u64);

    /// Record a discrete event.
    fn event(&self, event: Event);

    /// Record one training iteration.
    fn step(&self, trace: StepTrace);

    /// Record one epoch's phase rollup.
    fn epoch(&self, trace: EpochTrace);
}

/// The default sink: discards everything and reports itself disabled so
/// instrumentation sites short-circuit. Attaching it is equivalent to not
/// instrumenting at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record_span(&self, _path: &str, _seconds: f64) {}

    fn counter_add(&self, _name: &str, _delta: u64) {}

    fn gauge_set(&self, _name: &str, _value: f64) {}

    fn collective(&self, _kind: &str, _ops: u64, _payload_bytes: u64, _wire_bytes: u64) {}

    fn event(&self, _event: Event) {}

    fn step(&self, _trace: StepTrace) {}

    fn epoch(&self, _trace: EpochTrace) {}
}

/// The process-wide shared no-op handle (one allocation ever).
pub fn noop() -> RecorderHandle {
    static NOOP: OnceLock<RecorderHandle> = OnceLock::new();
    Arc::clone(NOOP.get_or_init(|| Arc::new(NoopRecorder)))
}

thread_local! {
    /// Per-thread stack of open span names; joined into hierarchical paths.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII span timer: created via [`crate::span!`], reports its wall-clock to
/// the recorder on drop under the `/`-joined path of every guard live on
/// this thread. Creation against a disabled recorder does nothing — not
/// even a clock read.
pub struct SpanGuard {
    active: Option<(RecorderHandle, String, Instant)>,
}

impl SpanGuard {
    /// Open a span named `name` (a guard per scope; drop order closes inner
    /// spans first).
    pub fn new(recorder: &RecorderHandle, name: &'static str) -> Self {
        if !recorder.enabled() {
            return Self { active: None };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        Self { active: Some((Arc::clone(recorder), path, Instant::now())) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((recorder, path, start)) = self.active.take() {
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            recorder.record_span(&path, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryRecorder;

    #[test]
    fn noop_is_disabled_and_shared() {
        let a = noop();
        let b = noop();
        assert!(!a.enabled());
        assert!(Arc::ptr_eq(&a, &b), "noop handle must be cached");
    }

    #[test]
    fn guards_nest_into_paths() {
        let mem = Arc::new(MemoryRecorder::default());
        let rec: RecorderHandle = mem.clone();
        {
            let _outer = crate::span!(rec, "epoch");
            {
                let _inner = crate::span!(rec, "forward");
            }
            {
                let _inner = crate::span!(rec, "backward");
            }
        }
        let report = mem.report();
        assert!(report.span("epoch").is_some());
        assert!(report.span("epoch/forward").is_some());
        assert!(report.span("epoch/backward").is_some());
        assert!(report.span("forward").is_none(), "inner span must nest");
    }

    #[test]
    fn disabled_recorder_skips_stack() {
        let rec = noop();
        let _g = crate::span!(rec, "anything");
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty(), "noop guard must not push"));
    }

    #[test]
    fn sibling_guards_after_drop_share_parent() {
        let mem = Arc::new(MemoryRecorder::default());
        let rec: RecorderHandle = mem.clone();
        for _ in 0..3 {
            let _outer = crate::span!(rec, "epoch");
            let _inner = crate::span!(rec, "forward");
        }
        let report = mem.report();
        assert_eq!(report.span("epoch/forward").unwrap().count, 3);
        assert_eq!(report.span("epoch").unwrap().count, 3);
    }
}
