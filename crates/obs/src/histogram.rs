//! Log-bucketed latency histogram for the serving layer's tail metrics.
//!
//! Serving SLOs are stated on quantiles (p50/p99), which a running mean
//! cannot produce. [`LatencyHistogram`] buckets samples geometrically from
//! 1 µs with 15% growth per bucket — 128 buckets reach past 60 s, and the
//! relative quantile error is bounded by the growth factor (≤ 15%), which
//! is far inside any latency budget worth asserting on.

/// Lowest bucket upper bound, in seconds.
const BASE: f64 = 1e-6;
/// Geometric growth per bucket.
const GROWTH: f64 = 1.15;
/// Bucket count (`BASE * GROWTH^127` ≈ 54 s; beyond that is the overflow
/// bucket).
const BUCKETS: usize = 128;

/// A fixed-size log-bucketed histogram of durations in seconds.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS + 1],
    total: u64,
    sum: f64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: [0; BUCKETS + 1], total: 0, sum: 0.0, max: 0.0 }
    }

    fn bucket_of(seconds: f64) -> usize {
        if seconds <= BASE {
            return 0;
        }
        // log_GROWTH(seconds / BASE), clamped into the overflow bucket.
        let b = (seconds / BASE).ln() / GROWTH.ln();
        (b.ceil() as usize).min(BUCKETS)
    }

    /// Upper bound of bucket `i`, in seconds.
    fn bucket_bound(i: usize) -> f64 {
        BASE * GROWTH.powi(i as i32)
    }

    /// Record one duration. Negative or NaN samples are ignored (a clock
    /// anomaly must not poison the tail).
    pub fn record(&mut self, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        self.counts[Self::bucket_of(seconds)] += 1;
        self.total += 1;
        self.sum += seconds;
        if seconds > self.max {
            self.max = seconds;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the upper bound of the first
    /// bucket whose cumulative count reaches `q · total`; the exact max is
    /// returned for the overflow bucket and whenever it is tighter. Returns
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == BUCKETS {
                    return self.max;
                }
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn quantiles_bracket_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 99 samples at ~1 ms, 1 sample at ~100 ms.
        for _ in 0..99 {
            h.record(1e-3);
        }
        h.record(0.1);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        let p100 = h.quantile(1.0);
        assert!((8e-4..2e-3).contains(&p50), "p50 {p50}");
        assert!((8e-4..2e-3).contains(&p99), "p99 {p99}");
        assert!((0.08..0.13).contains(&p100), "p100 {p100}");
        assert!(p50 <= p99 && p99 <= p100, "quantiles must be monotone");
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-4); // 0.1ms .. 100ms uniform
        }
        let p99 = h.quantile(0.99);
        let exact = 0.099;
        assert!((p99 - exact).abs() / exact < 0.16, "p99 {p99} vs exact {exact}");
    }

    #[test]
    fn extremes_land_in_edge_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(1e-9);
        h.record(1e6); // over the last bucket bound
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), 1e6, "overflow reports the exact max");
        h.record(f64::NAN);
        h.record(-1.0);
        assert_eq!(h.count(), 3, "non-finite/negative samples ignored");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1e-3);
        b.record(2e-3);
        b.record(0.5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 0.5);
    }
}
