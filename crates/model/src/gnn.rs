//! Message-passing GNN baselines: GCN (Kipf & Welling) and GAT (Veličković
//! et al.) — the "Traditional GNNs" rows of the paper's Table I.

use crate::api::{Pattern, SequenceBatch, SequenceModel};
use torchgt_graph::CsrGraph;
use torchgt_tensor::layers::Layer;
use torchgt_tensor::rng::derive_seed;
use torchgt_tensor::{Linear, Param, Relu, Tensor, Workspace};

/// Symmetric-normalised aggregation `Â H` with
/// `Â_ij = 1/√((d_i+1)(d_j+1))` over `N(i) ∪ {i}` (the GCN propagation
/// rule with self-loops folded in).
pub fn gcn_aggregate(graph: &CsrGraph, h: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(h.rows(), h.cols());
    gcn_aggregate_into(graph, h, &mut out);
    out
}

/// [`gcn_aggregate`] writing into a caller-provided buffer (fully
/// overwritten).
pub fn gcn_aggregate_into(graph: &CsrGraph, h: &Tensor, out: &mut Tensor) {
    let n = graph.num_nodes();
    assert_eq!(h.rows(), n);
    assert_eq!(out.shape(), h.shape());
    let inv_sqrt: Vec<f32> =
        (0..n).map(|v| 1.0 / ((graph.degree(v) as f32 + 1.0).sqrt())).collect();
    out.fill_zero();
    for v in 0..n {
        let selfw = inv_sqrt[v] * inv_sqrt[v];
        let orow = out.row_mut(v);
        for (o, x) in orow.iter_mut().zip(h.row(v)) {
            *o += selfw * x;
        }
        for &nb in graph.neighbors(v) {
            let u = nb as usize;
            if u == v {
                continue;
            }
            let w = inv_sqrt[v] * inv_sqrt[u];
            let hrow = h.row(u);
            let orow = out.row_mut(v);
            for (o, x) in orow.iter_mut().zip(hrow) {
                *o += w * x;
            }
        }
    }
}

/// A GCN for node classification: `layers` rounds of
/// `ReLU(Â (H W))` with the final layer linear.
pub struct Gcn {
    linears: Vec<Linear>,
    acts: Vec<Relu>,
}

impl Gcn {
    /// Construct with `dims = [feat, hidden…, out]` (so `dims.len() - 1`
    /// layers).
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2);
        let linears = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], derive_seed(seed, 70 + i as u64)))
            .collect::<Vec<_>>();
        let acts = (0..dims.len() - 2).map(|_| Relu::new()).collect();
        Self { linears, acts }
    }
}

impl SequenceModel for Gcn {
    fn forward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>) -> Tensor {
        self.forward_ws(batch, pattern, &mut Workspace::new())
    }

    fn forward_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        _pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> Tensor {
        let last = self.linears.len() - 1;
        let mut h: Option<Tensor> = None;
        for (i, lin) in self.linears.iter_mut().enumerate() {
            let z = match &h {
                Some(t) => lin.forward_ws(t, ws),
                None => lin.forward_ws(batch.features, ws),
            };
            if let Some(t) = h.take() {
                ws.give(t);
            }
            let mut agg = ws.take(z.rows(), z.cols());
            gcn_aggregate_into(batch.graph, &z, &mut agg);
            ws.give(z);
            h = Some(if i < last {
                let a = self.acts[i].forward_ws(&agg, ws);
                ws.give(agg);
                a
            } else {
                agg
            });
        }
        h.expect("Gcn has at least one layer")
    }

    fn backward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>, dlogits: &Tensor) {
        self.backward_ws(batch, pattern, dlogits, &mut Workspace::new())
    }

    fn backward_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        _pattern: Pattern<'_>,
        dlogits: &Tensor,
        ws: &mut Workspace,
    ) {
        let last = self.linears.len() - 1;
        let mut dh = ws.take(dlogits.rows(), dlogits.cols());
        torchgt_tensor::ops::copy_into(dlogits, &mut dh);
        for i in (0..self.linears.len()).rev() {
            if i < last {
                let t = self.acts[i].backward_ws(&dh, ws);
                ws.give(dh);
                dh = t;
            }
            // Â is symmetric ⇒ backward through aggregation is another
            // aggregation.
            let mut dz = ws.take(dh.rows(), dh.cols());
            gcn_aggregate_into(batch.graph, &dh, &mut dz);
            ws.give(dh);
            dh = self.linears[i].backward_ws(&dz, ws);
            ws.give(dz);
        }
        ws.give(dh);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.linears.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn set_training(&mut self, _on: bool) {}

    fn name(&self) -> &'static str {
        "GCN"
    }
}

/// One GAT layer: additive attention
/// `e_ij = LeakyReLU(a_src·Wh_i + a_dst·Wh_j)`, softmax over
/// `N(i) ∪ {i}`, then the attention-weighted sum of `Wh_j`.
pub struct GatLayer {
    w: Linear,
    a_src: Param,
    a_dst: Param,
    negative_slope: f32,
    cache: Option<GatCache>,
}

struct GatCache {
    z: Tensor,
    /// Per-edge attention coefficients in CSR order (incl. self-loop slot at
    /// the end of each row).
    alpha: Vec<Vec<f32>>,
    /// Pre-activation edge scores for the LeakyReLU derivative.
    raw: Vec<Vec<f32>>,
}

impl GatLayer {
    /// Construct mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            w: Linear::new(in_dim, out_dim, derive_seed(seed, 80)),
            a_src: Param::new(torchgt_tensor::init::normal(1, out_dim, 0.0, 0.1, derive_seed(seed, 81))),
            a_dst: Param::new(torchgt_tensor::init::normal(1, out_dim, 0.0, 0.1, derive_seed(seed, 82))),
            negative_slope: 0.2,
            cache: None,
        }
    }

    fn leaky(&self, x: f32) -> f32 {
        if x >= 0.0 {
            x
        } else {
            self.negative_slope * x
        }
    }

    fn leaky_grad(&self, x: f32) -> f32 {
        if x >= 0.0 {
            1.0
        } else {
            self.negative_slope
        }
    }

    /// Forward over `graph` (self-loops are added implicitly).
    pub fn forward(&mut self, graph: &CsrGraph, h: &Tensor) -> Tensor {
        let n = graph.num_nodes();
        let z = self.w.forward(h);
        let d = z.cols();
        let dot = |row: &[f32], a: &Param| -> f32 {
            row.iter().zip(a.value.row(0)).map(|(x, y)| x * y).sum()
        };
        let s: Vec<f32> = (0..n).map(|v| dot(z.row(v), &self.a_src)).collect();
        let t: Vec<f32> = (0..n).map(|v| dot(z.row(v), &self.a_dst)).collect();
        let mut out = Tensor::zeros(n, d);
        let mut alpha = Vec::with_capacity(n);
        let mut raw_all = Vec::with_capacity(n);
        for v in 0..n {
            // Neighbour list + self (skip duplicate if the self-loop exists).
            let nbrs: Vec<usize> = neighbours_with_self(graph, v);
            let raw: Vec<f32> = nbrs.iter().map(|&u| s[v] + t[u]).collect();
            let act: Vec<f32> = raw.iter().map(|&x| self.leaky(x)).collect();
            let max = act.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut exp: Vec<f32> = act.iter().map(|&x| (x - max).exp()).collect();
            let den: f32 = exp.iter().sum();
            for e in exp.iter_mut() {
                *e /= den.max(f32::MIN_POSITIVE);
            }
            let orow = out.row_mut(v);
            for (&u, &a) in nbrs.iter().zip(&exp) {
                for (o, x) in orow.iter_mut().zip(z.row(u)) {
                    *o += a * x;
                }
            }
            alpha.push(exp);
            raw_all.push(raw);
        }
        let (_, _) = (s, t);
        self.cache = Some(GatCache { z, alpha, raw: raw_all });
        out
    }

    /// Backward; returns `dL/dh`.
    pub fn backward(&mut self, graph: &CsrGraph, dout: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("GAT backward before forward");
        let n = graph.num_nodes();
        let d = cache.z.cols();
        let mut dz = Tensor::zeros(n, d);
        let mut ds = vec![0.0f32; n];
        let mut dt = vec![0.0f32; n];
        for v in 0..n {
            let nbrs = neighbours_with_self(graph, v);
            let alpha = &cache.alpha[v];
            let raw = &cache.raw[v];
            let dorow = dout.row(v);
            // dalpha_e = dout_v · z_u ; softmax backward over the row.
            let mut dalpha: Vec<f32> = nbrs
                .iter()
                .map(|&u| dorow.iter().zip(cache.z.row(u)).map(|(a, b)| a * b).sum())
                .collect();
            let dot: f32 = alpha.iter().zip(&dalpha).map(|(a, b)| a * b).sum();
            for (e, da) in dalpha.iter_mut().enumerate() {
                let de = alpha[e] * (*da - dot) * self.leaky_grad(raw[e]);
                // e_ij = s_v + t_u
                ds[v] += de;
                dt[nbrs[e]] += de;
                // value path: dz_u += alpha * dout_v
                let zrow = dz.row_mut(nbrs[e]);
                for (zo, &o) in zrow.iter_mut().zip(dorow) {
                    *zo += alpha[e] * o;
                }
            }
        }
        // s_v = a_src · z_v ⇒ dz_v += ds_v a_src, d a_src += Σ ds_v z_v.
        let mut da_src = Tensor::zeros(1, d);
        let mut da_dst = Tensor::zeros(1, d);
        for v in 0..n {
            let zrow = cache.z.row(v).to_vec();
            let dzrow = dz.row_mut(v);
            for c in 0..d {
                dzrow[c] += ds[v] * self.a_src.value.get(0, c) + dt[v] * self.a_dst.value.get(0, c);
                da_src.data_mut()[c] += ds[v] * zrow[c];
                da_dst.data_mut()[c] += dt[v] * zrow[c];
            }
        }
        self.a_src.accumulate(&da_src);
        self.a_dst.accumulate(&da_dst);
        self.w.backward(&dz)
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.w.params_mut();
        p.push(&mut self.a_src);
        p.push(&mut self.a_dst);
        p
    }
}

fn neighbours_with_self(graph: &CsrGraph, v: usize) -> Vec<usize> {
    let mut nbrs: Vec<usize> = graph.neighbors(v).iter().map(|&u| u as usize).collect();
    if !nbrs.contains(&v) {
        nbrs.push(v);
    }
    nbrs
}

/// A 2-layer GAT for node classification.
pub struct Gat {
    l1: GatLayer,
    act: Relu,
    l2: GatLayer,
}

impl Gat {
    /// Construct `feat → hidden → out`.
    pub fn new(feat: usize, hidden: usize, out: usize, seed: u64) -> Self {
        Self {
            l1: GatLayer::new(feat, hidden, derive_seed(seed, 90)),
            act: Relu::new(),
            l2: GatLayer::new(hidden, out, derive_seed(seed, 91)),
        }
    }
}

impl SequenceModel for Gat {
    fn forward(&mut self, batch: &SequenceBatch<'_>, _pattern: Pattern<'_>) -> Tensor {
        let h = self.l1.forward(batch.graph, batch.features);
        let h = self.act.forward(&h);
        self.l2.forward(batch.graph, &h)
    }

    fn backward(&mut self, batch: &SequenceBatch<'_>, _pattern: Pattern<'_>, dlogits: &Tensor) {
        let dh = self.l2.backward(batch.graph, dlogits);
        let dh = self.act.backward(&dh);
        let _ = self.l1.backward(batch.graph, &dh);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.l1.params_mut();
        p.extend(self.l2.params_mut());
        p
    }

    fn set_training(&mut self, _on: bool) {}

    fn name(&self) -> &'static str {
        "GAT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::{cycle_graph, path_graph};
    use torchgt_tensor::gradcheck::{max_abs_diff, numerical_grad};
    use torchgt_tensor::init;
    use torchgt_tensor::{Adam, Optimizer};

    #[test]
    fn gcn_aggregate_averages_neighbourhoods() {
        let g = path_graph(3);
        let h = Tensor::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let out = gcn_aggregate(&g, &h);
        // Node 1 (degree 2): 1/3·2 (self, d+1=3) + 1/(√3·√2)·(1+3).
        let expected = 2.0 / 3.0 + (1.0 + 3.0) / (3.0f32.sqrt() * 2.0f32.sqrt());
        assert!((out.get(1, 0) - expected).abs() < 1e-5);
    }

    #[test]
    fn gcn_backward_matches_numerical() {
        let g = cycle_graph(5);
        let x = init::normal(5, 3, 0.0, 1.0, 2);
        let w = init::normal(5, 2, 0.0, 1.0, 3);
        let mut gcn = Gcn::new(&[3, 4, 2], 7);
        let batch = SequenceBatch { features: &x, graph: &g, spd: None };
        let _ = gcn.forward(&batch, Pattern::Flash);
        gcn.backward(&batch, Pattern::Flash, &w);
        // Check weight grad of the first linear numerically.
        let analytic = gcn.linears[0].w.grad.clone();
        let l0 = gcn.linears[0].clone();
        let l1 = gcn.linears[1].clone();
        let numeric = numerical_grad(
            &l0.w.value,
            |probe| {
                let mut tmp = Gcn::new(&[3, 4, 2], 7);
                tmp.linears[0] = l0.clone();
                tmp.linears[0].w.value = probe.clone();
                tmp.linears[1] = l1.clone();
                let y = tmp.forward(&batch, Pattern::Flash);
                y.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-2,
        );
        assert!(max_abs_diff(&analytic, &numeric) < 2e-2);
    }

    #[test]
    fn gat_attention_rows_are_distributions() {
        let g = cycle_graph(6);
        let x = init::normal(6, 4, 0.0, 1.0, 5);
        let mut layer = GatLayer::new(4, 4, 1);
        let _ = layer.forward(&g, &x);
        let cache = layer.cache.as_ref().unwrap();
        for row in &cache.alpha {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&a| a >= 0.0));
        }
    }

    #[test]
    fn gat_input_grad_matches_numerical() {
        let g = cycle_graph(5);
        let x = init::normal(5, 3, 0.0, 0.8, 6);
        let w = init::normal(5, 4, 0.0, 1.0, 7);
        let mut layer = GatLayer::new(3, 4, 9);
        let _ = layer.forward(&g, &x);
        let dx = layer.backward(&g, &w);
        let wsaved = layer.w.clone();
        let asrc = layer.a_src.clone();
        let adst = layer.a_dst.clone();
        let numeric = numerical_grad(
            &x,
            |p| {
                let mut probe = GatLayer::new(3, 4, 9);
                probe.w = wsaved.clone();
                probe.a_src = asrc.clone();
                probe.a_dst = adst.clone();
                let y = probe.forward(&g, p);
                y.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-2,
        );
        assert!(max_abs_diff(&dx, &numeric) < 3e-2, "diff {}", max_abs_diff(&dx, &numeric));
    }

    #[test]
    fn gcn_learns_community_labels() {
        use torchgt_graph::generators::{clustered_power_law, ClusteredConfig};
        let (g, comm) = clustered_power_law(
            ClusteredConfig { n: 60, communities: 2, avg_degree: 8.0, intra_fraction: 0.9 },
            3,
        );
        let mut feats = Tensor::zeros(60, 4);
        for v in 0..60 {
            feats.set(v, comm[v] as usize, 1.0);
            feats.set(v, 2, ((v * 37) % 17) as f32 / 17.0);
        }
        let labels: Vec<u32> = comm.clone();
        let mut gcn = Gcn::new(&[4, 8, 2], 4);
        let mut opt = Adam::with_lr(5e-3);
        let batch = SequenceBatch { features: &feats, graph: &g, spd: None };
        let mut last = f32::MAX;
        let mut first = None;
        for _ in 0..50 {
            let logits = gcn.forward(&batch, Pattern::Flash);
            let (loss, dl) = crate::loss::softmax_cross_entropy(&logits, &labels);
            gcn.backward(&batch, Pattern::Flash, &dl);
            opt.step(&mut gcn.params_mut());
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < 0.5 * first.unwrap());
        let logits = gcn.forward(&batch, Pattern::Flash);
        assert!(crate::loss::accuracy(&logits, &labels, None) > 0.8);
    }
}
