//! Multi-head attention layer with a pluggable attention pattern.
//!
//! This is the swap point of the whole reproduction: GP-RAW uses
//! [`AttentionMode::Dense`], GP-FLASH uses [`AttentionMode::Flash`],
//! GP-SPARSE / TorchGT use [`AttentionMode::Sparse`] with the topology /
//! cluster-sparse mask, and the Dual-interleaved scheduler alternates modes
//! between iterations without touching the model.

use crate::attention::{self, AttnCache, AttnGrads, BiasGrad};
use torchgt_graph::CsrGraph;
use torchgt_tensor::layers::Layer;
use torchgt_tensor::rng::derive_seed;
use torchgt_tensor::{Linear, Param, Tensor, Workspace};

/// Which kernel and pattern the attention layer should use for a pass.
pub enum AttentionMode<'a> {
    /// Fully-connected, materialised scores, optional per-head `[s,s]` bias.
    Dense {
        /// Per-head additive score bias (Graphormer's spatial encoding).
        bias: Option<&'a [Tensor]>,
    },
    /// Fully-connected tiled kernel. No bias support (FlashAttention's
    /// limitation, noted in the paper §II-C).
    Flash,
    /// Sparse pattern over `mask`, optional per-head per-edge bias.
    Sparse {
        /// Attention mask: query `i` attends to `mask.neighbors(i)`.
        mask: &'a CsrGraph,
        /// Per-head per-edge bias in the mask's CSR order.
        bias: Option<&'a [Vec<f32>]>,
    },
    /// Performer (FAVOR+) linear attention — the structure-agnostic NLP
    /// approximation baseline. No bias support.
    Performer {
        /// Random features per head.
        features: usize,
        /// Feature-matrix seed (fixed across fwd/bwd of one pass).
        seed: u64,
    },
}

/// Multi-head attention with learned Q/K/V/output projections.
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Number of heads.
    pub heads: usize,
    saved: Option<SavedForward>,
}

struct SavedForward {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    out_pre: Tensor,
    cache: AttnCache,
}

impl SavedForward {
    fn recycle(self, ws: &mut Workspace) {
        ws.give(self.q);
        ws.give(self.k);
        ws.give(self.v);
        ws.give(self.out_pre);
        self.cache.recycle(ws);
    }
}

impl MultiHeadAttention {
    /// Construct for hidden dimension `dim` split over `heads`.
    pub fn new(dim: usize, heads: usize, seed: u64) -> Self {
        assert_eq!(dim % heads, 0, "hidden must divide heads");
        Self {
            wq: Linear::new(dim, dim, derive_seed(seed, 20)),
            wk: Linear::new(dim, dim, derive_seed(seed, 21)),
            wv: Linear::new(dim, dim, derive_seed(seed, 22)),
            wo: Linear::new(dim, dim, derive_seed(seed, 23)),
            heads,
            saved: None,
        }
    }

    /// Forward pass under the given attention mode.
    pub fn forward(&mut self, x: &Tensor, mode: &AttentionMode<'_>) -> Tensor {
        self.forward_ws(x, mode, &mut Workspace::new())
    }

    /// [`MultiHeadAttention::forward`] drawing every intermediate — the
    /// projected Q/K/V, the kernel's scratch, and the saved state — from
    /// `ws`. The saved state is returned to the arena by the matching
    /// [`MultiHeadAttention::backward_ws`] (or recycled on the next forward
    /// if backward never runs, as in eval passes).
    pub fn forward_ws(&mut self, x: &Tensor, mode: &AttentionMode<'_>, ws: &mut Workspace) -> Tensor {
        if let Some(stale) = self.saved.take() {
            stale.recycle(ws);
        }
        let q = self.wq.forward_ws(x, ws);
        let k = self.wk.forward_ws(x, ws);
        let v = self.wv.forward_ws(x, ws);
        let result = match mode {
            AttentionMode::Dense { bias } => attention::dense_ws(&q, &k, &v, self.heads, *bias, ws),
            AttentionMode::Flash => attention::flash_ws(&q, &k, &v, self.heads, ws),
            AttentionMode::Sparse { mask, bias } => {
                attention::sparse_ws(&q, &k, &v, self.heads, mask, *bias, ws)
            }
            AttentionMode::Performer { features, seed } => {
                attention::performer_ws(&q, &k, &v, self.heads, *features, *seed, ws)
            }
        };
        let y = self.wo.forward_ws(&result.out, ws);
        self.saved = Some(SavedForward { q, k, v, out_pre: result.out, cache: result.cache });
        y
    }

    /// Backward pass. `mode` must match the one used in forward (same mask).
    /// Returns `(dx, bias_grad)`.
    pub fn backward(
        &mut self,
        dy: &Tensor,
        mode: &AttentionMode<'_>,
        want_bias_grad: bool,
    ) -> (Tensor, Option<BiasGrad>) {
        self.backward_ws(dy, mode, want_bias_grad, &mut Workspace::new())
    }

    /// [`MultiHeadAttention::backward`] through `ws`; consumes the saved
    /// forward state and returns all of its buffers to the arena. The
    /// returned `dx` (and bias grad, if any) belong to `ws` — the caller
    /// gives them back once consumed.
    pub fn backward_ws(
        &mut self,
        dy: &Tensor,
        mode: &AttentionMode<'_>,
        want_bias_grad: bool,
        ws: &mut Workspace,
    ) -> (Tensor, Option<BiasGrad>) {
        let SavedForward { q, k, v, out_pre, cache } =
            self.saved.take().expect("MHA backward before forward");
        let dout = self.wo.backward_ws(dy, ws);
        let grads = match mode {
            AttentionMode::Dense { .. } => {
                attention::dense_backward_ws(&q, &k, &v, self.heads, cache, &dout, want_bias_grad, ws)
            }
            AttentionMode::Flash => {
                attention::flash_backward_ws(&q, &k, &v, self.heads, cache, &out_pre, &dout, ws)
            }
            AttentionMode::Sparse { mask, .. } => attention::sparse_backward_ws(
                &q,
                &k,
                &v,
                self.heads,
                mask,
                cache,
                &dout,
                want_bias_grad,
                ws,
            ),
            AttentionMode::Performer { features, seed } => attention::performer_backward_ws(
                &q, &k, &v, self.heads, *features, *seed, cache, &dout, ws,
            ),
        };
        ws.give(dout);
        ws.give(q);
        ws.give(k);
        ws.give(v);
        ws.give(out_pre);
        let AttnGrads { dq, dk, dv, dbias } = grads;
        let mut dx = self.wq.backward_ws(&dq, ws);
        let dxk = self.wk.backward_ws(&dk, ws);
        torchgt_tensor::ops::add_inplace(&mut dx, &dxk);
        ws.give(dxk);
        let dxv = self.wv.backward_ws(&dv, ws);
        torchgt_tensor::ops::add_inplace(&mut dx, &dxv);
        ws.give(dxv);
        ws.give(dq);
        ws.give(dk);
        ws.give(dv);
        (dx, dbias)
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.wq.params_mut();
        p.extend(self.wk.params_mut());
        p.extend(self.wv.params_mut());
        p.extend(self.wo.params_mut());
        p
    }

    /// Scalar parameter count.
    pub fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::complete_graph;
    use torchgt_tensor::gradcheck::{max_abs_diff, numerical_grad};
    use torchgt_tensor::init;

    #[test]
    fn forward_shapes() {
        let mut mha = MultiHeadAttention::new(16, 4, 1);
        let x = init::normal(10, 16, 0.0, 1.0, 2);
        let y = mha.forward(&x, &AttentionMode::Flash);
        assert_eq!(y.shape(), (10, 16));
    }

    #[test]
    fn dense_flash_sparse_complete_agree() {
        let x = init::normal(9, 8, 0.0, 0.7, 3);
        let mask = complete_graph(9).with_self_loops();
        let mut a = MultiHeadAttention::new(8, 2, 7);
        let y_dense = a.forward(&x, &AttentionMode::Dense { bias: None });
        let y_flash = a.forward(&x, &AttentionMode::Flash);
        let y_sparse = a.forward(&x, &AttentionMode::Sparse { mask: &mask, bias: None });
        assert!(max_abs_diff(&y_dense, &y_flash) < 1e-4);
        assert!(max_abs_diff(&y_dense, &y_sparse) < 1e-4);
    }

    #[test]
    fn end_to_end_gradient_check_sparse() {
        let s = 6;
        let mask = torchgt_graph::generators::cycle_graph(s).with_self_loops();
        let x = init::normal(s, 8, 0.0, 0.8, 5);
        let w = init::normal(s, 8, 0.0, 1.0, 6);
        let mut mha = MultiHeadAttention::new(8, 2, 11);
        let mode = AttentionMode::Sparse { mask: &mask, bias: None };
        let _ = mha.forward(&x, &mode);
        let (dx, _) = mha.backward(&w, &mode, false);
        // Numerical check through a cloned module (weights identical, state
        // reset by each forward).
        let wq = mha.wq.clone();
        let wk = mha.wk.clone();
        let wv = mha.wv.clone();
        let wo = mha.wo.clone();
        let numeric = numerical_grad(
            &x,
            |p| {
                let mut probe = MultiHeadAttention::new(8, 2, 11);
                probe.wq = wq.clone();
                probe.wk = wk.clone();
                probe.wv = wv.clone();
                probe.wo = wo.clone();
                let y = probe.forward(p, &AttentionMode::Sparse { mask: &mask, bias: None });
                y.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-2,
        );
        assert!(max_abs_diff(&dx, &numeric) < 3e-2, "diff {}", max_abs_diff(&dx, &numeric));
    }

    #[test]
    fn param_count() {
        let mut mha = MultiHeadAttention::new(64, 8, 0);
        // 4 × (64×64 + 64)
        assert_eq!(mha.num_params(), 4 * (64 * 64 + 64));
    }
}
