//! Multi-head attention layer with a pluggable attention pattern.
//!
//! This is the swap point of the whole reproduction: GP-RAW uses
//! [`AttentionMode::Dense`], GP-FLASH uses [`AttentionMode::Flash`],
//! GP-SPARSE / TorchGT use [`AttentionMode::Sparse`] with the topology /
//! cluster-sparse mask, and the Dual-interleaved scheduler alternates modes
//! between iterations without touching the model.

use crate::attention::{self, AttnCache, BiasGrad};
use torchgt_graph::CsrGraph;
use torchgt_tensor::layers::Layer;
use torchgt_tensor::rng::derive_seed;
use torchgt_tensor::{Linear, Param, Tensor};

/// Which kernel and pattern the attention layer should use for a pass.
pub enum AttentionMode<'a> {
    /// Fully-connected, materialised scores, optional per-head `[s,s]` bias.
    Dense {
        /// Per-head additive score bias (Graphormer's spatial encoding).
        bias: Option<&'a [Tensor]>,
    },
    /// Fully-connected tiled kernel. No bias support (FlashAttention's
    /// limitation, noted in the paper §II-C).
    Flash,
    /// Sparse pattern over `mask`, optional per-head per-edge bias.
    Sparse {
        /// Attention mask: query `i` attends to `mask.neighbors(i)`.
        mask: &'a CsrGraph,
        /// Per-head per-edge bias in the mask's CSR order.
        bias: Option<&'a [Vec<f32>]>,
    },
    /// Performer (FAVOR+) linear attention — the structure-agnostic NLP
    /// approximation baseline. No bias support.
    Performer {
        /// Random features per head.
        features: usize,
        /// Feature-matrix seed (fixed across fwd/bwd of one pass).
        seed: u64,
    },
}

/// Multi-head attention with learned Q/K/V/output projections.
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Number of heads.
    pub heads: usize,
    saved: Option<SavedForward>,
}

struct SavedForward {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    out_pre: Tensor,
    cache: AttnCache,
}

impl MultiHeadAttention {
    /// Construct for hidden dimension `dim` split over `heads`.
    pub fn new(dim: usize, heads: usize, seed: u64) -> Self {
        assert_eq!(dim % heads, 0, "hidden must divide heads");
        Self {
            wq: Linear::new(dim, dim, derive_seed(seed, 20)),
            wk: Linear::new(dim, dim, derive_seed(seed, 21)),
            wv: Linear::new(dim, dim, derive_seed(seed, 22)),
            wo: Linear::new(dim, dim, derive_seed(seed, 23)),
            heads,
            saved: None,
        }
    }

    /// Forward pass under the given attention mode.
    pub fn forward(&mut self, x: &Tensor, mode: &AttentionMode<'_>) -> Tensor {
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let result = match mode {
            AttentionMode::Dense { bias } => attention::dense(&q, &k, &v, self.heads, *bias),
            AttentionMode::Flash => attention::flash(&q, &k, &v, self.heads),
            AttentionMode::Sparse { mask, bias } => {
                attention::sparse(&q, &k, &v, self.heads, mask, *bias)
            }
            AttentionMode::Performer { features, seed } => {
                attention::performer(&q, &k, &v, self.heads, *features, *seed)
            }
        };
        let y = self.wo.forward(&result.out);
        self.saved = Some(SavedForward { q, k, v, out_pre: result.out, cache: result.cache });
        y
    }

    /// Backward pass. `mode` must match the one used in forward (same mask).
    /// Returns `(dx, bias_grad)`.
    pub fn backward(
        &mut self,
        dy: &Tensor,
        mode: &AttentionMode<'_>,
        want_bias_grad: bool,
    ) -> (Tensor, Option<BiasGrad>) {
        let saved = self.saved.take().expect("MHA backward before forward");
        let dout = self.wo.backward(dy);
        let grads = match mode {
            AttentionMode::Dense { .. } => attention::dense_backward(
                &saved.q,
                &saved.k,
                &saved.v,
                self.heads,
                &saved.cache,
                &dout,
                want_bias_grad,
            ),
            AttentionMode::Flash => attention::flash_backward(
                &saved.q,
                &saved.k,
                &saved.v,
                self.heads,
                &saved.cache,
                &saved.out_pre,
                &dout,
            ),
            AttentionMode::Sparse { mask, .. } => attention::sparse_backward(
                &saved.q,
                &saved.k,
                &saved.v,
                self.heads,
                mask,
                &saved.cache,
                &dout,
                want_bias_grad,
            ),
            AttentionMode::Performer { features, seed } => attention::performer_backward(
                &saved.q,
                &saved.k,
                &saved.v,
                self.heads,
                *features,
                *seed,
                &saved.cache,
                &dout,
            ),
        };
        let mut dx = self.wq.backward(&grads.dq);
        torchgt_tensor::ops::add_inplace(&mut dx, &self.wk.backward(&grads.dk));
        torchgt_tensor::ops::add_inplace(&mut dx, &self.wv.backward(&grads.dv));
        (dx, grads.dbias)
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.wq.params_mut();
        p.extend(self.wk.params_mut());
        p.extend(self.wv.params_mut());
        p.extend(self.wo.params_mut());
        p
    }

    /// Scalar parameter count.
    pub fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::complete_graph;
    use torchgt_tensor::gradcheck::{max_abs_diff, numerical_grad};
    use torchgt_tensor::init;

    #[test]
    fn forward_shapes() {
        let mut mha = MultiHeadAttention::new(16, 4, 1);
        let x = init::normal(10, 16, 0.0, 1.0, 2);
        let y = mha.forward(&x, &AttentionMode::Flash);
        assert_eq!(y.shape(), (10, 16));
    }

    #[test]
    fn dense_flash_sparse_complete_agree() {
        let x = init::normal(9, 8, 0.0, 0.7, 3);
        let mask = complete_graph(9).with_self_loops();
        let mut a = MultiHeadAttention::new(8, 2, 7);
        let y_dense = a.forward(&x, &AttentionMode::Dense { bias: None });
        let y_flash = a.forward(&x, &AttentionMode::Flash);
        let y_sparse = a.forward(&x, &AttentionMode::Sparse { mask: &mask, bias: None });
        assert!(max_abs_diff(&y_dense, &y_flash) < 1e-4);
        assert!(max_abs_diff(&y_dense, &y_sparse) < 1e-4);
    }

    #[test]
    fn end_to_end_gradient_check_sparse() {
        let s = 6;
        let mask = torchgt_graph::generators::cycle_graph(s).with_self_loops();
        let x = init::normal(s, 8, 0.0, 0.8, 5);
        let w = init::normal(s, 8, 0.0, 1.0, 6);
        let mut mha = MultiHeadAttention::new(8, 2, 11);
        let mode = AttentionMode::Sparse { mask: &mask, bias: None };
        let _ = mha.forward(&x, &mode);
        let (dx, _) = mha.backward(&w, &mode, false);
        // Numerical check through a cloned module (weights identical, state
        // reset by each forward).
        let wq = mha.wq.clone();
        let wk = mha.wk.clone();
        let wv = mha.wv.clone();
        let wo = mha.wo.clone();
        let numeric = numerical_grad(
            &x,
            |p| {
                let mut probe = MultiHeadAttention::new(8, 2, 11);
                probe.wq = wq.clone();
                probe.wk = wk.clone();
                probe.wv = wv.clone();
                probe.wo = wo.clone();
                let y = probe.forward(p, &AttentionMode::Sparse { mask: &mask, bias: None });
                y.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-2,
        );
        assert!(max_abs_diff(&dx, &numeric) < 3e-2, "diff {}", max_abs_diff(&dx, &numeric));
    }

    #[test]
    fn param_count() {
        let mut mha = MultiHeadAttention::new(64, 8, 0);
        // 4 × (64×64 + 64)
        assert_eq!(mha.num_params(), 4 * (64 * 64 + 64));
    }
}
