//! Graph structural encodings (Graphormer Eqs. 2–3 and GT's positional
//! encodings).

use crate::attention::BiasGrad;
use torchgt_graph::{spd, CsrGraph};
use torchgt_tensor::layers::Embedding;
use torchgt_tensor::rng::derive_seed;
use torchgt_tensor::{Param, Tensor, Workspace};

/// Degree ("centrality") encoding: learnable embeddings indexed by node
/// degree, added to the input features (Graphormer Eq. 2; undirected graphs
/// have `deg⁻ = deg⁺`, so one table suffices).
pub struct DegreeEncoding {
    table: Embedding,
    /// Reused per-pass degree-index scratch (cleared, never shrunk).
    degrees: Vec<usize>,
}

impl DegreeEncoding {
    /// Construct with `max_degree + 1` buckets (degrees clamp into the last
    /// one) and embedding width `dim`.
    pub fn new(max_degree: usize, dim: usize, seed: u64) -> Self {
        Self { table: Embedding::new(max_degree + 1, dim, derive_seed(seed, 30)), degrees: Vec::new() }
    }

    /// Look up the encodings for all nodes of `graph` (in id order).
    pub fn forward(&mut self, graph: &CsrGraph) -> Tensor {
        self.forward_ws(graph, &mut Workspace::new())
    }

    /// [`DegreeEncoding::forward`] with the output drawn from `ws`.
    pub fn forward_ws(&mut self, graph: &CsrGraph, ws: &mut Workspace) -> Tensor {
        self.degrees.clear();
        self.degrees.extend((0..graph.num_nodes()).map(|v| graph.degree(v)));
        self.table.forward_indices_ws(&self.degrees, ws)
    }

    /// Accumulate gradients for the last forward.
    pub fn backward(&mut self, dy: &Tensor) {
        self.table.backward_indices(dy);
    }

    /// [`DegreeEncoding::backward`] with scatter scratch drawn from `ws`.
    pub fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) {
        self.table.backward_indices_ws(dy, ws);
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table.table]
    }
}

/// Shortest-path-distance attention bias (Graphormer Eq. 3): a learnable
/// scalar per head per SPD bucket, shared across layers.
///
/// Buckets: `0..=max_dist` for exact distances, bucket `max_dist + 1` for
/// "unreachable / farther".
pub struct SpdBias {
    /// `[heads, max_dist + 2]` learnable scalars.
    pub table: Param,
    max_dist: u8,
    /// Cached bucket index per (row-major) pair or per edge, for backward.
    cached_buckets: Vec<usize>,
    cached_mode_dense: bool,
}

impl SpdBias {
    /// Construct for `heads` heads and distances up to `max_dist`.
    pub fn new(heads: usize, max_dist: u8, seed: u64) -> Self {
        Self {
            table: Param::new(torchgt_tensor::init::normal(
                heads,
                max_dist as usize + 2,
                0.0,
                0.02,
                derive_seed(seed, 31),
            )),
            max_dist,
            cached_buckets: Vec::new(),
            cached_mode_dense: false,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.table.value.rows()
    }

    /// Build per-head dense `[s, s]` bias matrices from a full SPD matrix
    /// (graph-level tasks; `spd_matrix` is `s × s` row-major).
    pub fn dense_bias(&mut self, spd_matrix: &[u8], s: usize) -> Vec<Tensor> {
        self.dense_bias_ws(spd_matrix, s, &mut Workspace::new())
    }

    /// [`SpdBias::dense_bias`] with the bias tensors drawn from `ws`; the
    /// caller returns them (e.g. via [`BiasGrad::recycle`]-style gives) once
    /// the pass is done.
    pub fn dense_bias_ws(&mut self, spd_matrix: &[u8], s: usize, ws: &mut Workspace) -> Vec<Tensor> {
        assert_eq!(spd_matrix.len(), s * s);
        let heads = self.heads();
        let max_dist = self.max_dist;
        self.cached_buckets.clear();
        self.cached_buckets.extend(spd_matrix.iter().map(|&d| {
            if d == spd::UNREACHABLE || d > max_dist {
                max_dist as usize + 1
            } else {
                d as usize
            }
        }));
        self.cached_mode_dense = true;
        let mut out = Vec::with_capacity(heads);
        for h in 0..heads {
            let row = self.table.value.row(h);
            let mut t = ws.take(s, s);
            for (slot, &b) in t.data_mut().iter_mut().zip(&self.cached_buckets) {
                *slot = row[b];
            }
            out.push(t);
        }
        out
    }

    /// Build per-head per-edge bias vectors for a sparse mask. `dist_of`
    /// supplies the SPD bucket source for each (query, key) pair — typically
    /// [`edge_spd`].
    pub fn sparse_bias(&mut self, mask: &CsrGraph, dist_of: impl Fn(usize, usize) -> u8) -> Vec<Vec<f32>> {
        self.sparse_bias_ws(mask, dist_of, &mut Workspace::new())
    }

    /// [`SpdBias::sparse_bias`] with the per-edge buffers drawn from `ws`.
    pub fn sparse_bias_ws(
        &mut self,
        mask: &CsrGraph,
        dist_of: impl Fn(usize, usize) -> u8,
        ws: &mut Workspace,
    ) -> Vec<Vec<f32>> {
        let heads = self.heads();
        let max_dist = self.max_dist;
        let bucket = |dist: u8| {
            if dist == spd::UNREACHABLE || dist > max_dist {
                max_dist as usize + 1
            } else {
                dist as usize
            }
        };
        self.cached_buckets.clear();
        for v in 0..mask.num_nodes() {
            for &nb in mask.neighbors(v) {
                self.cached_buckets.push(bucket(dist_of(v, nb as usize)));
            }
        }
        self.cached_mode_dense = false;
        (0..heads)
            .map(|h| {
                let row = self.table.value.row(h);
                let mut buf = ws.take_buf(self.cached_buckets.len());
                for (slot, &b) in buf.iter_mut().zip(&self.cached_buckets) {
                    *slot = row[b];
                }
                buf
            })
            .collect()
    }

    /// Accumulate table gradients from an attention [`BiasGrad`].
    pub fn backward(&mut self, grad: &BiasGrad) {
        let mut g = Tensor::zeros(self.heads(), self.table.value.cols());
        self.accumulate_into(grad, &mut g);
        self.table.accumulate(&g);
    }

    /// [`SpdBias::backward`] through `ws`; consumes the gradient, returning
    /// its buffers to the arena.
    pub fn backward_ws(&mut self, grad: BiasGrad, ws: &mut Workspace) {
        let mut g = ws.take(self.heads(), self.table.value.cols());
        self.accumulate_into(&grad, &mut g);
        self.table.accumulate(&g);
        ws.give(g);
        grad.recycle(ws);
    }

    fn accumulate_into(&self, grad: &BiasGrad, g: &mut Tensor) {
        match grad {
            BiasGrad::Dense(per_head) => {
                assert!(self.cached_mode_dense, "bias grad mode mismatch");
                for (h, t) in per_head.iter().enumerate() {
                    debug_assert_eq!(t.len(), self.cached_buckets.len());
                    let grow = g.row_mut(h);
                    for (&b, &dv) in self.cached_buckets.iter().zip(t.data()) {
                        grow[b] += dv;
                    }
                }
            }
            BiasGrad::Sparse(per_head) => {
                assert!(!self.cached_mode_dense, "bias grad mode mismatch");
                for (h, edges) in per_head.iter().enumerate() {
                    debug_assert_eq!(edges.len(), self.cached_buckets.len());
                    let grow = g.row_mut(h);
                    for (&b, &dv) in self.cached_buckets.iter().zip(edges) {
                        grow[b] += dv;
                    }
                }
            }
        }
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }
}

/// SPD bucket for a pair restricted to a sparse attention pattern: 0 for
/// self, 1 for an original graph edge, 2 for anything else (edges the
/// reformation or the global token introduced). Exact SPD over the pattern
/// is unnecessary — the pattern only contains local pairs.
pub fn edge_spd(graph: &CsrGraph) -> impl Fn(usize, usize) -> u8 + '_ {
    move |i, j| {
        if i == j {
            0
        } else if graph.has_edge(i, j) {
            1
        } else {
            2
        }
    }
}

/// Laplacian-style positional encoding for GT (Dwivedi & Bresson): the `k`
/// lowest non-trivial eigenvectors of the symmetric normalised Laplacian,
/// computed by deflated power iteration on `2I − L_sym` (largest eigenpairs
/// of that operator are the smallest of `L_sym`).
pub fn laplacian_pe(graph: &CsrGraph, k: usize, iters: usize, seed: u64) -> Tensor {
    let n = graph.num_nodes();
    let mut out = Tensor::zeros(n, k);
    if n == 0 || k == 0 {
        return out;
    }
    let inv_sqrt_deg: Vec<f32> =
        (0..n).map(|v| 1.0 / ((graph.degree(v) as f32).max(1.0)).sqrt()).collect();
    // y = (2I − L_sym) x = x + D^{-1/2} A D^{-1/2} x
    let apply = |x: &[f32], y: &mut [f32]| {
        for v in 0..n {
            let mut acc = 0.0f32;
            for &nb in graph.neighbors(v) {
                let u = nb as usize;
                acc += inv_sqrt_deg[v] * inv_sqrt_deg[u] * x[u];
            }
            y[v] = x[v] + acc;
        }
    };
    let mut basis: Vec<Vec<f32>> = Vec::with_capacity(k + 1);
    // The trivial eigenvector of L_sym is D^{1/2}·1 — deflate it first.
    let mut trivial: Vec<f32> = (0..n).map(|v| (graph.degree(v) as f32).max(1.0).sqrt()).collect();
    normalize(&mut trivial);
    basis.push(trivial);
    let mut rng = torchgt_tensor::rng::rng(seed);
    use torchgt_compat::rng::Rng;
    for comp in 0..k {
        let mut x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let mut y = vec![0.0f32; n];
        for _ in 0..iters {
            // Orthogonalise against found components.
            for b in &basis {
                let dot: f32 = x.iter().zip(b).map(|(a, c)| a * c).sum();
                for (xi, bi) in x.iter_mut().zip(b) {
                    *xi -= dot * bi;
                }
            }
            normalize(&mut x);
            apply(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
        }
        normalize(&mut x);
        for v in 0..n {
            out.set(v, comp, x[v]);
        }
        basis.push(x);
    }
    out
}

fn normalize(x: &mut [f32]) {
    let norm = x.iter().map(|v| v * v).sum::<f32>().sqrt().max(f32::MIN_POSITIVE);
    for v in x.iter_mut() {
        *v /= norm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::{complete_graph, cycle_graph, path_graph, star_graph};
    use torchgt_graph::spd::spd_matrix;

    #[test]
    fn degree_encoding_equal_degrees_share_rows() {
        let mut enc = DegreeEncoding::new(8, 4, 1);
        let g = cycle_graph(6); // all degree 2
        let e = enc.forward(&g);
        for v in 1..6 {
            assert_eq!(e.row(v), e.row(0));
        }
    }

    #[test]
    fn degree_encoding_backward_accumulates() {
        let mut enc = DegreeEncoding::new(8, 4, 1);
        let g = star_graph(5); // hub degree 4, leaves 1
        let _ = enc.forward(&g);
        enc.backward(&Tensor::full(5, 4, 1.0));
        let p = &enc.params_mut()[0].grad;
        assert_eq!(p.row(1), &[4.0; 4]); // 4 leaves hit bucket 1
        assert_eq!(p.row(4), &[1.0; 4]); // hub bucket 4
    }

    #[test]
    fn dense_bias_reflects_distances() {
        let g = path_graph(4);
        let m = spd_matrix(&g, 8);
        let mut bias = SpdBias::new(2, 8, 3);
        let b = bias.dense_bias(&m, 4);
        assert_eq!(b.len(), 2);
        // Same distance ⇒ same bias value within a head.
        assert_eq!(b[0].get(0, 1), b[0].get(1, 2)); // both dist 1
        assert_eq!(b[0].get(0, 0), b[0].get(3, 3)); // both dist 0
        assert_ne!(b[0].get(0, 0), b[0].get(0, 3)); // dist 0 vs 3 (generic)
    }

    #[test]
    fn sparse_bias_layout_and_backward() {
        let g = complete_graph(4).with_self_loops();
        let mut bias = SpdBias::new(2, 4, 5);
        let b = bias.sparse_bias(&g, edge_spd(&g));
        assert_eq!(b[0].len(), g.num_arcs());
        let fake = BiasGrad::Sparse(vec![vec![1.0; g.num_arcs()]; 2]);
        bias.backward(&fake);
        // Self-loop bucket (0) got n = 4 contributions per head.
        assert_eq!(bias.table.grad.get(0, 0), 4.0);
        // Edge bucket (1) got the remaining 12.
        assert_eq!(bias.table.grad.get(0, 1), 12.0);
    }

    #[test]
    fn laplacian_pe_is_orthonormalish_and_deterministic() {
        let g = cycle_graph(12);
        let pe = laplacian_pe(&g, 3, 50, 7);
        let pe2 = laplacian_pe(&g, 3, 50, 7);
        assert_eq!(pe.data(), pe2.data());
        // Columns have unit norm.
        for c in 0..3 {
            let norm: f32 = (0..12).map(|r| pe.get(r, c).powi(2)).sum();
            assert!((norm - 1.0).abs() < 1e-3, "col {c} norm {norm}");
        }
        // Orthogonal to the trivial (constant·sqrt(deg)) vector: on a cycle
        // that is the constant vector, so columns sum ≈ 0.
        for c in 0..3 {
            let s: f32 = (0..12).map(|r| pe.get(r, c)).sum();
            assert!(s.abs() < 1e-2, "col {c} sum {s}");
        }
    }

    #[test]
    fn laplacian_pe_distinguishes_path_position() {
        // The Fiedler vector of a path has exactly one sign change (it
        // separates the two halves), and is antisymmetric about the centre.
        let g = path_graph(10);
        let pe = laplacian_pe(&g, 1, 200, 1);
        let col: Vec<f32> = (0..10).map(|r| pe.get(r, 0)).collect();
        let sign_changes =
            col.windows(2).filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0)).count();
        assert_eq!(sign_changes, 1, "fiedler vector: {col:?}");
        for i in 0..5 {
            assert!(
                (col[i] + col[9 - i]).abs() < 1e-3,
                "not antisymmetric: {col:?}"
            );
        }
    }
}
