//! A NodeFormer-style sampling transformer baseline.
//!
//! NodeFormer (Wu et al., NeurIPS '22) approximates all-pair attention for
//! node classification; the paper uses it in Figure 1 to show that longer
//! sequences (larger sampled batches) improve accuracy. This stand-in keeps
//! the defining behaviour — each token attends to its graph neighbours plus
//! `samples` random tokens, resampled every forward pass — on top of the same
//! transformer trunk.

use crate::api::{Pattern, SequenceBatch, SequenceModel};
use crate::block::TransformerBlock;
use crate::mha::AttentionMode;
use torchgt_compat::rng::Rng;
use torchgt_graph::CsrGraph;
use torchgt_tensor::layers::Layer;
use torchgt_tensor::rng::{derive_seed, rng};
use torchgt_tensor::{Linear, Param, Tensor};

/// The sampling-attention model.
pub struct SampledTransformer {
    in_proj: Linear,
    blocks: Vec<TransformerBlock>,
    head: Linear,
    /// Random keys sampled per query each pass.
    pub samples: usize,
    seed: u64,
    step: u64,
    current_mask: Option<CsrGraph>,
}

impl SampledTransformer {
    /// Construct: `feat → hidden`, `layers` blocks, `samples` random keys
    /// per query.
    pub fn new(
        feat: usize,
        hidden: usize,
        layers: usize,
        heads: usize,
        out: usize,
        samples: usize,
        seed: u64,
    ) -> Self {
        let blocks = (0..layers)
            .map(|l| TransformerBlock::new(hidden, heads, 2, 0.0, derive_seed(seed, 300 + l as u64)))
            .collect();
        Self {
            in_proj: Linear::new(feat, hidden, derive_seed(seed, 64)),
            blocks,
            head: Linear::new(hidden, out, derive_seed(seed, 65)),
            samples,
            seed,
            step: 0,
            current_mask: None,
        }
    }

    fn sample_mask(&mut self, graph: &CsrGraph) -> CsrGraph {
        let n = graph.num_nodes();
        let mut r = rng(derive_seed(self.seed, 1000 + self.step));
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(graph.num_arcs() / 2 + n * self.samples);
        for v in 0..n {
            for &nb in graph.neighbors(v) {
                if nb as usize >= v {
                    edges.push((v as u32, nb));
                }
            }
            for _ in 0..self.samples {
                let t = r.gen_range(0..n as u32);
                if t as usize != v {
                    edges.push((v as u32, t));
                }
            }
        }
        CsrGraph::from_edges(n, &edges).with_self_loops()
    }
}

impl SequenceModel for SampledTransformer {
    fn forward(&mut self, batch: &SequenceBatch<'_>, _pattern: Pattern<'_>) -> Tensor {
        self.step += 1;
        let mask = self.sample_mask(batch.graph);
        let mut h = self.in_proj.forward(batch.features);
        for block in &mut self.blocks {
            h = block.forward(&h, &AttentionMode::Sparse { mask: &mask, bias: None });
        }
        self.current_mask = Some(mask);
        self.head.forward(&h)
    }

    fn backward(&mut self, _batch: &SequenceBatch<'_>, _pattern: Pattern<'_>, dlogits: &Tensor) {
        let mask = self.current_mask.take().expect("backward before forward");
        let mut dh = self.head.backward(dlogits);
        for block in self.blocks.iter_mut().rev() {
            let (dx, _) =
                block.backward(&dh, &AttentionMode::Sparse { mask: &mask, bias: None }, false);
            dh = dx;
        }
        let _ = self.in_proj.backward(&dh);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.in_proj.params_mut();
        for b in &mut self.blocks {
            p.extend(b.params_mut());
        }
        p.extend(self.head.params_mut());
        p
    }

    fn set_training(&mut self, on: bool) {
        for b in &mut self.blocks {
            b.set_training(on);
        }
    }

    fn name(&self) -> &'static str {
        "NodeFormer-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::cycle_graph;
    use torchgt_tensor::init;

    #[test]
    fn mask_includes_graph_edges_and_extras() {
        let g = cycle_graph(20);
        let mut m = SampledTransformer::new(4, 8, 1, 2, 2, 3, 1);
        let mask = m.sample_mask(&g);
        for v in 0..20 {
            for &nb in g.neighbors(v) {
                assert!(mask.has_edge(v, nb as usize));
            }
            assert!(mask.has_edge(v, v));
        }
        assert!(mask.num_edges() > g.num_edges());
    }

    #[test]
    fn resampling_changes_between_steps() {
        let g = cycle_graph(30);
        let x = init::normal(30, 4, 0.0, 1.0, 2);
        let mut m = SampledTransformer::new(4, 8, 1, 2, 2, 3, 5);
        m.set_training(false);
        let batch = SequenceBatch { features: &x, graph: &g, spd: None };
        let y1 = m.forward(&batch, Pattern::Flash);
        let mask1 = m.current_mask.clone().unwrap();
        let y2 = m.forward(&batch, Pattern::Flash);
        let mask2 = m.current_mask.clone().unwrap();
        assert_ne!(mask1, mask2, "masks must be resampled");
        assert_ne!(y1.data(), y2.data());
    }

    #[test]
    fn trains_without_panic() {
        use torchgt_tensor::{Adam, Optimizer};
        let g = cycle_graph(16);
        let x = init::normal(16, 4, 0.0, 1.0, 3);
        let labels: Vec<u32> = (0..16).map(|v| (v % 2) as u32).collect();
        let mut m = SampledTransformer::new(4, 8, 1, 2, 2, 2, 9);
        let mut opt = Adam::with_lr(1e-3);
        let batch = SequenceBatch { features: &x, graph: &g, spd: None };
        for _ in 0..5 {
            let logits = m.forward(&batch, Pattern::Flash);
            let (_, dl) = crate::loss::softmax_cross_entropy(&logits, &labels);
            m.backward(&batch, Pattern::Flash, &dl);
            opt.step(&mut m.params_mut());
        }
    }
}
