//! The model-facing API the training runtime programs against.

use torchgt_graph::CsrGraph;
use torchgt_tensor::{Param, Tensor, Workspace};

/// Which attention pattern the runtime selected for the current pass.
///
/// The Dual-interleaved scheduler flips between `Sparse` (topology /
/// cluster-sparse masks) and `Flash`/`Dense`; models translate this into a
/// concrete [`crate::mha::AttentionMode`] including their own bias encodings.
#[derive(Clone, Copy)]
pub enum Pattern<'a> {
    /// Fully-connected attention with materialised scores (GP-RAW).
    Dense,
    /// Fully-connected tiled attention, bias-free (GP-FLASH).
    Flash,
    /// Sparse attention over the given mask.
    Sparse(&'a CsrGraph),
    /// Performer (FAVOR+) linear attention with the given random-feature
    /// count — the structure-agnostic NLP baseline (paper §II-C, I2).
    Performer(usize),
}

impl Pattern<'_> {
    /// Short label for logs and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Dense => "dense",
            Pattern::Flash => "flash",
            Pattern::Sparse(_) => "sparse",
            Pattern::Performer(_) => "performer",
        }
    }
}

/// One sequence of graph tokens plus the structural side information the
/// encodings need.
pub struct SequenceBatch<'a> {
    /// `[s, feat]` node features in sequence order.
    pub features: &'a Tensor,
    /// The (sub)graph over the sequence's nodes, in sequence order.
    pub graph: &'a CsrGraph,
    /// Full `s × s` SPD matrix (row-major) for dense-bias models on small
    /// sequences; `None` skips the spatial encoding (as GP-FLASH must).
    pub spd: Option<&'a [u8]>,
}

/// Architecture hyper-parameters sufficient to reconstruct a model of the
/// same shape (what a frozen deployable artifact records). Fields a family
/// does not use (`pe_dim` for Graphormer, the degree/SPD buckets for GT)
/// are zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArchDescriptor {
    /// Family tag: `"gt"` or `"graphormer"`.
    pub kind: &'static str,
    pub feat_dim: usize,
    pub hidden: usize,
    pub layers: usize,
    pub heads: usize,
    pub ffn_mult: usize,
    pub out_dim: usize,
    pub pe_dim: usize,
    pub max_degree: usize,
    pub max_spd: u8,
}

/// A trainable sequence model (Graphormer, GT, baselines).
///
/// `Send` is a supertrait: models are plain owned data (tensors, cursors,
/// PRNG state), and the serving layer moves a boxed model onto its own
/// thread.
pub trait SequenceModel: Send {
    /// Forward: returns per-token logits `[s, out_dim]`.
    fn forward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>) -> Tensor;
    /// Backward from per-token logit gradients. `pattern` must match the
    /// forward call.
    fn backward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>, dlogits: &Tensor);
    /// [`Self::forward`] drawing scratch from a caller-owned [`Workspace`].
    /// The returned logits belong to `ws`; the caller gives them back once
    /// consumed. The default delegates to the allocating path so existing
    /// models keep working; models implementing it run allocation-free when
    /// the trainer reuses one arena across steps.
    fn forward_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> Tensor {
        let _ = ws;
        self.forward(batch, pattern)
    }
    /// Forward through the trunk only, returning the pre-head hidden state
    /// `[s, hidden]` (owned by `ws` — give it back once consumed). `None`
    /// means the model has no separable head; callers (the serving
    /// executor's int8 head fast path, activation calibration) must fall
    /// back to [`Self::forward_ws`].
    fn forward_hidden_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> Option<Tensor> {
        let _ = (batch, pattern, ws);
        None
    }
    /// [`Self::backward`] drawing scratch from a caller-owned [`Workspace`].
    fn backward_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        dlogits: &Tensor,
        ws: &mut Workspace,
    ) {
        let _ = ws;
        self.backward(batch, pattern, dlogits)
    }
    /// All learnable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param>;
    /// Toggle dropout/training mode.
    fn set_training(&mut self, on: bool);
    /// Model name for experiment tables.
    fn name(&self) -> &'static str;
    /// The model's PRNG state as a flat list of counters (one per stochastic
    /// layer, in traversal order) — for full-state checkpointing. Models
    /// without stochastic layers return an empty vec.
    fn rng_state(&self) -> Vec<u64> {
        Vec::new()
    }
    /// Restore the PRNG state captured by [`Self::rng_state`]. Length must
    /// match what this model emits; implementations panic on mismatch
    /// (a snapshot for a different architecture).
    fn set_rng_state(&mut self, state: &[u64]) {
        assert!(state.is_empty(), "{} has no PRNG state to restore", self.name());
    }
    /// Total scalar parameter count.
    fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
    /// Architecture description for freezing into a deployable artifact.
    /// `None` means the family cannot be reconstructed from hyper-parameters
    /// alone and is not freezable.
    fn describe(&self) -> Option<ArchDescriptor> {
        None
    }
}
