//! Losses and metrics.

use torchgt_tensor::ops;
use torchgt_tensor::{Tensor, Workspace};

/// Softmax cross-entropy over per-token logits. Returns the mean loss and
/// `dL/dlogits` (already divided by the token count).
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[u32]) -> (f32, Tensor) {
    softmax_cross_entropy_ws(logits, labels, &mut Workspace::new())
}

/// [`softmax_cross_entropy`] with the probability scratch and the returned
/// gradient drawn from `ws` (the caller gives the gradient back once
/// consumed).
pub fn softmax_cross_entropy_ws(
    logits: &Tensor,
    labels: &[u32],
    ws: &mut Workspace,
) -> (f32, Tensor) {
    let (n, c) = logits.shape();
    assert_eq!(labels.len(), n);
    let mut probs = ws.take(n, c);
    ops::row_softmax_into(logits, &mut probs);
    let mut loss = 0.0f32;
    let mut grad = ws.take(n, c);
    ops::copy_into(&probs, &mut grad);
    let inv_n = 1.0 / n as f32;
    for (i, &label) in labels.iter().enumerate() {
        let l = label as usize;
        assert!(l < c, "label {l} out of range for {c} classes");
        let p = probs.get(i, l).max(1e-12);
        loss -= p.ln();
        grad.set(i, l, grad.get(i, l) - 1.0);
    }
    ws.give(probs);
    ops::scale_inplace(&mut grad, inv_n);
    (loss * inv_n, grad)
}

/// Masked variant: only the listed token indices contribute (used when a
/// sequence mixes train/test nodes).
pub fn masked_softmax_cross_entropy(
    logits: &Tensor,
    labels: &[u32],
    indices: &[u32],
) -> (f32, Tensor) {
    masked_softmax_cross_entropy_ws(logits, labels, indices, &mut Workspace::new())
}

/// [`masked_softmax_cross_entropy`] through `ws`; the returned gradient
/// belongs to the arena.
pub fn masked_softmax_cross_entropy_ws(
    logits: &Tensor,
    labels: &[u32],
    indices: &[u32],
    ws: &mut Workspace,
) -> (f32, Tensor) {
    let (n, c) = logits.shape();
    assert_eq!(labels.len(), n);
    let mut probs = ws.take(n, c);
    ops::row_softmax_into(logits, &mut probs);
    let grad = ws.take(n, c);
    if indices.is_empty() {
        ws.give(probs);
        return (0.0, grad);
    }
    let mut grad = grad;
    let inv = 1.0 / indices.len() as f32;
    let mut loss = 0.0f32;
    for &iu in indices {
        let i = iu as usize;
        let l = labels[i] as usize;
        let p = probs.get(i, l).max(1e-12);
        loss -= p.ln();
        for j in 0..c {
            let delta = if j == l { 1.0 } else { 0.0 };
            grad.set(i, j, (probs.get(i, j) - delta) * inv);
        }
    }
    ws.give(probs);
    (loss * inv, grad)
}

/// Mean absolute error for regression (`logits` is `[n, 1]`). Returns the
/// MAE and its (sub)gradient.
pub fn mae_loss(pred: &Tensor, targets: &[f32]) -> (f32, Tensor) {
    let n = pred.rows();
    assert_eq!(pred.cols(), 1);
    assert_eq!(targets.len(), n);
    let mut grad = Tensor::zeros(n, 1);
    let inv = 1.0 / n as f32;
    let mut loss = 0.0f32;
    for i in 0..n {
        let diff = pred.get(i, 0) - targets[i];
        loss += diff.abs();
        grad.set(i, 0, diff.signum() * inv);
    }
    (loss * inv, grad)
}

/// Classification accuracy over the given token indices (all tokens when
/// `indices` is `None`).
pub fn accuracy(logits: &Tensor, labels: &[u32], indices: Option<&[u32]>) -> f64 {
    let pick = |i: usize| -> bool {
        let row = logits.row(i);
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best as u32 == labels[i]
    };
    match indices {
        Some(idx) => {
            if idx.is_empty() {
                return 0.0;
            }
            idx.iter().filter(|&&i| pick(i as usize)).count() as f64 / idx.len() as f64
        }
        None => {
            if labels.is_empty() {
                return 0.0;
            }
            (0..labels.len()).filter(|&i| pick(i)).count() as f64 / labels.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(2, 3, vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
        assert!(grad.norm() < 1e-3);
    }

    #[test]
    fn cross_entropy_of_uniform_is_ln_c() {
        let logits = Tensor::zeros(4, 5);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_numerical() {
        let logits = Tensor::from_vec(2, 3, vec![0.3, -0.2, 0.5, 0.1, 0.9, -0.4]);
        let labels = [2u32, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let numeric = torchgt_tensor::gradcheck::numerical_grad(
            &logits,
            |p| softmax_cross_entropy(p, &labels).0,
            1e-3,
        );
        assert!(torchgt_tensor::gradcheck::max_abs_diff(&grad, &numeric) < 1e-3);
    }

    #[test]
    fn masked_ce_ignores_other_rows() {
        let logits = Tensor::from_vec(3, 2, vec![5.0, 0.0, 0.0, 5.0, -3.0, 3.0]);
        let (loss, grad) = masked_softmax_cross_entropy(&logits, &[0, 0, 0], &[0]);
        assert!(loss < 1e-2);
        // Rows 1 and 2 get zero grad.
        assert_eq!(grad.row(1), &[0.0, 0.0]);
        assert_eq!(grad.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn mae_and_grad() {
        let pred = Tensor::from_vec(2, 1, vec![1.0, -1.0]);
        let (loss, grad) = mae_loss(&pred, &[0.0, 0.0]);
        assert!((loss - 1.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[0.5, -0.5]);
    }

    #[test]
    fn accuracy_full_and_masked() {
        let logits = Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let labels = [0u32, 1, 1];
        assert!((accuracy(&logits, &labels, None) - 2.0 / 3.0).abs() < 1e-9);
        assert!((accuracy(&logits, &labels, Some(&[0, 1])) - 1.0).abs() < 1e-9);
        assert_eq!(accuracy(&logits, &labels, Some(&[])), 0.0);
    }
}

/// Confusion matrix: `m[true][pred]` counts over the given indices (all
/// tokens when `None`).
pub fn confusion_matrix(
    logits: &Tensor,
    labels: &[u32],
    classes: usize,
    indices: Option<&[u32]>,
) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; classes]; classes];
    let mut add = |i: usize| {
        let row = logits.row(i);
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        let t = labels[i] as usize;
        if t < classes && best < classes {
            m[t][best] += 1;
        }
    };
    match indices {
        Some(idx) => idx.iter().for_each(|&i| add(i as usize)),
        None => (0..labels.len()).for_each(&mut add),
    }
    m
}

/// Macro-averaged F1 over the confusion matrix (classes with no support are
/// skipped, as scikit-learn does with `zero_division` handling).
pub fn macro_f1(confusion: &[Vec<usize>]) -> f64 {
    let classes = confusion.len();
    let mut f1_sum = 0.0f64;
    let mut counted = 0usize;
    for c in 0..classes {
        let tp = confusion[c][c] as f64;
        let fp: f64 = (0..classes).filter(|&t| t != c).map(|t| confusion[t][c] as f64).sum();
        let fnv: f64 = (0..classes).filter(|&p| p != c).map(|p| confusion[c][p] as f64).sum();
        let support = tp + fnv;
        if support == 0.0 {
            continue;
        }
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = tp / support;
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        f1_sum += f1;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        f1_sum / counted as f64
    }
}

#[cfg(test)]
mod metric_tests {
    use super::*;

    #[test]
    fn confusion_counts_correctly() {
        let logits = Tensor::from_vec(4, 2, vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0, 0.0, 2.0]);
        // preds: 0, 1, 0, 1; labels: 0, 1, 1, 0.
        let m = confusion_matrix(&logits, &[0, 1, 1, 0], 2, None);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[0][1], 1);
    }

    #[test]
    fn perfect_predictions_give_f1_one() {
        let m = vec![vec![5, 0], vec![0, 7]];
        assert!((macro_f1(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_is_skipped() {
        // Class 2 never appears as a true label.
        let m = vec![vec![3, 1, 0], vec![0, 4, 0], vec![0, 0, 0]];
        let f1 = macro_f1(&m);
        assert!(f1 > 0.7 && f1 < 1.0, "f1 {f1}");
    }

    #[test]
    fn all_wrong_gives_zero() {
        let m = vec![vec![0, 3], vec![4, 0]];
        assert_eq!(macro_f1(&m), 0.0);
    }
}
