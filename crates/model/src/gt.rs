//! GT — "A Generalization of Transformer Networks to Graphs"
//! (Dwivedi & Bresson), the paper's second evaluation model (Table IV:
//! 4 layers, hidden 128, 8 heads).
//!
//! GT adds Laplacian positional encodings to the inputs instead of
//! Graphormer's attention bias, so its attention is encoding-free and all
//! three kernels apply unchanged.

use crate::api::{ArchDescriptor, Pattern, SequenceBatch, SequenceModel};
use crate::block::TransformerBlock;
use crate::encodings::laplacian_pe;
use crate::mha::AttentionMode;
use torchgt_graph::CsrGraph;
use torchgt_tensor::layers::Layer;
use torchgt_tensor::ops;
use torchgt_tensor::rng::derive_seed;
use torchgt_tensor::{Linear, Param, Tensor, Workspace};

/// GT hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct GtConfig {
    /// Input feature dimension.
    pub feat_dim: usize,
    /// Hidden width (Table IV: 128).
    pub hidden: usize,
    /// Transformer layers (Table IV: 4).
    pub layers: usize,
    /// Attention heads (Table IV: 8).
    pub heads: usize,
    /// FFN expansion multiplier.
    pub ffn_mult: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Number of Laplacian eigenvectors used as positional encoding.
    pub pe_dim: usize,
    /// Dropout probability.
    pub dropout: f32,
}

impl GtConfig {
    /// The paper's GT configuration.
    pub fn standard(feat_dim: usize, out_dim: usize) -> Self {
        Self {
            feat_dim,
            hidden: 128,
            layers: 4,
            heads: 8,
            ffn_mult: 4,
            out_dim,
            pe_dim: 8,
            dropout: 0.1,
        }
    }

    /// A smaller configuration for unit tests and quick examples.
    pub fn tiny(feat_dim: usize, out_dim: usize) -> Self {
        Self {
            feat_dim,
            hidden: 16,
            layers: 2,
            heads: 2,
            ffn_mult: 2,
            out_dim,
            pe_dim: 4,
            dropout: 0.0,
        }
    }
}

/// The GT model.
pub struct Gt {
    cfg: GtConfig,
    in_proj: Linear,
    pe_proj: Linear,
    blocks: Vec<TransformerBlock>,
    head: Linear,
    /// LapPE cache: fingerprint of the last graph and its encoding (node
    /// sequences repeat across epochs, so this hits almost always).
    pe_cache: Option<(u64, Tensor)>,
    seed: u64,
}

fn graph_fingerprint(g: &CsrGraph) -> u64 {
    // Cheap structural hash: counts plus a few row pointers.
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(g.num_nodes() as u64);
    mix(g.num_arcs() as u64);
    let rp = g.row_ptr();
    let step = (rp.len() / 16).max(1);
    for i in (0..rp.len()).step_by(step) {
        mix(rp[i] as u64);
    }
    h
}

impl Gt {
    /// Construct with the given config and seed.
    pub fn new(cfg: GtConfig, seed: u64) -> Self {
        let blocks = (0..cfg.layers)
            .map(|l| {
                TransformerBlock::new(
                    cfg.hidden,
                    cfg.heads,
                    cfg.ffn_mult,
                    cfg.dropout,
                    derive_seed(seed, 200 + l as u64),
                )
            })
            .collect();
        Self {
            in_proj: Linear::new(cfg.feat_dim, cfg.hidden, derive_seed(seed, 60)),
            pe_proj: Linear::new(cfg.pe_dim, cfg.hidden, derive_seed(seed, 61)),
            blocks,
            head: Linear::new(cfg.hidden, cfg.out_dim, derive_seed(seed, 62)),
            pe_cache: None,
            cfg,
            seed,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GtConfig {
        &self.cfg
    }

    /// Ensure the LapPE cache holds this graph's encoding; no tensor is
    /// cloned on a cache hit.
    fn refresh_positional_encoding(&mut self, graph: &CsrGraph) -> u64 {
        let fp = graph_fingerprint(graph);
        let hit = matches!(&self.pe_cache, Some((cached_fp, _)) if *cached_fp == fp);
        if !hit {
            let pe = laplacian_pe(graph, self.cfg.pe_dim, 30, derive_seed(self.seed, 63));
            self.pe_cache = Some((fp, pe));
        }
        fp
    }

    /// The pre-head trunk: positional-encoded input projection through the
    /// transformer stack. Shared by [`SequenceModel::forward_ws`] and
    /// [`SequenceModel::forward_hidden_ws`].
    fn trunk_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> Tensor {
        let fp = self.refresh_positional_encoding(batch.graph);
        // Move the cached encoding out while the projections borrow `self`.
        let (_, pe) = self.pe_cache.take().expect("pe cache just refreshed");
        let mut h = self.in_proj.forward_ws(batch.features, ws);
        let pe_h = self.pe_proj.forward_ws(&pe, ws);
        self.pe_cache = Some((fp, pe));
        ops::add_inplace(&mut h, &pe_h);
        ws.give(pe_h);
        for block in &mut self.blocks {
            let mode = gt_mode(pattern);
            let next = block.forward_ws(&h, &mode, ws);
            ws.give(h);
            h = next;
        }
        h
    }
}

fn gt_mode<'a>(pattern: Pattern<'a>) -> AttentionMode<'a> {
    match pattern {
        Pattern::Dense => AttentionMode::Dense { bias: None },
        Pattern::Flash => AttentionMode::Flash,
        Pattern::Sparse(mask) => AttentionMode::Sparse { mask, bias: None },
        Pattern::Performer(features) => AttentionMode::Performer { features, seed: 0x9E37 },
    }
}

impl SequenceModel for Gt {
    fn forward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>) -> Tensor {
        self.forward_ws(batch, pattern, &mut Workspace::new())
    }

    fn forward_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> Tensor {
        let h = self.trunk_ws(batch, pattern, ws);
        let logits = self.head.forward_ws(&h, ws);
        ws.give(h);
        logits
    }

    fn forward_hidden_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> Option<Tensor> {
        Some(self.trunk_ws(batch, pattern, ws))
    }

    fn backward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>, dlogits: &Tensor) {
        self.backward_ws(batch, pattern, dlogits, &mut Workspace::new())
    }

    fn backward_ws(
        &mut self,
        _batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        dlogits: &Tensor,
        ws: &mut Workspace,
    ) {
        let mut dh = self.head.backward_ws(dlogits, ws);
        for block in self.blocks.iter_mut().rev() {
            let mode = gt_mode(pattern);
            let (dx, _) = block.backward_ws(&dh, &mode, false, ws);
            ws.give(dh);
            dh = dx;
        }
        let dpe = self.pe_proj.backward_ws(&dh, ws);
        ws.give(dpe);
        let din = self.in_proj.backward_ws(&dh, ws);
        ws.give(din);
        ws.give(dh);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.in_proj.params_mut();
        p.extend(self.pe_proj.params_mut());
        for b in &mut self.blocks {
            p.extend(b.params_mut());
        }
        p.extend(self.head.params_mut());
        p
    }

    fn set_training(&mut self, on: bool) {
        for b in &mut self.blocks {
            b.set_training(on);
        }
    }

    fn name(&self) -> &'static str {
        "GT"
    }

    fn describe(&self) -> Option<ArchDescriptor> {
        Some(ArchDescriptor {
            kind: "gt",
            feat_dim: self.cfg.feat_dim,
            hidden: self.cfg.hidden,
            layers: self.cfg.layers,
            heads: self.cfg.heads,
            ffn_mult: self.cfg.ffn_mult,
            out_dim: self.cfg.out_dim,
            pe_dim: self.cfg.pe_dim,
            max_degree: 0,
            max_spd: 0,
        })
    }

    fn rng_state(&self) -> Vec<u64> {
        self.blocks.iter().flat_map(|b| b.rng_state()).collect()
    }

    fn set_rng_state(&mut self, state: &[u64]) {
        assert_eq!(state.len(), self.blocks.len() * 2, "rng state length mismatch");
        for (b, s) in self.blocks.iter_mut().zip(state.chunks_exact(2)) {
            b.set_rng_state([s[0], s[1]]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::cycle_graph;
    use torchgt_tensor::init;

    #[test]
    fn forward_shapes() {
        let g = cycle_graph(10);
        let mask = g.with_self_loops();
        let x = init::normal(10, 6, 0.0, 1.0, 1);
        let mut m = Gt::new(GtConfig::tiny(6, 4), 3);
        let batch = SequenceBatch { features: &x, graph: &g, spd: None };
        for p in [Pattern::Dense, Pattern::Flash, Pattern::Sparse(&mask)] {
            assert_eq!(m.forward(&batch, p).shape(), (10, 4));
        }
    }

    #[test]
    fn pe_cache_hits_for_repeated_graph() {
        let g = cycle_graph(10);
        let x = init::normal(10, 6, 0.0, 1.0, 1);
        let mut m = Gt::new(GtConfig::tiny(6, 4), 3);
        m.set_training(false);
        let batch = SequenceBatch { features: &x, graph: &g, spd: None };
        let y1 = m.forward(&batch, Pattern::Flash);
        let y2 = m.forward(&batch, Pattern::Flash);
        assert_eq!(y1.data(), y2.data());
        assert!(m.pe_cache.is_some());
    }

    #[test]
    fn positional_encoding_changes_output() {
        // Same features, different topologies ⇒ different outputs through
        // the LapPE path.
        let x = init::normal(10, 6, 0.0, 1.0, 1);
        let g1 = cycle_graph(10);
        let g2 = torchgt_graph::generators::star_graph(10);
        let mut m = Gt::new(GtConfig::tiny(6, 4), 3);
        m.set_training(false);
        let y1 = m.forward(&SequenceBatch { features: &x, graph: &g1, spd: None }, Pattern::Flash);
        let y2 = m.forward(&SequenceBatch { features: &x, graph: &g2, spd: None }, Pattern::Flash);
        assert_ne!(y1.data(), y2.data());
    }

    #[test]
    fn gt_learns_toy_task() {
        use torchgt_tensor::{Adam, Optimizer};
        let g = cycle_graph(12);
        let mask = g.with_self_loops();
        let mut feats = Tensor::zeros(12, 4);
        let labels: Vec<u32> = (0..12).map(|v| ((v / 3) % 2) as u32).collect();
        for v in 0..12 {
            feats.set(v, labels[v] as usize, 1.0);
            feats.set(v, 2, (v as f32 * 0.7).sin());
        }
        let mut m = Gt::new(GtConfig::tiny(4, 2), 11);
        m.set_training(true);
        let mut opt = Adam::with_lr(3e-3);
        let batch = SequenceBatch { features: &feats, graph: &g, spd: None };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let logits = m.forward(&batch, Pattern::Sparse(&mask));
            let (loss, dl) = crate::loss::softmax_cross_entropy(&logits, &labels);
            m.backward(&batch, Pattern::Sparse(&mask), &dl);
            opt.step(&mut m.params_mut());
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < 0.6 * first.unwrap(), "loss {first:?} → {last}");
    }
}
