//! Attention kernels: dense, flash-style tiled, and topology-sparse — each
//! with a hand-written backward pass.
//!
//! All kernels take *already projected* `Q`, `K`, `V` of shape `[s, d]` with
//! `d = heads × d_head` (head `h` occupies the column block
//! `h·d_head .. (h+1)·d_head`) and return the attention output `[s, d]` plus
//! a cache for the backward pass.
//!
//! * [`dense`] materialises per-head score matrices — GP-RAW's kernel, the
//!   one that OOMs at scale;
//! * [`flash`] computes the identical function with streaming softmax over
//!   key tiles, never materialising `S×S` (FlashAttention's algorithm); it
//!   does **not** support an attention bias, matching the real library's
//!   limitation the paper points out;
//! * [`sparse`] computes softmax over each query's mask neighbours only —
//!   the topology-induced pattern, with optional per-edge bias (Graphormer's
//!   spatial encoding restricted to the pattern).

use torchgt_compat::par::prelude::*;
use torchgt_graph::CsrGraph;
use torchgt_tensor::ops;
use torchgt_tensor::Tensor;

/// Output of an attention forward pass.
pub struct AttnOutput {
    /// `[s, d]` attention result (pre output-projection).
    pub out: Tensor,
    /// Cache consumed by the matching backward function.
    pub cache: AttnCache,
}

/// Saved forward state, variant per kernel.
pub enum AttnCache {
    /// Dense: per-head probability matrices `[s, s]`.
    Dense { probs: Vec<Tensor> },
    /// Flash: softmax statistics per head (`row_max`, `row_denom`), for
    /// recomputation in backward.
    Flash { row_max: Vec<Vec<f32>>, row_denom: Vec<Vec<f32>> },
    /// Sparse: per-head, per-edge probabilities laid out like the mask CSR.
    Sparse { probs: Vec<Vec<f32>> },
    /// Performer: per-head random-feature maps and normalisers.
    Performer {
        /// `φ(Q)` per head, `[s, m]`.
        phi_q: Vec<Tensor>,
        /// `φ(K)` per head, `[s, m]`.
        phi_k: Vec<Tensor>,
        /// Row normalisers `den = φ(Q)·(φ(K)ᵀ·1)` per head.
        denom: Vec<Vec<f32>>,
        /// Pre-normalised numerators `φ(Q)·(φ(K)ᵀ V)` per head, `[s, d_h]`.
        num: Vec<Tensor>,
    },
}

/// Gradients returned by attention backward.
pub struct AttnGrads {
    /// Gradient wrt `Q`.
    pub dq: Tensor,
    /// Gradient wrt `K`.
    pub dk: Tensor,
    /// Gradient wrt `V`.
    pub dv: Tensor,
    /// Gradient wrt the bias (dense: `[s, s]` per head summed over heads is
    /// *not* what Graphormer needs, so we keep per-head; sparse: per-edge per
    /// head). `None` when the kernel ran without bias.
    pub dbias: Option<BiasGrad>,
}

/// Bias gradient layouts.
pub enum BiasGrad {
    /// Per-head dense `[s, s]` gradients.
    Dense(Vec<Tensor>),
    /// Per-head per-edge gradients (mask CSR layout).
    Sparse(Vec<Vec<f32>>),
}

fn head_slice(t: &Tensor, h: usize, d_head: usize) -> Tensor {
    t.slice_cols(h * d_head, (h + 1) * d_head)
}

fn write_head(dst: &mut Tensor, src: &Tensor, h: usize, d_head: usize) {
    for r in 0..src.rows() {
        let drow = dst.row_mut(r);
        drow[h * d_head..(h + 1) * d_head].copy_from_slice(src.row(r));
    }
}

fn add_head(dst: &mut Tensor, src: &Tensor, h: usize, d_head: usize) {
    for r in 0..src.rows() {
        let drow = dst.row_mut(r);
        for (a, b) in drow[h * d_head..(h + 1) * d_head].iter_mut().zip(src.row(r)) {
            *a += b;
        }
    }
}

// ---------------------------------------------------------------------------
// Dense attention
// ---------------------------------------------------------------------------

/// Standard dense attention. `bias[h]` (optional) is a per-head `[s, s]`
/// additive bias on the pre-softmax scores (Graphormer Eq. 3).
pub fn dense(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize, bias: Option<&[Tensor]>) -> AttnOutput {
    let (s, d) = q.shape();
    assert_eq!(k.shape(), (s, d));
    assert_eq!(v.shape(), (s, d));
    assert_eq!(d % heads, 0);
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut out = Tensor::zeros(s, d);
    let mut probs = Vec::with_capacity(heads);
    for h in 0..heads {
        let qh = head_slice(q, h, d_head);
        let kh = head_slice(k, h, d_head);
        let vh = head_slice(v, h, d_head);
        let mut scores = ops::matmul_bt(&qh, &kh);
        ops::scale_inplace(&mut scores, scale);
        if let Some(b) = bias {
            ops::add_inplace(&mut scores, &b[h]);
        }
        let p = ops::row_softmax(&scores);
        let oh = ops::matmul(&p, &vh);
        write_head(&mut out, &oh, h, d_head);
        probs.push(p);
    }
    AttnOutput { out, cache: AttnCache::Dense { probs } }
}

/// Backward of [`dense`].
pub fn dense_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    cache: &AttnCache,
    dout: &Tensor,
    want_bias_grad: bool,
) -> AttnGrads {
    let probs = match cache {
        AttnCache::Dense { probs } => probs,
        _ => panic!("dense_backward called with wrong cache"),
    };
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut dq = Tensor::zeros(s, d);
    let mut dk = Tensor::zeros(s, d);
    let mut dv = Tensor::zeros(s, d);
    let mut dbias = if want_bias_grad { Some(Vec::with_capacity(heads)) } else { None };
    for h in 0..heads {
        let qh = head_slice(q, h, d_head);
        let kh = head_slice(k, h, d_head);
        let vh = head_slice(v, h, d_head);
        let doh = head_slice(dout, h, d_head);
        let p = &probs[h];
        let dp = ops::matmul_bt(&doh, &vh);
        let dvh = ops::matmul_at(p, &doh);
        let mut ds = ops::row_softmax_backward(p, &dp);
        if let Some(list) = dbias.as_mut() {
            list.push(ds.clone());
        }
        ops::scale_inplace(&mut ds, scale);
        let dqh = ops::matmul(&ds, &kh);
        let dkh = ops::matmul_at(&ds, &qh);
        add_head(&mut dq, &dqh, h, d_head);
        add_head(&mut dk, &dkh, h, d_head);
        add_head(&mut dv, &dvh, h, d_head);
    }
    AttnGrads { dq, dk, dv, dbias: dbias.map(BiasGrad::Dense) }
}

// ---------------------------------------------------------------------------
// Flash-style tiled attention
// ---------------------------------------------------------------------------

/// Key/value tile width for the streaming-softmax kernel.
const FLASH_TILE: usize = 128;

/// FlashAttention-style forward: streaming softmax over key tiles, no `S×S`
/// materialisation and **no bias support** (the limitation the paper works
/// around).
pub fn flash(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize) -> AttnOutput {
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut out = Tensor::zeros(s, d);
    let mut row_max = vec![vec![f32::NEG_INFINITY; s]; heads];
    let mut row_denom = vec![vec![0.0f32; s]; heads];
    for h in 0..heads {
        let qh = head_slice(q, h, d_head);
        let kh = head_slice(k, h, d_head);
        let vh = head_slice(v, h, d_head);
        let maxs = &mut row_max[h];
        let denoms = &mut row_denom[h];
        // Per-query streaming state, processed tile by tile.
        let mut acc = Tensor::zeros(s, d_head);
        let mut tile_start = 0;
        while tile_start < s {
            let tile_end = (tile_start + FLASH_TILE).min(s);
            // scores for this tile: [s, tile]
            acc.data_mut()
                .par_chunks_mut(d_head)
                .zip(maxs.par_iter_mut())
                .zip(denoms.par_iter_mut())
                .enumerate()
                .for_each(|(i, ((acc_row, m_slot), den_slot))| {
                    let qrow = qh.row(i);
                    let mut m = *m_slot;
                    let mut den = *den_slot;
                    for j in tile_start..tile_end {
                        let krow = kh.row(j);
                        let mut dot = 0.0f32;
                        for t in 0..d_head {
                            dot += qrow[t] * krow[t];
                        }
                        let sc = dot * scale;
                        if sc > m {
                            // Rescale previous accumulator and denominator.
                            let corr = (m - sc).exp();
                            let corr = if m == f32::NEG_INFINITY { 0.0 } else { corr };
                            den *= corr;
                            for a in acc_row.iter_mut() {
                                *a *= corr;
                            }
                            m = sc;
                        }
                        let w = (sc - m).exp();
                        den += w;
                        let vrow = vh.row(j);
                        for (a, &vv) in acc_row.iter_mut().zip(vrow) {
                            *a += w * vv;
                        }
                    }
                    *m_slot = m;
                    *den_slot = den;
                });
            tile_start = tile_end;
        }
        // Normalise.
        for i in 0..s {
            let den = row_denom[h][i].max(f32::MIN_POSITIVE);
            let orow = out.row_mut(i);
            for (t, a) in acc.row(i).iter().enumerate() {
                orow[h * d_head + t] = a / den;
            }
        }
    }
    AttnOutput { out, cache: AttnCache::Flash { row_max, row_denom } }
}

/// Backward of [`flash`]: recomputes probabilities per tile from the saved
/// softmax statistics (FlashAttention's recomputation trick).
pub fn flash_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    cache: &AttnCache,
    out: &Tensor,
    dout: &Tensor,
) -> AttnGrads {
    let (row_max, row_denom) = match cache {
        AttnCache::Flash { row_max, row_denom } => (row_max, row_denom),
        _ => panic!("flash_backward called with wrong cache"),
    };
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut dq = Tensor::zeros(s, d);
    let mut dk = Tensor::zeros(s, d);
    let mut dv = Tensor::zeros(s, d);
    for h in 0..heads {
        let qh = head_slice(q, h, d_head);
        let kh = head_slice(k, h, d_head);
        let vh = head_slice(v, h, d_head);
        let doh = head_slice(dout, h, d_head);
        let oh = head_slice(out, h, d_head);
        // D_i = dO_i · O_i
        let di: Vec<f32> = (0..s)
            .map(|i| doh.row(i).iter().zip(oh.row(i)).map(|(a, b)| a * b).sum())
            .collect();
        let mut dqh = Tensor::zeros(s, d_head);
        let mut dkh = Tensor::zeros(s, d_head);
        let mut dvh = Tensor::zeros(s, d_head);
        for i in 0..s {
            let qrow = qh.row(i);
            let dorow = doh.row(i);
            let m = row_max[h][i];
            let den = row_denom[h][i].max(f32::MIN_POSITIVE);
            for j in 0..s {
                let krow = kh.row(j);
                let mut dot = 0.0f32;
                for t in 0..d_head {
                    dot += qrow[t] * krow[t];
                }
                let p = ((dot * scale - m).exp()) / den;
                if p < 1e-12 {
                    continue;
                }
                let vrow = vh.row(j);
                let mut dp = 0.0f32;
                for t in 0..d_head {
                    dp += dorow[t] * vrow[t];
                }
                let ds = p * (dp - di[i]) * scale;
                let dq_row = dqh.row_mut(i);
                for t in 0..d_head {
                    dq_row[t] += ds * krow[t];
                }
                let dk_row = dkh.row_mut(j);
                for t in 0..d_head {
                    dk_row[t] += ds * qrow[t];
                }
                let dv_row = dvh.row_mut(j);
                for t in 0..d_head {
                    dv_row[t] += p * dorow[t];
                }
            }
        }
        add_head(&mut dq, &dqh, h, d_head);
        add_head(&mut dk, &dkh, h, d_head);
        add_head(&mut dv, &dvh, h, d_head);
    }
    AttnGrads { dq, dk, dv, dbias: None }
}

// ---------------------------------------------------------------------------
// Topology-sparse attention
// ---------------------------------------------------------------------------

/// Topology-induced sparse attention: query `i` attends only to
/// `mask.neighbors(i)`. `bias[h]` (optional) stores one bias per edge in the
/// mask's CSR order.
pub fn sparse(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    mask: &CsrGraph,
    bias: Option<&[Vec<f32>]>,
) -> AttnOutput {
    let (s, d) = q.shape();
    assert_eq!(mask.num_nodes(), s, "mask size must match sequence");
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut out = Tensor::zeros(s, d);
    let mut probs: Vec<Vec<f32>> = Vec::with_capacity(heads);
    for h in 0..heads {
        let qh = head_slice(q, h, d_head);
        let kh = head_slice(k, h, d_head);
        let vh = head_slice(v, h, d_head);
        let hb = bias.map(|b| &b[h]);
        let mut p_edges = vec![0.0f32; mask.num_arcs()];
        let row_ptr = mask.row_ptr();
        // Parallel over query rows; each row owns its slice of p_edges.
        let out_cols = d;
        out.data_mut()
            .par_chunks_mut(out_cols)
            .zip(par_row_chunks(&mut p_edges, row_ptr))
            .enumerate()
            .for_each(|(i, (orow, p_slice))| {
                let nbrs = mask.neighbors(i);
                if nbrs.is_empty() {
                    return;
                }
                let qrow = qh.row(i);
                let base = row_ptr[i];
                // Scores.
                let mut max = f32::NEG_INFINITY;
                for (e, &j) in nbrs.iter().enumerate() {
                    let krow = kh.row(j as usize);
                    let mut dot = 0.0f32;
                    for t in 0..d_head {
                        dot += qrow[t] * krow[t];
                    }
                    let mut sc = dot * scale;
                    if let Some(b) = hb {
                        sc += b[base + e];
                    }
                    p_slice[e] = sc;
                    if sc > max {
                        max = sc;
                    }
                }
                let mut den = 0.0f32;
                for p in p_slice.iter_mut() {
                    *p = (*p - max).exp();
                    den += *p;
                }
                let inv = 1.0 / den.max(f32::MIN_POSITIVE);
                for p in p_slice.iter_mut() {
                    *p *= inv;
                }
                // Weighted sum of V rows.
                for (e, &j) in nbrs.iter().enumerate() {
                    let w = p_slice[e];
                    let vrow = vh.row(j as usize);
                    for t in 0..d_head {
                        orow[h * d_head + t] += w * vrow[t];
                    }
                }
            });
        probs.push(p_edges);
    }
    AttnOutput { out, cache: AttnCache::Sparse { probs } }
}

/// Split a per-edge buffer into per-row mutable chunks following a CSR row
/// pointer, suitable for zipping with a parallel row iterator.
fn par_row_chunks<'a>(
    buf: &'a mut [f32],
    row_ptr: &[usize],
) -> impl torchgt_compat::par::iter::IndexedParallelIterator<Item = &'a mut [f32]> {
    let mut chunks: Vec<&'a mut [f32]> = Vec::with_capacity(row_ptr.len() - 1);
    let mut rest = buf;
    for w in row_ptr.windows(2) {
        let len = w[1] - w[0];
        let (head, tail) = rest.split_at_mut(len);
        chunks.push(head);
        rest = tail;
    }
    chunks.into_par_iter()
}

/// Backward of [`sparse`].
pub fn sparse_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    mask: &CsrGraph,
    cache: &AttnCache,
    dout: &Tensor,
    want_bias_grad: bool,
) -> AttnGrads {
    let probs = match cache {
        AttnCache::Sparse { probs } => probs,
        _ => panic!("sparse_backward called with wrong cache"),
    };
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut dq = Tensor::zeros(s, d);
    let mut dk = Tensor::zeros(s, d);
    let mut dv = Tensor::zeros(s, d);
    let mut dbias = if want_bias_grad { Some(Vec::with_capacity(heads)) } else { None };
    let row_ptr = mask.row_ptr();
    for h in 0..heads {
        let qh = head_slice(q, h, d_head);
        let kh = head_slice(k, h, d_head);
        let vh = head_slice(v, h, d_head);
        let doh = head_slice(dout, h, d_head);
        let p_edges = &probs[h];
        let mut ds_edges = vec![0.0f32; p_edges.len()];
        let mut dqh = Tensor::zeros(s, d_head);
        let mut dkh = Tensor::zeros(s, d_head);
        let mut dvh = Tensor::zeros(s, d_head);
        for i in 0..s {
            let nbrs = mask.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            let base = row_ptr[i];
            let dorow = doh.row(i);
            let qrow = qh.row(i).to_vec();
            // dp and the softmax dot term.
            let mut dot_pd = 0.0f32;
            let mut dps = vec![0.0f32; nbrs.len()];
            for (e, &j) in nbrs.iter().enumerate() {
                let vrow = vh.row(j as usize);
                let mut dp = 0.0f32;
                for t in 0..d_head {
                    dp += dorow[t] * vrow[t];
                }
                dps[e] = dp;
                dot_pd += p_edges[base + e] * dp;
            }
            for (e, &j) in nbrs.iter().enumerate() {
                let p = p_edges[base + e];
                let ds = p * (dps[e] - dot_pd);
                ds_edges[base + e] = ds;
                let dsc = ds * scale;
                let krow = kh.row(j as usize);
                let dqrow = dqh.row_mut(i);
                for t in 0..d_head {
                    dqrow[t] += dsc * krow[t];
                }
                let dkrow = dkh.row_mut(j as usize);
                for t in 0..d_head {
                    dkrow[t] += dsc * qrow[t];
                }
                let dvrow = dvh.row_mut(j as usize);
                let p_do = p;
                for t in 0..d_head {
                    dvrow[t] += p_do * dorow[t];
                }
            }
        }
        add_head(&mut dq, &dqh, h, d_head);
        add_head(&mut dk, &dkh, h, d_head);
        add_head(&mut dv, &dvh, h, d_head);
        if let Some(list) = dbias.as_mut() {
            list.push(ds_edges);
        }
    }
    AttnGrads { dq, dk, dv, dbias: dbias.map(BiasGrad::Sparse) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::complete_graph;
    use torchgt_tensor::gradcheck::{max_abs_diff, numerical_grad};
    use torchgt_tensor::init;

    fn qkv(s: usize, d: usize) -> (Tensor, Tensor, Tensor) {
        (
            init::normal(s, d, 0.0, 1.0, 1),
            init::normal(s, d, 0.0, 1.0, 2),
            init::normal(s, d, 0.0, 1.0, 3),
        )
    }

    #[test]
    fn dense_rows_are_convex_combinations() {
        let (q, k, v) = qkv(6, 8);
        let r = dense(&q, &k, &v, 2, None);
        // Each output row lies within the range of V rows (convexity proxy:
        // max |out| ≤ max |v|).
        let vmax = v.data().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(r.out.data().iter().all(|&o| o.abs() <= vmax + 1e-4));
    }

    #[test]
    fn flash_matches_dense_exactly() {
        let (q, k, v) = qkv(37, 16); // non-multiple of tile width
        let d = dense(&q, &k, &v, 4, None);
        let f = flash(&q, &k, &v, 4);
        assert!(
            max_abs_diff(&d.out, &f.out) < 1e-4,
            "diff {}",
            max_abs_diff(&d.out, &f.out)
        );
    }

    #[test]
    fn sparse_on_complete_graph_matches_dense() {
        let s = 10;
        let (q, k, v) = qkv(s, 8);
        let mask = complete_graph(s).with_self_loops();
        let d = dense(&q, &k, &v, 2, None);
        let sp = sparse(&q, &k, &v, 2, &mask, None);
        assert!(max_abs_diff(&d.out, &sp.out) < 1e-4);
    }

    #[test]
    fn dense_backward_matches_numerical() {
        let (q, k, v) = qkv(5, 6);
        let upstream = init::normal(5, 6, 0.0, 1.0, 9);
        let r = dense(&q, &k, &v, 2, None);
        let g = dense_backward(&q, &k, &v, 2, &r.cache, &upstream, false);
        let loss = |qq: &Tensor, kk: &Tensor, vv: &Tensor| {
            let o = dense(qq, kk, vv, 2, None).out;
            o.data().iter().zip(upstream.data()).map(|(a, b)| a * b).sum::<f32>()
        };
        let nq = numerical_grad(&q, |p| loss(p, &k, &v), 1e-2);
        let nk = numerical_grad(&k, |p| loss(&q, p, &v), 1e-2);
        let nv = numerical_grad(&v, |p| loss(&q, &k, p), 1e-2);
        assert!(max_abs_diff(&g.dq, &nq) < 2e-2, "dq {}", max_abs_diff(&g.dq, &nq));
        assert!(max_abs_diff(&g.dk, &nk) < 2e-2, "dk {}", max_abs_diff(&g.dk, &nk));
        assert!(max_abs_diff(&g.dv, &nv) < 2e-2, "dv {}", max_abs_diff(&g.dv, &nv));
    }

    #[test]
    fn flash_backward_matches_dense_backward() {
        let (q, k, v) = qkv(23, 8);
        let upstream = init::normal(23, 8, 0.0, 1.0, 11);
        let dres = dense(&q, &k, &v, 2, None);
        let dg = dense_backward(&q, &k, &v, 2, &dres.cache, &upstream, false);
        let fres = flash(&q, &k, &v, 2);
        let fg = flash_backward(&q, &k, &v, 2, &fres.cache, &fres.out, &upstream);
        assert!(max_abs_diff(&dg.dq, &fg.dq) < 1e-3);
        assert!(max_abs_diff(&dg.dk, &fg.dk) < 1e-3);
        assert!(max_abs_diff(&dg.dv, &fg.dv) < 1e-3);
    }

    #[test]
    fn sparse_backward_matches_numerical() {
        let s = 8;
        let (q, k, v) = qkv(s, 4);
        let mask = torchgt_graph::generators::cycle_graph(s).with_self_loops();
        let upstream = init::normal(s, 4, 0.0, 1.0, 13);
        let r = sparse(&q, &k, &v, 2, &mask, None);
        let g = sparse_backward(&q, &k, &v, 2, &mask, &r.cache, &upstream, false);
        let loss = |qq: &Tensor, kk: &Tensor, vv: &Tensor| {
            let o = sparse(qq, kk, vv, 2, &mask, None).out;
            o.data().iter().zip(upstream.data()).map(|(a, b)| a * b).sum::<f32>()
        };
        let nq = numerical_grad(&q, |p| loss(p, &k, &v), 1e-2);
        let nk = numerical_grad(&k, |p| loss(&q, p, &v), 1e-2);
        let nv = numerical_grad(&v, |p| loss(&q, &k, p), 1e-2);
        assert!(max_abs_diff(&g.dq, &nq) < 2e-2);
        assert!(max_abs_diff(&g.dk, &nk) < 2e-2);
        assert!(max_abs_diff(&g.dv, &nv) < 2e-2);
    }

    #[test]
    fn dense_bias_shifts_attention() {
        let (q, k, v) = qkv(4, 4);
        let mut bias = vec![Tensor::zeros(4, 4), Tensor::zeros(4, 4)];
        // Huge bias towards column 2 in head 0.
        for r in 0..4 {
            bias[0].set(r, 2, 50.0);
        }
        let r = dense(&q, &k, &v, 2, Some(&bias));
        // Head 0 output ≈ V row 2 (head-0 columns).
        for row in 0..4 {
            for t in 0..2 {
                assert!((r.out.get(row, t) - v.get(2, t)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn sparse_bias_grad_has_edge_layout() {
        let s = 6;
        let (q, k, v) = qkv(s, 4);
        let mask = complete_graph(s).with_self_loops();
        let bias: Vec<Vec<f32>> = vec![vec![0.1; mask.num_arcs()]; 2];
        let r = sparse(&q, &k, &v, 2, &mask, Some(&bias));
        let upstream = init::normal(s, 4, 0.0, 1.0, 17);
        let g = sparse_backward(&q, &k, &v, 2, &mask, &r.cache, &upstream, true);
        match g.dbias {
            Some(BiasGrad::Sparse(db)) => {
                assert_eq!(db.len(), 2);
                assert_eq!(db[0].len(), mask.num_arcs());
                assert!(db[0].iter().any(|&x| x != 0.0));
            }
            _ => panic!("expected sparse bias grad"),
        }
    }

    #[test]
    fn sparse_bias_grad_matches_numerical() {
        let s = 5;
        let (q, k, v) = qkv(s, 4);
        let mask = complete_graph(s).with_self_loops();
        let nedges = mask.num_arcs();
        let bias: Vec<Vec<f32>> = vec![
            (0..nedges).map(|e| (e as f32) * 0.01).collect(),
            (0..nedges).map(|e| -(e as f32) * 0.02).collect(),
        ];
        let upstream = init::normal(s, 4, 0.0, 1.0, 19);
        let r = sparse(&q, &k, &v, 2, &mask, Some(&bias));
        let g = sparse_backward(&q, &k, &v, 2, &mask, &r.cache, &upstream, true);
        let db = match g.dbias {
            Some(BiasGrad::Sparse(db)) => db,
            _ => unreachable!(),
        };
        // Numerical check on a few edges of head 0.
        for e in [0usize, 3, 7, nedges - 1] {
            let eps = 1e-2;
            let mut bp = bias.clone();
            bp[0][e] += eps;
            let lp: f32 = sparse(&q, &k, &v, 2, &mask, Some(&bp))
                .out
                .data()
                .iter()
                .zip(upstream.data())
                .map(|(a, b)| a * b)
                .sum();
            let mut bm = bias.clone();
            bm[0][e] -= eps;
            let lm: f32 = sparse(&q, &k, &v, 2, &mask, Some(&bm))
                .out
                .data()
                .iter()
                .zip(upstream.data())
                .map(|(a, b)| a * b)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((db[0][e] - num).abs() < 2e-2, "edge {e}: {} vs {num}", db[0][e]);
        }
    }
}

// ---------------------------------------------------------------------------
// Performer-style linear attention (FAVOR+)
// ---------------------------------------------------------------------------

/// Build the random-feature matrix `W [m, d_head]` for a head.
fn performer_features(m: usize, d_head: usize, seed: u64) -> Tensor {
    torchgt_tensor::init::normal(m, d_head, 0.0, 1.0, seed)
}

/// Positive random-feature map `φ(x)_j = exp(w_j·x − ‖x‖²/2)/√m` applied to
/// each (pre-scaled) row.
fn phi_map(x: &Tensor, w: &Tensor) -> Tensor {
    let (s, _) = x.shape();
    let m = w.rows();
    let inv_sqrt_m = 1.0 / (m as f32).sqrt();
    let proj = ops::matmul_bt(x, w); // [s, m]
    let mut out = Tensor::zeros(s, m);
    for i in 0..s {
        let half_norm: f32 = x.row(i).iter().map(|v| v * v).sum::<f32>() * 0.5;
        let orow = out.row_mut(i);
        for (o, &p) in orow.iter_mut().zip(proj.row(i)) {
            *o = (p - half_norm).exp() * inv_sqrt_m;
        }
    }
    out
}

/// Backward of [`phi_map`]: `dx_i = (dφ_i ∘ φ_i)·W − (Σ_j dφ_ij φ_ij)·x_i`.
fn phi_map_backward(x: &Tensor, w: &Tensor, phi: &Tensor, dphi: &Tensor) -> Tensor {
    let weighted = ops::mul(dphi, phi); // [s, m]
    let mut dx = ops::matmul(&weighted, w); // [s, d]
    for i in 0..x.rows() {
        let row_sum: f32 = weighted.row(i).iter().sum();
        let xrow = x.row(i).to_vec();
        for (d, &xv) in dx.row_mut(i).iter_mut().zip(&xrow) {
            *d -= row_sum * xv;
        }
    }
    dx
}

/// Performer (FAVOR+) linear attention: `O = φ(Q)(φ(K)ᵀV) / φ(Q)(φ(K)ᵀ1)`,
/// an `O(s·m·d)` approximation of softmax attention with `m` positive random
/// features per head. This is the NLP-style approximate attention the paper
/// contrasts against (its ref. [35], Performers): structure-agnostic, so it
/// loses the graph's connectivity information.
pub fn performer(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize, m_features: usize, seed: u64) -> AttnOutput {
    let (s, d) = q.shape();
    let d_head = d / heads;
    // Pre-scale so φ approximates exp(q·k/√d_head).
    let scale = 1.0 / (d_head as f32).powf(0.25);
    let mut out = Tensor::zeros(s, d);
    let mut phi_qs = Vec::with_capacity(heads);
    let mut phi_ks = Vec::with_capacity(heads);
    let mut denoms = Vec::with_capacity(heads);
    let mut nums = Vec::with_capacity(heads);
    for h in 0..heads {
        let w = performer_features(m_features, d_head, seed.wrapping_add(h as u64));
        let qh = ops::scale(&head_slice(q, h, d_head), scale);
        let kh = ops::scale(&head_slice(k, h, d_head), scale);
        let vh = head_slice(v, h, d_head);
        let phi_q = phi_map(&qh, &w);
        let phi_k = phi_map(&kh, &w);
        let a = ops::matmul_at(&phi_k, &vh); // [m, d_head]
        let num = ops::matmul(&phi_q, &a); // [s, d_head]
        let z = ops::col_sum(&phi_k); // [1, m]
        let den_t = ops::matmul_bt(&phi_q, &z); // [s, 1]
        let den: Vec<f32> = (0..s).map(|i| den_t.get(i, 0).max(1e-9)).collect();
        let mut oh = Tensor::zeros(s, d_head);
        for i in 0..s {
            let inv = 1.0 / den[i];
            for t in 0..d_head {
                oh.set(i, t, num.get(i, t) * inv);
            }
        }
        write_head(&mut out, &oh, h, d_head);
        phi_qs.push(phi_q);
        phi_ks.push(phi_k);
        denoms.push(den);
        nums.push(num);
    }
    AttnOutput {
        out,
        cache: AttnCache::Performer { phi_q: phi_qs, phi_k: phi_ks, denom: denoms, num: nums },
    }
}

/// Backward of [`performer`] (same `seed`/`m_features` as the forward).
#[allow(clippy::too_many_arguments)]
pub fn performer_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    m_features: usize,
    seed: u64,
    cache: &AttnCache,
    dout: &Tensor,
) -> AttnGrads {
    let (phi_qs, phi_ks, denoms, nums) = match cache {
        AttnCache::Performer { phi_q, phi_k, denom, num } => (phi_q, phi_k, denom, num),
        _ => panic!("performer_backward called with wrong cache"),
    };
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).powf(0.25);
    let mut dq = Tensor::zeros(s, d);
    let mut dk = Tensor::zeros(s, d);
    let mut dv = Tensor::zeros(s, d);
    for h in 0..heads {
        let w = performer_features(m_features, d_head, seed.wrapping_add(h as u64));
        let qh = ops::scale(&head_slice(q, h, d_head), scale);
        let kh = ops::scale(&head_slice(k, h, d_head), scale);
        let vh = head_slice(v, h, d_head);
        let doh = head_slice(dout, h, d_head);
        let phi_q = &phi_qs[h];
        let phi_k = &phi_ks[h];
        let den = &denoms[h];
        let num = &nums[h];
        // O = num/den: dnum, dden per row.
        let mut dnum = Tensor::zeros(s, d_head);
        let mut dden = vec![0.0f32; s];
        for i in 0..s {
            let inv = 1.0 / den[i];
            let mut dot = 0.0f32;
            for t in 0..d_head {
                dnum.set(i, t, doh.get(i, t) * inv);
                dot += doh.get(i, t) * num.get(i, t);
            }
            dden[i] = -dot * inv * inv;
        }
        // A = φ(K)ᵀV, z = φ(K)ᵀ1.
        let a = ops::matmul_at(phi_k, &vh);
        let z = ops::col_sum(phi_k); // [1, m]
        // dφ(Q) = dnum·Aᵀ + dden ⊗ z.
        let mut dphi_q = ops::matmul_bt(&dnum, &a);
        for i in 0..s {
            let dd = dden[i];
            for (c, zv) in dphi_q.row_mut(i).iter_mut().zip(z.row(0)) {
                *c += dd * zv;
            }
        }
        // dA = φ(Q)ᵀ dnum; dz = φ(Q)ᵀ dden.
        let da = ops::matmul_at(phi_q, &dnum); // [m, d_head]
        let m = phi_q.cols();
        let mut dz = vec![0.0f32; m];
        for i in 0..s {
            let dd = dden[i];
            for (j, &pq) in phi_q.row(i).iter().enumerate() {
                dz[j] += dd * pq;
            }
        }
        // dφ(K) = V·dAᵀ + 1⊗dz; dV = φ(K)·dA.
        let mut dphi_k = ops::matmul_bt(&vh, &da);
        for i in 0..s {
            for (c, &dzv) in dphi_k.row_mut(i).iter_mut().zip(&dz) {
                *c += dzv;
            }
        }
        let dvh = ops::matmul(phi_k, &da);
        // Through the feature maps, then undo the input scaling.
        let dqh = ops::scale(&phi_map_backward(&qh, &w, phi_q, &dphi_q), scale);
        let dkh = ops::scale(&phi_map_backward(&kh, &w, phi_k, &dphi_k), scale);
        add_head(&mut dq, &dqh, h, d_head);
        add_head(&mut dk, &dkh, h, d_head);
        add_head(&mut dv, &dvh, h, d_head);
    }
    AttnGrads { dq, dk, dv, dbias: None }
}

#[cfg(test)]
mod performer_tests {
    use super::*;
    use torchgt_tensor::gradcheck::{max_abs_diff, numerical_grad};
    use torchgt_tensor::init;

    fn qkv(s: usize, d: usize) -> (Tensor, Tensor, Tensor) {
        (
            init::normal(s, d, 0.0, 0.6, 31),
            init::normal(s, d, 0.0, 0.6, 32),
            init::normal(s, d, 0.0, 0.6, 33),
        )
    }

    #[test]
    fn performer_output_is_convex_combination() {
        let (q, k, v) = qkv(8, 8);
        let r = performer(&q, &k, &v, 2, 64, 5);
        // Rows of O are positive-weighted averages of V rows.
        let vmax = v.data().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(r.out.data().iter().all(|&o| o.abs() <= vmax + 1e-3));
    }

    #[test]
    fn performer_approximates_dense_softmax() {
        // With many random features the FAVOR+ estimate tracks softmax
        // attention; correlation between outputs should be strong.
        let (q, k, v) = qkv(12, 4);
        let exact = dense(&q, &k, &v, 1, None).out;
        let approx = performer(&q, &k, &v, 1, 512, 7).out;
        let mean_exact = exact.mean();
        let mean_approx = approx.mean();
        let mut cov = 0.0f64;
        let mut var_e = 0.0f64;
        let mut var_a = 0.0f64;
        for (e, a) in exact.data().iter().zip(approx.data()) {
            cov += ((e - mean_exact) * (a - mean_approx)) as f64;
            var_e += ((e - mean_exact) * (e - mean_exact)) as f64;
            var_a += ((a - mean_approx) * (a - mean_approx)) as f64;
        }
        let corr = cov / (var_e.sqrt() * var_a.sqrt()).max(1e-12);
        assert!(corr > 0.8, "correlation {corr}");
    }

    #[test]
    fn performer_backward_matches_numerical() {
        let (q, k, v) = qkv(5, 4);
        let upstream = init::normal(5, 4, 0.0, 1.0, 39);
        let r = performer(&q, &k, &v, 2, 16, 3);
        let g = performer_backward(&q, &k, &v, 2, 16, 3, &r.cache, &upstream);
        let loss = |qq: &Tensor, kk: &Tensor, vv: &Tensor| {
            let o = performer(qq, kk, vv, 2, 16, 3).out;
            o.data().iter().zip(upstream.data()).map(|(a, b)| a * b).sum::<f32>()
        };
        let nq = numerical_grad(&q, |p| loss(p, &k, &v), 1e-2);
        let nk = numerical_grad(&k, |p| loss(&q, p, &v), 1e-2);
        let nv = numerical_grad(&v, |p| loss(&q, &k, p), 1e-2);
        assert!(max_abs_diff(&g.dq, &nq) < 3e-2, "dq {}", max_abs_diff(&g.dq, &nq));
        assert!(max_abs_diff(&g.dk, &nk) < 3e-2, "dk {}", max_abs_diff(&g.dk, &nk));
        assert!(max_abs_diff(&g.dv, &nv) < 3e-2, "dv {}", max_abs_diff(&g.dv, &nv));
    }

    #[test]
    fn performer_is_deterministic_per_seed() {
        let (q, k, v) = qkv(6, 4);
        let a = performer(&q, &k, &v, 2, 32, 11).out;
        let b = performer(&q, &k, &v, 2, 32, 11).out;
        let c = performer(&q, &k, &v, 2, 32, 12).out;
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }
}
