//! Attention kernels: dense, flash-style tiled, and topology-sparse — each
//! with a hand-written backward pass.
//!
//! All kernels take *already projected* `Q`, `K`, `V` of shape `[s, d]` with
//! `d = heads × d_head` (head `h` occupies the column block
//! `h·d_head .. (h+1)·d_head`) and return the attention output `[s, d]` plus
//! a cache for the backward pass.
//!
//! Each kernel exists in two forms: a `_ws` variant — the allocation-free
//! hot path, which reads heads through zero-copy [`TensorView`] column
//! blocks, checks every intermediate out of the caller's [`Workspace`], and
//! (in backward) consumes the cache by value so its buffers return to the
//! arena — and a thin allocating wrapper with the original name that
//! delegates through a throwaway arena, so both paths run identical
//! arithmetic.
//!
//! * [`dense`] materialises per-head score matrices — GP-RAW's kernel, the
//!   one that OOMs at scale;
//! * [`flash`] computes the identical function with streaming softmax over
//!   key tiles, never materialising `S×S` (FlashAttention's algorithm); it
//!   does **not** support an attention bias, matching the real library's
//!   limitation the paper points out;
//! * [`sparse`] computes softmax over each query's mask neighbours only —
//!   the topology-induced pattern, with optional per-edge bias (Graphormer's
//!   spatial encoding restricted to the pattern).

use torchgt_compat::par::prelude::*;
use torchgt_graph::CsrGraph;
use torchgt_tensor::backend;
use torchgt_tensor::ops;
use torchgt_tensor::{MatRef, Tensor, TensorView, Workspace};

/// Output of an attention forward pass. From a `_ws` kernel, `out` and the
/// cache's buffers belong to the workspace; the matching backward returns
/// them.
pub struct AttnOutput {
    /// `[s, d]` attention result (pre output-projection).
    pub out: Tensor,
    /// Cache consumed by the matching backward function.
    pub cache: AttnCache,
}

/// Saved forward state, variant per kernel.
#[derive(Clone)]
pub enum AttnCache {
    /// Dense: per-head probability matrices `[s, s]`.
    Dense {
        /// Post-softmax probabilities, one `[s, s]` tensor per head.
        probs: Vec<Tensor>,
    },
    /// Flash: softmax statistics per head (`row_max`, `row_denom`), for
    /// recomputation in backward.
    Flash {
        /// Per-head running row maxima.
        row_max: Vec<Vec<f32>>,
        /// Per-head softmax denominators.
        row_denom: Vec<Vec<f32>>,
    },
    /// Sparse: per-head, per-edge probabilities laid out like the mask CSR.
    Sparse {
        /// Per-head edge probabilities in mask CSR order.
        probs: Vec<Vec<f32>>,
    },
    /// Performer: per-head random-feature maps and normalisers.
    Performer {
        /// `φ(Q)` per head, `[s, m]`.
        phi_q: Vec<Tensor>,
        /// `φ(K)` per head, `[s, m]`.
        phi_k: Vec<Tensor>,
        /// Row normalisers `den = φ(Q)·(φ(K)ᵀ·1)` per head.
        denom: Vec<Vec<f32>>,
        /// Pre-normalised numerators `φ(Q)·(φ(K)ᵀ V)` per head, `[s, d_h]`.
        num: Vec<Tensor>,
    },
}

impl AttnCache {
    /// Return every buffer held by the cache to a workspace — used when a
    /// saved forward is discarded without running backward (eval passes).
    pub fn recycle(self, ws: &mut Workspace) {
        match self {
            AttnCache::Dense { probs } => {
                for t in probs {
                    ws.give(t);
                }
            }
            AttnCache::Flash { row_max, row_denom } => {
                for b in row_max.into_iter().chain(row_denom) {
                    ws.give_buf(b);
                }
            }
            AttnCache::Sparse { probs } => {
                for b in probs {
                    ws.give_buf(b);
                }
            }
            AttnCache::Performer { phi_q, phi_k, denom, num } => {
                for t in phi_q.into_iter().chain(phi_k).chain(num) {
                    ws.give(t);
                }
                for b in denom {
                    ws.give_buf(b);
                }
            }
        }
    }
}

/// Gradients returned by attention backward. From a `_ws` kernel these
/// tensors belong to the workspace; the caller gives them back after the
/// input projections consume them.
pub struct AttnGrads {
    /// Gradient wrt `Q`.
    pub dq: Tensor,
    /// Gradient wrt `K`.
    pub dk: Tensor,
    /// Gradient wrt `V`.
    pub dv: Tensor,
    /// Gradient wrt the bias (dense: `[s, s]` per head summed over heads is
    /// *not* what Graphormer needs, so we keep per-head; sparse: per-edge per
    /// head). `None` when the kernel ran without bias.
    pub dbias: Option<BiasGrad>,
}

/// Bias gradient layouts.
pub enum BiasGrad {
    /// Per-head dense `[s, s]` gradients.
    Dense(Vec<Tensor>),
    /// Per-head per-edge gradients (mask CSR layout).
    Sparse(Vec<Vec<f32>>),
}

impl BiasGrad {
    /// Return the gradient's buffers to a workspace once consumed.
    pub fn recycle(self, ws: &mut Workspace) {
        match self {
            BiasGrad::Dense(tensors) => {
                for t in tensors {
                    ws.give(t);
                }
            }
            BiasGrad::Sparse(bufs) => {
                for b in bufs {
                    ws.give_buf(b);
                }
            }
        }
    }
}

/// Zero-copy view of head `h`'s column block.
fn head_view(t: &Tensor, h: usize, d_head: usize) -> TensorView<'_> {
    t.view_cols(h * d_head, (h + 1) * d_head)
}

fn write_head(dst: &mut Tensor, src: &Tensor, h: usize, d_head: usize) {
    for r in 0..src.rows() {
        let drow = dst.row_mut(r);
        drow[h * d_head..(h + 1) * d_head].copy_from_slice(src.row(r));
    }
}

fn add_head(dst: &mut Tensor, src: &Tensor, h: usize, d_head: usize) {
    let be = backend::active();
    for r in 0..src.rows() {
        let drow = dst.row_mut(r);
        be.add_assign(&mut drow[h * d_head..(h + 1) * d_head], src.row(r));
    }
}

// ---------------------------------------------------------------------------
// Dense attention
// ---------------------------------------------------------------------------

/// Standard dense attention. `bias[h]` (optional) is a per-head `[s, s]`
/// additive bias on the pre-softmax scores (Graphormer Eq. 3).
pub fn dense(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize, bias: Option<&[Tensor]>) -> AttnOutput {
    dense_ws(q, k, v, heads, bias, &mut Workspace::new())
}

/// [`dense`] drawing every intermediate from `ws`.
pub fn dense_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    bias: Option<&[Tensor]>,
    ws: &mut Workspace,
) -> AttnOutput {
    let (s, d) = q.shape();
    assert_eq!(k.shape(), (s, d));
    assert_eq!(v.shape(), (s, d));
    assert_eq!(d % heads, 0);
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut out = ws.take(s, d);
    let mut probs = Vec::with_capacity(heads);
    for h in 0..heads {
        let qh = head_view(q, h, d_head);
        let kh = head_view(k, h, d_head);
        let vh = head_view(v, h, d_head);
        let mut scores = ws.take(s, s);
        ops::matmul_bt_into(&qh, &kh, &mut scores);
        ops::scale_inplace(&mut scores, scale);
        if let Some(b) = bias {
            ops::add_inplace(&mut scores, &b[h]);
        }
        ops::row_softmax_inplace(&mut scores);
        let mut oh = ws.take(s, d_head);
        ops::matmul_into(&scores, &vh, &mut oh);
        write_head(&mut out, &oh, h, d_head);
        ws.give(oh);
        probs.push(scores);
    }
    AttnOutput { out, cache: AttnCache::Dense { probs } }
}

/// Backward of [`dense`].
pub fn dense_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    cache: &AttnCache,
    dout: &Tensor,
    want_bias_grad: bool,
) -> AttnGrads {
    dense_backward_ws(q, k, v, heads, cache.clone(), dout, want_bias_grad, &mut Workspace::new())
}

/// Backward of [`dense_ws`]; consumes the cache, returning its buffers to
/// `ws`.
#[allow(clippy::too_many_arguments)]
pub fn dense_backward_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    cache: AttnCache,
    dout: &Tensor,
    want_bias_grad: bool,
    ws: &mut Workspace,
) -> AttnGrads {
    let probs = match cache {
        AttnCache::Dense { probs } => probs,
        _ => panic!("dense_backward called with wrong cache"),
    };
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut dq = ws.take(s, d);
    let mut dk = ws.take(s, d);
    let mut dv = ws.take(s, d);
    let mut dbias = if want_bias_grad { Some(Vec::with_capacity(heads)) } else { None };
    for (h, p) in probs.into_iter().enumerate() {
        let qh = head_view(q, h, d_head);
        let kh = head_view(k, h, d_head);
        let vh = head_view(v, h, d_head);
        let doh = head_view(dout, h, d_head);
        let mut dp = ws.take(s, s);
        ops::matmul_bt_into(&doh, &vh, &mut dp);
        let mut dvh = ws.take(s, d_head);
        ops::matmul_at_into(&p, &doh, &mut dvh);
        let mut ds = ws.take(s, s);
        ops::row_softmax_backward_into(&p, &dp, &mut ds);
        ws.give(dp);
        ws.give(p);
        if let Some(list) = dbias.as_mut() {
            let mut db = ws.take(s, s);
            ops::copy_into(&ds, &mut db);
            list.push(db);
        }
        ops::scale_inplace(&mut ds, scale);
        let mut dqh = ws.take(s, d_head);
        ops::matmul_into(&ds, &kh, &mut dqh);
        let mut dkh = ws.take(s, d_head);
        ops::matmul_at_into(&ds, &qh, &mut dkh);
        ws.give(ds);
        add_head(&mut dq, &dqh, h, d_head);
        add_head(&mut dk, &dkh, h, d_head);
        add_head(&mut dv, &dvh, h, d_head);
        ws.give(dqh);
        ws.give(dkh);
        ws.give(dvh);
    }
    AttnGrads { dq, dk, dv, dbias: dbias.map(BiasGrad::Dense) }
}

// ---------------------------------------------------------------------------
// Flash-style tiled attention
// ---------------------------------------------------------------------------

/// Key/value tile width for the streaming-softmax kernel.
const FLASH_TILE: usize = 128;

/// FlashAttention-style forward: streaming softmax over key tiles, no `S×S`
/// materialisation and **no bias support** (the limitation the paper works
/// around).
pub fn flash(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize) -> AttnOutput {
    flash_ws(q, k, v, heads, &mut Workspace::new())
}

/// [`flash`] drawing every intermediate from `ws`.
pub fn flash_ws(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize, ws: &mut Workspace) -> AttnOutput {
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut out = ws.take(s, d);
    let mut row_max: Vec<Vec<f32>> = (0..heads)
        .map(|_| {
            let mut b = ws.take_buf(s);
            b.fill(f32::NEG_INFINITY);
            b
        })
        .collect();
    let mut row_denom: Vec<Vec<f32>> = (0..heads).map(|_| ws.take_buf(s)).collect();
    let be = backend::active();
    for h in 0..heads {
        let qh = head_view(q, h, d_head);
        let kh = head_view(k, h, d_head);
        let vh = head_view(v, h, d_head);
        let maxs = &mut row_max[h];
        let denoms = &mut row_denom[h];
        // Per-query streaming state, processed tile by tile.
        let mut acc = ws.take(s, d_head);
        let mut tile_start = 0;
        while tile_start < s {
            let tile_end = (tile_start + FLASH_TILE).min(s);
            // scores for this tile: [s, tile]
            acc.data_mut()
                .par_chunks_mut(d_head)
                .zip(maxs.par_iter_mut())
                .zip(denoms.par_iter_mut())
                .enumerate()
                .for_each(|(i, ((acc_row, m_slot), den_slot))| {
                    let qrow = qh.row(i);
                    let mut m = *m_slot;
                    let mut den = *den_slot;
                    for j in tile_start..tile_end {
                        let krow = kh.row(j);
                        let sc = be.dot(qrow, krow) * scale;
                        if sc > m {
                            // Rescale previous accumulator and denominator.
                            // The streaming-softmax exp stays scalar: it is a
                            // data-dependent recurrence, not a vectorisable row.
                            let corr = (m - sc).exp();
                            let corr = if m == f32::NEG_INFINITY { 0.0 } else { corr };
                            den *= corr;
                            be.scale_assign(acc_row, corr);
                            m = sc;
                        }
                        let w = (sc - m).exp();
                        den += w;
                        be.axpy(acc_row, w, vh.row(j));
                    }
                    *m_slot = m;
                    *den_slot = den;
                });
            tile_start = tile_end;
        }
        // Normalise.
        for i in 0..s {
            let den = row_denom[h][i].max(f32::MIN_POSITIVE);
            let orow = out.row_mut(i);
            for (t, a) in acc.row(i).iter().enumerate() {
                orow[h * d_head + t] = a / den;
            }
        }
        ws.give(acc);
    }
    AttnOutput { out, cache: AttnCache::Flash { row_max, row_denom } }
}

/// Backward of [`flash`]: recomputes probabilities per tile from the saved
/// softmax statistics (FlashAttention's recomputation trick).
pub fn flash_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    cache: &AttnCache,
    out: &Tensor,
    dout: &Tensor,
) -> AttnGrads {
    flash_backward_ws(q, k, v, heads, cache.clone(), out, dout, &mut Workspace::new())
}

/// Backward of [`flash_ws`]; consumes the cache, returning its buffers to
/// `ws`.
#[allow(clippy::too_many_arguments)]
pub fn flash_backward_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    cache: AttnCache,
    out: &Tensor,
    dout: &Tensor,
    ws: &mut Workspace,
) -> AttnGrads {
    let (row_max, row_denom) = match cache {
        AttnCache::Flash { row_max, row_denom } => (row_max, row_denom),
        _ => panic!("flash_backward called with wrong cache"),
    };
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut dq = ws.take(s, d);
    let mut dk = ws.take(s, d);
    let mut dv = ws.take(s, d);
    let be = backend::active();
    for h in 0..heads {
        let qh = head_view(q, h, d_head);
        let kh = head_view(k, h, d_head);
        let vh = head_view(v, h, d_head);
        let doh = head_view(dout, h, d_head);
        let oh = head_view(out, h, d_head);
        // D_i = dO_i · O_i
        let mut di = ws.take_buf(s);
        for (i, slot) in di.iter_mut().enumerate() {
            *slot = be.dot(doh.row(i), oh.row(i));
        }
        let mut dqh = ws.take(s, d_head);
        let mut dkh = ws.take(s, d_head);
        let mut dvh = ws.take(s, d_head);
        for i in 0..s {
            let qrow = qh.row(i);
            let dorow = doh.row(i);
            let m = row_max[h][i];
            let den = row_denom[h][i].max(f32::MIN_POSITIVE);
            for j in 0..s {
                let krow = kh.row(j);
                let p = ((be.dot(qrow, krow) * scale - m).exp()) / den;
                if p < 1e-12 {
                    continue;
                }
                let dp = be.dot(dorow, vh.row(j));
                let ds = p * (dp - di[i]) * scale;
                be.axpy(dqh.row_mut(i), ds, krow);
                be.axpy(dkh.row_mut(j), ds, qrow);
                be.axpy(dvh.row_mut(j), p, dorow);
            }
        }
        add_head(&mut dq, &dqh, h, d_head);
        add_head(&mut dk, &dkh, h, d_head);
        add_head(&mut dv, &dvh, h, d_head);
        ws.give_buf(di);
        ws.give(dqh);
        ws.give(dkh);
        ws.give(dvh);
    }
    for b in row_max {
        ws.give_buf(b);
    }
    for b in row_denom {
        ws.give_buf(b);
    }
    AttnGrads { dq, dk, dv, dbias: None }
}

// ---------------------------------------------------------------------------
// Topology-sparse attention
// ---------------------------------------------------------------------------

/// Topology-induced sparse attention: query `i` attends only to
/// `mask.neighbors(i)`. `bias[h]` (optional) stores one bias per edge in the
/// mask's CSR order.
pub fn sparse(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    mask: &CsrGraph,
    bias: Option<&[Vec<f32>]>,
) -> AttnOutput {
    sparse_ws(q, k, v, heads, mask, bias, &mut Workspace::new())
}

/// [`sparse`] drawing every intermediate from `ws`.
pub fn sparse_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    mask: &CsrGraph,
    bias: Option<&[Vec<f32>]>,
    ws: &mut Workspace,
) -> AttnOutput {
    let (s, d) = q.shape();
    assert_eq!(mask.num_nodes(), s, "mask size must match sequence");
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut out = ws.take(s, d);
    let mut probs: Vec<Vec<f32>> = Vec::with_capacity(heads);
    let be = backend::active();
    for h in 0..heads {
        let qh = head_view(q, h, d_head);
        let kh = head_view(k, h, d_head);
        let vh = head_view(v, h, d_head);
        let hb = bias.map(|b| &b[h]);
        let mut p_edges = ws.take_buf(mask.num_arcs());
        let row_ptr = mask.row_ptr();
        // Parallel over query rows; each row owns its slice of p_edges.
        let out_cols = d;
        out.data_mut()
            .par_chunks_mut(out_cols)
            .zip(par_row_chunks(&mut p_edges, row_ptr))
            .enumerate()
            .for_each(|(i, (orow, p_slice))| {
                let nbrs = mask.neighbors(i);
                if nbrs.is_empty() {
                    return;
                }
                let qrow = qh.row(i);
                let base = row_ptr[i];
                // Scores.
                let mut max = f32::NEG_INFINITY;
                for (e, &j) in nbrs.iter().enumerate() {
                    let mut sc = be.dot(qrow, kh.row(j as usize)) * scale;
                    if let Some(b) = hb {
                        sc += b[base + e];
                    }
                    p_slice[e] = sc;
                    if sc > max {
                        max = sc;
                    }
                }
                let den = be.exp_minus_max_sum(p_slice, max);
                let inv = 1.0 / den.max(f32::MIN_POSITIVE);
                be.scale_assign(p_slice, inv);
                // Weighted sum of V rows.
                let orow_h = &mut orow[h * d_head..(h + 1) * d_head];
                for (e, &j) in nbrs.iter().enumerate() {
                    be.axpy(orow_h, p_slice[e], vh.row(j as usize));
                }
            });
        probs.push(p_edges);
    }
    AttnOutput { out, cache: AttnCache::Sparse { probs } }
}

/// Split a per-edge buffer into per-row mutable chunks following a CSR row
/// pointer, suitable for zipping with a parallel row iterator.
fn par_row_chunks<'a>(
    buf: &'a mut [f32],
    row_ptr: &[usize],
) -> impl torchgt_compat::par::iter::IndexedParallelIterator<Item = &'a mut [f32]> {
    let mut chunks: Vec<&'a mut [f32]> = Vec::with_capacity(row_ptr.len() - 1);
    let mut rest = buf;
    for w in row_ptr.windows(2) {
        let len = w[1] - w[0];
        let (head, tail) = rest.split_at_mut(len);
        chunks.push(head);
        rest = tail;
    }
    chunks.into_par_iter()
}

/// Backward of [`sparse`].
#[allow(clippy::too_many_arguments)]
pub fn sparse_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    mask: &CsrGraph,
    cache: &AttnCache,
    dout: &Tensor,
    want_bias_grad: bool,
) -> AttnGrads {
    sparse_backward_ws(q, k, v, heads, mask, cache.clone(), dout, want_bias_grad, &mut Workspace::new())
}

/// Backward of [`sparse_ws`]; consumes the cache, returning its buffers to
/// `ws`.
#[allow(clippy::too_many_arguments)]
pub fn sparse_backward_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    mask: &CsrGraph,
    cache: AttnCache,
    dout: &Tensor,
    want_bias_grad: bool,
    ws: &mut Workspace,
) -> AttnGrads {
    let probs = match cache {
        AttnCache::Sparse { probs } => probs,
        _ => panic!("sparse_backward called with wrong cache"),
    };
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut dq = ws.take(s, d);
    let mut dk = ws.take(s, d);
    let mut dv = ws.take(s, d);
    let mut dbias = if want_bias_grad { Some(Vec::with_capacity(heads)) } else { None };
    let row_ptr = mask.row_ptr();
    let max_deg = (0..s).map(|i| row_ptr[i + 1] - row_ptr[i]).max().unwrap_or(0);
    // Per-row dp scratch, sized for the widest row and fully rewritten per
    // row before being read.
    let mut dps = ws.take_buf(max_deg);
    let be = backend::active();
    for (h, p_edges) in probs.into_iter().enumerate() {
        let qh = head_view(q, h, d_head);
        let kh = head_view(k, h, d_head);
        let vh = head_view(v, h, d_head);
        let doh = head_view(dout, h, d_head);
        let mut ds_edges = ws.take_buf(p_edges.len());
        let mut dqh = ws.take(s, d_head);
        let mut dkh = ws.take(s, d_head);
        let mut dvh = ws.take(s, d_head);
        for i in 0..s {
            let nbrs = mask.neighbors(i);
            if nbrs.is_empty() {
                continue;
            }
            let base = row_ptr[i];
            let dorow = doh.row(i);
            let qrow = qh.row(i);
            // dp and the softmax dot term.
            let mut dot_pd = 0.0f32;
            for (e, &j) in nbrs.iter().enumerate() {
                let dp = be.dot(dorow, vh.row(j as usize));
                dps[e] = dp;
                dot_pd += p_edges[base + e] * dp;
            }
            for (e, &j) in nbrs.iter().enumerate() {
                let p = p_edges[base + e];
                let ds = p * (dps[e] - dot_pd);
                ds_edges[base + e] = ds;
                let dsc = ds * scale;
                let krow = kh.row(j as usize);
                be.axpy(dqh.row_mut(i), dsc, krow);
                be.axpy(dkh.row_mut(j as usize), dsc, qrow);
                be.axpy(dvh.row_mut(j as usize), p, dorow);
            }
        }
        add_head(&mut dq, &dqh, h, d_head);
        add_head(&mut dk, &dkh, h, d_head);
        add_head(&mut dv, &dvh, h, d_head);
        ws.give(dqh);
        ws.give(dkh);
        ws.give(dvh);
        ws.give_buf(p_edges);
        if let Some(list) = dbias.as_mut() {
            list.push(ds_edges);
        } else {
            ws.give_buf(ds_edges);
        }
    }
    ws.give_buf(dps);
    AttnGrads { dq, dk, dv, dbias: dbias.map(BiasGrad::Sparse) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::complete_graph;
    use torchgt_tensor::gradcheck::{max_abs_diff, numerical_grad};
    use torchgt_tensor::init;

    fn qkv(s: usize, d: usize) -> (Tensor, Tensor, Tensor) {
        (
            init::normal(s, d, 0.0, 1.0, 1),
            init::normal(s, d, 0.0, 1.0, 2),
            init::normal(s, d, 0.0, 1.0, 3),
        )
    }

    #[test]
    fn dense_rows_are_convex_combinations() {
        let (q, k, v) = qkv(6, 8);
        let r = dense(&q, &k, &v, 2, None);
        // Each output row lies within the range of V rows (convexity proxy:
        // max |out| ≤ max |v|).
        let vmax = v.data().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(r.out.data().iter().all(|&o| o.abs() <= vmax + 1e-4));
    }

    #[test]
    fn flash_matches_dense_exactly() {
        let (q, k, v) = qkv(37, 16); // non-multiple of tile width
        let d = dense(&q, &k, &v, 4, None);
        let f = flash(&q, &k, &v, 4);
        assert!(
            max_abs_diff(&d.out, &f.out) < 1e-4,
            "diff {}",
            max_abs_diff(&d.out, &f.out)
        );
    }

    #[test]
    fn sparse_on_complete_graph_matches_dense() {
        let s = 10;
        let (q, k, v) = qkv(s, 8);
        let mask = complete_graph(s).with_self_loops();
        let d = dense(&q, &k, &v, 2, None);
        let sp = sparse(&q, &k, &v, 2, &mask, None);
        assert!(max_abs_diff(&d.out, &sp.out) < 1e-4);
    }

    #[test]
    fn ws_kernels_match_allocating_kernels_bitwise() {
        // Same arithmetic through a pre-dirtied shared arena: forward and
        // backward of every kernel must be bit-identical to the allocating
        // wrappers.
        let s = 9;
        let (q, k, v) = qkv(s, 8);
        let upstream = init::normal(s, 8, 0.0, 1.0, 21);
        let mask = torchgt_graph::generators::cycle_graph(s).with_self_loops();
        let mut ws = Workspace::new();
        let mut dirty = ws.take(s, s);
        dirty.data_mut().fill(f32::NAN);
        ws.give(dirty);

        let a = dense(&q, &k, &v, 2, None);
        let b = dense_ws(&q, &k, &v, 2, None, &mut ws);
        assert_eq!(a.out.data(), b.out.data());
        let ga = dense_backward(&q, &k, &v, 2, &a.cache, &upstream, false);
        let gb = dense_backward_ws(&q, &k, &v, 2, b.cache, &upstream, false, &mut ws);
        assert_eq!(ga.dq.data(), gb.dq.data());
        assert_eq!(ga.dk.data(), gb.dk.data());
        assert_eq!(ga.dv.data(), gb.dv.data());
        ws.give(b.out);
        ws.give(gb.dq);
        ws.give(gb.dk);
        ws.give(gb.dv);

        let a = flash(&q, &k, &v, 2);
        let b = flash_ws(&q, &k, &v, 2, &mut ws);
        assert_eq!(a.out.data(), b.out.data());
        let ga = flash_backward(&q, &k, &v, 2, &a.cache, &a.out, &upstream);
        let gb = flash_backward_ws(&q, &k, &v, 2, b.cache, &b.out, &upstream, &mut ws);
        assert_eq!(ga.dq.data(), gb.dq.data());
        assert_eq!(ga.dk.data(), gb.dk.data());
        assert_eq!(ga.dv.data(), gb.dv.data());

        let a = sparse(&q, &k, &v, 2, &mask, None);
        let b = sparse_ws(&q, &k, &v, 2, &mask, None, &mut ws);
        assert_eq!(a.out.data(), b.out.data());
        let ga = sparse_backward(&q, &k, &v, 2, &mask, &a.cache, &upstream, false);
        let gb = sparse_backward_ws(&q, &k, &v, 2, &mask, b.cache, &upstream, false, &mut ws);
        assert_eq!(ga.dq.data(), gb.dq.data());
        assert_eq!(ga.dk.data(), gb.dk.data());
        assert_eq!(ga.dv.data(), gb.dv.data());

        let a = performer(&q, &k, &v, 2, 16, 5);
        let b = performer_ws(&q, &k, &v, 2, 16, 5, &mut ws);
        assert_eq!(a.out.data(), b.out.data());
        let ga = performer_backward(&q, &k, &v, 2, 16, 5, &a.cache, &upstream);
        let gb = performer_backward_ws(&q, &k, &v, 2, 16, 5, b.cache, &upstream, &mut ws);
        assert_eq!(ga.dq.data(), gb.dq.data());
        assert_eq!(ga.dk.data(), gb.dk.data());
        assert_eq!(ga.dv.data(), gb.dv.data());
    }

    #[test]
    fn warm_ws_attention_steps_do_not_allocate() {
        let s = 12;
        let (q, k, v) = qkv(s, 8);
        let upstream = init::normal(s, 8, 0.0, 1.0, 23);
        let mask = torchgt_graph::generators::cycle_graph(s).with_self_loops();
        let mut ws = Workspace::new();
        let step = |ws: &mut Workspace| {
            let r = sparse_ws(&q, &k, &v, 2, &mask, None, ws);
            let g = sparse_backward_ws(&q, &k, &v, 2, &mask, r.cache, &upstream, false, ws);
            ws.give(r.out);
            ws.give(g.dq);
            ws.give(g.dk);
            ws.give(g.dv);
        };
        step(&mut ws);
        step(&mut ws);
        let warm = ws.stats();
        step(&mut ws);
        let after = ws.stats();
        assert_eq!(after.alloc_bytes, warm.alloc_bytes, "warm attention step allocated");
        assert!(after.reuse_hits > warm.reuse_hits);
    }

    #[test]
    fn dense_backward_matches_numerical() {
        let (q, k, v) = qkv(5, 6);
        let upstream = init::normal(5, 6, 0.0, 1.0, 9);
        let r = dense(&q, &k, &v, 2, None);
        let g = dense_backward(&q, &k, &v, 2, &r.cache, &upstream, false);
        let loss = |qq: &Tensor, kk: &Tensor, vv: &Tensor| {
            let o = dense(qq, kk, vv, 2, None).out;
            o.data().iter().zip(upstream.data()).map(|(a, b)| a * b).sum::<f32>()
        };
        let nq = numerical_grad(&q, |p| loss(p, &k, &v), 1e-2);
        let nk = numerical_grad(&k, |p| loss(&q, p, &v), 1e-2);
        let nv = numerical_grad(&v, |p| loss(&q, &k, p), 1e-2);
        assert!(max_abs_diff(&g.dq, &nq) < 2e-2, "dq {}", max_abs_diff(&g.dq, &nq));
        assert!(max_abs_diff(&g.dk, &nk) < 2e-2, "dk {}", max_abs_diff(&g.dk, &nk));
        assert!(max_abs_diff(&g.dv, &nv) < 2e-2, "dv {}", max_abs_diff(&g.dv, &nv));
    }

    #[test]
    fn flash_backward_matches_dense_backward() {
        let (q, k, v) = qkv(23, 8);
        let upstream = init::normal(23, 8, 0.0, 1.0, 11);
        let dres = dense(&q, &k, &v, 2, None);
        let dg = dense_backward(&q, &k, &v, 2, &dres.cache, &upstream, false);
        let fres = flash(&q, &k, &v, 2);
        let fg = flash_backward(&q, &k, &v, 2, &fres.cache, &fres.out, &upstream);
        assert!(max_abs_diff(&dg.dq, &fg.dq) < 1e-3);
        assert!(max_abs_diff(&dg.dk, &fg.dk) < 1e-3);
        assert!(max_abs_diff(&dg.dv, &fg.dv) < 1e-3);
    }

    #[test]
    fn sparse_backward_matches_numerical() {
        let s = 8;
        let (q, k, v) = qkv(s, 4);
        let mask = torchgt_graph::generators::cycle_graph(s).with_self_loops();
        let upstream = init::normal(s, 4, 0.0, 1.0, 13);
        let r = sparse(&q, &k, &v, 2, &mask, None);
        let g = sparse_backward(&q, &k, &v, 2, &mask, &r.cache, &upstream, false);
        let loss = |qq: &Tensor, kk: &Tensor, vv: &Tensor| {
            let o = sparse(qq, kk, vv, 2, &mask, None).out;
            o.data().iter().zip(upstream.data()).map(|(a, b)| a * b).sum::<f32>()
        };
        let nq = numerical_grad(&q, |p| loss(p, &k, &v), 1e-2);
        let nk = numerical_grad(&k, |p| loss(&q, p, &v), 1e-2);
        let nv = numerical_grad(&v, |p| loss(&q, &k, p), 1e-2);
        assert!(max_abs_diff(&g.dq, &nq) < 2e-2);
        assert!(max_abs_diff(&g.dk, &nk) < 2e-2);
        assert!(max_abs_diff(&g.dv, &nv) < 2e-2);
    }

    #[test]
    fn dense_bias_shifts_attention() {
        let (q, k, v) = qkv(4, 4);
        let mut bias = vec![Tensor::zeros(4, 4), Tensor::zeros(4, 4)];
        // Huge bias towards column 2 in head 0.
        for r in 0..4 {
            bias[0].set(r, 2, 50.0);
        }
        let r = dense(&q, &k, &v, 2, Some(&bias));
        // Head 0 output ≈ V row 2 (head-0 columns).
        for row in 0..4 {
            for t in 0..2 {
                assert!((r.out.get(row, t) - v.get(2, t)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn sparse_bias_grad_has_edge_layout() {
        let s = 6;
        let (q, k, v) = qkv(s, 4);
        let mask = complete_graph(s).with_self_loops();
        let bias: Vec<Vec<f32>> = vec![vec![0.1; mask.num_arcs()]; 2];
        let r = sparse(&q, &k, &v, 2, &mask, Some(&bias));
        let upstream = init::normal(s, 4, 0.0, 1.0, 17);
        let g = sparse_backward(&q, &k, &v, 2, &mask, &r.cache, &upstream, true);
        match g.dbias {
            Some(BiasGrad::Sparse(db)) => {
                assert_eq!(db.len(), 2);
                assert_eq!(db[0].len(), mask.num_arcs());
                assert!(db[0].iter().any(|&x| x != 0.0));
            }
            _ => panic!("expected sparse bias grad"),
        }
    }

    #[test]
    fn sparse_bias_grad_matches_numerical() {
        let s = 5;
        let (q, k, v) = qkv(s, 4);
        let mask = complete_graph(s).with_self_loops();
        let nedges = mask.num_arcs();
        let bias: Vec<Vec<f32>> = vec![
            (0..nedges).map(|e| (e as f32) * 0.01).collect(),
            (0..nedges).map(|e| -(e as f32) * 0.02).collect(),
        ];
        let upstream = init::normal(s, 4, 0.0, 1.0, 19);
        let r = sparse(&q, &k, &v, 2, &mask, Some(&bias));
        let g = sparse_backward(&q, &k, &v, 2, &mask, &r.cache, &upstream, true);
        let db = match g.dbias {
            Some(BiasGrad::Sparse(db)) => db,
            _ => unreachable!(),
        };
        // Numerical check on a few edges of head 0.
        for e in [0usize, 3, 7, nedges - 1] {
            let eps = 1e-2;
            let mut bp = bias.clone();
            bp[0][e] += eps;
            let lp: f32 = sparse(&q, &k, &v, 2, &mask, Some(&bp))
                .out
                .data()
                .iter()
                .zip(upstream.data())
                .map(|(a, b)| a * b)
                .sum();
            let mut bm = bias.clone();
            bm[0][e] -= eps;
            let lm: f32 = sparse(&q, &k, &v, 2, &mask, Some(&bm))
                .out
                .data()
                .iter()
                .zip(upstream.data())
                .map(|(a, b)| a * b)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((db[0][e] - num).abs() < 2e-2, "edge {e}: {} vs {num}", db[0][e]);
        }
    }
}

// ---------------------------------------------------------------------------
// Performer-style linear attention (FAVOR+)
// ---------------------------------------------------------------------------

/// Positive random-feature map `φ(x)_j = exp(w_j·x − ‖x‖²/2)/√m` applied to
/// each (pre-scaled) row.
fn phi_map_ws(x: &Tensor, w: &Tensor, ws: &mut Workspace) -> Tensor {
    let (s, _) = x.shape();
    let m = w.rows();
    let inv_sqrt_m = 1.0 / (m as f32).sqrt();
    let mut proj = ws.take(s, m);
    ops::matmul_bt_into(x, w, &mut proj); // [s, m]
    let mut out = ws.take(s, m);
    for i in 0..s {
        let half_norm: f32 = x.row(i).iter().map(|v| v * v).sum::<f32>() * 0.5;
        let orow = out.row_mut(i);
        for (o, &p) in orow.iter_mut().zip(proj.row(i)) {
            *o = (p - half_norm).exp() * inv_sqrt_m;
        }
    }
    ws.give(proj);
    out
}

/// Backward of [`phi_map_ws`]:
/// `dx_i = (dφ_i ∘ φ_i)·W − (Σ_j dφ_ij φ_ij)·x_i`.
fn phi_map_backward_ws(
    x: &Tensor,
    w: &Tensor,
    phi: &Tensor,
    dphi: &Tensor,
    ws: &mut Workspace,
) -> Tensor {
    let (s, m) = phi.shape();
    let mut weighted = ws.take(s, m);
    ops::mul_into(dphi, phi, &mut weighted); // [s, m]
    let mut dx = ws.take(s, x.cols());
    ops::matmul_into(&weighted, w, &mut dx); // [s, d]
    for i in 0..x.rows() {
        let row_sum: f32 = weighted.row(i).iter().sum();
        for (d, &xv) in dx.row_mut(i).iter_mut().zip(x.row(i)) {
            *d -= row_sum * xv;
        }
    }
    ws.give(weighted);
    dx
}

/// Performer (FAVOR+) linear attention: `O = φ(Q)(φ(K)ᵀV) / φ(Q)(φ(K)ᵀ1)`,
/// an `O(s·m·d)` approximation of softmax attention with `m` positive random
/// features per head. This is the NLP-style approximate attention the paper
/// contrasts against (its ref. [35], Performers): structure-agnostic, so it
/// loses the graph's connectivity information.
pub fn performer(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize, m_features: usize, seed: u64) -> AttnOutput {
    performer_ws(q, k, v, heads, m_features, seed, &mut Workspace::new())
}

/// [`performer`] drawing every intermediate (including the per-head random
/// feature matrices) from `ws`.
pub fn performer_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    m_features: usize,
    seed: u64,
    ws: &mut Workspace,
) -> AttnOutput {
    let (s, d) = q.shape();
    let d_head = d / heads;
    // Pre-scale so φ approximates exp(q·k/√d_head).
    let scale = 1.0 / (d_head as f32).powf(0.25);
    let mut out = ws.take(s, d);
    let mut phi_qs = Vec::with_capacity(heads);
    let mut phi_ks = Vec::with_capacity(heads);
    let mut denoms = Vec::with_capacity(heads);
    let mut nums = Vec::with_capacity(heads);
    for h in 0..heads {
        let mut w = ws.take(m_features, d_head);
        torchgt_tensor::init::normal_into(0.0, 1.0, seed.wrapping_add(h as u64), &mut w);
        let mut qh = ws.take(s, d_head);
        ops::scale_into(&head_view(q, h, d_head), scale, &mut qh);
        let mut kh = ws.take(s, d_head);
        ops::scale_into(&head_view(k, h, d_head), scale, &mut kh);
        let vh = head_view(v, h, d_head);
        let phi_q = phi_map_ws(&qh, &w, ws);
        let phi_k = phi_map_ws(&kh, &w, ws);
        ws.give(qh);
        ws.give(kh);
        ws.give(w);
        let mut a = ws.take(m_features, d_head);
        ops::matmul_at_into(&phi_k, &vh, &mut a); // [m, d_head]
        let mut num = ws.take(s, d_head);
        ops::matmul_into(&phi_q, &a, &mut num); // [s, d_head]
        ws.give(a);
        let mut z = ws.take(1, m_features);
        ops::col_sum_into(&phi_k, &mut z); // [1, m]
        let mut den_t = ws.take(s, 1);
        ops::matmul_bt_into(&phi_q, &z, &mut den_t); // [s, 1]
        ws.give(z);
        let mut den = ws.take_buf(s);
        for (i, slot) in den.iter_mut().enumerate() {
            *slot = den_t.get(i, 0).max(1e-9);
        }
        ws.give(den_t);
        let mut oh = ws.take(s, d_head);
        for i in 0..s {
            let inv = 1.0 / den[i];
            for t in 0..d_head {
                oh.set(i, t, num.get(i, t) * inv);
            }
        }
        write_head(&mut out, &oh, h, d_head);
        ws.give(oh);
        phi_qs.push(phi_q);
        phi_ks.push(phi_k);
        denoms.push(den);
        nums.push(num);
    }
    AttnOutput {
        out,
        cache: AttnCache::Performer { phi_q: phi_qs, phi_k: phi_ks, denom: denoms, num: nums },
    }
}

/// Backward of [`performer`] (same `seed`/`m_features` as the forward).
#[allow(clippy::too_many_arguments)]
pub fn performer_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    m_features: usize,
    seed: u64,
    cache: &AttnCache,
    dout: &Tensor,
) -> AttnGrads {
    performer_backward_ws(q, k, v, heads, m_features, seed, cache.clone(), dout, &mut Workspace::new())
}

/// Backward of [`performer_ws`]; consumes the cache, returning its buffers
/// to `ws`.
#[allow(clippy::too_many_arguments)]
pub fn performer_backward_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    m_features: usize,
    seed: u64,
    cache: AttnCache,
    dout: &Tensor,
    ws: &mut Workspace,
) -> AttnGrads {
    let (phi_qs, phi_ks, denoms, nums) = match cache {
        AttnCache::Performer { phi_q, phi_k, denom, num } => (phi_q, phi_k, denom, num),
        _ => panic!("performer_backward called with wrong cache"),
    };
    let (s, d) = q.shape();
    let d_head = d / heads;
    let scale = 1.0 / (d_head as f32).powf(0.25);
    let mut dq = ws.take(s, d);
    let mut dk = ws.take(s, d);
    let mut dv = ws.take(s, d);
    let per_head = phi_qs.into_iter().zip(phi_ks).zip(denoms).zip(nums).enumerate();
    for (h, (((phi_q, phi_k), den), num)) in per_head {
        let mut w = ws.take(m_features, d_head);
        torchgt_tensor::init::normal_into(0.0, 1.0, seed.wrapping_add(h as u64), &mut w);
        let mut qh = ws.take(s, d_head);
        ops::scale_into(&head_view(q, h, d_head), scale, &mut qh);
        let mut kh = ws.take(s, d_head);
        ops::scale_into(&head_view(k, h, d_head), scale, &mut kh);
        let vh = head_view(v, h, d_head);
        let doh = head_view(dout, h, d_head);
        // O = num/den: dnum, dden per row.
        let mut dnum = ws.take(s, d_head);
        let mut dden = ws.take_buf(s);
        for i in 0..s {
            let inv = 1.0 / den[i];
            let mut dot = 0.0f32;
            for t in 0..d_head {
                dnum.set(i, t, doh.row(i)[t] * inv);
                dot += doh.row(i)[t] * num.get(i, t);
            }
            dden[i] = -dot * inv * inv;
        }
        // A = φ(K)ᵀV, z = φ(K)ᵀ1.
        let mut a = ws.take(m_features, d_head);
        ops::matmul_at_into(&phi_k, &vh, &mut a);
        let mut z = ws.take(1, m_features);
        ops::col_sum_into(&phi_k, &mut z); // [1, m]
        // dφ(Q) = dnum·Aᵀ + dden ⊗ z.
        let mut dphi_q = ws.take(s, m_features);
        ops::matmul_bt_into(&dnum, &a, &mut dphi_q);
        for i in 0..s {
            let dd = dden[i];
            for (c, zv) in dphi_q.row_mut(i).iter_mut().zip(z.row(0)) {
                *c += dd * zv;
            }
        }
        ws.give(z);
        // dA = φ(Q)ᵀ dnum; dz = φ(Q)ᵀ dden.
        let mut da = ws.take(m_features, d_head);
        ops::matmul_at_into(&phi_q, &dnum, &mut da); // [m, d_head]
        let mut dz = ws.take_buf(m_features);
        for i in 0..s {
            let dd = dden[i];
            for (j, &pq) in phi_q.row(i).iter().enumerate() {
                dz[j] += dd * pq;
            }
        }
        // dφ(K) = V·dAᵀ + 1⊗dz; dV = φ(K)·dA.
        let mut dphi_k = ws.take(s, m_features);
        ops::matmul_bt_into(&vh, &da, &mut dphi_k);
        for i in 0..s {
            for (c, &dzv) in dphi_k.row_mut(i).iter_mut().zip(&dz) {
                *c += dzv;
            }
        }
        let mut dvh = ws.take(s, d_head);
        ops::matmul_into(&phi_k, &da, &mut dvh);
        ws.give(a);
        ws.give(da);
        ws.give(dnum);
        ws.give_buf(dden);
        ws.give_buf(dz);
        // Through the feature maps, then undo the input scaling.
        let mut dqh = phi_map_backward_ws(&qh, &w, &phi_q, &dphi_q, ws);
        ops::scale_inplace(&mut dqh, scale);
        let mut dkh = phi_map_backward_ws(&kh, &w, &phi_k, &dphi_k, ws);
        ops::scale_inplace(&mut dkh, scale);
        add_head(&mut dq, &dqh, h, d_head);
        add_head(&mut dk, &dkh, h, d_head);
        add_head(&mut dv, &dvh, h, d_head);
        ws.give(dqh);
        ws.give(dkh);
        ws.give(dvh);
        ws.give(dphi_q);
        ws.give(dphi_k);
        ws.give(qh);
        ws.give(kh);
        ws.give(w);
        ws.give(phi_q);
        ws.give(phi_k);
        ws.give(num);
        ws.give_buf(den);
    }
    AttnGrads { dq, dk, dv, dbias: None }
}

#[cfg(test)]
mod performer_tests {
    use super::*;
    use torchgt_tensor::gradcheck::{max_abs_diff, numerical_grad};
    use torchgt_tensor::init;

    fn qkv(s: usize, d: usize) -> (Tensor, Tensor, Tensor) {
        (
            init::normal(s, d, 0.0, 0.6, 31),
            init::normal(s, d, 0.0, 0.6, 32),
            init::normal(s, d, 0.0, 0.6, 33),
        )
    }

    #[test]
    fn performer_output_is_convex_combination() {
        let (q, k, v) = qkv(8, 8);
        let r = performer(&q, &k, &v, 2, 64, 5);
        // Rows of O are positive-weighted averages of V rows.
        let vmax = v.data().iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(r.out.data().iter().all(|&o| o.abs() <= vmax + 1e-3));
    }

    #[test]
    fn performer_approximates_dense_softmax() {
        // With many random features the FAVOR+ estimate tracks softmax
        // attention; correlation between outputs should be strong.
        let (q, k, v) = qkv(12, 4);
        let exact = dense(&q, &k, &v, 1, None).out;
        let approx = performer(&q, &k, &v, 1, 512, 7).out;
        let mean_exact = exact.mean();
        let mean_approx = approx.mean();
        let mut cov = 0.0f64;
        let mut var_e = 0.0f64;
        let mut var_a = 0.0f64;
        for (e, a) in exact.data().iter().zip(approx.data()) {
            cov += ((e - mean_exact) * (a - mean_approx)) as f64;
            var_e += ((e - mean_exact) * (e - mean_exact)) as f64;
            var_a += ((a - mean_approx) * (a - mean_approx)) as f64;
        }
        let corr = cov / (var_e.sqrt() * var_a.sqrt()).max(1e-12);
        assert!(corr > 0.8, "correlation {corr}");
    }

    #[test]
    fn performer_backward_matches_numerical() {
        let (q, k, v) = qkv(5, 4);
        let upstream = init::normal(5, 4, 0.0, 1.0, 39);
        let r = performer(&q, &k, &v, 2, 16, 3);
        let g = performer_backward(&q, &k, &v, 2, 16, 3, &r.cache, &upstream);
        let loss = |qq: &Tensor, kk: &Tensor, vv: &Tensor| {
            let o = performer(qq, kk, vv, 2, 16, 3).out;
            o.data().iter().zip(upstream.data()).map(|(a, b)| a * b).sum::<f32>()
        };
        let nq = numerical_grad(&q, |p| loss(p, &k, &v), 1e-2);
        let nk = numerical_grad(&k, |p| loss(&q, p, &v), 1e-2);
        let nv = numerical_grad(&v, |p| loss(&q, &k, p), 1e-2);
        assert!(max_abs_diff(&g.dq, &nq) < 3e-2, "dq {}", max_abs_diff(&g.dq, &nq));
        assert!(max_abs_diff(&g.dk, &nk) < 3e-2, "dk {}", max_abs_diff(&g.dk, &nk));
        assert!(max_abs_diff(&g.dv, &nv) < 3e-2, "dv {}", max_abs_diff(&g.dv, &nv));
    }

    #[test]
    fn performer_is_deterministic_per_seed() {
        let (q, k, v) = qkv(6, 4);
        let a = performer(&q, &k, &v, 2, 32, 11).out;
        let b = performer(&q, &k, &v, 2, 32, 11).out;
        let c = performer(&q, &k, &v, 2, 32, 12).out;
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }
}
