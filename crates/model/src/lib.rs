//! # torchgt-model
//!
//! Graph-transformer models and GNN baselines on the `torchgt-tensor`
//! substrate:
//!
//! * [`attention`] — dense / flash-tiled / topology-sparse attention kernels
//!   with hand-written backward passes;
//! * [`mha`] + [`block`] — multi-head attention and pre-LN transformer
//!   blocks with a pluggable attention pattern;
//! * [`encodings`] — Graphormer's centrality + spatial encodings and GT's
//!   Laplacian positional encodings;
//! * [`graphormer`], [`gt`] — the paper's two evaluation models (Table IV);
//! * [`gnn`] — GCN and GAT baselines (Table I);
//! * [`sampled`] — a NodeFormer-style sampling baseline (Figure 1);
//! * [`loss`] — cross-entropy / MAE losses and accuracy metrics.

pub mod api;
pub mod attention;
pub mod block;
pub mod encodings;
pub mod gnn;
pub mod graphormer;
pub mod gt;
pub mod loss;
pub mod mha;
pub mod sampled;
pub mod vnode;

pub use api::{Pattern, SequenceBatch, SequenceModel};
pub use vnode::VirtualNode;
pub use block::TransformerBlock;
pub use gnn::{Gat, Gcn};
pub use graphormer::{Graphormer, GraphormerConfig};
pub use gt::{Gt, GtConfig};
pub use mha::{AttentionMode, MultiHeadAttention};
pub use sampled::SampledTransformer;
