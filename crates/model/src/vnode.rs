//! Virtual-node ("global token") wrapper.
//!
//! Graphormer prepends a special `[VNode]` token connected to every node;
//! §III-B of the paper covers it explicitly: "If there exists a global token
//! in the model that attends to all nodes … we augment Ẽ with the global
//! token's edges." This wrapper adds the token around any [`SequenceModel`]:
//! the augmented sequence has the learnable virtual token at position 0 and
//! all original tokens shifted by one; sparse masks are augmented with the
//! token's edges. For graph-level readout, position 0 is the graph
//! representation.

use crate::api::{Pattern, SequenceBatch, SequenceModel};
use torchgt_graph::CsrGraph;
use torchgt_sparse::add_global_token;
use torchgt_tensor::rng::derive_seed;
use torchgt_tensor::{init, Param, Tensor};

/// Wraps a model with a learnable global token.
pub struct VirtualNode<M: SequenceModel> {
    inner: M,
    /// Learnable feature row of the virtual token (input space).
    pub token: Param,
    /// Cached augmented graph/mask keyed by (nodes, arcs) of the original.
    cache: Option<(usize, usize, CsrGraph, CsrGraph)>,
}

impl<M: SequenceModel> VirtualNode<M> {
    /// Wrap `inner`; the virtual token lives in the `feat_dim`-dimensional
    /// input space.
    pub fn new(inner: M, feat_dim: usize, seed: u64) -> Self {
        Self {
            inner,
            token: Param::new(init::normal(1, feat_dim, 0.0, 0.1, derive_seed(seed, 400))),
            cache: None,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn augmented(&mut self, graph: &CsrGraph, mask: Option<&CsrGraph>) -> (CsrGraph, CsrGraph) {
        let key = (graph.num_nodes(), graph.num_arcs());
        if let Some((n, a, g, m)) = &self.cache {
            if (*n, *a) == key {
                return (g.clone(), m.clone());
            }
        }
        let aug_graph = add_global_token(graph);
        let aug_mask = match mask {
            Some(m) => add_global_token(m),
            None => aug_graph.clone(),
        };
        self.cache = Some((key.0, key.1, aug_graph.clone(), aug_mask.clone()));
        (aug_graph, aug_mask)
    }

    fn augment_features(&self, features: &Tensor) -> Tensor {
        Tensor::vstack(&[&self.token.value, features])
    }

    /// Forward returning the **graph representation logits** (the virtual
    /// token's output row) alongside the per-node logits.
    pub fn forward_with_readout(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
    ) -> (Tensor, Tensor) {
        let full = self.forward(batch, pattern);
        let graph_logits = full.slice_rows(0, 1);
        let node_logits = full.slice_rows(1, full.rows());
        (graph_logits, node_logits)
    }
}

impl<M: SequenceModel> SequenceModel for VirtualNode<M> {
    fn forward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>) -> Tensor {
        let mask = match pattern {
            Pattern::Sparse(m) => Some(m),
            _ => None,
        };
        let (aug_graph, aug_mask) = self.augmented(batch.graph, mask);
        let feats = self.augment_features(batch.features);
        let inner_batch =
            SequenceBatch { features: &feats, graph: &aug_graph, spd: None };
        match pattern {
            Pattern::Sparse(_) => self.inner.forward(&inner_batch, Pattern::Sparse(&aug_mask)),
            p => self.inner.forward(&inner_batch, p),
        }
    }

    fn backward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>, dlogits: &Tensor) {
        let mask = match pattern {
            Pattern::Sparse(m) => Some(m),
            _ => None,
        };
        let (aug_graph, aug_mask) = self.augmented(batch.graph, mask);
        let feats = self.augment_features(batch.features);
        let inner_batch =
            SequenceBatch { features: &feats, graph: &aug_graph, spd: None };
        match pattern {
            Pattern::Sparse(_) => {
                self.inner.backward(&inner_batch, Pattern::Sparse(&aug_mask), dlogits)
            }
            p => self.inner.backward(&inner_batch, p, dlogits),
        }
        // The virtual token's feature gradient flows through the inner
        // model's input projection; approximate it by the mean output
        // gradient at position 0 — exact dL/dtoken requires the inner model
        // to expose dL/dinput, which the SequenceModel trait hides. Instead
        // we update the token from its logit gradient directly (a standard
        // straight-through simplification).
        let g0 = dlogits.slice_rows(0, 1);
        if g0.cols() == self.token.value.cols() {
            self.token.accumulate(&g0);
        } else {
            // Project the mismatch by broadcasting the mean.
            let mean = g0.mean();
            let g = Tensor::full(1, self.token.value.cols(), mean);
            self.token.accumulate(&g);
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.inner.params_mut();
        p.push(&mut self.token);
        p
    }

    fn set_training(&mut self, on: bool) {
        self.inner.set_training(on);
    }

    fn name(&self) -> &'static str {
        "VirtualNode"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gt::{Gt, GtConfig};
    use torchgt_graph::generators::cycle_graph;
    use torchgt_sparse::topology_mask;

    #[test]
    fn forward_adds_one_token() {
        let g = cycle_graph(6);
        let x = init::normal(6, 4, 0.0, 1.0, 1);
        let mut m = VirtualNode::new(Gt::new(GtConfig::tiny(4, 3), 2), 4, 5);
        let batch = SequenceBatch { features: &x, graph: &g, spd: None };
        let y = m.forward(&batch, Pattern::Flash);
        assert_eq!(y.shape(), (7, 3));
        let (graph_logits, node_logits) = m.forward_with_readout(&batch, Pattern::Flash);
        assert_eq!(graph_logits.shape(), (1, 3));
        assert_eq!(node_logits.shape(), (6, 3));
    }

    #[test]
    fn sparse_pattern_gets_augmented_mask() {
        let g = cycle_graph(6);
        let mask = topology_mask(&g, false);
        let x = init::normal(6, 4, 0.0, 1.0, 1);
        let mut m = VirtualNode::new(Gt::new(GtConfig::tiny(4, 3), 2), 4, 5);
        let batch = SequenceBatch { features: &x, graph: &g, spd: None };
        let y = m.forward(&batch, Pattern::Sparse(&mask));
        assert_eq!(y.rows(), 7);
        // Cache hit second time.
        let y2 = m.forward(&batch, Pattern::Sparse(&mask));
        assert_eq!(y.rows(), y2.rows());
    }

    #[test]
    fn global_token_sees_every_node() {
        // Move one node's features; the virtual token's output must change
        // (it attends to all nodes even under the sparse pattern).
        let g = cycle_graph(8);
        let mask = topology_mask(&g, false);
        let mut m = VirtualNode::new(Gt::new(GtConfig::tiny(4, 3), 2), 4, 5);
        m.set_training(false);
        let x1 = init::normal(8, 4, 0.0, 1.0, 1);
        let mut x2 = x1.clone();
        for c in 0..4 {
            x2.set(5, c, x2.get(5, c) + 3.0);
        }
        let b1 = SequenceBatch { features: &x1, graph: &g, spd: None };
        let b2 = SequenceBatch { features: &x2, graph: &g, spd: None };
        let y1 = m.forward(&b1, Pattern::Sparse(&mask));
        let y2 = m.forward(&b2, Pattern::Sparse(&mask));
        let delta: f32 = y1
            .row(0)
            .iter()
            .zip(y2.row(0))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(delta > 1e-5, "virtual token ignored node 5");
    }

    #[test]
    fn params_include_token() {
        let mut m = VirtualNode::new(Gt::new(GtConfig::tiny(4, 3), 2), 4, 5);
        let inner_count = Gt::new(GtConfig::tiny(4, 3), 2).params_mut().len();
        assert_eq!(m.params_mut().len(), inner_count + 1);
    }

    #[test]
    fn trains_on_graph_readout() {
        use crate::loss;
        use torchgt_tensor::{Adam, Optimizer};
        let g = cycle_graph(6);
        let x = init::normal(6, 4, 0.0, 1.0, 3);
        let mut m = VirtualNode::new(Gt::new(GtConfig::tiny(4, 2), 7), 4, 9);
        m.set_training(true);
        let mut opt = Adam::with_lr(3e-3);
        let batch = SequenceBatch { features: &x, graph: &g, spd: None };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let full = m.forward(&batch, Pattern::Flash);
            let graph_logits = full.slice_rows(0, 1);
            let (l, dg) = loss::softmax_cross_entropy(&graph_logits, &[1]);
            // Gradient only at the readout row.
            let mut dfull = Tensor::zeros(full.rows(), full.cols());
            for c in 0..full.cols() {
                dfull.set(0, c, dg.get(0, c));
            }
            m.backward(&batch, Pattern::Flash, &dfull);
            opt.step(&mut m.params_mut());
            first.get_or_insert(l);
            last = l;
        }
        assert!(last < 0.5 * first.unwrap(), "{first:?} → {last}");
    }
}
