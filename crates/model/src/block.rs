//! A pre-LN transformer block with pluggable attention.

use crate::attention::BiasGrad;
use crate::mha::{AttentionMode, MultiHeadAttention};
use torchgt_tensor::layers::Layer;
use torchgt_tensor::ops;
use torchgt_tensor::rng::derive_seed;
use torchgt_tensor::{Dropout, FeedForward, LayerNorm, Param, Tensor, Workspace};

/// `x → x + Drop(MHA(LN(x))) → y + Drop(FFN(LN(y)))` — the standard pre-LN
/// block Graphormer and GT both use.
pub struct TransformerBlock {
    ln1: LayerNorm,
    /// The attention sub-layer (public so schedulers can inspect heads).
    pub attn: MultiHeadAttention,
    drop1: Dropout,
    ln2: LayerNorm,
    ffn: FeedForward,
    drop2: Dropout,
}

impl TransformerBlock {
    /// Construct with hidden width `dim`, `heads` heads, `ffn_mult × dim`
    /// FFN inner width and dropout probability `dropout`.
    pub fn new(dim: usize, heads: usize, ffn_mult: usize, dropout: f32, seed: u64) -> Self {
        Self {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, heads, derive_seed(seed, 40)),
            drop1: Dropout::new(dropout, derive_seed(seed, 41)),
            ln2: LayerNorm::new(dim),
            ffn: FeedForward::new(dim, ffn_mult * dim, derive_seed(seed, 42)),
            drop2: Dropout::new(dropout, derive_seed(seed, 43)),
        }
    }

    /// Toggle training mode (enables/disables dropout).
    pub fn set_training(&mut self, on: bool) {
        self.drop1.training = on;
        self.drop2.training = on;
    }

    /// Forward under the given attention mode.
    pub fn forward(&mut self, x: &Tensor, mode: &AttentionMode<'_>) -> Tensor {
        self.forward_ws(x, mode, &mut Workspace::new())
    }

    /// [`TransformerBlock::forward`] drawing every intermediate from `ws`.
    /// The returned tensor belongs to `ws`.
    pub fn forward_ws(&mut self, x: &Tensor, mode: &AttentionMode<'_>, ws: &mut Workspace) -> Tensor {
        let a = self.ln1.forward_ws(x, ws);
        let a2 = self.attn.forward_ws(&a, mode, ws);
        ws.give(a);
        let a3 = self.drop1.forward_ws(&a2, ws);
        ws.give(a2);
        let mut y = ws.take(x.rows(), x.cols());
        ops::add_into(x, &a3, &mut y);
        ws.give(a3);
        let f = self.ln2.forward_ws(&y, ws);
        let f2 = self.ffn.forward_ws(&f, ws);
        ws.give(f);
        let f3 = self.drop2.forward_ws(&f2, ws);
        ws.give(f2);
        let mut z = ws.take(y.rows(), y.cols());
        ops::add_into(&y, &f3, &mut z);
        ws.give(y);
        ws.give(f3);
        z
    }

    /// Backward; returns `(dx, attention_bias_grad)`.
    pub fn backward(
        &mut self,
        dz: &Tensor,
        mode: &AttentionMode<'_>,
        want_bias_grad: bool,
    ) -> (Tensor, Option<BiasGrad>) {
        self.backward_ws(dz, mode, want_bias_grad, &mut Workspace::new())
    }

    /// [`TransformerBlock::backward`] through `ws`; the returned `dx` (and
    /// bias grad) belong to `ws`.
    pub fn backward_ws(
        &mut self,
        dz: &Tensor,
        mode: &AttentionMode<'_>,
        want_bias_grad: bool,
        ws: &mut Workspace,
    ) -> (Tensor, Option<BiasGrad>) {
        // z = y + drop2(ffn(ln2(y)))
        let df = self.drop2.backward_ws(dz, ws);
        let df2 = self.ffn.backward_ws(&df, ws);
        ws.give(df);
        let mut dy = self.ln2.backward_ws(&df2, ws);
        ws.give(df2);
        ops::add_inplace(&mut dy, dz);
        // y = x + drop1(attn(ln1(x)))
        let da = self.drop1.backward_ws(&dy, ws);
        let (da2, bias_grad) = self.attn.backward_ws(&da, mode, want_bias_grad, ws);
        ws.give(da);
        let mut dx = self.ln1.backward_ws(&da2, ws);
        ws.give(da2);
        ops::add_inplace(&mut dx, &dy);
        ws.give(dy);
        (dx, bias_grad)
    }

    /// Mask-draw counters of this block's dropout layers (its PRNG state).
    pub fn rng_state(&self) -> [u64; 2] {
        [self.drop1.calls(), self.drop2.calls()]
    }

    /// Restore the dropout mask-draw counters captured by
    /// [`Self::rng_state`].
    pub fn set_rng_state(&mut self, state: [u64; 2]) {
        self.drop1.set_calls(state[0]);
        self.drop2.set_calls(state[1]);
    }

    /// Mutable parameter access.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.ln1.params_mut();
        p.extend(self.attn.params_mut());
        p.extend(self.ln2.params_mut());
        p.extend(self.ffn.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_tensor::gradcheck::{max_abs_diff, numerical_grad};
    use torchgt_tensor::init;

    #[test]
    fn forward_preserves_shape() {
        let mut b = TransformerBlock::new(8, 2, 4, 0.0, 1);
        let x = init::normal(5, 8, 0.0, 1.0, 2);
        let y = b.forward(&x, &AttentionMode::Flash);
        assert_eq!(y.shape(), (5, 8));
    }

    #[test]
    fn residual_path_keeps_input_signal() {
        // Zero attention+FFN weights ⇒ block ≈ identity (plus biases).
        let mut b = TransformerBlock::new(4, 1, 2, 0.0, 3);
        for p in b.params_mut() {
            p.value.fill_zero();
        }
        let x = init::normal(3, 4, 0.0, 1.0, 4);
        let y = b.forward(&x, &AttentionMode::Flash);
        assert!(max_abs_diff(&x, &y) < 1e-5);
    }

    #[test]
    fn block_gradient_matches_numerical() {
        let mut b = TransformerBlock::new(6, 2, 2, 0.0, 5);
        b.set_training(false);
        let x = init::normal(4, 6, 0.0, 0.8, 6);
        let w = init::normal(4, 6, 0.0, 1.0, 7);
        let mode = AttentionMode::Dense { bias: None };
        let _ = b.forward(&x, &mode);
        let (dx, _) = b.backward(&w, &mode, false);
        // Probe via fresh copies (dropout off ⇒ deterministic).
        let numeric = numerical_grad(
            &x,
            |p| {
                let mut probe = TransformerBlock::new(6, 2, 2, 0.0, 5);
                probe.set_training(false);
                let y = probe.forward(p, &AttentionMode::Dense { bias: None });
                y.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-2,
        );
        assert!(max_abs_diff(&dx, &numeric) < 5e-2, "diff {}", max_abs_diff(&dx, &numeric));
    }

    #[test]
    fn dropout_only_active_in_training() {
        let mut b = TransformerBlock::new(8, 2, 4, 0.5, 9);
        let x = init::normal(5, 8, 0.0, 1.0, 10);
        b.set_training(false);
        let y1 = b.forward(&x, &AttentionMode::Flash);
        let y2 = b.forward(&x, &AttentionMode::Flash);
        assert_eq!(y1.data(), y2.data(), "eval mode must be deterministic");
        b.set_training(true);
        let y3 = b.forward(&x, &AttentionMode::Flash);
        let y4 = b.forward(&x, &AttentionMode::Flash);
        assert_ne!(y3.data(), y4.data(), "training mode must vary");
    }
}
