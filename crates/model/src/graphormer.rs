//! Graphormer (Ying et al., NeurIPS '21) — the paper's primary evaluation
//! model, in its `slim` and `large` configurations (Table IV).
//!
//! Structure per the paper's §II-A formulation:
//!
//! * Eq. 2 — input token `h_i⁰ = x_i W_in + z_deg(v_i)` (centrality
//!   encoding; undirected graphs collapse in/out degree);
//! * Eq. 3 — attention scores biased by a learnable scalar indexed by the
//!   shortest-path distance φ(v_i, v_j) (spatial encoding), shared across
//!   layers;
//! * pre-LN transformer blocks, then a linear head per token.
//!
//! The spatial-encoding bias rides on whichever attention pattern the
//! runtime selects: full `[s,s]` bias for dense, per-edge bias for sparse,
//! and — matching FlashAttention's real limitation — *dropped* for flash.

use crate::api::{ArchDescriptor, Pattern, SequenceBatch, SequenceModel};
use crate::block::TransformerBlock;
use crate::encodings::{edge_spd, DegreeEncoding, SpdBias};
use crate::mha::AttentionMode;
use torchgt_tensor::layers::Layer;
use torchgt_tensor::ops;
use torchgt_tensor::rng::derive_seed;
use torchgt_tensor::{Linear, Param, Tensor, Workspace};

/// Graphormer hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct GraphormerConfig {
    /// Input feature dimension.
    pub feat_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Transformer layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN expansion multiplier.
    pub ffn_mult: usize,
    /// Output dimension (classes, or 1 for regression).
    pub out_dim: usize,
    /// Max degree bucket for the centrality encoding.
    pub max_degree: usize,
    /// Max SPD bucket for the spatial encoding.
    pub max_spd: u8,
    /// Dropout probability.
    pub dropout: f32,
}

impl GraphormerConfig {
    /// Graphormer-slim from Table IV: 4 layers, hidden 64, 8 heads.
    pub fn slim(feat_dim: usize, out_dim: usize) -> Self {
        Self {
            feat_dim,
            hidden: 64,
            layers: 4,
            heads: 8,
            ffn_mult: 4,
            out_dim,
            max_degree: 64,
            max_spd: 8,
            dropout: 0.1,
        }
    }

    /// Graphormer-large from Table IV: 12 layers, hidden 768, 32 heads.
    pub fn large(feat_dim: usize, out_dim: usize) -> Self {
        Self {
            hidden: 768,
            layers: 12,
            heads: 32,
            ..Self::slim(feat_dim, out_dim)
        }
    }
}

/// The Graphormer model.
pub struct Graphormer {
    cfg: GraphormerConfig,
    in_proj: Linear,
    degree_enc: DegreeEncoding,
    spd_bias: SpdBias,
    blocks: Vec<TransformerBlock>,
    head: Linear,
}

impl Graphormer {
    /// Construct with the given config and seed.
    pub fn new(cfg: GraphormerConfig, seed: u64) -> Self {
        let blocks = (0..cfg.layers)
            .map(|l| {
                TransformerBlock::new(
                    cfg.hidden,
                    cfg.heads,
                    cfg.ffn_mult,
                    cfg.dropout,
                    derive_seed(seed, 100 + l as u64),
                )
            })
            .collect();
        Self {
            in_proj: Linear::new(cfg.feat_dim, cfg.hidden, derive_seed(seed, 50)),
            degree_enc: DegreeEncoding::new(cfg.max_degree, cfg.hidden, derive_seed(seed, 51)),
            spd_bias: SpdBias::new(cfg.heads, cfg.max_spd, derive_seed(seed, 52)),
            blocks,
            head: Linear::new(cfg.hidden, cfg.out_dim, derive_seed(seed, 53)),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GraphormerConfig {
        &self.cfg
    }

    /// Build the per-pass bias payload for a pattern, drawing buffers from
    /// `ws`. Returns `(dense_bias, sparse_bias)` — at most one is `Some`;
    /// [`give_bias`] returns the buffers after the pass.
    fn build_bias_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> (Option<Vec<Tensor>>, Option<Vec<Vec<f32>>>) {
        match pattern {
            Pattern::Dense => match batch.spd {
                Some(m) => {
                    (Some(self.spd_bias.dense_bias_ws(m, batch.features.rows(), ws)), None)
                }
                None => (None, None),
            },
            Pattern::Flash => (None, None), // flash cannot take a bias
            Pattern::Performer(_) => (None, None), // linear attention: no bias
            Pattern::Sparse(mask) => {
                (None, Some(self.spd_bias.sparse_bias_ws(mask, edge_spd(batch.graph), ws)))
            }
        }
    }

    /// The pre-head trunk: encoded input projection through the biased
    /// transformer stack. Shared by [`SequenceModel::forward_ws`] and
    /// [`SequenceModel::forward_hidden_ws`].
    fn trunk_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> Tensor {
        let (dense_bias, sparse_bias) = self.build_bias_ws(batch, pattern, ws);
        let mut h = self.in_proj.forward_ws(batch.features, ws);
        let deg = self.degree_enc.forward_ws(batch.graph, ws);
        ops::add_inplace(&mut h, &deg);
        ws.give(deg);
        for block in &mut self.blocks {
            let mode = match pattern {
                Pattern::Dense => AttentionMode::Dense { bias: dense_bias.as_deref() },
                Pattern::Flash => AttentionMode::Flash,
                Pattern::Sparse(mask) => {
                    AttentionMode::Sparse { mask, bias: sparse_bias.as_deref() }
                }
                Pattern::Performer(features) => {
                    AttentionMode::Performer { features, seed: 0x9E37 }
                }
            };
            let next = block.forward_ws(&h, &mode, ws);
            ws.give(h);
            h = next;
        }
        give_bias(dense_bias, sparse_bias, ws);
        h
    }
}

/// Return a bias payload built by `build_bias_ws` to the workspace.
fn give_bias(
    dense_bias: Option<Vec<Tensor>>,
    sparse_bias: Option<Vec<Vec<f32>>>,
    ws: &mut Workspace,
) {
    if let Some(ts) = dense_bias {
        for t in ts {
            ws.give(t);
        }
    }
    if let Some(bufs) = sparse_bias {
        for b in bufs {
            ws.give_buf(b);
        }
    }
}

impl SequenceModel for Graphormer {
    fn forward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>) -> Tensor {
        self.forward_ws(batch, pattern, &mut Workspace::new())
    }

    fn forward_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> Tensor {
        let h = self.trunk_ws(batch, pattern, ws);
        let logits = self.head.forward_ws(&h, ws);
        ws.give(h);
        logits
    }

    fn forward_hidden_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        ws: &mut Workspace,
    ) -> Option<Tensor> {
        Some(self.trunk_ws(batch, pattern, ws))
    }

    fn backward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>, dlogits: &Tensor) {
        self.backward_ws(batch, pattern, dlogits, &mut Workspace::new())
    }

    fn backward_ws(
        &mut self,
        batch: &SequenceBatch<'_>,
        pattern: Pattern<'_>,
        dlogits: &Tensor,
        ws: &mut Workspace,
    ) {
        // Rebuild the same bias payload (values unchanged since forward).
        let (dense_bias, sparse_bias) = self.build_bias_ws(batch, pattern, ws);
        let want_bias = dense_bias.is_some() || sparse_bias.is_some();
        let mut dh = self.head.backward_ws(dlogits, ws);
        for block in self.blocks.iter_mut().rev() {
            let mode = match pattern {
                Pattern::Dense => AttentionMode::Dense { bias: dense_bias.as_deref() },
                Pattern::Flash => AttentionMode::Flash,
                Pattern::Sparse(mask) => {
                    AttentionMode::Sparse { mask, bias: sparse_bias.as_deref() }
                }
                Pattern::Performer(features) => {
                    AttentionMode::Performer { features, seed: 0x9E37 }
                }
            };
            let (dx, bias_grad) = block.backward_ws(&dh, &mode, want_bias, ws);
            if let Some(bg) = bias_grad {
                self.spd_bias.backward_ws(bg, ws);
            }
            ws.give(dh);
            dh = dx;
        }
        // Input encodings: h0 = in_proj(x) + degree_enc.
        self.degree_enc.backward_ws(&dh, ws);
        let dx = self.in_proj.backward_ws(&dh, ws);
        ws.give(dx);
        ws.give(dh);
        give_bias(dense_bias, sparse_bias, ws);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.in_proj.params_mut();
        p.extend(self.degree_enc.params_mut());
        p.extend(self.spd_bias.params_mut());
        for b in &mut self.blocks {
            p.extend(b.params_mut());
        }
        p.extend(self.head.params_mut());
        p
    }

    fn set_training(&mut self, on: bool) {
        for b in &mut self.blocks {
            b.set_training(on);
        }
    }

    fn describe(&self) -> Option<ArchDescriptor> {
        Some(ArchDescriptor {
            kind: "graphormer",
            feat_dim: self.cfg.feat_dim,
            hidden: self.cfg.hidden,
            layers: self.cfg.layers,
            heads: self.cfg.heads,
            ffn_mult: self.cfg.ffn_mult,
            out_dim: self.cfg.out_dim,
            pe_dim: 0,
            max_degree: self.cfg.max_degree,
            max_spd: self.cfg.max_spd,
        })
    }

    fn name(&self) -> &'static str {
        if self.cfg.hidden >= 768 {
            "GPH_Large"
        } else {
            "GPH_Slim"
        }
    }

    fn rng_state(&self) -> Vec<u64> {
        self.blocks.iter().flat_map(|b| b.rng_state()).collect()
    }

    fn set_rng_state(&mut self, state: &[u64]) {
        assert_eq!(state.len(), self.blocks.len() * 2, "rng state length mismatch");
        for (b, s) in self.blocks.iter_mut().zip(state.chunks_exact(2)) {
            b.set_rng_state([s[0], s[1]]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_graph::generators::{cycle_graph, path_graph};
    use torchgt_graph::spd::spd_matrix;
    use torchgt_tensor::init;

    fn tiny() -> (Graphormer, Tensor, torchgt_graph::CsrGraph) {
        let cfg = GraphormerConfig {
            feat_dim: 6,
            hidden: 16,
            layers: 2,
            heads: 2,
            ffn_mult: 2,
            out_dim: 3,
            max_degree: 8,
            max_spd: 4,
            dropout: 0.0,
        };
        let g = cycle_graph(8);
        let x = init::normal(8, 6, 0.0, 1.0, 1);
        (Graphormer::new(cfg, 42), x, g)
    }

    #[test]
    fn forward_shapes_all_patterns() {
        let (mut m, x, g) = tiny();
        let mask = g.with_self_loops();
        let spd = spd_matrix(&g, 4);
        let batch = SequenceBatch { features: &x, graph: &g, spd: Some(&spd) };
        for pattern in
            [Pattern::Dense, Pattern::Flash, Pattern::Sparse(&mask)]
        {
            let y = m.forward(&batch, pattern);
            assert_eq!(y.shape(), (8, 3), "pattern {}", pattern.label());
        }
    }

    #[test]
    fn spd_bias_changes_dense_output() {
        let (mut m, x, g) = tiny();
        let spd = spd_matrix(&g, 4);
        let with = SequenceBatch { features: &x, graph: &g, spd: Some(&spd) };
        let without = SequenceBatch { features: &x, graph: &g, spd: None };
        m.set_training(false);
        let y1 = m.forward(&with, Pattern::Dense);
        let y2 = m.forward(&without, Pattern::Dense);
        assert_ne!(y1.data(), y2.data(), "spatial encoding must matter");
    }

    #[test]
    fn backward_populates_all_param_grads() {
        let (mut m, x, g) = tiny();
        let mask = g.with_self_loops();
        let batch = SequenceBatch { features: &x, graph: &g, spd: None };
        m.set_training(false);
        let y = m.forward(&batch, Pattern::Sparse(&mask));
        let dy = Tensor::full(y.rows(), y.cols(), 1.0);
        m.backward(&batch, Pattern::Sparse(&mask), &dy);
        let nonzero = m
            .params_mut()
            .iter()
            .filter(|p| p.grad.data().iter().any(|&v| v != 0.0))
            .count();
        let total = m.params_mut().len();
        assert!(
            nonzero >= total - 2,
            "only {nonzero}/{total} params got gradients"
        );
    }

    #[test]
    fn training_reduces_loss_on_toy_task() {
        // A 2-class toy problem on a path graph: class = (position parity
        // via features). Graphormer should fit it quickly.
        use torchgt_tensor::{Adam, Optimizer};
        let cfg = GraphormerConfig {
            feat_dim: 4,
            hidden: 16,
            layers: 2,
            heads: 2,
            ffn_mult: 2,
            out_dim: 2,
            max_degree: 4,
            max_spd: 4,
            dropout: 0.0,
        };
        let g = path_graph(16);
        let mask = g.with_self_loops();
        let mut feats = Tensor::zeros(16, 4);
        let labels: Vec<u32> = (0..16).map(|v| (v % 2) as u32).collect();
        for v in 0..16 {
            feats.set(v, (v % 2) * 2, 1.0);
            feats.set(v, 3, (v as f32) / 16.0);
        }
        let mut model = Graphormer::new(cfg, 7);
        model.set_training(true);
        let mut opt = Adam::with_lr(3e-3);
        let batch = SequenceBatch { features: &feats, graph: &g, spd: None };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let logits = model.forward(&batch, Pattern::Sparse(&mask));
            let (loss, dlogits) = crate::loss::softmax_cross_entropy(&logits, &labels);
            model.backward(&batch, Pattern::Sparse(&mask), &dlogits);
            opt.step(&mut model.params_mut());
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(
            last < 0.5 * first.unwrap(),
            "loss did not drop: {first:?} → {last}"
        );
    }

    #[test]
    fn names_follow_table_iv() {
        let slim = Graphormer::new(GraphormerConfig::slim(8, 2), 0);
        let large = Graphormer::new(GraphormerConfig::large(8, 2), 0);
        assert_eq!(slim.name(), "GPH_Slim");
        assert_eq!(large.name(), "GPH_Large");
    }
}
