//! Set-associative cache simulator and GPU-kernel occupancy model.
//!
//! The Auto Tuner's choice of sub-block dimension `d_b` (paper §III-D,
//! Figure 6) balances two opposing effects:
//!
//! * **cache locality** — larger sub-blocks reuse the same K/V rows more, so
//!   L1/L2 hit rates *rise* with `d_b`;
//! * **workload balance** — larger sub-blocks mean fewer thread blocks for
//!   the same number of edges, so SM occupancy *falls* with `d_b`.
//!
//! The hit rates here come from an actual LRU cache simulation of the
//! sub-block indexing kernel's address trace, not a curve fit; only the
//! occupancy model is analytic.

use crate::gpu::GpuSpec;

/// A set-associative LRU cache.
#[derive(Clone, Debug)]
pub struct Cache {
    line: usize,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps, larger = more recent.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    accesses: u64,
}

impl Cache {
    /// Construct with total `capacity` bytes, `line` bytes per line and
    /// `ways` associativity.
    pub fn new(capacity: usize, line: usize, ways: usize) -> Self {
        assert!(line.is_power_of_two() && capacity >= line * ways);
        let sets = (capacity / line / ways).max(1);
        Self {
            line,
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            hits: 0,
            accesses: 0,
        }
    }

    /// Access `addr`; returns true on hit. Misses fill the line (LRU
    /// eviction).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let line_addr = addr / self.line as u64;
        let set = (line_addr as usize) % self.sets;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(way) = slots.iter().position(|&t| t == line_addr) {
            self.stamps[base + way] = self.clock;
            self.hits += 1;
            return true;
        }
        // Miss: evict LRU way.
        let victim = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways >= 1");
        self.tags[base + victim] = line_addr;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

/// Result of simulating the sub-block indexing kernel at one `d_b`.
#[derive(Clone, Copy, Debug)]
pub struct KernelProfile {
    /// Sub-block dimension simulated.
    pub db: usize,
    /// L1 hit rate (0..1).
    pub l1_hit: f64,
    /// L2 hit rate among L1 misses (0..1).
    pub l2_hit: f64,
    /// SM workload-balance occupancy (0..1).
    pub occupancy: f64,
    /// Relative kernel throughput (arbitrary units; normalise externally).
    pub throughput: f64,
}

/// Memory latencies in cycles used to score a profile (typical NVIDIA
/// figures: L1 ≈ 30, L2 ≈ 200, HBM ≈ 500).
const LAT_L1: f64 = 30.0;
const LAT_L2: f64 = 200.0;
const LAT_MEM: f64 = 500.0;

/// Simulate the cluster-sparse indexing kernel for `edges` edges packed into
/// `d_b × d_b` sub-blocks over a hidden dimension `d`, on the given GPU.
///
/// The kernel reads one Q row and one K row per computed pair (row-major
/// `f32`), sub-block by sub-block; sub-block anchors stride through the
/// cluster so distinct blocks touch disjoint regions (worst case for
/// inter-block locality, as in the paper's skewed graphs).
pub fn simulate_subblock_kernel(spec: &GpuSpec, edges: usize, db: usize, d: usize) -> KernelProfile {
    let db = db.max(1);
    let mut l1 = Cache::new(spec.l1_bytes, 128, 4);
    let mut l2 = Cache::new(spec.l2_bytes, 128, 8);
    let mut l2_accesses = 0u64;
    let mut l2_hits = 0u64;
    let row_bytes = (d * 4) as u64;
    let lines_per_row = (row_bytes as usize).div_ceil(128) as u64;
    let blocks = edges.div_ceil(db * db);
    // Deterministic scattered anchors: a multiplicative-hash walk.
    let mut anchor = 0x9E3779B9u64;
    let span = 1u64 << 24; // 16M-row address space (long sequence)
    for _ in 0..blocks {
        anchor = anchor.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r0 = anchor % span;
        let c0 = (anchor >> 24) % span;
        for dr in 0..db as u64 {
            let q_base = (r0 + dr) * row_bytes;
            for l in 0..lines_per_row {
                let addr = q_base + l * 128;
                if !l1.access(addr) {
                    l2_accesses += 1;
                    if l2.access(addr) {
                        l2_hits += 1;
                    }
                }
            }
            for dc in 0..db as u64 {
                let k_base = (c0 + dc) * row_bytes + (1 << 40); // disjoint K region
                for l in 0..lines_per_row {
                    let addr = k_base + l * 128;
                    if !l1.access(addr) {
                        l2_accesses += 1;
                        if l2.access(addr) {
                            l2_hits += 1;
                        }
                    }
                }
            }
        }
    }
    let l1_hit = l1.hit_rate();
    let l2_hit = if l2_accesses > 0 { l2_hits as f64 / l2_accesses as f64 } else { 0.0 };
    let occupancy = load_balance_occupancy(spec, edges, db);
    // Average access latency (cycles) given the hierarchy hit rates.
    let avg_lat = l1_hit * LAT_L1 + (1.0 - l1_hit) * (l2_hit * LAT_L2 + (1.0 - l2_hit) * LAT_MEM);
    // Throughput: work per unit time ∝ occupancy / latency, per pair.
    let throughput = occupancy / avg_lat;
    KernelProfile { db, l1_hit, l2_hit, occupancy, throughput }
}

/// Workload-balance occupancy: with `B = ⌈edges / d_b²⌉` thread blocks and a
/// GPU that wants several blocks resident per SM, occupancy saturates at 1
/// for many small blocks and collapses when a few huge blocks cannot fill
/// the SMs (the paper's Figure 6(a) downward trend).
pub fn load_balance_occupancy(spec: &GpuSpec, edges: usize, db: usize) -> f64 {
    let blocks = edges.div_ceil(db * db).max(1);
    let wanted = spec.sm_count * 4; // healthy residency target
    (blocks as f64 / wanted as f64).min(1.0)
}

/// Pick the throughput-optimal `d_b` over the paper's candidate range
/// (powers of two from 2 to 128) by simulation — the Auto Tuner's
/// "ideal d_b considers both load balance and cache hit rate".
pub fn tune_db(spec: &GpuSpec, edges: usize, d: usize) -> usize {
    let mut best = (2, f64::MIN);
    for db in [2usize, 4, 8, 16, 32, 64, 128] {
        let p = simulate_subblock_kernel(spec, edges, db, d);
        if p.throughput > best.1 {
            best = (db, p.throughput);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_basic_hit_miss() {
        let mut c = Cache::new(1024, 64, 2);
        assert!(!c.access(0));
        assert!(c.access(4)); // same line
        assert!(!c.access(64)); // next line
        assert!(c.access(0)); // still resident
        assert_eq!(c.accesses(), 4);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_lru_eviction() {
        // 2 ways, 1 set of interest: three distinct lines mapping to set 0.
        let mut c = Cache::new(128, 64, 2); // 1 set, 2 ways
        assert!(!c.access(0));
        assert!(!c.access(64));
        assert!(!c.access(128)); // evicts line 0 (LRU)
        assert!(!c.access(0)); // miss: was evicted
        assert!(c.access(128)); // recent line survives
    }

    #[test]
    fn hit_rates_rise_with_db() {
        let spec = GpuSpec::rtx3090();
        let small = simulate_subblock_kernel(&spec, 50_000, 2, 64);
        let large = simulate_subblock_kernel(&spec, 50_000, 32, 64);
        assert!(
            large.l1_hit > small.l1_hit,
            "L1 {} vs {}",
            large.l1_hit,
            small.l1_hit
        );
    }

    #[test]
    fn occupancy_falls_with_db() {
        let spec = GpuSpec::rtx3090();
        let o2 = load_balance_occupancy(&spec, 50_000, 2);
        let o64 = load_balance_occupancy(&spec, 50_000, 64);
        assert!(o2 > o64);
        assert!(o2 <= 1.0 && o64 > 0.0);
    }

    #[test]
    fn optimal_db_is_interior() {
        // The paper fits d_b = 16 on a 3090 with d = 64: the optimum must be
        // neither the smallest nor the largest candidate.
        let spec = GpuSpec::rtx3090();
        let db = tune_db(&spec, 200_000, 64);
        assert!((4..=64).contains(&db), "db = {db}");
    }

    #[test]
    fn kernel_profile_fields_are_sane() {
        let p = simulate_subblock_kernel(&GpuSpec::a100(), 10_000, 16, 64);
        assert!((0.0..=1.0).contains(&p.l1_hit));
        assert!((0.0..=1.0).contains(&p.l2_hit));
        assert!((0.0..=1.0).contains(&p.occupancy));
        assert!(p.throughput > 0.0);
    }
}
