//! Epoch-time composition: turns a training configuration plus measured
//! layout statistics into simulated per-epoch wall-clock on the paper's
//! hardware. This is what the Table V / VI / Figure 7 / Figure 9 harnesses
//! report.

use crate::gpu::GpuSpec;
use crate::kernels;
use crate::memory::{fits, ModelShape};
use torchgt_comm::{ClusterTopology, InterconnectModel};
use torchgt_sparse::{AccessProfile, LayoutKind};

/// A fully-specified training step for the cost model.
#[derive(Clone, Debug)]
pub struct StepSpec {
    /// Device model.
    pub gpu: GpuSpec,
    /// Cluster layout (world size = parallelism degree `P`).
    pub topology: ClusterTopology,
    /// Model shape.
    pub shape: ModelShape,
    /// Attention layout family.
    pub layout: LayoutKind,
    /// Global sequence length `S`.
    pub seq_len: usize,
    /// Access profile of the attention pattern (ignored for dense/flash).
    pub profile: AccessProfile,
}

torchgt_compat::json_struct! {
    /// Simulated breakdown of one training iteration.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct IterationCost {
        /// Attention forward+backward seconds.
        pub attention: f64,
        /// Projections + FFN + layernorm seconds.
        pub other_compute: f64,
        /// Collective-communication seconds.
        pub comm: f64,
        /// Optimizer step seconds.
        pub optimizer: f64,
        /// True when the step exceeds device memory (the paper's OOM cells).
        pub oom: bool,
    }
}

impl IterationCost {
    /// Total iteration seconds.
    pub fn total(&self) -> f64 {
        self.attention + self.other_compute + self.comm + self.optimizer
    }

    /// Fraction of the iteration spent in attention (the paper's Figure 2
    /// shows > 80% for flash on long sequences).
    pub fn attention_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.attention / t
        } else {
            0.0
        }
    }
}

/// Simulated all-to-all volume of one training iteration, for recorders
/// attached to cost-model (non-thread-backed) trainers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllToAllTraffic {
    /// Relayout invocations per iteration.
    pub ops: u64,
    /// Logical message bytes across all invocations.
    pub payload_bytes: u64,
    /// Bytes that cross an interconnect link (`payload · (P−1)/P`; zero on a
    /// single device).
    pub wire_bytes: u64,
}

/// All-to-all traffic implied by one iteration of the §III-C relayout
/// pipeline: 4 all-to-alls per attention call (Q, K, V in + output back),
/// mirrored in the backward pass — 8 per layer, each moving the full
/// `S × d` activation in fp32.
pub fn all_to_all_traffic(spec: &StepSpec) -> AllToAllTraffic {
    let p = spec.topology.world_size().max(1) as u64;
    let ops = 8 * spec.shape.layers as u64;
    let payload_bytes = ops * (spec.seq_len * spec.shape.hidden * 4) as u64;
    AllToAllTraffic { ops, payload_bytes, wire_bytes: payload_bytes * (p - 1) / p }
}

/// Estimate one training iteration (forward + backward + step).
pub fn iteration_cost(spec: &StepSpec) -> IterationCost {
    iteration_cost_with_fabric(spec, &spec.topology)
}

/// [`iteration_cost`] against an arbitrary [`InterconnectModel`] — the
/// hook that lets analyses price a hypothetical or measured fabric
/// instead of the spec's [`ClusterTopology`]. Passing `&spec.topology`
/// reproduces [`iteration_cost`] exactly.
pub fn iteration_cost_with_fabric(spec: &StepSpec, fabric: &dyn InterconnectModel) -> IterationCost {
    let p = fabric.world_size().max(1);
    let gpu = &spec.gpu;
    let d = spec.shape.hidden;
    let l = spec.shape.layers as f64;
    let s_local = spec.seq_len.div_ceil(p);

    let oom = !fits(gpu, &spec.shape, spec.layout, spec.seq_len, spec.profile.nnz, p);

    // Attention: per layer, forward + backward. Sequence parallelism gives
    // each rank the full sequence but 1/P of the heads (all-to-all layout),
    // so per-rank attention work is 1/P of the global total.
    let attn_fwd = match spec.layout {
        LayoutKind::Dense => kernels::dense_attention_fwd(gpu, spec.seq_len, d) / p as f64,
        LayoutKind::Flash => kernels::flash_attention_fwd(gpu, spec.seq_len, d) / p as f64,
        LayoutKind::Topology | LayoutKind::Clustered => {
            kernels::sparse_attention_fwd(gpu, &spec.profile, d) / p as f64
        }
        LayoutKind::ClusterSparse => {
            kernels::cluster_sparse_attention_fwd(gpu, &spec.profile, d) / p as f64
        }
    };
    let attn_bwd = match spec.layout {
        LayoutKind::Dense => kernels::dense_attention_bwd(gpu, spec.seq_len, d) / p as f64,
        LayoutKind::Flash => kernels::flash_attention_bwd(gpu, spec.seq_len, d) / p as f64,
        LayoutKind::Topology | LayoutKind::Clustered => {
            kernels::sparse_attention_bwd(gpu, &spec.profile, d) / p as f64
        }
        LayoutKind::ClusterSparse => {
            kernels::cluster_sparse_attention_bwd(gpu, &spec.profile, d) / p as f64
        }
    };
    let attention = l * (attn_fwd + attn_bwd);

    // Everything else operates on the local S/P shard; backward ≈ 2× forward.
    let per_layer_fwd = kernels::projections_fwd(gpu, s_local, d)
        + kernels::ffn_fwd(gpu, s_local, d)
        + kernels::elementwise(gpu, s_local, d, 6.0);
    let other_compute = l * per_layer_fwd * 3.0;

    // Cluster-aware graph parallelism: two all-to-alls per layer, total
    // message size 4·S·d (3 before attention for Q,K,V + 1 after), i.e.
    // 4·S·d/P bytes per rank — §III-C. Backward mirrors them. NCCL overlaps
    // most of this traffic with the surrounding compute streams; 80% overlap
    // reproduces the paper's ~1.7× throughput per server doubling (Fig. 7a).
    const COMM_EXPOSED: f64 = 0.2;
    let comm = if p > 1 {
        let bytes_per_rank = 4 * spec.seq_len.div_ceil(p) * d * 4;
        COMM_EXPOSED * l * 2.0 * 2.0 * fabric.all_to_all_time(bytes_per_rank)
    } else {
        0.0
    };

    // Adam: ~4 passes over parameters + a gradient all-reduce.
    let param_bytes = (spec.shape.param_count() * 4) as f64;
    let mut optimizer = gpu.stream_time(4.0 * param_bytes);
    if p > 1 {
        optimizer += fabric.all_reduce_time(param_bytes as usize);
    }

    IterationCost { attention, other_compute, comm, optimizer, oom }
}

torchgt_compat::json_struct! {
    /// Iteration estimate with handle-based async collectives: the exposed
    /// relayout traffic rides behind independent shard-local compute, so
    /// each overlappable phase costs `max(compute, comm)` instead of the
    /// sum.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OverlapIterationCost {
        /// The synchronous phase breakdown this estimate overlaps.
        pub sync: IterationCost,
        /// Exposed-communication seconds hidden behind compute.
        pub hidden_comm: f64,
        /// Critical-path seconds of the overlapped iteration.
        pub total: f64,
    }
}

/// Overlap-aware [`iteration_cost`]: attention and the optimizer
/// serialize with the relayouts they depend on, but the projections/FFN
/// phase is independent of the in-flight all-to-alls, so the overlapped
/// critical path charges `max(other_compute, comm)` for that phase.
/// Since `max(a, b) ≤ a + b`, the overlapped total never exceeds the
/// synchronous one.
pub fn iteration_cost_overlap(spec: &StepSpec) -> OverlapIterationCost {
    iteration_cost_overlap_with(spec, &spec.topology)
}

/// [`iteration_cost_overlap`] against an arbitrary [`InterconnectModel`].
pub fn iteration_cost_overlap_with(
    spec: &StepSpec,
    fabric: &dyn InterconnectModel,
) -> OverlapIterationCost {
    let sync = iteration_cost_with_fabric(spec, fabric);
    let overlapped = sync.other_compute.max(sync.comm);
    let hidden_comm = (sync.other_compute + sync.comm) - overlapped;
    let total = sync.attention + sync.optimizer + overlapped;
    OverlapIterationCost { sync, hidden_comm, total }
}

/// Simulated epoch time: `iterations × iteration`, with `tokens_total` nodes
/// visited per epoch in sequences of `seq_len`.
pub fn epoch_cost(spec: &StepSpec, tokens_total: usize) -> (IterationCost, f64) {
    let it = iteration_cost(spec);
    let iterations = tokens_total.div_ceil(spec.seq_len.max(1)).max(1);
    (it, it.total() * iterations as f64)
}

/// Training throughput in tokens (graph nodes) per second — Figure 9(b)'s
/// "samples per second".
pub fn throughput_tokens_per_sec(spec: &StepSpec) -> f64 {
    let it = iteration_cost(spec);
    if it.oom {
        return 0.0;
    }
    spec.seq_len as f64 / it.total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_sparse::dense_profile;

    fn sparse_profile(nnz: usize, run: f64) -> AccessProfile {
        AccessProfile {
            nnz,
            runs: ((nnz as f64 / run) as usize).max(1),
            avg_run_len: run,
            isolated: 0,
            active_rows: 1,
        }
    }

    fn base_spec(layout: LayoutKind, s: usize, profile: AccessProfile) -> StepSpec {
        StepSpec {
            gpu: GpuSpec::rtx3090(),
            topology: ClusterTopology::rtx3090(1),
            shape: ModelShape::graphormer_slim(),
            layout,
            seq_len: s,
            profile,
        }
    }

    #[test]
    fn figure2_attention_dominates_flash_iterations() {
        // Figure 2: attention > 80% of iteration time for flash on 64K–512K.
        for s in [64usize << 10, 256 << 10, 512 << 10] {
            let spec = base_spec(LayoutKind::Flash, s, dense_profile(0));
            let it = iteration_cost(&spec);
            assert!(
                it.attention_fraction() > 0.8,
                "S={s}: fraction {}",
                it.attention_fraction()
            );
        }
    }

    #[test]
    fn torchgt_layout_breaks_the_bottleneck() {
        let s = 256 << 10;
        let flash = iteration_cost(&base_spec(LayoutKind::Flash, s, dense_profile(0)));
        let tgt = iteration_cost(&base_spec(
            LayoutKind::ClusterSparse,
            s,
            sparse_profile(s * 25, 12.0),
        ));
        let speedup = flash.total() / tgt.total();
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    #[test]
    fn raw_dense_ooms_at_table5_scale() {
        let s = 256 << 10;
        let it = iteration_cost(&base_spec(LayoutKind::Dense, s, dense_profile(0)));
        assert!(it.oom);
    }

    #[test]
    fn epoch_cost_scales_with_tokens() {
        let spec = base_spec(LayoutKind::Flash, 64 << 10, dense_profile(0));
        let (_, t1) = epoch_cost(&spec, 64 << 10);
        let (_, t4) = epoch_cost(&spec, 256 << 10);
        assert!((t4 / t1 - 4.0).abs() < 0.01);
    }

    #[test]
    fn all_to_all_traffic_scales_with_world() {
        let spec = base_spec(LayoutKind::Flash, 4096, dense_profile(0));
        let t = all_to_all_traffic(&spec);
        let l = spec.shape.layers as u64;
        assert_eq!(t.ops, 8 * l);
        assert_eq!(t.payload_bytes, 8 * l * (4096 * spec.shape.hidden * 4) as u64);
        // rtx3090(1) is one 8-GPU server: 7/8 of the payload crosses links.
        assert_eq!(t.wire_bytes, t.payload_bytes * 7 / 8);
        let mut single = spec;
        single.topology = ClusterTopology { gpus_per_server: 1, servers: 1, ..single.topology };
        assert_eq!(all_to_all_traffic(&single).wire_bytes, 0);
    }

    #[test]
    fn multi_server_comm_appears() {
        let mut spec = base_spec(LayoutKind::ClusterSparse, 1 << 20, sparse_profile(1 << 24, 8.0));
        spec.topology = ClusterTopology::a100(2);
        spec.gpu = GpuSpec::a100();
        let it = iteration_cost(&spec);
        assert!(it.comm > 0.0);
    }

    #[test]
    fn figure7_doubling_gpus_speeds_up_torchgt() {
        // Fixed S = 1024K on A100 servers: 2× servers ⇒ ≥1.5× throughput.
        let make = |servers| {
            let mut s = base_spec(
                LayoutKind::ClusterSparse,
                1 << 20,
                sparse_profile((1usize << 20) * 25, 12.0),
            );
            s.gpu = GpuSpec::a100();
            s.topology = ClusterTopology::a100(servers);
            s
        };
        let t1 = iteration_cost(&make(1)).total();
        let t2 = iteration_cost(&make(2)).total();
        let ratio = t1 / t2;
        assert!(ratio > 1.5, "scaling ratio {ratio}");
    }

    #[test]
    fn overlap_never_increases_modeled_cost() {
        // Compute-dominant, comm-dominant and single-device specs alike:
        // the overlapped critical path is bounded by the sync total and can
        // only hide exposed comm, never attention or the optimizer.
        let mut specs = vec![
            base_spec(LayoutKind::Flash, 64 << 10, dense_profile(0)),
            base_spec(LayoutKind::ClusterSparse, 1 << 20, sparse_profile(1 << 24, 8.0)),
        ];
        let mut multi = base_spec(LayoutKind::Flash, 1 << 18, dense_profile(0));
        multi.gpu = GpuSpec::a100();
        multi.topology = ClusterTopology::a100(4);
        specs.push(multi);
        for spec in &specs {
            let sync = iteration_cost(spec);
            let ov = iteration_cost_overlap(spec);
            assert!(ov.total <= sync.total() + 1e-12, "overlap {} > sync {}", ov.total, sync.total());
            assert!(ov.total + ov.hidden_comm - sync.total() < 1e-9);
            assert!(ov.hidden_comm <= sync.comm + 1e-12);
            assert!(ov.total >= sync.attention + sync.optimizer);
        }
    }

    #[test]
    fn overlap_single_device_is_a_noop() {
        let mut spec = base_spec(LayoutKind::Flash, 4096, dense_profile(0));
        spec.topology = ClusterTopology { gpus_per_server: 1, servers: 1, ..spec.topology };
        let ov = iteration_cost_overlap(&spec);
        assert_eq!(ov.sync.comm, 0.0);
        assert_eq!(ov.hidden_comm, 0.0);
        // Same terms, different association order: equal up to rounding.
        assert!((ov.total - iteration_cost(&spec).total()).abs() < 1e-12);
    }

    #[test]
    fn fabric_hook_reprices_the_interconnect() {
        // A fabric hook that claims free links should zero out both the
        // exposed comm and the optimizer's all-reduce contribution, while
        // `&spec.topology` reproduces `iteration_cost` bit-for-bit.
        struct FreeFabric(usize);
        impl InterconnectModel for FreeFabric {
            fn world_size(&self) -> usize {
                self.0
            }
            fn all_to_all_time(&self, _: usize) -> f64 {
                0.0
            }
            fn all_gather_time(&self, _: usize) -> f64 {
                0.0
            }
            fn all_reduce_time(&self, _: usize) -> f64 {
                0.0
            }
            fn reduce_scatter_time(&self, _: usize) -> f64 {
                0.0
            }
        }
        let mut spec = base_spec(LayoutKind::Flash, 1 << 18, dense_profile(0));
        spec.gpu = GpuSpec::a100();
        spec.topology = ClusterTopology::a100(2);
        let sync = iteration_cost(&spec);
        let via_hook = iteration_cost_with_fabric(&spec, &spec.topology);
        assert_eq!(sync.total().to_bits(), via_hook.total().to_bits());
        let free = iteration_cost_with_fabric(&spec, &FreeFabric(spec.topology.world_size()));
        assert_eq!(free.comm, 0.0);
        assert!(free.optimizer < sync.optimizer);
        assert_eq!(iteration_cost_overlap_with(&spec, &FreeFabric(16)).hidden_comm, 0.0);
    }
}
