//! # torchgt-perf
//!
//! GPU performance model for the TorchGT reproduction. The paper's absolute
//! numbers come from RTX 3090 / A100 clusters that are not available here;
//! this crate converts the *measured* layout statistics of the Rust
//! implementation (attention-pattern nonzeros, run lengths, communication
//! volumes) into simulated wall-clock on the published hardware specs:
//!
//! * [`gpu`] — device specifications (3090, A100) and the Auto Tuner's `k`
//!   formula;
//! * [`cache`] — a set-associative LRU cache simulator driving the sub-block
//!   size (`d_b`) tuning of Figure 6;
//! * [`kernels`] — roofline-style kernel time models (dense / flash /
//!   sparse / cluster-sparse attention, GEMM, FFN);
//! * [`memory`] — activation-memory estimation, OOM detection, maximum
//!   sequence length (Figure 9(a));
//! * [`epoch`] — per-iteration and per-epoch composition (Tables V–VI,
//!   Figures 2, 7, 9(b), 12).

pub mod cache;
pub mod epoch;
pub mod gpu;
pub mod kernels;
pub mod memory;

pub use cache::{simulate_subblock_kernel, tune_db, Cache, KernelProfile};
pub use epoch::{
    all_to_all_traffic, epoch_cost, iteration_cost, iteration_cost_overlap,
    iteration_cost_overlap_with, iteration_cost_with_fabric, throughput_tokens_per_sec,
    AllToAllTraffic, IterationCost, OverlapIterationCost, StepSpec,
};
pub use gpu::GpuSpec;
pub use memory::{fits, max_seq_len, memory_per_gpu, ModelShape};
