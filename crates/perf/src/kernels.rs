//! Analytic kernel time models.
//!
//! Converts attention/FFN workloads into simulated GPU time using the
//! roofline style `max(compute, memory)` with efficiency factors per kernel
//! family. Constants are calibrated against the paper's published
//! measurements (Figure 2 breakdowns, Table II backward times, Figure 12
//! attention-kernel sweeps) — see the tests at the bottom of this file for
//! the reproduced relationships.

use crate::gpu::GpuSpec;
use torchgt_sparse::AccessProfile;

/// GEMM efficiency (fraction of peak FLOPs a large dense matmul achieves).
const EFF_GEMM: f64 = 0.60;
/// Plain (unfused) dense attention efficiency — IO-bound Softmax/Dropout
/// between the two matmuls drags it far below GEMM speed.
const EFF_DENSE_ATTN: f64 = 0.25;
/// FlashAttention efficiency — kernel fusion removes the IO-bound steps.
const EFF_FLASH: f64 = 0.70;
/// Coalescing penalty: a gather run of length `r` reaches roughly
/// `r / (r + GATHER_PENALTY)` of peak bandwidth.
const GATHER_PENALTY: f64 = 7.0;
/// Backward pass of scatter/gather kernels pays atomics on top: the paper's
/// Table II shows topology-pattern backward up to 33× slower than dense.
const ATOMIC_BACKWARD_FACTOR: f64 = 2.0;

/// Time for a dense `m×k · k×n` GEMM.
pub fn gemm_time(spec: &GpuSpec, m: usize, n: usize, k: usize) -> f64 {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let bytes = 4.0 * (m * k + k * n + m * n) as f64;
    spec.compute_time(flops, EFF_GEMM).max(spec.stream_time(bytes))
}

/// Forward time of standard (materialised-scores) dense attention over a
/// sequence of `s` tokens with total hidden `d` split over `heads`.
pub fn dense_attention_fwd(spec: &GpuSpec, s: usize, d: usize) -> f64 {
    let s = s as f64;
    let d = d as f64;
    // QKᵀ and AV: 2 × (2 s² d) FLOPs regardless of head split.
    let flops = 4.0 * s * s * d;
    // Materialised score matrix round-trips memory ~3× (write scores,
    // softmax read+write, AV read).
    let bytes = 3.0 * 4.0 * s * s;
    spec.compute_time(flops, EFF_DENSE_ATTN).max(spec.stream_time(bytes))
}

/// Forward time of FlashAttention (fused, no `s²` traffic). FlashAttention
/// only supports FP16/BF16, so it runs on the tensor cores — this is why
/// the paper's A100 gaps (Table VI) are narrower than the 3090 ones.
pub fn flash_attention_fwd(spec: &GpuSpec, s: usize, d: usize) -> f64 {
    let s_f = s as f64;
    let d_f = d as f64;
    let flops = 4.0 * s_f * s_f * d_f;
    let bytes = 8.0 * 4.0 * s_f * d_f; // Q,K,V read + O write, tiled
    // Tensor-core utilisation improves with the hidden dimension (larger
    // MMA tiles) — the reason the paper's Fig. 12(b) finds flash "more
    // tolerant of larger model sizes" than of longer sequences.
    let eff = EFF_FLASH * (0.55 + 0.45 * (d_f / 256.0).min(1.0));
    spec.tensor_compute_time(flops, eff).max(spec.stream_time(bytes))
}

/// Forward time of sparse attention over an arbitrary access profile
/// (topology-induced or cluster-sparse — the profile's run statistics carry
/// the difference).
pub fn sparse_attention_fwd(spec: &GpuSpec, profile: &AccessProfile, d: usize) -> f64 {
    if profile.nnz == 0 {
        return 0.0;
    }
    let nnz = profile.nnz as f64;
    let d = d as f64;
    let flops = 4.0 * nnz * d;
    // Every attended pair gathers one K row and one V row; coalescing
    // efficiency follows the mean run length.
    let run = profile.avg_run_len.max(1.0);
    let coalesce = run / (run + GATHER_PENALTY);
    let bytes = nnz * d * 4.0 * 2.0 / coalesce;
    spec.compute_time(flops, EFF_GEMM).max(spec.stream_time(bytes))
}

/// Backward time of sparse attention (gather becomes scatter-add ⇒ atomic
/// penalty).
pub fn sparse_attention_bwd(spec: &GpuSpec, profile: &AccessProfile, d: usize) -> f64 {
    2.0 * ATOMIC_BACKWARD_FACTOR * sparse_attention_fwd(spec, profile, d)
}

/// Cache-residency bonus of the cluster-sparse layout: the Auto Tuner sizes
/// clusters so a cluster's K/V working set stays L2-resident and sub-blocks
/// stay L1-resident (the measured ~88% L1 hit rate at `d_b = 16` in the
/// Figure 6 simulation), which multiplies the effective gather bandwidth.
const CLUSTER_CACHE_BONUS: f64 = 4.0;

/// Forward time of cluster-sparse attention (after Elastic Computation
/// Reformation): sparse-pattern FLOPs with cache-boosted gathers.
pub fn cluster_sparse_attention_fwd(spec: &GpuSpec, profile: &AccessProfile, d: usize) -> f64 {
    if profile.nnz == 0 {
        return 0.0;
    }
    let nnz = profile.nnz as f64;
    let d = d as f64;
    let flops = 4.0 * nnz * d;
    let run = profile.avg_run_len.max(1.0);
    let coalesce = (run / (run + GATHER_PENALTY) * CLUSTER_CACHE_BONUS).min(1.0);
    let bytes = nnz * d * 4.0 * 2.0 / coalesce;
    spec.compute_time(flops, EFF_GEMM).max(spec.stream_time(bytes))
}

/// Backward of cluster-sparse attention: sub-block scatter-adds coalesce, so
/// only the plain 2× backward factor applies (no atomic penalty).
pub fn cluster_sparse_attention_bwd(spec: &GpuSpec, profile: &AccessProfile, d: usize) -> f64 {
    2.0 * cluster_sparse_attention_fwd(spec, profile, d)
}

/// Backward time of dense attention (≈2× forward FLOPs, same regime).
pub fn dense_attention_bwd(spec: &GpuSpec, s: usize, d: usize) -> f64 {
    2.0 * dense_attention_fwd(spec, s, d)
}

/// Backward time of FlashAttention (recomputation ⇒ ≈2.5× forward).
pub fn flash_attention_bwd(spec: &GpuSpec, s: usize, d: usize) -> f64 {
    2.5 * flash_attention_fwd(spec, s, d)
}

/// Forward time of a transformer FFN block (`d → 4d → d`).
pub fn ffn_fwd(spec: &GpuSpec, s: usize, d: usize) -> f64 {
    gemm_time(spec, s, 4 * d, d) + gemm_time(spec, s, d, 4 * d)
}

/// Forward time of the QKV + output projections (4 `d×d` GEMMs).
pub fn projections_fwd(spec: &GpuSpec, s: usize, d: usize) -> f64 {
    4.0 * gemm_time(spec, s, d, d)
}

/// Memory-bound elementwise/LayerNorm time over `s×d` activations,
/// `passes` round-trips.
pub fn elementwise(spec: &GpuSpec, s: usize, d: usize, passes: f64) -> f64 {
    spec.stream_time(passes * 4.0 * (s * d) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_sparse::dense_profile;

    fn sparse_profile(nnz: usize, run: f64) -> AccessProfile {
        AccessProfile {
            nnz,
            runs: (nnz as f64 / run) as usize,
            avg_run_len: run,
            isolated: 0,
            active_rows: 1,
        }
    }

    #[test]
    fn flash_beats_unfused_dense() {
        let g = GpuSpec::rtx3090();
        for s in [4096usize, 65_536, 262_144] {
            assert!(flash_attention_fwd(&g, s, 64) < dense_attention_fwd(&g, s, 64));
        }
    }

    #[test]
    fn attention_grows_quadratically_with_s() {
        // Figure 12(a): FlashAttention time grows ~4× per sequence doubling.
        let g = GpuSpec::rtx3090();
        let t1 = flash_attention_fwd(&g, 128 << 10, 64);
        let t2 = flash_attention_fwd(&g, 256 << 10, 64);
        assert!((t2 / t1 - 4.0).abs() < 0.5, "ratio {}", t2 / t1);
    }

    #[test]
    fn sparse_beats_flash_on_sparse_graphs() {
        // ogbn-arxiv-like: S = 64K, E ≈ 30 S nnz ⇒ sparse wins even with
        // poor coalescing (the paper's Fig. 12a shows a modest gap at small
        // S that widens with the sequence).
        let g = GpuSpec::rtx3090();
        let s = 64 << 10;
        let profile = sparse_profile(30 * s, 1.5);
        assert!(sparse_attention_fwd(&g, &profile, 64) < flash_attention_fwd(&g, s, 64));
        assert!(
            cluster_sparse_attention_fwd(&g, &profile, 64)
                < flash_attention_fwd(&g, s, 64) / 4.0
        );
    }

    #[test]
    fn figure12_gap_widens_to_two_orders_at_512k() {
        // Fig. 12(a): at S = 512K TorchGT's attention kernel is up to ~100×
        // faster than FlashAttention; the cluster-sparse kernel must land in
        // that regime.
        let g = GpuSpec::rtx3090();
        let s = 512usize << 10;
        let cluster = sparse_profile(30 * s, 4.0);
        let ratio =
            flash_attention_fwd(&g, s, 64) / cluster_sparse_attention_fwd(&g, &cluster, 64);
        assert!(ratio > 40.0 && ratio < 500.0, "ratio {ratio}");
    }

    #[test]
    fn cluster_cache_bonus_never_exceeds_peak() {
        // Fully contiguous runs already coalesce; the cache bonus must not
        // price above-peak bandwidth.
        let g = GpuSpec::a100();
        let contiguous = sparse_profile(1_000_000, 512.0);
        let plain = sparse_attention_fwd(&g, &contiguous, 64);
        let boosted = cluster_sparse_attention_fwd(&g, &contiguous, 64);
        assert!(boosted >= plain * 0.9, "bonus must clamp at peak bandwidth");
    }

    #[test]
    fn irregular_backward_pays_table2_style_penalty() {
        // Table II: topology backward ≫ dense backward *per nonzero* — the
        // irregular pattern wastes bandwidth. Compare equal-nnz workloads.
        let g = GpuSpec::rtx3090();
        let nnz = 1_000_000;
        let irregular = sparse_profile(nnz, 1.0);
        let contiguous = sparse_profile(nnz, 64.0);
        let t_irr = sparse_attention_bwd(&g, &irregular, 64);
        let t_reg = sparse_attention_bwd(&g, &contiguous, 64);
        assert!(t_irr > 5.0 * t_reg, "irregular {t_irr} vs contiguous {t_reg}");
    }

    #[test]
    fn cluster_sparse_speedup_comes_from_run_length() {
        // The reformation's only effect on the model is a longer avg run —
        // that alone must produce the 2–3× kernel speedup the paper reports.
        let g = GpuSpec::rtx3090();
        let before = sparse_profile(2_000_000, 1.2);
        let after = sparse_profile(2_200_000, 12.0); // slightly more nnz, compact
        let t_before = sparse_attention_fwd(&g, &before, 64);
        let t_after = sparse_attention_fwd(&g, &after, 64);
        assert!(
            t_before / t_after > 2.0,
            "speedup {}",
            t_before / t_after
        );
    }

    #[test]
    fn a100_is_faster_than_3090_on_memory_bound_sparse() {
        let p = sparse_profile(5_000_000, 2.0);
        let t39 = sparse_attention_fwd(&GpuSpec::rtx3090(), &p, 64);
        let ta = sparse_attention_fwd(&GpuSpec::a100(), &p, 64);
        assert!(ta < t39);
    }

    #[test]
    fn dense_profile_plugs_in() {
        let g = GpuSpec::a100();
        let p = dense_profile(4096);
        let t = sparse_attention_fwd(&g, &p, 64);
        assert!(t > 0.0);
    }

    #[test]
    fn gemm_time_positive_and_monotone() {
        let g = GpuSpec::rtx3090();
        assert!(gemm_time(&g, 1024, 64, 64) < gemm_time(&g, 8192, 64, 64));
        assert!(ffn_fwd(&g, 1024, 64) > projections_fwd(&g, 1024, 64) / 4.0);
        assert!(elementwise(&g, 1024, 64, 2.0) > 0.0);
    }
}
