//! GPU device specifications.
//!
//! Published figures for the two GPUs of the paper's testbeds. The cost
//! models only use ratios and orders of magnitude, so the exact constants
//! matter less than their relationships (A100 ≈ 1.7× HBM bandwidth of a
//! 3090, 3.3× memory, much larger L2).


torchgt_compat::json_struct_ser! {
    /// Static description of a GPU model.
    #[derive(Clone, Copy, Debug)]
    pub struct GpuSpec {
        /// Marketing name.
        pub name: &'static str,
        /// Peak FP32 throughput in FLOP/s.
        pub fp32_flops: f64,
        /// Peak BF16/FP16 tensor-core throughput in FLOP/s (what FlashAttention
        /// actually runs on).
        pub bf16_flops: f64,
        /// Peak HBM/GDDR bandwidth in bytes/s.
        pub mem_bw: f64,
        /// Device memory in bytes.
        pub mem_bytes: u64,
        /// L1 cache (per SM) in bytes.
        pub l1_bytes: usize,
        /// L2 cache (device-wide) in bytes.
        pub l2_bytes: usize,
        /// Streaming multiprocessor count.
        pub sm_count: usize,
        /// Max resident threads per SM.
        pub max_threads_per_sm: usize,
        /// Shared memory per SM in bytes.
        pub smem_per_sm: usize,
    }
}

impl GpuSpec {
    /// NVIDIA GeForce RTX 3090: 35.6 TFLOP/s FP32, 936 GB/s GDDR6X, 24 GB,
    /// 128 KB L1/SM, 6 MB L2, 82 SMs.
    pub fn rtx3090() -> Self {
        Self {
            name: "RTX 3090",
            fp32_flops: 35.6e12,
            bf16_flops: 71e12,
            mem_bw: 936e9,
            mem_bytes: 24 * (1 << 30),
            l1_bytes: 128 * 1024,
            l2_bytes: 6 * 1024 * 1024,
            sm_count: 82,
            max_threads_per_sm: 1536,
            smem_per_sm: 100 * 1024,
        }
    }

    /// NVIDIA A100 80GB: 19.5 TFLOP/s FP32, 2039 GB/s HBM2e, 80 GB,
    /// 192 KB L1/SM, 40 MB L2, 108 SMs.
    pub fn a100() -> Self {
        Self {
            name: "A100",
            fp32_flops: 19.5e12,
            bf16_flops: 312e12,
            mem_bw: 2039e9,
            mem_bytes: 80 * (1 << 30),
            l1_bytes: 192 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            sm_count: 108,
            max_threads_per_sm: 2048,
            smem_per_sm: 164 * 1024,
        }
    }

    /// Time to stream `bytes` at peak bandwidth.
    pub fn stream_time(&self, bytes: f64) -> f64 {
        bytes / self.mem_bw
    }

    /// Time to execute `flops` at `efficiency × peak` (FP32 pipe).
    pub fn compute_time(&self, flops: f64, efficiency: f64) -> f64 {
        flops / (self.fp32_flops * efficiency.clamp(1e-3, 1.0))
    }

    /// Time to execute `flops` on the BF16/FP16 tensor cores.
    pub fn tensor_compute_time(&self, flops: f64, efficiency: f64) -> f64 {
        flops / (self.bf16_flops * efficiency.clamp(1e-3, 1.0))
    }

    /// Cluster dimensionality `k` from the paper's Auto Tuner formula
    /// `k = ⌊√(Q_L2 / (i·d))⌋` (§III-D). The paper leaves the integer factor
    /// `i` free; we fix `i = 1024` (the per-cluster tile rows kept L2-hot),
    /// which reproduces the paper's fitted `k = 8` for an RTX 3090 with
    /// hidden dimension 64, then round down to a power of two in [4, 64].
    pub fn tune_k(&self, hidden_dim: usize) -> usize {
        let q_l2 = self.l2_bytes as f64;
        let d = hidden_dim.max(1) as f64;
        let raw = (q_l2 / (1024.0 * d)).sqrt().floor().max(4.0) as usize;
        let mut k = 4usize;
        while k * 2 <= raw && k < 64 {
            k *= 2;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_relationships() {
        let g3090 = GpuSpec::rtx3090();
        let a100 = GpuSpec::a100();
        assert!(a100.mem_bw > 1.5 * g3090.mem_bw);
        assert!(a100.mem_bytes > 3 * g3090.mem_bytes);
        assert!(a100.l2_bytes > 5 * g3090.l2_bytes);
    }

    #[test]
    fn stream_and_compute_times() {
        let g = GpuSpec::rtx3090();
        // 936 GB at peak bandwidth = 1 s.
        assert!((g.stream_time(936e9) - 1.0).abs() < 1e-9);
        // 35.6 TFLOP at 100% = 1 s.
        assert!((g.compute_time(35.6e12, 1.0) - 1.0).abs() < 1e-9);
        assert!(g.compute_time(1e12, 0.5) > g.compute_time(1e12, 1.0));
    }

    #[test]
    fn tuned_k_matches_paper_for_3090_d64() {
        // The paper reports k = 8 for RTX 3090, hidden 64.
        let k = GpuSpec::rtx3090().tune_k(64);
        assert!((4..=16).contains(&k), "k = {k}");
    }

    #[test]
    fn tuned_k_is_bounded() {
        for d in [32, 64, 128, 256, 768] {
            let k = GpuSpec::a100().tune_k(d);
            assert!((4..=64).contains(&k), "d={d} k={k}");
        }
    }
}
