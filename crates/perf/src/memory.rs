//! Activation-memory estimation, OOM detection and maximum trainable
//! sequence length.
//!
//! Reproduces the paper's memory findings: GP-RAW's materialised `S²` score
//! matrix OOMs on every large dataset (Table V — "GP-RAW requires over 200 GB
//! … for ogbn-products"), while TorchGT's sharded `O(E + S·d/P)` footprint
//! scales the maximum sequence length almost linearly in the GPU count
//! (Figure 9(a)).

use crate::gpu::GpuSpec;
use torchgt_sparse::LayoutKind;

torchgt_compat::json_struct! {
    /// Shape of a transformer model, as the memory model needs it.
    #[derive(Clone, Copy, Debug)]
    pub struct ModelShape {
        /// Number of transformer layers.
        pub layers: usize,
        /// Hidden dimension.
        pub hidden: usize,
        /// Attention heads.
        pub heads: usize,
    }
}

impl ModelShape {
    /// Graphormer-slim (Table IV): 4 layers, hidden 64, 8 heads.
    pub fn graphormer_slim() -> Self {
        Self { layers: 4, hidden: 64, heads: 8 }
    }

    /// Graphormer-large (Table IV): 12 layers, hidden 768, 32 heads.
    pub fn graphormer_large() -> Self {
        Self { layers: 12, hidden: 768, heads: 32 }
    }

    /// GT (Table IV): 4 layers, hidden 128, 8 heads.
    pub fn gt() -> Self {
        Self { layers: 4, hidden: 128, heads: 8 }
    }

    /// Parameter count of the transformer trunk (projections + FFN + LN).
    pub fn param_count(&self) -> usize {
        let d = self.hidden;
        self.layers * (4 * d * d + 8 * d * d + 8 * d)
    }
}

/// Per-GPU activation + parameter memory (bytes) of one training step.
///
/// * `seq_len` — global sequence length `S`;
/// * `nnz` — attention-pattern nonzeros (ignored for dense/flash);
/// * `p` — parallelism degree (sequence split across `p` ranks for every
///   layout except [`LayoutKind::Dense`], whose score matrix is
///   unsharded in GP-RAW's naive graph parallelism).
pub fn memory_per_gpu(
    shape: &ModelShape,
    layout: LayoutKind,
    seq_len: usize,
    nnz: usize,
    p: usize,
) -> u64 {
    let p = p.max(1) as u64;
    let s = seq_len as u64;
    let d = shape.hidden as u64;
    let l = shape.layers as u64;
    let heads = shape.heads as u64;
    // Activations that every scheme shards across the sequence dimension:
    // ~10 tensors of [S/P, d] per layer (QKV, attention out, FFN ×4d …).
    let sharded_act = 18 * l * (s / p) * d * 4;
    // Parameters + Adam states are replicated on every rank.
    let params = (shape.param_count() as u64) * 4 * 3;
    // Attention-pattern-specific buffers.
    let attn = match layout {
        // GP-RAW materialises per-head S×S scores and keeps them for
        // backward; the naive graph parallelism cannot shard them.
        LayoutKind::Dense => heads * s * s * 4,
        // Flash never materialises the score matrix.
        LayoutKind::Flash => 8 * (s / p) * d * 4,
        // Sparse variants keep the pattern (indices) plus per-edge
        // coefficients for backward, sharded by rows.
        LayoutKind::Topology | LayoutKind::Clustered | LayoutKind::ClusterSparse => {
            let nz = (nnz as u64) / p;
            nz * (4 + 4 + 8) // coefficient + grad + index pair
        }
    };
    // Graph-encoding bias tables etc. replicated per rank: small, O(S).
    let replicated = 24 * s;
    sharded_act + params + attn + replicated
}

/// Whether a step fits in device memory (with a 10% headroom for the
/// allocator, CUDA context, etc.).
pub fn fits(spec: &GpuSpec, shape: &ModelShape, layout: LayoutKind, s: usize, nnz: usize, p: usize) -> bool {
    let budget = (spec.mem_bytes as f64 * 0.9) as u64;
    memory_per_gpu(shape, layout, s, nnz, p) <= budget
}

/// Largest sequence length trainable on `p` GPUs (binary search over the
/// memory model). `nnz_per_token` carries the graph's average degree so the
/// sparse pattern grows with `S`.
pub fn max_seq_len(
    spec: &GpuSpec,
    shape: &ModelShape,
    layout: LayoutKind,
    nnz_per_token: f64,
    p: usize,
) -> usize {
    let mut lo = 0usize;
    let mut hi = 1usize << 26; // 64M tokens — above anything trainable here
    while lo < hi {
        let mid = lo + (hi - lo + 1) / 2;
        let nnz = (mid as f64 * nnz_per_token) as usize;
        if fits(spec, shape, layout, mid, nnz, p) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_shapes() {
        assert_eq!(ModelShape::graphormer_slim().hidden, 64);
        assert_eq!(ModelShape::graphormer_large().layers, 12);
        assert_eq!(ModelShape::gt().hidden, 128);
        assert!(ModelShape::graphormer_large().param_count() > ModelShape::gt().param_count());
    }

    #[test]
    fn gp_raw_score_matrix_matches_paper_quote() {
        // "GP-RAW requires over 200GB memory to store the attention score of
        // only one attention head" at S = 256K: 256K² × 4 B = 256 GiB ✓.
        let s = 256usize << 10;
        let one_head = (s as u64) * (s as u64) * 4;
        assert!(one_head > 200 * (1u64 << 30));
    }

    #[test]
    fn gp_raw_ooms_on_long_sequences_torchgt_fits() {
        let spec = GpuSpec::rtx3090();
        let shape = ModelShape::graphormer_slim();
        let s = 256 << 10;
        let nnz = s * 25;
        assert!(!fits(&spec, &shape, LayoutKind::Dense, s, nnz, 8), "GP-RAW must OOM");
        assert!(
            fits(&spec, &shape, LayoutKind::ClusterSparse, s, nnz, 8),
            "TorchGT must fit"
        );
    }

    #[test]
    fn max_seq_len_scales_with_gpus_for_torchgt_not_raw() {
        // Figure 9(a): TorchGT's max S grows ~linearly with GPU count; GP-RAW
        // stays nearly flat (the unsharded S² matrix dominates).
        let spec = GpuSpec::a100();
        let shape = ModelShape::graphormer_slim();
        let raw1 = max_seq_len(&spec, &shape, LayoutKind::Dense, 25.0, 1);
        let raw8 = max_seq_len(&spec, &shape, LayoutKind::Dense, 25.0, 8);
        let tgt1 = max_seq_len(&spec, &shape, LayoutKind::ClusterSparse, 25.0, 1);
        let tgt8 = max_seq_len(&spec, &shape, LayoutKind::ClusterSparse, 25.0, 8);
        assert!(
            (raw8 as f64) < 1.3 * raw1 as f64,
            "GP-RAW should stay flat: {raw1} → {raw8}"
        );
        assert!(
            tgt8 as f64 > 2.5 * tgt1 as f64,
            "TorchGT should scale: {tgt1} → {tgt8}"
        );
        // Order-of-magnitude match with the paper: raw tens of K, TorchGT
        // hundreds of K on one GPU.
        assert!((8_000..100_000).contains(&raw1), "raw1 = {raw1}");
        assert!(tgt1 > 100_000, "tgt1 = {tgt1}");
        assert!(tgt8 > 1_000_000, "tgt8 = {tgt8}");
    }

    #[test]
    fn memory_is_monotone_in_s() {
        let shape = ModelShape::gt();
        let a = memory_per_gpu(&shape, LayoutKind::Flash, 1 << 16, 0, 4);
        let b = memory_per_gpu(&shape, LayoutKind::Flash, 1 << 18, 0, 4);
        assert!(b > a);
    }
}
