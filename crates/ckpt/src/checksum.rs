//! CRC-32 (IEEE 802.3 polynomial), implemented locally so the snapshot
//! format needs no external dependency. Byte-wise table-driven; the table
//! is built once per process.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        t
    })
}

/// CRC-32 of `bytes` (the common zlib/PNG/Ethernet variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        data[10] = 0x5A;
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {byte} bit {bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
