//! # torchgt-ckpt
//!
//! Fault-tolerance substrate for the TorchGT reproduction: versioned
//! **full-training-state** snapshots.
//!
//! The legacy `torchgt_tensor::checkpoint` format stores bare parameter
//! values only, so a resumed run diverges from an uninterrupted one (Adam's
//! moments and bias-correction step restart from zero, dropout masks
//! re-draw from call 0, the AutoTuner ladder forgets its position). TorchGT
//! trains for hundreds of epochs on 111M-node graphs (PAPER.md §VI) —
//! exactly the regime where a mid-run crash must not cost the run. This
//! crate captures *everything* the training loop's determinism depends on:
//!
//! * model parameters **and** Adam first/second moment buffers,
//! * the Adam step counter (bias correction depends on it),
//! * PRNG state (per-dropout mask-draw counters),
//! * AutoTuner β_thre ladder position and observation histories,
//! * interleave-scheduler cursors and the epoch cursor.
//!
//! On disk a snapshot is a single file: fixed header, checksummed JSON
//! manifest (via `torchgt-compat::json`), checksummed packed-f32 tensor
//! payload — see [`snapshot`] for the byte-level spec. [`store`] adds
//! atomic write-then-rename publication and keep-last-K retention.

pub mod checksum;
pub mod snapshot;
pub mod state;
pub mod store;

pub use checksum::crc32;
pub use snapshot::{Snapshot, FORMAT_VERSION, FORMAT_VERSION_V1, FORMAT_VERSION_V2};
pub use state::{
    ParamState, PartitionLayout, SchedulerState, TensorShape, TrainerState, TunerState,
};
pub use store::CheckpointStore;
