//! The training-state data model carried in a snapshot's JSON manifest.
//!
//! These structs are deliberately plain (no dependency on `torchgt-runtime`)
//! so the snapshot format sits *below* the trainers: the runtime converts
//! its live objects (AutoTuner, InterleaveScheduler, optimizer, dropout
//! layers) to and from these records.

use std::io;
use torchgt_tensor::param::Param;
use torchgt_tensor::tensor::Tensor;

torchgt_compat::json_struct! {
    /// Shape of one checkpointed tensor (row-major 2-D, as everywhere in
    /// `torchgt-tensor`).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct TensorShape {
        pub rows: usize,
        pub cols: usize,
    }
}

torchgt_compat::json_struct! {
    /// AutoTuner position and observation histories. The LDR comparison in
    /// `AutoTuner::observe` looks back `delta` entries, so the histories —
    /// not just the ladder index — must survive a restart for the resumed
    /// run's β_thre transitions to match the uninterrupted run.
    #[derive(Clone, Debug, PartialEq)]
    pub struct TunerState {
        pub index: usize,
        pub f_history: Vec<f64>,
        pub ldr_history: Vec<f64>,
    }
}

torchgt_compat::json_struct! {
    /// Interleave-scheduler cursors: sparse/full attention interleaving
    /// depends on the *global* iteration count, which keeps advancing
    /// across epoch boundaries.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SchedulerState {
        pub iteration: u64,
        pub sparse_iters: u64,
        pub full_iters: u64,
    }
}

torchgt_compat::json_struct! {
    /// Everything a trainer needs beyond raw tensors to resume bit-exactly.
    #[derive(Clone, Debug, PartialEq)]
    pub struct TrainerState {
        /// Completed epochs at snapshot time (the resume loop re-enters at
        /// this epoch index).
        pub epoch: usize,
        /// Adam step counter (bias correction depends on it).
        pub opt_steps: u64,
        /// Per-dropout mask-draw counters in model traversal order — the
        /// model's PRNG state, since each mask RNG is derived from
        /// `(seed, calls)`.
        pub rng_streams: Vec<u64>,
        /// Active sparsity threshold (node-level trainers only).
        pub beta_thre: Option<f64>,
        /// AutoTuner state (node-level trainers only).
        pub tuner: Option<TunerState>,
        /// Interleave-scheduler cursors (absent for trainers without one).
        pub scheduler: Option<SchedulerState>,
        /// Mean training loss of each completed epoch, for drivers that
        /// stitch a loss history across crash/restore cycles (empty for
        /// trainers that report losses only through their own stats).
        pub epoch_losses: Vec<f64>,
    }
}

impl TrainerState {
    /// Minimal state: epoch + optimizer steps, everything else absent.
    pub fn basic(epoch: usize, opt_steps: u64) -> Self {
        Self {
            epoch,
            opt_steps,
            rng_streams: Vec::new(),
            beta_thre: None,
            tuner: None,
            scheduler: None,
            epoch_losses: Vec::new(),
        }
    }
}

torchgt_compat::json_struct! {
    /// The partition layout in effect when a snapshot was taken. Parameters
    /// are always stored canonically (unsharded, in model traversal order),
    /// so the layout is *descriptive*, not structural: a restore at any
    /// world size reads the same bytes and recomputes its own assignment.
    /// Recording it lets an elastic restart report exactly which tokens
    /// moved or were re-materialized relative to the snapshot's layout.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct PartitionLayout {
        /// Live world size when the snapshot was taken.
        pub world: usize,
        /// Membership generation when the snapshot was taken.
        pub generation: u64,
        /// Canonical token/sequence index → owning *global* rank id.
        pub assignment: Vec<u32>,
    }
}

/// One parameter's full optimizer-visible state: the value tensor plus the
/// Adam first/second moment buffers. Raw `Vec<f32>` rather than `Tensor` so
/// the payload codec stays trivially flat.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamState {
    /// Tensor rows.
    pub rows: usize,
    /// Tensor cols.
    pub cols: usize,
    /// Parameter values.
    pub value: Vec<f32>,
    /// Adam first moments.
    pub m: Vec<f32>,
    /// Adam second moments.
    pub v: Vec<f32>,
}

impl ParamState {
    /// Capture a live parameter (value + moments; gradients are transient
    /// and deliberately not stored — a snapshot is taken between steps).
    pub fn capture(p: &Param) -> Self {
        let (rows, cols) = p.value.shape();
        Self {
            rows,
            cols,
            value: p.value.data().to_vec(),
            m: p.m.data().to_vec(),
            v: p.v.data().to_vec(),
        }
    }

    /// The shape record stored in the manifest.
    pub fn shape(&self) -> TensorShape {
        TensorShape { rows: self.rows, cols: self.cols }
    }

    /// Overwrite a live parameter's value and moment buffers. The caller
    /// (see [`crate::Snapshot::apply_params`]) validates shapes for the
    /// whole parameter set before any apply, keeping restores atomic.
    pub fn apply(&self, p: &mut Param) -> io::Result<()> {
        if p.value.shape() != (self.rows, self.cols) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot tensor is {}x{}, model expects {:?}",
                    self.rows,
                    self.cols,
                    p.value.shape()
                ),
            ));
        }
        p.value = Tensor::from_vec(self.rows, self.cols, self.value.clone());
        p.m = Tensor::from_vec(self.rows, self.cols, self.m.clone());
        p.v = Tensor::from_vec(self.rows, self.cols, self.v.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_compat::json;

    #[test]
    fn trainer_state_json_round_trip() {
        let s = TrainerState {
            epoch: 3,
            opt_steps: 42,
            rng_streams: vec![7, 7, 8],
            beta_thre: Some(0.5),
            tuner: Some(TunerState {
                index: 2,
                f_history: vec![1.25, 1.0],
                ldr_history: vec![0.5, 0.75],
            }),
            scheduler: Some(SchedulerState { iteration: 10, sparse_iters: 8, full_iters: 2 }),
            epoch_losses: vec![2.5, 1.75, 1.5],
        };
        let text = json::to_string(&s).unwrap();
        let back: TrainerState = json::from_str_as(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn basic_state_round_trips_with_nulls() {
        let s = TrainerState::basic(0, 0);
        let text = json::to_string(&s).unwrap();
        let back: TrainerState = json::from_str_as(&text).unwrap();
        assert_eq!(back, s);
        assert!(back.tuner.is_none() && back.scheduler.is_none());
    }

    #[test]
    fn partition_layout_json_round_trip() {
        let l = PartitionLayout { world: 3, generation: 2, assignment: vec![0, 0, 2, 3, 3] };
        let text = json::to_string(&l).unwrap();
        let back: PartitionLayout = json::from_str_as(&text).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn param_state_capture_and_apply() {
        let mut p = Param::new(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        p.m = Tensor::full(2, 2, 0.5);
        p.v = Tensor::full(2, 2, 0.25);
        let st = ParamState::capture(&p);
        let mut fresh = Param::new(Tensor::zeros(2, 2));
        st.apply(&mut fresh).unwrap();
        assert_eq!(fresh.value.data(), p.value.data());
        assert_eq!(fresh.m.data(), p.m.data());
        assert_eq!(fresh.v.data(), p.v.data());

        let mut wrong = Param::new(Tensor::zeros(3, 2));
        assert!(st.apply(&mut wrong).is_err());
    }
}
